"""Unit tests for truss-accelerated clique finding."""

import math

import pytest

from repro import ParameterError, ProbabilisticGraph
from repro.apps.cliques import (
    clique_probability,
    maximum_clique,
    maximum_reliable_clique,
)
from repro.graphs.generators import complete_graph, planted_truss_graph
from tests.conftest import random_probabilistic_graph


class TestCliqueProbability:
    def test_triangle(self, triangle):
        assert math.isclose(
            clique_probability(triangle, ["a", "b", "c"]), 0.9 * 0.8 * 0.7
        )

    def test_single_node(self, triangle):
        assert clique_probability(triangle, ["a"]) == 1.0

    def test_non_clique_rejected(self, two_triangles_sharing_edge):
        with pytest.raises(ParameterError):
            clique_probability(
                two_triangles_sharing_edge, ["a", "b", "c", "d"]
            )


class TestMaximumClique:
    @pytest.mark.parametrize("n", [3, 4, 6])
    def test_complete_graph(self, n):
        g = complete_graph(n, 0.5)
        assert len(maximum_clique(g)) == n

    def test_planted_clique_found(self):
        g, clique = planted_truss_graph(30, 6, background_density=0.05,
                                        seed=3)
        assert set(maximum_clique(g)) == set(clique)

    def test_matches_networkx(self):
        import networkx as nx

        for seed in range(6):
            g = random_probabilistic_graph(18, 0.4, seed)
            ours = len(maximum_clique(g))
            nxg = g.to_networkx()
            theirs = max(
                (len(c) for c in nx.find_cliques(nxg)), default=0
            )
            assert ours == theirs

    def test_pruning_consistent_with_plain(self):
        for seed in range(5):
            g = random_probabilistic_graph(16, 0.45, seed)
            fast = maximum_clique(g, use_truss_pruning=True)
            slow = maximum_clique(g, use_truss_pruning=False)
            assert len(fast) == len(slow)
            # Both must actually be cliques.
            clique_probability(g, fast)
            clique_probability(g, slow)

    def test_edgeless_graph(self):
        g = ProbabilisticGraph()
        g.add_node("x")
        assert maximum_clique(g) == {"x"}
        assert maximum_clique(ProbabilisticGraph()) == set()

    def test_triangle_free(self):
        g = ProbabilisticGraph([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        assert len(maximum_clique(g)) == 2


class TestMaximumReliableClique:
    def test_certain_clique(self):
        g = complete_graph(5, 1.0)
        clique, prob = maximum_reliable_clique(g, 0.9)
        assert len(clique) == 5
        assert prob == 1.0

    def test_probability_threshold_shrinks_answer(self):
        g = complete_graph(5, 0.9)
        # K5 has 10 edges: prob 0.9^10 ~ 0.349; K4: 0.9^6 ~ 0.531;
        # K3: 0.9^3 = 0.729.
        full, p_full = maximum_reliable_clique(g, 0.3)
        assert len(full) == 5 and math.isclose(p_full, 0.9 ** 10)
        four, p_four = maximum_reliable_clique(g, 0.5)
        assert len(four) == 4 and math.isclose(p_four, 0.9 ** 6)
        three, p_three = maximum_reliable_clique(g, 0.7)
        assert len(three) == 3 and math.isclose(p_three, 0.9 ** 3)

    def test_weak_edges_pruned(self):
        g = complete_graph(4, 0.95)
        g.add_edge(0, 99, 0.05)  # cannot be in any 0.5-reliable clique
        clique, _ = maximum_reliable_clique(g, 0.5)
        assert 99 not in clique

    def test_no_feasible_clique(self):
        g = ProbabilisticGraph([(0, 1, 0.2)])
        assert maximum_reliable_clique(g, 0.5) == (set(), 0.0)

    def test_single_edge_fallback(self):
        g = ProbabilisticGraph([(0, 1, 0.9), (2, 3, 0.8)])
        clique, prob = maximum_reliable_clique(g, 0.5)
        assert clique == {0, 1}
        assert math.isclose(prob, 0.9)

    def test_invalid_gamma(self, triangle):
        with pytest.raises(ParameterError):
            maximum_reliable_clique(triangle, 0.0)

    def test_matches_bruteforce(self):
        from itertools import combinations

        for seed in range(4):
            g = random_probabilistic_graph(10, 0.5, seed)
            gamma = 0.3
            best_size, best_prob = 0, 0.0
            nodes = list(g.nodes())
            for size in range(2, 11):
                for combo in combinations(nodes, size):
                    ok = all(
                        g.has_edge(u, v)
                        for i, u in enumerate(combo)
                        for v in combo[:i]
                    )
                    if not ok:
                        continue
                    prob = clique_probability(g, combo)
                    if prob >= gamma and (
                        size > best_size
                        or (size == best_size and prob > best_prob)
                    ):
                        best_size, best_prob = size, prob
            clique, prob = maximum_reliable_clique(g, gamma)
            assert len(clique) == max(best_size, 2 if clique else 0) or (
                len(clique) == best_size
            )
            if best_size >= 2:
                assert len(clique) == best_size
                assert prob >= gamma * (1 - 1e-9)
