"""Unit tests for the task-driven team-formation application (Section 6.5)."""

import pytest

from repro import ParameterError
from repro.apps.team_formation import (
    CollaborationNetwork,
    generate_collaboration_network,
    team_by_eta_core,
    team_by_global_truss,
    team_by_local_truss,
)

QUERY = ["Jeffrey D. Ullman", "Piotr Indyk"]
KEYWORDS = ["data", "algorithm"]
GAMMA = 1e-3


@pytest.fixture(scope="module")
def network() -> CollaborationNetwork:
    return generate_collaboration_network(seed=11)


@pytest.fixture(scope="module")
def task_graph(network):
    return network.task_graph(KEYWORDS)


class TestNetworkGeneration:
    def test_query_authors_planted(self, network):
        g = network.structure
        assert g.has_node(QUERY[0]) and g.has_node(QUERY[1])
        assert g.has_edge(QUERY[0], QUERY[1])

    def test_keyword_bags_exist(self, network):
        assert network.keywords
        some_bag = next(iter(network.keywords.values()))
        assert sum(some_bag.values()) > 0

    def test_deterministic(self):
        a = generate_collaboration_network(seed=5)
        b = generate_collaboration_network(seed=5)
        assert a.structure == b.structure
        assert a.keywords == b.keywords

    def test_unknown_area_rejected(self):
        with pytest.raises(ParameterError):
            generate_collaboration_network(seed=1, query_areas=("quantum",))


class TestTaskGraph:
    def test_probabilities_valid(self, task_graph):
        assert all(
            0.0 < p <= 1.0 for _, _, p in task_graph.edges_with_probabilities()
        )

    def test_relevant_edges_stronger(self, network, task_graph):
        # The planted bridge edge must beat the median off-topic edge.
        bridge_p = task_graph.probability(QUERY[0], QUERY[1])
        probs = sorted(p for _, _, p in task_graph.edges_with_probabilities())
        median = probs[len(probs) // 2]
        assert bridge_p > median

    def test_different_keywords_change_probabilities(self, network):
        g1 = network.task_graph(["data"])
        g2 = network.task_graph(["logic"])
        diffs = sum(
            1
            for u, v, p in g1.edges_with_probabilities()
            if abs(p - g2.probability(u, v)) > 1e-12
        )
        assert diffs > 0

    def test_empty_keywords_rejected(self, network):
        with pytest.raises(ParameterError):
            network.task_graph([])


class TestLocalTeam:
    def test_finds_team_with_query(self, task_graph):
        team = team_by_local_truss(task_graph, QUERY, GAMMA)
        assert team is not None
        assert team.contains_query
        assert team.k >= 3
        for q in QUERY:
            assert team.subgraph.has_node(q)

    def test_missing_query_node_rejected(self, task_graph):
        with pytest.raises(ParameterError):
            team_by_local_truss(task_graph, ["Nobody"], GAMMA)

    def test_impossible_gamma_returns_none(self, task_graph):
        assert team_by_local_truss(task_graph, QUERY, 1.0) is None

    def test_quality_metrics_available(self, task_graph):
        team = team_by_local_truss(task_graph, QUERY, GAMMA)
        assert 0.0 <= team.density <= 1.0
        assert 0.0 <= team.pcc <= 1.0 + 1e-9
        assert team.n_members == team.subgraph.number_of_nodes()
        assert team.n_edges == team.subgraph.number_of_edges()


class TestGlobalTeam:
    def test_global_refines_local(self, task_graph):
        local = team_by_local_truss(task_graph, QUERY, GAMMA)
        teams = team_by_global_truss(task_graph, QUERY, GAMMA, seed=2)
        assert teams
        for team in teams:
            # Global teams are subgraphs of the local team (the paper
            # feeds the local truss into the global decomposition).
            assert set(team.subgraph.nodes()) <= set(local.subgraph.nodes())
            assert team.n_members <= local.n_members

    def test_global_no_less_cohesive_than_local(self, task_graph):
        # Figure 10's headline: global trusses are at most as large and
        # (essentially) at least as dense. Density equality happens when
        # the global refinement confirms the whole local team; a small
        # slack absorbs heuristic tie-breaking.
        local = team_by_local_truss(task_graph, QUERY, GAMMA)
        teams = team_by_global_truss(task_graph, QUERY, GAMMA, seed=2)
        best = teams[0]
        assert best.n_members <= local.n_members
        assert best.density >= local.density * 0.9

    def test_impossible_gamma_returns_empty(self, task_graph):
        assert team_by_global_truss(task_graph, QUERY, 1.0, seed=2) == []


class TestCoreTeam:
    def test_core_team_exists_and_is_larger(self, task_graph):
        core = team_by_eta_core(task_graph, QUERY, GAMMA)
        truss = team_by_local_truss(task_graph, QUERY, GAMMA)
        assert core is not None
        assert core.contains_query
        # The paper's comparison: cores balloon, trusses stay tight.
        assert core.n_members >= truss.n_members

    def test_truss_denser_than_core(self, task_graph):
        core = team_by_eta_core(task_graph, QUERY, GAMMA)
        truss = team_by_local_truss(task_graph, QUERY, GAMMA)
        assert truss.density >= core.density

    def test_missing_query_rejected(self, task_graph):
        with pytest.raises(ParameterError):
            team_by_eta_core(task_graph, ["Nobody"], GAMMA)
