"""Fault injection: every error path of the runtime must be reachable."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    BudgetExceededError,
    CheckpointError,
    ComputationInterrupted,
)
from repro.graphs.generators import gnp_graph, running_example
from repro.runtime import (
    Budget,
    FaultPlan,
    corrupt_checkpoint,
    run_global,
    run_local,
    run_reliability,
    serialize_global_result,
)
from repro.runtime.progress import ProgressEvent, chain_hooks


def global_run(graph, **kwargs):
    return run_global(graph, 0.3, method="gbu", seed=1, n_samples=60,
                      batch_size=20, **kwargs)


class TestFaultPlan:
    def test_fires_once_at_exact_boundary(self):
        plan = FaultPlan().raise_at("sample-batch", 2, RuntimeError("boom"))
        plan(ProgressEvent("sample-batch", step=0))
        plan(ProgressEvent("global-level", step=2))  # wrong phase
        with pytest.raises(RuntimeError, match="boom"):
            plan(ProgressEvent("sample-batch", step=2))
        plan(ProgressEvent("sample-batch", step=2))  # spent, silent now
        assert plan.fired == [("sample-batch", 2)]

    def test_exception_class_is_instantiated(self):
        plan = FaultPlan().raise_at("local-peel", 64, MemoryError)
        with pytest.raises(MemoryError, match="injected fault"):
            plan(ProgressEvent("local-peel", step=64))

    def test_chaining(self):
        plan = (FaultPlan()
                .sigint_at("sample-batch", 0)
                .oom_at("gbu-seed", 3))
        with pytest.raises(ComputationInterrupted):
            plan(ProgressEvent("sample-batch", step=0))
        with pytest.raises(MemoryError):
            plan(ProgressEvent("gbu-seed", step=3))


class TestSimulatedSigint:
    def test_sigint_without_checkpoint_propagates(self):
        graph = running_example()
        with pytest.raises(ComputationInterrupted) as exc_info:
            global_run(graph, progress=FaultPlan().sigint_at("sample-batch", 0))
        assert exc_info.value.checkpoint_path is None

    def test_sigint_with_checkpoint_names_the_snapshot(self, tmp_path):
        graph = running_example()
        with pytest.raises(ComputationInterrupted) as exc_info:
            global_run(graph, checkpoint_dir=tmp_path,
                       progress=FaultPlan().sigint_at("global-level", 2))
        assert exc_info.value.checkpoint_path == str(tmp_path)

    def test_sigint_during_local_peel(self):
        # local-peel events fire every 64 peeled edges; needs a graph
        # with more than 64 edges.
        graph = gnp_graph(30, 0.3, seed=0)
        assert graph.number_of_edges() > 64
        with pytest.raises(ComputationInterrupted):
            run_local(graph, 0.3,
                      progress=FaultPlan().sigint_at("local-peel", 64))


class TestSimulatedOom:
    def test_oom_during_sampling_degrades(self):
        graph = running_example()
        partial = global_run(
            graph, progress=FaultPlan().oom_at("sample-batch", 0))
        # Decomposition still runs over the truncated sample set; the
        # outcome is degraded in accuracy, not aborted.
        assert partial.degraded
        assert "memory" in (partial.reason or "").lower()
        # Sampling was cut short -> honesty about epsilon.
        assert partial.n_samples_drawn < partial.n_samples_requested
        assert partial.effective_epsilon > partial.requested_epsilon

    def test_oom_during_decomposition_returns_completed_levels(self):
        graph = running_example()
        partial = global_run(
            graph, progress=FaultPlan().oom_at("global-level-done", 2))
        assert partial.degraded and not partial.complete
        assert partial.completed_k == 2  # level 2 was committed first
        assert partial.result.trusses.get(2)

    def test_oom_during_local_run(self):
        graph = gnp_graph(30, 0.3, seed=0)
        partial = run_local(graph, 0.3,
                            progress=FaultPlan().oom_at("local-peel", 64))
        assert partial.degraded and not partial.complete
        assert "memory" in partial.reason.lower()
        # The salvaged prefix of trussness values is final.
        complete = run_local(graph, 0.3).result.trussness
        for edge, tau in partial.result.trussness.items():
            assert complete[edge] == tau

    def test_oom_during_reliability(self):
        graph = running_example()
        partial = run_reliability(
            graph, n_samples=120, batch_size=40, seed=0,
            progress=FaultPlan().oom_at("reliability-batch", 1))
        assert partial.degraded and not partial.complete
        assert partial.n_samples_drawn == 80  # two committed batches


class TestBudgetBreachPaths:
    def test_sample_budget_breach_is_not_an_exception(self):
        graph = running_example()
        partial = global_run(graph, budget=Budget(max_samples=30))
        assert partial.degraded
        assert partial.n_samples_drawn < 60
        assert partial.result is not None  # decomposition still ran

    def test_budget_error_escapes_raw_decomposition(self):
        """Without the harness, budgets raise - the documented contract."""
        from repro.core.global_decomp import global_truss_decomposition

        graph = running_example()
        with pytest.raises(BudgetExceededError):
            global_truss_decomposition(
                graph, 0.3, seed=1, n_samples=60,
                progress=Budget(deadline=0.0))


class TestDiskFaults:
    """Injected ENOSPC travels the real torn-write path end to end."""

    def test_enospc_degrades_checkpointing_but_finishes(self, tmp_path):
        graph = running_example()
        baseline = serialize_global_result(global_run(graph).result)
        events: list[ProgressEvent] = []
        plan = FaultPlan().exhaust_disk()
        partial = global_run(graph, checkpoint_dir=tmp_path,
                             progress=chain_hooks(events.append, plan))
        # The run completes and the answer is untouched...
        assert partial.complete
        assert serialize_global_result(partial.result) == baseline
        # ...but the degradation is on the record.
        assert partial.degraded
        assert "checkpoint write failed" in partial.reason
        assert "Errno 28" in partial.reason  # ENOSPC
        assert plan.fired == [("exhaust-disk", 0)]
        degraded = [e for e in events if e.phase == "checkpoint-degraded"]
        assert len(degraded) == 1
        assert "checkpoint_error" in degraded[0].detail
        assert degraded[0].detail["path"]
        # No torn temp file survives the failed write.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_checkpointing_stays_disabled_after_first_failure(
            self, tmp_path):
        graph = running_example()
        plan = FaultPlan().exhaust_disk()  # only the FIRST write fails
        partial = global_run(graph, checkpoint_dir=tmp_path, progress=plan)
        assert partial.complete and partial.degraded
        # Later writes would have succeeded, but the store is disabled:
        # a degraded checkpoint must not masquerade as a resumable one.
        assert not (tmp_path / "manifest.json").exists()

    def test_write_fault_raises_checkpoint_write_error(self, tmp_path):
        from repro.exceptions import CheckpointWriteError
        from repro.runtime import CheckpointStore

        store = CheckpointStore(tmp_path)
        store.write_fault = FaultPlan().exhaust_disk().take_disk_fault
        with pytest.raises(CheckpointWriteError) as exc_info:
            store.save_manifest({"params": {}})
        assert exc_info.value.path
        assert list(tmp_path.glob("*.tmp")) == []
        # The fault is consumed: the next write goes through.
        store.save_manifest({"params": {}})
        assert store.exists()


class TestCorruptCheckpoints:
    def make_checkpoint(self, tmp_path):
        graph = running_example()
        with pytest.raises(ComputationInterrupted):
            global_run(graph, checkpoint_dir=tmp_path,
                       progress=FaultPlan().sigint_at("sample-batch", 1))
        return graph

    @pytest.mark.parametrize("mode", ["garbage", "truncate"])
    def test_corrupt_manifest_raises_on_resume(self, tmp_path, mode):
        graph = self.make_checkpoint(tmp_path)
        corrupt_checkpoint(tmp_path, target="manifest", mode=mode)
        with pytest.raises(CheckpointError):
            global_run(graph, checkpoint_dir=tmp_path, resume=True)

    def test_corrupt_sample_batch_raises_on_resume(self, tmp_path):
        graph = self.make_checkpoint(tmp_path)
        corrupt_checkpoint(tmp_path, target="samples", mode="garbage")
        with pytest.raises(CheckpointError):
            global_run(graph, checkpoint_dir=tmp_path, resume=True)

    def test_on_corrupt_restart_recovers(self, tmp_path):
        graph = self.make_checkpoint(tmp_path)
        baseline = serialize_global_result(global_run(graph).result)
        corrupt_checkpoint(tmp_path, target="manifest", mode="garbage")
        partial = global_run(graph, checkpoint_dir=tmp_path, resume=True,
                             on_corrupt="restart")
        assert partial.complete
        assert serialize_global_result(partial.result) == baseline

    def test_corrupt_checkpoint_helper_validates_input(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            corrupt_checkpoint(tmp_path, target="manifest")
        with pytest.raises(CheckpointError, match="no checkpoint file"):
            corrupt_checkpoint(tmp_path, target="samples")
