"""Unit tests for the deterministic k-truss substrate."""

import pytest

from repro import (
    ParameterError,
    ProbabilisticGraph,
    edge_supports,
    is_k_truss,
    k_truss_subgraph,
    max_trussness,
    maximal_k_trusses,
    truss_decomposition,
    truss_hierarchy,
)
from repro.graphs.generators import complete_graph
from repro.truss.support import support_of_edge, triangle_count


class TestSupport:
    def test_edge_supports_triangle(self, triangle):
        assert all(s == 1 for s in edge_supports(triangle).values())

    def test_edge_supports_k4(self, k4):
        assert all(s == 2 for s in edge_supports(k4).values())

    def test_support_of_edge(self, two_triangles_sharing_edge):
        assert support_of_edge(two_triangles_sharing_edge, "a", "b") == 2

    def test_triangle_count(self, k4):
        assert triangle_count(k4) == 4

    def test_triangle_count_triangle_free(self):
        g = ProbabilisticGraph([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        assert triangle_count(g) == 0


class TestTrussDecomposition:
    def test_complete_graph(self):
        # In K_n every edge has trussness n.
        for n in (3, 4, 5, 6):
            tau = truss_decomposition(complete_graph(n))
            assert all(t == n for t in tau.values())

    def test_path_graph(self):
        g = ProbabilisticGraph([(0, 1, 1.0), (1, 2, 1.0)])
        tau = truss_decomposition(g)
        assert all(t == 2 for t in tau.values())

    def test_paper_example(self, paper_graph):
        tau = truss_decomposition(paper_graph)
        # p1's edges cap at 3 (one triangle each); the 4-truss core is the
        # subgraph on {q1, q2, v1, v2, v3}.
        assert tau[("p1", "q1")] == 3
        assert tau[("p1", "v1")] == 3
        for e in [("q1", "v1"), ("q2", "v3"), ("v1", "v2"), ("v2", "v3")]:
            assert tau[e] == 4

    def test_triangle_plus_pendant(self):
        g = ProbabilisticGraph(
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (2, 3, 1.0)]
        )
        tau = truss_decomposition(g)
        assert tau[(2, 3)] == 2
        assert tau[(0, 1)] == 3

    def test_empty_graph(self, empty_graph):
        assert truss_decomposition(empty_graph) == {}

    def test_two_cliques_sharing_a_node(self):
        g = ProbabilisticGraph()
        for block in (["a1", "a2", "a3", "hub"], ["b1", "b2", "b3", "hub"]):
            for i, u in enumerate(block):
                for v in block[:i]:
                    g.add_edge(u, v, 1.0)
        tau = truss_decomposition(g)
        assert all(t == 4 for t in tau.values())

    def test_cascade(self):
        # K4 with a pendant triangle: removing the weak edges cascades.
        g = complete_graph(4)
        g.add_edge(0, 4, 1.0)
        g.add_edge(1, 4, 1.0)
        tau = truss_decomposition(g)
        assert tau[(0, 4)] == 3
        assert tau[(0, 1)] == 4


class TestIsKTruss:
    def test_every_graph_is_2truss(self, triangle, two_triangles_sharing_edge):
        assert is_k_truss(triangle, 2)
        assert is_k_truss(two_triangles_sharing_edge, 2)

    def test_k4(self, k4):
        assert is_k_truss(k4, 4)
        assert not is_k_truss(k4, 5)

    def test_edgeless_vacuous(self, empty_graph):
        assert is_k_truss(empty_graph, 10)

    def test_invalid_k(self, k4):
        with pytest.raises(ParameterError):
            is_k_truss(k4, 1)


class TestKTrussSubgraph:
    def test_extracts_core(self, paper_graph):
        core = k_truss_subgraph(paper_graph, 4)
        assert set(core.nodes()) == {"q1", "q2", "v1", "v2", "v3"}
        assert core.number_of_edges() == 9

    def test_k_too_large_gives_empty(self, k4):
        assert k_truss_subgraph(k4, 5).number_of_edges() == 0

    def test_keeps_probabilities(self, k4):
        core = k_truss_subgraph(k4, 4)
        assert core.probability("a", "b") == 0.9

    def test_invalid_k(self, k4):
        with pytest.raises(ParameterError):
            k_truss_subgraph(k4, 0)


class TestMaximalTrusses:
    def test_disjoint_triangles(self):
        g = ProbabilisticGraph()
        for base in (0, 10):
            g.add_edge(base, base + 1, 1.0)
            g.add_edge(base + 1, base + 2, 1.0)
            g.add_edge(base, base + 2, 1.0)
        trusses = maximal_k_trusses(g, 3)
        assert len(trusses) == 2
        assert all(t.number_of_edges() == 3 for t in trusses)

    def test_accepts_precomputed_trussness(self, k4):
        tau = truss_decomposition(k4)
        trusses = maximal_k_trusses(k4, 4, trussness=tau)
        assert len(trusses) == 1

    def test_invalid_k(self, k4):
        with pytest.raises(ParameterError):
            maximal_k_trusses(k4, 1)

    def test_hierarchy_nested(self, paper_graph):
        hierarchy = truss_hierarchy(paper_graph)
        assert sorted(hierarchy) == [2, 3, 4]
        # Edges at level k+1 are a subset of edges at level k.
        for k in (2, 3):
            upper = {
                e for t in hierarchy[k + 1] for e in t.edges()
            }
            lower = {e for t in hierarchy[k] for e in t.edges()}
            assert upper <= lower

    def test_hierarchy_empty(self, empty_graph):
        assert truss_hierarchy(empty_graph) == {}


class TestMaxTrussness:
    def test_values(self, paper_graph, empty_graph, k4):
        assert max_trussness(paper_graph) == 4
        assert max_trussness(k4) == 4
        assert max_trussness(empty_graph) == 0
