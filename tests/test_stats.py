"""Unit tests for graph statistics and profiles."""

import math

import pytest

from repro import ProbabilisticGraph
from repro.core.stats import (
    GraphProfile,
    degree_histogram,
    expected_triangle_count,
    probability_quantiles,
    profile_graph,
)
from repro.graphs.generators import complete_graph


class TestDegreeHistogram:
    def test_triangle(self, triangle):
        assert degree_histogram(triangle) == {2: 3}

    def test_star(self):
        g = ProbabilisticGraph([("hub", i, 1.0) for i in range(4)])
        assert degree_histogram(g) == {4: 1, 1: 4}

    def test_empty(self, empty_graph):
        assert degree_histogram(empty_graph) == {}


class TestProbabilityQuantiles:
    def test_median(self, triangle):
        q = probability_quantiles(triangle)
        assert q[0.0] == 0.7
        assert q[0.5] == 0.8
        assert q[1.0] == 0.9

    def test_empty(self, empty_graph):
        q = probability_quantiles(empty_graph)
        assert all(v == 0.0 for v in q.values())

    def test_invalid_quantile(self, triangle):
        with pytest.raises(ValueError):
            probability_quantiles(triangle, quantiles=(1.5,))

    def test_invalid_quantile_is_parameter_error(self, triangle):
        # Regression: a bare ValueError here escaped the CLI's error
        # mapping and surfaced as a traceback instead of exit code 2.
        from repro.exceptions import ParameterError

        with pytest.raises(ParameterError,
                           match=r"quantile must be in \[0, 1\]"):
            probability_quantiles(triangle, quantiles=(-0.1,))


class TestExpectedTriangles:
    def test_triangle(self, triangle):
        assert math.isclose(
            expected_triangle_count(triangle), 0.9 * 0.8 * 0.7
        )

    def test_k4(self, k4):
        assert math.isclose(expected_triangle_count(k4), 4 * 0.9 ** 3)

    def test_triangle_free(self):
        g = ProbabilisticGraph([(0, 1, 1.0), (1, 2, 1.0)])
        assert expected_triangle_count(g) == 0.0


class TestProfile:
    def test_complete_graph_profile(self):
        g = complete_graph(5, 0.8)
        profile = profile_graph(g)
        assert profile.nodes == 5
        assert profile.edges == 10
        assert profile.max_degree == 4
        assert math.isclose(profile.mean_degree, 4.0)
        assert math.isclose(profile.expected_edges, 8.0)
        assert profile.structural_triangles == 10
        assert math.isclose(profile.expected_triangles, 10 * 0.8 ** 3)
        assert math.isclose(profile.density, 0.8)
        assert math.isclose(profile.pcc, 0.8)
        assert math.isclose(profile.clustering, 1.0)
        assert profile.probability_median == 0.8

    def test_empty_profile(self, empty_graph):
        profile = profile_graph(empty_graph)
        assert profile.nodes == 0
        assert profile.mean_degree == 0.0

    def test_as_dict_round_trip(self, k4):
        profile = profile_graph(k4)
        doc = profile.as_dict()
        assert doc["edges"] == 6
        assert set(doc) == set(GraphProfile.__dataclass_fields__)
