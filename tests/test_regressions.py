"""Fixed-seed regression snapshots.

These pin exact decomposition outcomes on the seeded datasets: if a
change to a generator or algorithm silently shifts semantics, one of
these fails before anything subtler does. Update the expected values
ONLY after confirming the change is intentional and correct.
"""

import pytest

from repro import (
    dataset_statistics,
    eta_core_decomposition,
    load_dataset,
    local_truss_decomposition,
    truss_decomposition,
)
from repro.graphs.generators import running_example


class TestDatasetSnapshots:
    def test_fruitfly_shape(self):
        stats = dataset_statistics(load_dataset("fruitfly", seed=42))
        assert stats["nodes"] == 461
        assert stats["edges"] == 587
        assert stats["components"] == 103

    def test_wikivote_shape(self):
        stats = dataset_statistics(load_dataset("wikivote", seed=42))
        assert stats["nodes"] == 350
        assert stats["edges"] == 2887
        assert stats["components"] == 1

    def test_fruitfly_kmax_profile(self):
        g = load_dataset("fruitfly", seed=42)
        profile = {
            gamma: local_truss_decomposition(g, gamma).k_max
            for gamma in (0.1, 0.5, 0.9)
        }
        assert profile == {0.1: 6, 0.5: 6, 0.9: 5}

    def test_fruitfly_truss_counts_at_half(self):
        g = load_dataset("fruitfly", seed=42)
        result = local_truss_decomposition(g, 0.5)
        counts = {
            k: len(result.maximal_trusses(k))
            for k in range(3, result.k_max + 1)
        }
        # Snapshot; the k = 6 truss is the planted K6 complex.
        assert counts[6] == 1
        assert counts[5] >= counts[6]
        assert counts[3] >= counts[4] >= counts[5]

    def test_wikivote_deterministic_kmax(self):
        g = load_dataset("wikivote", seed=42)
        tau = truss_decomposition(g)
        # The densest planted pocket sustains a structural 13-truss.
        assert max(tau.values()) == 13

    def test_dblp_eta_core_max(self):
        g = load_dataset("dblp", seed=42)
        core = eta_core_decomposition(g, 0.5)
        assert max(core.values()) == 4


class TestRunningExampleSnapshot:
    def test_exact_trussness_map(self):
        g = running_example()
        result = local_truss_decomposition(g, 0.125)
        expected = {
            ("p1", "q1"): 3,
            ("p1", "v1"): 3,
            ("q1", "v1"): 4,
            ("q1", "v2"): 4,
            ("q1", "v3"): 4,
            ("q2", "v1"): 4,
            ("q2", "v2"): 4,
            ("q2", "v3"): 4,
            ("v1", "v2"): 4,
            ("v1", "v3"): 4,
            ("v2", "v3"): 4,
        }
        assert result.trussness == expected

    def test_trussness_at_tighter_gamma(self):
        g = running_example()
        result = local_truss_decomposition(g, 0.2)
        # At gamma = 0.2 the 0.125-probability witnesses no longer carry
        # k = 4; the certain triangle keeps k = 3 alive.
        assert result.k_max == 3
        assert result.trussness[("v1", "v2")] == 3
