"""Unit tests for network reliability and the Theorem 1 reduction."""

import math

import pytest

from repro import NodeNotFoundError, ParameterError, ProbabilisticGraph, alpha_exact
from repro.core.reliability import (
    network_reliability_exact,
    network_reliability_mc,
    theorem1_gadget,
    two_terminal_reliability_exact,
    two_terminal_reliability_mc,
)
from repro.graphs.generators import complete_graph
from tests.conftest import random_probabilistic_graph


class TestExactReliability:
    def test_single_edge(self):
        g = ProbabilisticGraph([("a", "b", 0.7)])
        assert math.isclose(network_reliability_exact(g), 0.7)

    def test_series(self):
        # Path a-b-c: connected iff both edges exist.
        g = ProbabilisticGraph([("a", "b", 0.7), ("b", "c", 0.6)])
        assert math.isclose(network_reliability_exact(g), 0.42)

    def test_triangle_closed_form(self):
        # Triangle with p everywhere: R = p^3 + 3 p^2 (1 - p).
        p = 0.5
        g = complete_graph(3, p)
        expected = p ** 3 + 3 * p ** 2 * (1 - p)
        assert math.isclose(network_reliability_exact(g), expected)

    def test_degenerate_cases(self, empty_graph):
        assert network_reliability_exact(empty_graph) == 0.0
        single = ProbabilisticGraph()
        single.add_node("x")
        assert network_reliability_exact(single) == 1.0
        disconnected = ProbabilisticGraph([(0, 1, 1.0), (2, 3, 1.0)])
        assert network_reliability_exact(disconnected) == 0.0

    def test_certain_connected_graph(self):
        g = complete_graph(5, 1.0)
        assert network_reliability_exact(g) == 1.0

    def test_size_limit(self):
        g = complete_graph(8, 0.5)  # 28 edges
        with pytest.raises(ParameterError):
            network_reliability_exact(g)


class TestMonteCarloReliability:
    def test_converges_to_exact(self):
        g = complete_graph(4, 0.6)
        exact = network_reliability_exact(g)
        estimate = network_reliability_mc(g, n_samples=6000, seed=3)
        assert abs(estimate - exact) < 0.02

    def test_certain_graph(self):
        g = complete_graph(4, 1.0)
        assert network_reliability_mc(g, n_samples=50, seed=1) == 1.0

    def test_degenerate(self, empty_graph):
        assert network_reliability_mc(empty_graph, n_samples=10, seed=1) == 0.0


class TestTwoTerminal:
    def test_direct_edge_plus_detour(self):
        # s-t edge (0.5) or detour via m (0.6 * 0.6).
        g = ProbabilisticGraph(
            [("s", "t", 0.5), ("s", "m", 0.6), ("m", "t", 0.6)]
        )
        expected = 1 - (1 - 0.5) * (1 - 0.36)
        assert math.isclose(
            two_terminal_reliability_exact(g, "s", "t"), expected
        )

    def test_same_node(self, triangle):
        assert two_terminal_reliability_exact(triangle, "a", "a") == 1.0

    def test_unknown_node(self, triangle):
        with pytest.raises(NodeNotFoundError):
            two_terminal_reliability_exact(triangle, "a", "zzz")

    def test_st_at_least_global(self):
        # s-t reliability upper-bounds all-terminal reliability.
        for seed in range(3):
            g = random_probabilistic_graph(6, 0.6, seed)
            from repro.graphs.components import is_connected

            if not is_connected(g):
                continue
            nodes = sorted(g.nodes())
            st = two_terminal_reliability_exact(g, nodes[0], nodes[1])
            overall = network_reliability_exact(g)
            assert st >= overall - 1e-12

    def test_mc_converges(self):
        g = ProbabilisticGraph(
            [("s", "t", 0.5), ("s", "m", 0.6), ("m", "t", 0.6)]
        )
        exact = two_terminal_reliability_exact(g, "s", "t")
        estimate = two_terminal_reliability_mc(g, "s", "t",
                                               n_samples=6000, seed=5)
        assert abs(estimate - exact) < 0.02


class TestTheorem1Reduction:
    @pytest.mark.parametrize("seed", range(4))
    def test_alpha2_equals_reliability(self, seed):
        """Theorem 1: conn(G) == alpha_2(H, pendant edge)."""
        g = random_probabilistic_graph(5, 0.7, seed)
        from repro.graphs.components import is_connected

        if g.number_of_edges() == 0 or not is_connected(g):
            pytest.skip("needs a connected base graph")
        anchor = next(g.nodes())
        gadget, pendant_edge = theorem1_gadget(g, anchor)
        alpha = alpha_exact(gadget, 2)
        reliability = network_reliability_exact(g)
        assert math.isclose(alpha[pendant_edge], reliability, rel_tol=1e-9)

    def test_gadget_validation(self, triangle):
        with pytest.raises(NodeNotFoundError):
            theorem1_gadget(triangle, "zzz")
        with pytest.raises(ParameterError):
            theorem1_gadget(triangle, "a", pendant="b")
