"""End-to-end checks of every quantitative claim in the paper's examples.

Each test cites the paper location it verifies. These are the anchor
tests of the reproduction: if one fails, the semantics have drifted from
the paper.
"""

import math

import pytest

from repro import (
    ProbabilisticGraph,
    SupportProbability,
    alpha_exact,
    global_truss_decomposition,
    is_global_truss_exact,
    local_truss_decomposition,
    truss_decomposition,
)
from repro.graphs.generators import running_example, windmill_graph


@pytest.fixture(scope="module")
def G():
    return running_example()


class TestSection1Intro:
    def test_edge_q1v1_two_triangle_probability(self, G):
        """Intro: Pr[(q1, v1) in two triangles] = 0.5 * (0.5*1) * (0.5*1)
        = 0.125 (within H1, where its apexes are v2 and v3)."""
        h1 = G.subgraph(["q1", "q2", "v1", "v2", "v3"])
        sp = SupportProbability.from_edge(h1, "q1", "v1")
        assert math.isclose(
            sp.tail(2) * h1.probability("q1", "v1"), 0.125
        )

    def test_maximal_4truss_is_q_v_subgraph(self, G):
        """Intro: the subgraph induced by {q1, q2, v1, v2, v3} is a
        (maximal) 4-truss; ignoring p1, the rest is a 3-truss."""
        tau = truss_decomposition(G)
        four = {e for e, t in tau.items() if t >= 4}
        nodes = {u for e in four for u in e}
        assert nodes == {"q1", "q2", "v1", "v2", "v3"}
        assert tau[("p1", "q1")] == 3
        assert tau[("p1", "v1")] == 3


class TestFigure2LocalTruss:
    def test_h1_is_the_local_4_0125_truss(self, G):
        """Figure 2(a): H1 (5 nodes, 9 edges) is a local (4, 0.125)-truss,
        and it is the unique maximal one."""
        result = local_truss_decomposition(G, 0.125)
        trusses = result.maximal_trusses(4)
        assert len(trusses) == 1
        h1 = trusses[0]
        assert set(h1.nodes()) == {"q1", "q2", "v1", "v2", "v3"}
        assert h1.number_of_edges() == 9


class TestExample2GlobalTrusses:
    def test_h2_h3_alpha_0125(self, G):
        """Example 2: H2 and H3 are global (4, 0.125)-trusses whose only
        supporting world is the all-edges world, probability 0.5^3 * 1^3."""
        for nodes in (["q1", "v1", "v2", "v3"], ["q2", "v1", "v2", "v3"]):
            h = G.subgraph(nodes)
            alpha = alpha_exact(h, 4)
            assert all(math.isclose(a, 0.125) for a in alpha.values())
            assert is_global_truss_exact(h, 4, 0.125)

    def test_h2_h3_are_the_only_maximal_global_trusses(self, G):
        """Example 2: H2 and H3 are maximal and no other global
        (4, gamma)-truss exists — verified with the exact-search GTD.
        gamma = 0.1 is used instead of 0.125 because Monte-Carlo
        estimates of an alpha exactly at gamma fall below it half the
        time; 0.1 < 0.125 keeps the same answer set with a 3-sigma
        margin (and H1's alpha, 0.5^6, stays far below)."""
        result = global_truss_decomposition(
            G, 0.1, method="gtd", seed=13, n_samples=3000
        )
        found = {frozenset(t.nodes()) for t in result.trusses[4]}
        assert found == {
            frozenset({"q1", "v1", "v2", "v3"}),
            frozenset({"q2", "v1", "v2", "v3"}),
        }

    def test_h1_is_global_at_its_own_gamma(self, G):
        """Example 2: H1 is a global (4, 0.5^6)-truss, its only qualifying
        world being the all-edges world of Figure 2(b)."""
        h1 = G.subgraph(["q1", "q2", "v1", "v2", "v3"])
        alpha = alpha_exact(h1, 4)
        assert all(math.isclose(a, 0.5 ** 6) for a in alpha.values())


class TestLemma1:
    @pytest.mark.parametrize("seed", range(4))
    def test_global_implies_local(self, seed):
        """Lemma 1: every global (k, gamma)-truss is a local one."""
        from tests.conftest import random_probabilistic_graph

        g = random_probabilistic_graph(9, 0.5, seed)
        for k in (3, 4):
            for gamma in (0.05, 0.2):
                try:
                    alpha = alpha_exact(g, k)
                except Exception:
                    continue
                from repro.graphs.components import is_connected

                if not g.number_of_edges() or not is_connected(g):
                    continue
                if all(a >= gamma for a in alpha.values()):
                    # g is a global (k, gamma)-truss: check local condition.
                    for u, v in g.edges():
                        sp = SupportProbability.from_edge(g, u, v)
                        assert (
                            sp.tail(k - 2) * g.probability(u, v)
                            >= gamma - 1e-9
                        )


class TestExample3NonMonotonicity:
    def test_supergraph_and_subgraph_both_fail(self, G):
        """Example 3: H'' ⊂ H2 ⊂ H' where H2 is a global (4, 0.125)-truss
        but neither H' (H2 plus a pendant q2 edge) nor H'' (H2 minus an
        edge) is — no monotonicity in either direction."""
        h2 = G.subgraph(["q1", "v1", "v2", "v3"])
        assert is_global_truss_exact(h2, 4, 0.125)

        # H': add q2 with a single edge; q2 can never be in a 4-truss world.
        h_prime = h2.copy()
        h_prime.add_edge("q2", "v1", G.probability("q2", "v1"))
        assert not is_global_truss_exact(h_prime, 4, 0.125)

        # H'': drop one edge of H2; a K4 minus an edge has no 4-truss world.
        h_dbl = h2.copy()
        h_dbl.remove_edge("q1", "v1")
        assert not is_global_truss_exact(h_dbl, 4, 0.125)


class TestLemma2Windmill:
    def test_blade_subsets_are_global_trusses(self):
        """Lemma 2 / Appendix: in the windmill with n triangles and
        gamma = p^(3 * ceil(n/2)), any union of ceil(n/2) blades is a
        maximal global (3, gamma)-truss — C(n, ceil(n/2)) of them."""
        n, p = 4, 0.5
        g = windmill_graph(n, p)
        gamma = p ** (3 * math.ceil(n / 2))

        # One specific union of 2 blades (plus the shared hub).
        blades = [["b0_0", "b0_1"], ["b1_0", "b1_1"]]
        nodes = {"hub"} | {x for blade in blades for x in blade}
        sub = g.subgraph(nodes)
        assert is_global_truss_exact(sub, 3, gamma)

        # Adding a third blade makes the required world too improbable.
        bigger = g.subgraph(nodes | {"b2_0", "b2_1"})
        assert not is_global_truss_exact(bigger, 3, gamma)

    def test_single_blade_not_maximal(self):
        """A single blade satisfies gamma but is not maximal: two blades
        also satisfy it, so a 1-blade answer must be extendable."""
        n, p = 4, 0.5
        g = windmill_graph(n, p)
        gamma = p ** (3 * math.ceil(n / 2))
        one = g.subgraph({"hub", "b0_0", "b0_1"})
        assert is_global_truss_exact(one, 3, gamma)
        two = g.subgraph({"hub", "b0_0", "b0_1", "b1_0", "b1_1"})
        assert is_global_truss_exact(two, 3, gamma)


class TestTheorem1Gadget:
    def test_alpha_of_2truss_equals_reliability(self):
        """Theorem 1's reduction: attaching a certain pendant edge (w, v)
        turns 2-truss alpha into network reliability."""
        base = ProbabilisticGraph(
            [("a", "b", 0.5), ("b", "c", 0.5), ("a", "c", 0.5)]
        )
        # Reliability of the triangle: all three, or exactly two edges.
        reliability = 0.5 ** 3 + 3 * (0.5 ** 3)

        gadget = base.copy()
        gadget.add_edge("w", "a", 1.0)
        alpha = alpha_exact(gadget, 2)
        assert math.isclose(alpha[("a", "w")], reliability)
