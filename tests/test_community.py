"""Unit tests for truss community search."""

import pytest

from repro import NodeNotFoundError, ParameterError, load_dataset
from repro.apps.community import (
    community_hierarchy,
    global_truss_communities,
    truss_community,
)
from repro.graphs.generators import planted_truss_graph, running_example


@pytest.fixture(scope="module")
def ppi():
    return load_dataset("fruitfly", seed=42)


class TestTrussCommunity:
    def test_query_in_community(self, paper_graph):
        community = truss_community(paper_graph, "v1", 0.125)
        assert community is not None
        assert community.has_node("v1")
        # v1 sits in the local (4, 0.125)-truss H1.
        assert set(community.nodes()) == {"q1", "q2", "v1", "v2", "v3"}

    def test_specific_k(self, paper_graph):
        community = truss_community(paper_graph, "p1", 0.125, k=3)
        assert community is not None
        assert community.has_node("p1")

    def test_k_too_high_returns_none(self, paper_graph):
        assert truss_community(paper_graph, "p1", 0.125, k=4) is None

    def test_unknown_node(self, paper_graph):
        with pytest.raises(NodeNotFoundError):
            truss_community(paper_graph, "zzz", 0.5)

    def test_invalid_k(self, paper_graph):
        with pytest.raises(ParameterError):
            truss_community(paper_graph, "v1", 0.5, k=1)

    def test_impossible_gamma(self, paper_graph):
        assert truss_community(paper_graph, "v1", 1.0, k=4) is None

    def test_planted_clique_is_its_members_community(self):
        g, clique = planted_truss_graph(25, 6, background_density=0.04,
                                        seed=9)
        community = truss_community(g, clique[0], 0.5)
        assert set(community.nodes()) == set(clique)


class TestCommunityHierarchy:
    def test_nested(self, paper_graph):
        hierarchy = community_hierarchy(paper_graph, "v1", 0.125)
        assert sorted(hierarchy) == [2, 3, 4]
        for k in (2, 3):
            upper = set(hierarchy[k + 1].nodes())
            lower = set(hierarchy[k].nodes())
            assert upper <= lower

    def test_every_level_contains_query(self, ppi):
        # Pick a node inside a high-confidence complex.
        from repro import local_truss_decomposition

        local = local_truss_decomposition(ppi, 0.5)
        top = local.maximal_trusses(local.k_max)[0]
        query = next(top.nodes())
        hierarchy = community_hierarchy(ppi, query, 0.5)
        assert hierarchy
        for community in hierarchy.values():
            assert community.has_node(query)

    def test_peripheral_node_small_hierarchy(self, paper_graph):
        hierarchy = community_hierarchy(paper_graph, "p1", 0.125)
        assert max(hierarchy) == 3  # p1 never reaches the k=4 core


class TestGlobalCommunities:
    def test_refinement_inside_local(self, paper_graph):
        local = truss_community(paper_graph, "v1", 0.1)
        communities = global_truss_communities(
            paper_graph, "v1", 0.1, seed=3
        )
        assert communities
        for c in communities:
            assert c.has_node("v1")
            assert set(c.nodes()) <= set(local.nodes())

    def test_certain_triangle_survives_gamma_one(self, paper_graph):
        # At gamma = 1 only the certain triangle {v1, v2, v3} remains a
        # local truss, and it is its own global community.
        communities = global_truss_communities(paper_graph, "v1", 1.0, seed=3)
        assert communities
        assert all(set(c.nodes()) == {"v1", "v2", "v3"} for c in communities)

    def test_no_local_community_no_global(self, paper_graph):
        # Damp the certain edges so nothing survives gamma = 1.
        damped = paper_graph.copy()
        for u, v in list(damped.edges()):
            damped.set_probability(u, v, min(0.99, damped.probability(u, v)))
        assert global_truss_communities(damped, "v1", 1.0, seed=3) == []
