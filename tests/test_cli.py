"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graphs.io import write_edge_list, write_json_graph
from repro.graphs.generators import running_example


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_local_requires_gamma(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["local", "fruitfly"])

    def test_defaults(self):
        args = build_parser().parse_args(["global", "fruitfly", "--gamma", "0.5"])
        assert args.epsilon == 0.1
        assert args.delta == 0.1
        assert args.method == "gbu"
        assert args.workers is None

    def test_workers_int_and_auto(self):
        args = build_parser().parse_args(
            ["local", "fruitfly", "--gamma", "0.5", "--workers", "4"])
        assert args.workers == 4
        args = build_parser().parse_args(
            ["global", "fruitfly", "--gamma", "0.5", "--workers", "auto"])
        assert args.workers == "auto"

    def test_workers_rejects_garbage(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["local", "fruitfly", "--gamma", "0.5", "--workers", "lots"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("fruitfly", "wise"):
            assert name in out

    def test_datasets_write(self, tmp_path, capsys):
        assert main(["datasets", "--write", str(tmp_path),
                     "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 8
        assert (tmp_path / "fruitfly.txt").exists()

    def test_stats_dataset(self, capsys):
        assert main(["stats", "fruitfly"]) == 0
        out = capsys.readouterr().out
        assert "nodes:" in out
        assert "density:" in out

    def test_stats_edge_list_file(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(running_example(), path)
        assert main(["stats", str(path)]) == 0
        assert "nodes: 6" in capsys.readouterr().out

    def test_stats_json_file(self, tmp_path, capsys):
        path = tmp_path / "g.json"
        write_json_graph(running_example(), path)
        assert main(["stats", str(path)]) == 0
        assert "nodes: 6" in capsys.readouterr().out

    def test_missing_file_exits(self):
        with pytest.raises(SystemExit, match="neither a dataset"):
            main(["stats", "/nonexistent/path.txt"])

    def test_local_on_file(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(running_example(), path)
        assert main(["local", str(path), "--gamma", "0.125"]) == 0
        out = capsys.readouterr().out
        assert "k_max=4" in out
        assert "k=4: 1 maximal local trusses" in out

    def test_local_verbose(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(running_example(), path)
        assert main(["local", str(path), "--gamma", "0.125", "--verbose"]) == 0
        assert "nodes=" in capsys.readouterr().out

    def test_nucleus_23_matches_local(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(running_example(), path)
        assert main(["nucleus", str(path), "--gamma", "0.125",
                     "--r", "2", "--s", "3"]) == 0
        out = capsys.readouterr().out
        # (2, 3)-nucleus == local truss: same k_max as test_local_on_file
        assert "(2,3)-nucleus gamma=0.125 cliques=11 k_max=4" in out
        assert "k=4: 9 r-cliques over 5 nodes / 9 edges" in out

    def test_nucleus_34_verbose(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(running_example(), path)
        assert main(["nucleus", str(path), "--gamma", "0.125",
                     "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "(3,4)-nucleus gamma=0.125 cliques=8 k_max=3" in out
        assert "('v1', 'v2', 'v3') nu=3" in out

    def test_nucleus_bad_family_exits_2(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(running_example(), path)
        assert main(["nucleus", str(path), "--gamma", "0.125",
                     "--r", "2", "--s", "4"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_global_on_file(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(running_example(), path)
        assert main([
            "--seed", "3", "global", str(path), "--gamma", "0.125",
            "--method", "gtd",
        ]) == 0
        out = capsys.readouterr().out
        assert "k_max=4" in out

    def test_parameter_error_exits_2(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(running_example(), path)
        assert main(["local", str(path), "--gamma", "2.0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_negative_workers_exits_2(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(running_example(), path)
        assert main(["local", str(path), "--gamma", "0.125",
                     "--workers", "-1"]) == 2
        assert "workers" in capsys.readouterr().err

    def test_local_with_one_worker(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(running_example(), path)
        assert main(["local", str(path), "--gamma", "0.125",
                     "--workers", "1"]) == 0
        assert "k_max=4" in capsys.readouterr().out

    def test_global_with_workers_matches_single_worker(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(running_example(), path)
        outputs = []
        for n in ("1", "2"):
            assert main(["--seed", "3", "global", str(path),
                         "--gamma", "0.125", "--workers", n]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_global_max_k(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(running_example(), path)
        assert main([
            "global", str(path), "--gamma", "0.125", "--max-k", "2",
        ]) == 0
        assert "k=3" not in capsys.readouterr().out

    def test_export_dot_stdout(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(running_example(), path)
        assert main(["export", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("graph")
        assert " -- " in out

    def test_export_hierarchy_to_file(self, tmp_path):
        import json

        src = tmp_path / "g.txt"
        write_edge_list(running_example(), src)
        dst = tmp_path / "h.json"
        assert main(["export", str(src), "--format", "hierarchy",
                     "--gamma", "0.125", "--output", str(dst)]) == 0
        doc = json.loads(dst.read_text())
        assert doc["k_max"] == 4

    def test_export_gexf_requires_output(self, tmp_path):
        src = tmp_path / "g.txt"
        write_edge_list(running_example(), src)
        with pytest.raises(SystemExit):
            main(["export", str(src), "--format", "gexf"])

    def test_export_gexf_to_file(self, tmp_path):
        src = tmp_path / "g.txt"
        write_edge_list(running_example(), src)
        dst = tmp_path / "g.gexf"
        assert main(["export", str(src), "--format", "gexf",
                     "--output", str(dst)]) == 0
        assert dst.exists() and dst.stat().st_size > 0

    def test_gamma(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(running_example(), path)
        assert main(["gamma", str(path), "--k", "4"]) == 0
        out = capsys.readouterr().out
        assert "distinct gamma thresholds" in out
        assert "0.125" in out  # H1's binding threshold appears

    def test_gamma_requires_k(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["gamma", "fruitfly"])

    def test_frontier(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(running_example(), path)
        assert main(["frontier", str(path)]) == 0
        out = capsys.readouterr().out
        assert "structural k_max = 4" in out

    def test_frontier_edge_curve(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(running_example(), path)
        assert main(["frontier", str(path), "--edge", "q1", "v1"]) == 0
        out = capsys.readouterr().out
        assert "k=4: gamma_k = 0.125" in out

    def test_frontier_unknown_edge(self, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(running_example(), path)
        with pytest.raises(SystemExit, match="not in the graph"):
            main(["frontier", str(path), "--edge", "q1", "ghost"])

    def test_modules(self, capsys):
        assert main(["modules", "fruitfly", "--gamma", "0.5",
                     "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "modules (gamma=0.5" in out
        assert "k=" in out and "score=" in out

    def test_modules_verbose_refined(self, capsys):
        assert main(["modules", "fruitfly", "--gamma", "0.5", "--refine",
                     "--top", "3", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "globally refined" in out

    def test_clique(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(running_example(), path)
        assert main(["clique", str(path), "--gamma", "0.1",
                     "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "maximum clique: 4 nodes" in out
        assert "probability >= 0.1" in out

    def test_community(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(running_example(), path)
        assert main(["community", str(path), "v1", "--gamma", "0.125"]) == 0
        out = capsys.readouterr().out
        assert "community hierarchy of 'v1'" in out
        assert "k=4" in out

    def test_community_unknown_node(self, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(running_example(), path)
        with pytest.raises(SystemExit, match="not in the graph"):
            main(["community", str(path), "ghost", "--gamma", "0.5"])

    def test_reliability(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(running_example(), path)
        assert main(["reliability", str(path), "--samples", "500"]) == 0
        out = capsys.readouterr().out
        assert "Monte-Carlo reliability" in out
        assert "exact reliability" in out  # 11 edges <= 22

    def test_team(self, capsys):
        assert main(["--seed", "11", "team", "--gamma", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "local truss:" in out
        assert "eta-core:" in out
