"""Unit tests for the naive expected-support truss semantics."""

import math

import pytest

from repro import ParameterError, ProbabilisticGraph, local_truss_decomposition
from repro.core.expected import (
    expected_support,
    expected_truss_decomposition,
    maximal_expected_trusses,
)
from repro.graphs.generators import complete_graph
from repro.truss.decomposition import truss_decomposition


class TestExpectedSupport:
    def test_triangle(self, triangle):
        # E[sup(a,b)] = p(a,c) * p(b,c) = 0.7 * 0.8.
        assert math.isclose(expected_support(triangle, "a", "b"), 0.56)

    def test_no_triangles(self):
        g = ProbabilisticGraph([(0, 1, 0.5)])
        assert expected_support(g, 0, 1) == 0.0

    def test_linear_in_triangles(self, k4):
        # Each K4 edge has two apexes contributing 0.81 each.
        assert math.isclose(expected_support(k4, "a", "b"), 2 * 0.81)


class TestExpectedDecomposition:
    def test_certain_graph_matches_deterministic(self):
        for n in (4, 5):
            g = complete_graph(n, 1.0)
            tau_e = expected_truss_decomposition(g)
            tau = truss_decomposition(g)
            for e, t in tau.items():
                assert math.isclose(tau_e[e], t)

    def test_uniform_clique_value(self):
        g = complete_graph(4, 0.9)
        tau_e = expected_truss_decomposition(g)
        # Max-min peel on K4: every edge ends at 2 + 2 * 0.81.
        for value in tau_e.values():
            assert math.isclose(value, 2 + 2 * 0.81)

    def test_empty(self, empty_graph):
        assert expected_truss_decomposition(empty_graph) == {}

    def test_maximal_trusses_threshold(self):
        g = complete_graph(4, 0.9)
        assert len(maximal_expected_trusses(g, 3)) == 1
        assert maximal_expected_trusses(g, 4) == []  # 3.62 < 4

    def test_invalid_k(self, triangle):
        with pytest.raises(ParameterError):
            maximal_expected_trusses(triangle, 1)


class TestSemanticsGap:
    def test_semantics_inversion(self):
        """The paper's implicit argument: expectation cannot tell solid
        structure from flimsy redundancy, probability mass can. Here the
        two semantics *invert* their ranking of a flimsy K5 versus a
        solid triangle."""
        flimsy = complete_graph(5, 0.71)   # E[sup] = 3 * 0.71^2 = 1.51
        solid = ProbabilisticGraph(
            [("a", "b", 0.95), ("b", "c", 0.95), ("a", "c", 0.95)]
        )                                  # E[sup] = 0.9

        tau_e_flimsy = expected_truss_decomposition(flimsy)
        tau_e_solid = expected_truss_decomposition(solid)
        # Expected semantics: the K5 clears truss order 3, the solid
        # triangle does not (0.9 < 1).
        assert min(tau_e_flimsy.values()) >= 3.0
        assert max(tau_e_solid.values()) < 3.0

        # Probability-mass semantics at gamma = 0.8: the solid triangle
        # IS a local 3-truss (Pr[sup >= 1] * p = 0.9 * 0.95 ~ 0.86)...
        solid_local = local_truss_decomposition(solid, 0.8)
        assert all(t == 3 for t in solid_local.trussness.values())
        # ... while the flimsy K5's edges are not (Pr[sup >= 1] * p =
        # (1 - (1 - 0.5)^3) * 0.71 ~ 0.62 < 0.8).
        flimsy_local = local_truss_decomposition(flimsy, 0.8)
        assert all(t <= 2 for t in flimsy_local.trussness.values())
