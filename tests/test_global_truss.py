"""Unit tests for global truss semantics: alpha exact and Monte-Carlo."""

import math

import pytest

from repro import (
    GlobalTrussOracle,
    ParameterError,
    ProbabilisticGraph,
    WorldSampleSet,
    alpha_exact,
    is_global_truss_exact,
)
from repro.core.global_truss import world_is_connected_ktruss
from repro.graphs.generators import running_example


class TestWorldClassification:
    def test_triangle_world_is_3truss(self):
        nodes = ["a", "b", "c"]
        edges = [("a", "b"), ("b", "c"), ("a", "c")]
        assert world_is_connected_ktruss(nodes, edges, 3)
        assert not world_is_connected_ktruss(nodes, edges, 4)

    def test_disconnected_world_fails(self):
        nodes = ["a", "b", "c", "d"]
        edges = [("a", "b"), ("c", "d")]
        assert not world_is_connected_ktruss(nodes, edges, 2)

    def test_missing_node_breaks_connectivity(self):
        # All nodes of the subgraph must be connected, even edge-free ones.
        nodes = ["a", "b", "c"]
        edges = [("a", "b")]
        assert not world_is_connected_ktruss(nodes, edges, 2)

    def test_spanning_path_is_2truss(self):
        nodes = ["a", "b", "c"]
        edges = [("a", "b"), ("b", "c")]
        assert world_is_connected_ktruss(nodes, edges, 2)
        assert not world_is_connected_ktruss(nodes, edges, 3)

    def test_empty_nodes(self):
        assert not world_is_connected_ktruss([], [], 2)

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            world_is_connected_ktruss(["a"], [], 1)


class TestAlphaExact:
    def test_single_edge(self):
        g = ProbabilisticGraph([("a", "b", 0.6)])
        alpha = alpha_exact(g, 2)
        assert math.isclose(alpha[("a", "b")], 0.6)

    def test_triangle_k3(self, triangle):
        alpha = alpha_exact(triangle, 3)
        # Only the full world is a 3-truss.
        full = 0.9 * 0.8 * 0.7
        for value in alpha.values():
            assert math.isclose(value, full)

    def test_triangle_k2_includes_partial_worlds(self, triangle):
        alpha = alpha_exact(triangle, 2)
        # alpha for edge (a,b) at k=2: worlds that span {a,b,c} connectedly
        # and contain (a,b): full world + the two 2-edge spanning worlds
        # containing (a, b).
        expected = (
            0.9 * 0.8 * 0.7      # all three
            + 0.9 * 0.8 * 0.3    # ab, bc
            + 0.9 * 0.2 * 0.7    # ab, ac
        )
        assert math.isclose(alpha[("a", "b")], expected)

    def test_paper_h2_h3(self):
        g = running_example()
        for nodes in (["q1", "v1", "v2", "v3"], ["q2", "v1", "v2", "v3"]):
            h = g.subgraph(nodes)
            alpha = alpha_exact(h, 4)
            for value in alpha.values():
                assert math.isclose(value, 0.125)

    def test_paper_h1_alpha(self):
        g = running_example()
        h1 = g.subgraph(["q1", "q2", "v1", "v2", "v3"])
        alpha = alpha_exact(h1, 4)
        # Only the all-edges world of H1 is a connected 4-truss: 0.5^6.
        for value in alpha.values():
            assert math.isclose(value, 0.5 ** 6)

    def test_too_many_edges_rejected(self):
        from repro.graphs.generators import complete_graph

        g = complete_graph(8, 0.5)  # 28 edges > limit
        with pytest.raises(ParameterError):
            alpha_exact(g, 3)

    def test_zero_probability_edge_contributes_nothing(self):
        g = ProbabilisticGraph(
            [("a", "b", 0.0), ("b", "c", 1.0), ("a", "c", 1.0)]
        )
        alpha = alpha_exact(g, 2)
        assert alpha[("a", "b")] == 0.0


class TestIsGlobalTrussExact:
    def test_paper_h2(self):
        g = running_example()
        h2 = g.subgraph(["q1", "v1", "v2", "v3"])
        assert is_global_truss_exact(h2, 4, 0.125)
        assert not is_global_truss_exact(h2, 4, 0.1251)

    def test_lemma1_global_implies_local(self):
        # Every global truss is a local truss (Lemma 1): verified on H2.
        from repro import SupportProbability

        g = running_example()
        h2 = g.subgraph(["q1", "v1", "v2", "v3"])
        assert is_global_truss_exact(h2, 4, 0.125)
        for u, v in h2.edges():
            sp = SupportProbability.from_edge(h2, u, v)
            assert sp.tail(2) * h2.probability(u, v) >= 0.125 - 1e-12

    def test_h1_fails_at_0125_but_passes_at_its_alpha(self):
        g = running_example()
        h1 = g.subgraph(["q1", "q2", "v1", "v2", "v3"])
        assert not is_global_truss_exact(h1, 4, 0.125)
        assert is_global_truss_exact(h1, 4, 0.5 ** 6)

    def test_disconnected_subgraph_is_never_global_truss(self):
        g = ProbabilisticGraph([("a", "b", 1.0), ("x", "y", 1.0)])
        assert not is_global_truss_exact(g, 2, 0.5)

    def test_empty_graph(self, empty_graph):
        assert not is_global_truss_exact(empty_graph, 2, 0.1)

    def test_invalid_gamma(self, triangle):
        with pytest.raises(ParameterError):
            is_global_truss_exact(triangle, 3, 2.0)


class TestGlobalTrussOracle:
    @pytest.fixture
    def oracle(self, paper_graph):
        samples = WorldSampleSet.from_graph(paper_graph, 3000, seed=7)
        return GlobalTrussOracle(samples)

    def test_estimate_close_to_exact(self, paper_graph, oracle):
        h2 = paper_graph.subgraph(["q1", "v1", "v2", "v3"])
        estimates = oracle.alpha_estimates(h2, 4)
        for value in estimates.values():
            assert abs(value - 0.125) < 0.03

    def test_estimates_close_on_h1(self, paper_graph, oracle):
        h1 = paper_graph.subgraph(["q1", "q2", "v1", "v2", "v3"])
        exact = 0.5 ** 6
        estimates = oracle.alpha_estimates(h1, 4)
        for value in estimates.values():
            assert abs(value - exact) < 0.02

    def test_satisfies(self, paper_graph, oracle):
        h2 = paper_graph.subgraph(["q1", "v1", "v2", "v3"])
        assert oracle.satisfies(h2, 4, 0.09)
        assert not oracle.satisfies(h2, 4, 0.5)

    def test_satisfies_empty_subgraph(self, paper_graph, oracle):
        empty = paper_graph.subgraph([])
        assert not oracle.satisfies(empty, 2, 0.1)

    def test_satisfies_invalid_gamma(self, paper_graph, oracle):
        h2 = paper_graph.subgraph(["q1", "v1", "v2", "v3"])
        with pytest.raises(ParameterError):
            oracle.satisfies(h2, 4, -0.5)

    def test_cache_used(self, paper_graph, oracle):
        h2 = paper_graph.subgraph(["q1", "v1", "v2", "v3"])
        oracle.clear_cache()
        first = oracle.alpha_estimates(h2, 4)
        assert oracle.cache_size() == 1
        second = oracle.alpha_estimates(h2, 4)
        assert first == second
        assert oracle.cache_size() == 1
        oracle.clear_cache()
        assert oracle.cache_size() == 0

    def test_n_samples_property(self, oracle):
        assert oracle.n_samples == 3000

    def test_single_edge_alpha_is_frequency(self, paper_graph, oracle):
        sub = paper_graph.edge_subgraph([("v1", "v2")])
        estimates = oracle.alpha_estimates(sub, 2)
        assert estimates[("v1", "v2")] == 1.0  # p = 1 edge
