"""Unit tests for visualization exports (DOT / JSON hierarchy / GEXF)."""

import io
import json

import pytest

from repro import local_truss_decomposition, truss_decomposition
from repro.graphs.export import (
    hierarchy_to_dict,
    hierarchy_to_json,
    to_dot,
    write_gexf,
)
from repro.graphs.generators import running_example


@pytest.fixture(scope="module")
def graph():
    return running_example()


@pytest.fixture(scope="module")
def local_result(graph):
    return local_truss_decomposition(graph, 0.125)


class TestDot:
    def test_structure(self, graph):
        dot = to_dot(graph)
        assert dot.startswith("graph")
        assert dot.rstrip().endswith("}")
        # Every node and edge appears.
        for node in graph.nodes():
            assert f'"{node}"' in dot
        assert dot.count(" -- ") == graph.number_of_edges()

    def test_probability_labels(self, graph):
        dot = to_dot(graph)
        assert 'label="0.50"' in dot
        assert 'label="1.00"' in dot

    def test_trussness_colours(self, graph):
        tau = truss_decomposition(graph)
        dot = to_dot(graph, trussness=tau)
        assert "color=" in dot
        assert 'tooltip="trussness 4"' in dot

    def test_quoting_weird_labels(self):
        from repro import ProbabilisticGraph

        g = ProbabilisticGraph([('he said "hi"', "b", 0.5)])
        dot = to_dot(g)
        assert '\\"hi\\"' in dot


class TestHierarchyExport:
    def test_dict_shape(self, local_result):
        doc = hierarchy_to_dict(local_result)
        assert doc["gamma"] == 0.125
        assert doc["k_max"] == 4
        assert len(doc["levels"]) == 3  # k = 2, 3, 4
        top = doc["levels"][-1]
        assert top["k"] == 4
        assert top["n_trusses"] == 1
        truss = top["trusses"][0]
        assert truss["n_nodes"] == 5
        assert truss["n_edges"] == 9
        assert 0.0 <= truss["density"] <= 1.0

    def test_json_round_trip(self, local_result):
        text = hierarchy_to_json(local_result)
        doc = json.loads(text)
        assert doc["k_max"] == 4

    def test_json_to_stream_and_file(self, local_result, tmp_path):
        buf = io.StringIO()
        hierarchy_to_json(local_result, buf)
        assert json.loads(buf.getvalue())["k_max"] == 4
        path = tmp_path / "hierarchy.json"
        hierarchy_to_json(local_result, path)
        assert json.loads(path.read_text())["k_max"] == 4


class TestGexf:
    def test_written_with_attributes(self, graph, tmp_path):
        import networkx as nx

        tau = truss_decomposition(graph)
        path = tmp_path / "graph.gexf"
        write_gexf(graph, path, trussness=tau)
        back = nx.read_gexf(path)
        assert back.number_of_edges() == graph.number_of_edges()
        attrs = {d.get("trussness") for _, _, d in back.edges(data=True)}
        assert 4 in attrs or "4" in attrs
