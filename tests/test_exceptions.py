"""Unit tests for the exception hierarchy contract."""

import pytest

from repro import (
    DatasetError,
    DecompositionError,
    EdgeNotFoundError,
    GraphError,
    InvalidProbabilityError,
    NodeNotFoundError,
    ParameterError,
    ProbabilisticGraph,
    ReproError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (GraphError, NodeNotFoundError, EdgeNotFoundError,
                    InvalidProbabilityError, ParameterError, DatasetError,
                    DecompositionError):
            assert issubclass(exc, ReproError)

    def test_lookup_errors_are_key_errors(self):
        assert issubclass(NodeNotFoundError, KeyError)
        assert issubclass(EdgeNotFoundError, KeyError)

    def test_value_errors(self):
        assert issubclass(InvalidProbabilityError, ValueError)
        assert issubclass(ParameterError, ValueError)

    def test_messages_readable(self):
        assert "node 'x'" in str(NodeNotFoundError("x"))
        assert "edge ('a', 'b')" in str(EdgeNotFoundError("a", "b"))


class TestCatchability:
    def test_catch_all_library_errors_with_base(self):
        g = ProbabilisticGraph()
        with pytest.raises(ReproError):
            g.remove_node("ghost")
        with pytest.raises(ReproError):
            g.add_edge("a", "b", 2.0)

    def test_catch_as_stdlib_types(self):
        g = ProbabilisticGraph()
        with pytest.raises(KeyError):
            g.probability("a", "b")
        with pytest.raises(ValueError):
            g.add_edge("a", "b", -1.0)

    def test_attributes_preserved(self):
        err = EdgeNotFoundError("u", "v")
        assert err.u == "u" and err.v == "v"
        err = NodeNotFoundError(42)
        assert err.node == 42
