"""Additional property-based tests for the extension modules."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    ProbabilisticGraph,
    edge_key,
    gamma_truss_decomposition,
    local_truss_decomposition,
    truss_decomposition,
)
from repro.core.expected import expected_truss_decomposition
from repro.core.local_iterative import local_truss_decomposition_iterative
from repro.truss.dynamic import DynamicLocalTruss, DynamicTruss
from repro.truss.hindex import h_index, truss_decomposition_hindex

probabilities = st.floats(min_value=0.0, max_value=1.0,
                          allow_nan=False, allow_infinity=False)


@st.composite
def probabilistic_graphs(draw, max_nodes=10):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()):
                edges.append((u, v, draw(probabilities)))
    g = ProbabilisticGraph(edges)
    for u in range(n):
        g.add_node(u)
    return g


class TestHIndexProperties:
    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=25))
    def test_h_index_definition(self, values):
        h = h_index(values)
        assert sum(1 for v in values if v >= h) >= h
        if h < len(values):
            assert sum(1 for v in values if v >= h + 1) < h + 1

    @settings(max_examples=30, deadline=None)
    @given(probabilistic_graphs())
    def test_hindex_equals_peeling(self, g):
        assert truss_decomposition_hindex(g) == truss_decomposition(g)


class TestIterativeEqualsPeeling:
    @settings(max_examples=25, deadline=None)
    @given(probabilistic_graphs(),
           st.floats(min_value=0.05, max_value=0.95))
    def test_fixpoint_equals_algorithm1(self, g, gamma):
        iterative = local_truss_decomposition_iterative(g, gamma)
        peeling = local_truss_decomposition(g, gamma).trussness
        assert iterative == peeling


class TestGammaDecompositionProperties:
    @settings(max_examples=20, deadline=None)
    @given(probabilistic_graphs(), st.integers(min_value=2, max_value=4))
    def test_gamma_trussness_bounds(self, g, k):
        result = gamma_truss_decomposition(g, k)
        for e, value in result.gamma_trussness.items():
            assert 0.0 <= value <= 1.0 + 1e-9
            # An edge's gamma-trussness never exceeds its probability
            # (sigma(k-2) <= 1 for every subgraph).
            assert value <= g.probability(*e) + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(probabilistic_graphs())
    def test_gamma_trussness_antitone_in_k(self, g):
        lower = gamma_truss_decomposition(g, 2).gamma_trussness
        higher = gamma_truss_decomposition(g, 3).gamma_trussness
        for e in lower:
            assert higher[e] <= lower[e] + 1e-9


class TestExpectedSemanticsProperties:
    @settings(max_examples=25, deadline=None)
    @given(probabilistic_graphs())
    def test_expected_trussness_bounded_by_structural(self, g):
        tau_e = expected_truss_decomposition(g)
        tau = truss_decomposition(g)
        for e, value in tau_e.items():
            # Expected support <= structural support pointwise, so the
            # max-min value cannot exceed the deterministic trussness.
            assert value <= tau[e] + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(probabilistic_graphs())
    def test_certain_graph_collapses_to_deterministic(self, g):
        for u, v in list(g.edges()):
            g.set_probability(u, v, 1.0)
        tau_e = expected_truss_decomposition(g)
        tau = truss_decomposition(g)
        for e in tau:
            assert math.isclose(tau_e[e], tau[e])


class TestDynamicMaintenanceProperties:
    @settings(max_examples=12, deadline=None)
    @given(probabilistic_graphs(max_nodes=8),
           st.lists(st.integers(min_value=0, max_value=10 ** 6),
                    min_size=1, max_size=12))
    def test_dynamic_truss_random_streams(self, g, stream):
        k = 3
        dt = DynamicTruss(g, k)
        shadow = g.copy()
        nodes = sorted(shadow.nodes())
        for token in stream:
            edges = sorted(shadow.edges())
            if edges and token % 2 == 0:
                u, v = edges[token % len(edges)]
                dt.remove_edge(u, v)
                shadow.remove_edge(u, v)
            else:
                u = nodes[token % len(nodes)]
                v = nodes[(token // 7) % len(nodes)]
                if u == v or shadow.has_edge(u, v):
                    continue
                dt.insert_edge(u, v, 1.0)
                shadow.add_edge(u, v, 1.0)
            from repro import k_truss_subgraph

            expected = {
                edge_key(a, b)
                for a, b in k_truss_subgraph(shadow, k).edges()
            }
            assert dt.truss_edges() == expected

    @settings(max_examples=10, deadline=None)
    @given(probabilistic_graphs(max_nodes=7),
           st.lists(st.tuples(
               st.integers(min_value=0, max_value=10 ** 6),
               st.floats(min_value=0.05, max_value=1.0),
           ), min_size=1, max_size=8))
    def test_dynamic_local_truss_random_streams(self, g, stream):
        k, gamma = 3, 0.3
        dlt = DynamicLocalTruss(g, k, gamma)
        shadow = g.copy()
        nodes = sorted(shadow.nodes())
        for token, p in stream:
            edges = sorted(shadow.edges())
            if edges and token % 2 == 0:
                u, v = edges[token % len(edges)]
                dlt.remove_edge(u, v)
                shadow.remove_edge(u, v)
            else:
                u = nodes[token % len(nodes)]
                v = nodes[(token // 5) % len(nodes)]
                if u == v:
                    continue
                dlt.insert_edge(u, v, p)
                shadow.add_edge(u, v, p)
            static = local_truss_decomposition(shadow, gamma)
            expected = {
                e for e, tau in static.trussness.items() if tau >= k
            }
            assert dlt.truss_edges() == expected
