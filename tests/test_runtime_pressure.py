"""Resource-pressure resilience: watchdog, spill directories, spill runs.

Covers the observation layer (:class:`ResourceWatchdog` probes and
alerts), the storage layer (:class:`SpillDirectory` ownership and
cleanup, :meth:`WorldSampleSet.spill_to` byte identity), and the policy
layer (``run_global(on_memory_pressure="spill")`` producing output
byte-identical to an unpressured run, for every worker count).
"""

from __future__ import annotations

import numpy as np
import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.graphs.sampling import WorldSampleSet, sample_possible_worlds
from repro.runtime import (
    FaultPlan,
    ResourceWatchdog,
    SpillDirectory,
    run_global,
    serialize_global_result,
)
from repro.runtime.progress import ProgressEvent, chain_hooks
from tests.strategies import dyadic_random_graph


def tick(phase="sample-batch", step=0):
    return ProgressEvent(phase, step=step)


class Recorder:
    def __init__(self):
        self.events = []

    def __call__(self, event):
        self.events.append(event)

    def phases(self):
        return [e.phase for e in self.events]


class TestResourceWatchdog:
    def test_probe_records_memory_and_disk(self, tmp_path):
        dog = ResourceWatchdog(probe_dir=tmp_path, interval=0,
                               memory_probe=lambda: 123)
        sample = dog.probe()
        assert sample["peak_rss_bytes"] == 123
        assert sample["free_bytes"] > 0
        assert dog.samples == [sample]
        assert dog.alerts == []

    def test_cpu_probe_is_optional(self):
        dog = ResourceWatchdog(memory_probe=lambda: 1)
        assert "worker_cpu_seconds" not in dog.probe()
        dog = ResourceWatchdog(memory_probe=lambda: 1,
                               cpu_probe=lambda: 2.5)
        assert dog.probe()["worker_cpu_seconds"] == 2.5

    def test_memory_alert_emits_resource_pressure_event(self):
        recorder = Recorder()
        dog = ResourceWatchdog(memory_limit_bytes=100, emit=recorder,
                               memory_probe=lambda: 150)
        dog(tick())
        assert len(dog.alerts) == 1
        alert = dog.alerts[0]
        assert alert["resource"] == "memory"
        assert alert["observed"] == 150 and alert["threshold"] == 100
        assert recorder.phases() == ["resource-pressure"]
        detail = recorder.events[0].detail
        assert detail["action"] == "warn" and detail["resource"] == "memory"

    def test_disk_alert_below_min_free(self, tmp_path):
        dog = ResourceWatchdog(probe_dir=tmp_path,
                               min_free_bytes=2**62,  # nobody has this much
                               memory_probe=lambda: 1)
        dog(tick())
        assert [a["resource"] for a in dog.alerts] == ["disk"]

    def test_no_alert_below_thresholds(self):
        dog = ResourceWatchdog(memory_limit_bytes=100,
                               memory_probe=lambda: 99)
        dog(tick())
        assert dog.samples and not dog.alerts

    def test_interval_rate_limits_probes(self):
        now = [0.0]
        dog = ResourceWatchdog(interval=5.0, memory_probe=lambda: 1,
                               clock=lambda: now[0])
        dog(tick(step=0))          # first event always probes
        now[0] = 2.0
        dog(tick(step=1))          # too soon
        assert len(dog.samples) == 1
        now[0] = 6.0
        dog(tick(step=2))          # interval elapsed
        assert len(dog.samples) == 2

    def test_ignores_its_own_pressure_phases(self):
        dog = ResourceWatchdog(interval=0, memory_probe=lambda: 1)
        dog(tick(phase="resource-pressure"))
        dog(tick(phase="checkpoint-degraded"))
        assert dog.samples == []

    def test_negative_interval_rejected(self):
        with pytest.raises(ParameterError, match="interval"):
            ResourceWatchdog(interval=-1)

    def test_status_line(self):
        dog = ResourceWatchdog(memory_probe=lambda: 2**20)
        assert dog.status() == "watchdog: no probes taken"
        dog.probe()
        status = dog.status()
        assert "probes=1" in status and "peak_rss=1.0MiB" in status


class TestSpillDirectory:
    def test_owned_tempdir_is_removed_on_cleanup(self):
        store = SpillDirectory()
        path = store.path
        assert path.is_dir() and "repro-spill-" in path.name
        store.allocate("x.bits").write_bytes(b"data")
        store.cleanup()
        assert not path.exists()

    def test_caller_directory_survives_cleanup(self, tmp_path):
        target = tmp_path / "spill"
        with SpillDirectory(target) as store:
            assert target.is_dir()
            spill_file = store.allocate("samples.bits")
            spill_file.write_bytes(b"data")
            keep = target / "unrelated.txt"
            keep.write_text("mine")
        assert not spill_file.exists()  # allocated file removed
        assert keep.exists() and target.is_dir()  # directory kept

    def test_free_bytes_positive(self, tmp_path):
        assert SpillDirectory(tmp_path).free_bytes() > 0


class TestWorldSampleSetSpill:
    def make_set(self, seed=0, n=40):
        graph = dyadic_random_graph(8, 0.5, seed=seed)
        return sample_possible_worlds(graph, n, seed=seed)

    def test_spill_preserves_bytes_and_answers(self, tmp_path):
        ram = self.make_set()
        spilled = self.make_set()
        edges = list(ram.edge_index)
        before = ram.packed_bits.copy()
        path = spilled.spill_to(tmp_path / "s.bits")
        assert path is not None and path.exists()
        assert spilled.is_spilled and spilled.spill_path == path
        assert not ram.is_spilled
        # The mmap view is byte-for-byte the RAM matrix...
        assert np.array_equal(spilled.packed_bits, before)
        assert isinstance(spilled.packed_bits, np.memmap)
        # ...and every projection built from it matches.
        assert np.array_equal(spilled.presence_matrix(edges),
                              ram.presence_matrix(edges))
        for u, v in edges:
            assert spilled.edge_frequency(u, v) == ram.edge_frequency(u, v)

    def test_spill_is_idempotent(self, tmp_path):
        samples = self.make_set()
        first = samples.spill_to(tmp_path / "a.bits")
        again = samples.spill_to(tmp_path / "b.bits")
        assert again == first
        assert not (tmp_path / "b.bits").exists()

    def test_edgeless_set_declines_to_spill(self, tmp_path):
        empty = WorldSampleSet(np.zeros((1, 0), dtype=bool), [])
        assert empty.spill_to(tmp_path / "e.bits") is None
        assert not empty.is_spilled

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(1, 70))
    def test_spill_equivalence_property(self, tmp_path_factory, seed, n):
        tmp = tmp_path_factory.mktemp("spill-prop")
        ram = self.make_set(seed=seed, n=n)
        spilled = self.make_set(seed=seed, n=n)
        spilled.spill_to(tmp / f"s{seed}-{n}.bits")
        edges = list(ram.edge_index)
        assert np.array_equal(spilled.packed_bits, ram.packed_bits)
        assert np.array_equal(spilled.presence_matrix(edges),
                              ram.presence_matrix(edges))


def pressured_run(graph, workers, spill_dir, recorder=None):
    """A run that hits a memory-budget breach on the first sample batch."""
    plan = FaultPlan().memory_pressure("sample-batch", 0)
    progress = plan if recorder is None else chain_hooks(recorder, plan)
    return run_global(graph, 0.3, method="gbu", seed=1, n_samples=60,
                      batch_size=20, workers=workers, spill_dir=spill_dir,
                      progress=progress)


class TestSpillPolicy:
    """``on_memory_pressure="spill"`` keeps the answer byte-identical."""

    @pytest.mark.parametrize("workers", [None, 1, 4])
    def test_spilled_run_matches_unpressured_baseline(
            self, tmp_path, workers):
        graph = dyadic_random_graph(10, 0.5, seed=3)
        baseline = run_global(graph, 0.3, method="gbu", seed=1,
                              n_samples=60, batch_size=20, workers=workers)
        recorder = Recorder()
        partial = pressured_run(graph, workers, tmp_path, recorder)
        assert partial.complete and not partial.degraded
        assert partial.n_samples_drawn == 60
        assert (serialize_global_result(partial.result)
                == serialize_global_result(baseline.result))
        pressure = [e for e in recorder.events
                    if e.phase == "resource-pressure"]
        assert len(pressure) == 1
        detail = pressure[0].detail
        assert detail["resource"] == "memory" and detail["action"] == "spill"
        assert detail["bytes"] > 0 and detail["free_bytes"] > 0
        assert str(tmp_path) in detail["path"]
        assert partial.detail["spilled_to"] == detail["path"]

    def test_spill_files_cleaned_up_after_run(self, tmp_path):
        graph = dyadic_random_graph(8, 0.5, seed=3)
        partial = pressured_run(graph, None, tmp_path)
        assert partial.complete
        assert list(tmp_path.iterdir()) == []  # spill file reclaimed

    def test_abort_policy_degrades_like_oom(self):
        graph = dyadic_random_graph(8, 0.5, seed=3)
        plan = FaultPlan().memory_pressure("sample-batch", 0)
        partial = run_global(graph, 0.3, method="gbu", seed=1,
                             n_samples=60, batch_size=20, progress=plan,
                             on_memory_pressure="abort")
        assert partial.degraded
        assert partial.n_samples_drawn < partial.n_samples_requested
        assert "memory" in partial.reason.lower()

    def test_unknown_policy_rejected(self):
        graph = dyadic_random_graph(6, 0.5, seed=3)
        with pytest.raises(ParameterError, match="on_memory_pressure"):
            run_global(graph, 0.3, method="gbu", seed=1, n_samples=20,
                       batch_size=20, on_memory_pressure="panic")

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 50))
    def test_spill_equivalence_across_workers_property(
            self, tmp_path_factory, seed):
        graph = dyadic_random_graph(8, 0.5, seed=seed)
        reference = serialize_global_result(
            run_global(graph, 0.3, method="gbu", seed=1, n_samples=40,
                       batch_size=20).result)
        for workers in (None, 1, 2):
            tmp = tmp_path_factory.mktemp(f"spill-w{workers or 0}")
            partial = run_global(
                graph, 0.3, method="gbu", seed=1, n_samples=40,
                batch_size=20, workers=workers, spill_dir=tmp,
                progress=FaultPlan().memory_pressure("sample-batch", 0))
            assert partial.complete and not partial.degraded
            assert serialize_global_result(partial.result) == reference
