"""Budgets, progress hooks, and interrupt guards (repro.runtime)."""

from __future__ import annotations

import pytest

from repro.exceptions import BudgetExceededError, ComputationInterrupted
from repro.graphs.sampling import hoeffding_epsilon, hoeffding_sample_size
from repro.runtime import Budget, InterruptGuard, chain_hooks
from repro.runtime.progress import ProgressEvent


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def event(phase="sample-batch", step=0, **detail) -> ProgressEvent:
    return ProgressEvent(phase, step=step, detail=detail)


class TestBudgetDeadline:
    def test_under_deadline_passes(self):
        clock = FakeClock()
        budget = Budget(deadline=10.0, clock=clock).start()
        clock.now = 9.9
        budget.check(event())  # no raise

    def test_over_deadline_raises(self):
        clock = FakeClock()
        budget = Budget(deadline=10.0, clock=clock).start()
        clock.now = 10.5
        with pytest.raises(BudgetExceededError) as exc_info:
            budget.check(event(step=3))
        err = exc_info.value
        assert err.resource == "deadline"
        assert err.limit == 10.0
        assert err.observed == pytest.approx(10.5)
        assert err.budget is budget
        assert "step 3" in str(err)

    def test_first_check_starts_clock_implicitly(self):
        clock = FakeClock()
        clock.now = 100.0  # time before the budget is first consulted
        budget = Budget(deadline=5.0, clock=clock)
        budget.check(event())  # starts at t=100, elapsed 0
        clock.now = 104.0
        budget.check(event())
        clock.now = 106.0
        with pytest.raises(BudgetExceededError):
            budget.check(event())

    def test_elapsed_and_remaining(self):
        clock = FakeClock()
        budget = Budget(deadline=10.0, clock=clock).start()
        clock.now = 4.0
        assert budget.elapsed() == pytest.approx(4.0)
        assert budget.remaining() == pytest.approx(6.0)
        clock.now = 42.0
        assert budget.remaining() == 0.0  # clamped
        assert Budget(clock=clock).remaining() is None  # unbounded


class TestBudgetSamples:
    def test_sample_ceiling(self):
        budget = Budget(max_samples=50)
        budget.check(event(samples_drawn=50))  # at the limit is fine
        with pytest.raises(BudgetExceededError) as exc_info:
            budget.check(event(samples_drawn=75))
        assert exc_info.value.resource == "samples"
        assert exc_info.value.observed == 75

    def test_events_without_sample_counts_are_ignored(self):
        budget = Budget(max_samples=1)
        budget.check(event(phase="global-level", step=2))  # no raise


class TestBudgetMemory:
    def test_memory_ceiling_with_injected_probe(self):
        probe_value = [100]
        budget = Budget(max_memory_bytes=1000,
                        memory_probe=lambda: probe_value[0])
        budget.check(event())
        probe_value[0] = 2000
        with pytest.raises(BudgetExceededError) as exc_info:
            budget.check(event())
        assert exc_info.value.resource == "memory"

    def test_unknown_memory_never_trips(self):
        budget = Budget(max_memory_bytes=1, memory_probe=lambda: None)
        budget.check(event())  # probe can't tell -> no raise


class TestChainHooks:
    def test_empty_and_single(self):
        assert chain_hooks() is None
        assert chain_hooks(None, None) is None
        hook = lambda e: None  # noqa: E731
        assert chain_hooks(None, hook, None) is hook

    def test_composition_order_and_abort(self):
        calls = []
        first = lambda e: calls.append("first")  # noqa: E731

        def second(e):
            calls.append("second")
            raise ComputationInterrupted("stop")

        third = lambda e: calls.append("third")  # noqa: E731
        chained = chain_hooks(first, second, third)
        with pytest.raises(ComputationInterrupted):
            chained(event())
        assert calls == ["first", "second"]  # third never ran


class TestInterruptGuard:
    def test_untriggered_guard_is_silent(self):
        guard = InterruptGuard(install=False)
        guard.check(event())
        assert not guard.triggered

    def test_triggered_guard_raises_at_next_boundary(self):
        guard = InterruptGuard(install=False)
        guard.trigger()
        with pytest.raises(ComputationInterrupted, match="sample-batch"):
            guard.check(event(step=2))

    def test_context_manager_restores_handler(self):
        import signal

        before = signal.getsignal(signal.SIGINT)
        before_term = signal.getsignal(signal.SIGTERM)
        with InterruptGuard() as guard:
            assert signal.getsignal(signal.SIGINT) == guard._handler
            assert signal.getsignal(signal.SIGTERM) == guard._handler
        assert signal.getsignal(signal.SIGINT) == before
        assert signal.getsignal(signal.SIGTERM) == before_term

    def test_handle_sigterm_false_leaves_sigterm_alone(self):
        import signal

        before_term = signal.getsignal(signal.SIGTERM)
        with InterruptGuard(handle_sigterm=False) as guard:
            assert signal.getsignal(signal.SIGINT) == guard._handler
            assert signal.getsignal(signal.SIGTERM) == before_term

    def test_sigint_carries_exit_code_130(self):
        guard = InterruptGuard(install=False)
        guard.trigger()
        with pytest.raises(ComputationInterrupted) as exc_info:
            guard.check(event())
        assert exc_info.value.exit_code == 130
        assert "SIGINT" in str(exc_info.value)

    def test_sigterm_carries_exit_code_143(self):
        import signal

        guard = InterruptGuard(install=False)
        guard.trigger(signal.SIGTERM)
        assert guard.signum == signal.SIGTERM
        with pytest.raises(ComputationInterrupted) as exc_info:
            guard.check(event(step=4))
        assert exc_info.value.exit_code == 143
        assert "SIGTERM" in str(exc_info.value)

    def test_first_signal_wins_the_exit_code(self):
        import signal

        guard = InterruptGuard(install=False)
        guard.trigger(signal.SIGTERM)
        guard.trigger(signal.SIGINT)  # late Ctrl-C does not relabel
        with pytest.raises(ComputationInterrupted) as exc_info:
            guard.check(event())
        assert exc_info.value.exit_code == 143

    def test_repeated_sigint_escalates_but_sigterm_does_not(self):
        import signal

        guard = InterruptGuard(install=False)
        guard._handler(signal.SIGTERM, None)
        # Orchestrators resend SIGTERM during their grace period; the
        # guard must absorb the repeats and protect the checkpoint.
        guard._handler(signal.SIGTERM, None)
        assert guard.triggered
        with pytest.raises(KeyboardInterrupt):
            guard._handler(signal.SIGINT, None)


class TestHoeffding:
    def test_epsilon_inverts_sample_size(self):
        n = hoeffding_sample_size(0.1, 0.1)
        # The epsilon that n samples buy is at least as good as requested
        # (n is rounded up), and n - 1 samples are not enough.
        assert hoeffding_epsilon(n, 0.1) <= 0.1
        assert hoeffding_epsilon(n - 1, 0.1) > hoeffding_epsilon(n, 0.1)

    def test_fewer_samples_widen_epsilon(self):
        assert hoeffding_epsilon(50, 0.1) > hoeffding_epsilon(150, 0.1)

    def test_validation(self):
        from repro.exceptions import ParameterError

        with pytest.raises(ParameterError):
            hoeffding_epsilon(0, 0.1)
        with pytest.raises(ParameterError):
            hoeffding_epsilon(100, 0.0)
