"""Reader hardening: truncated, corrupt, and malformed graph files."""

from __future__ import annotations

import gzip
import io

import pytest

from repro.exceptions import DatasetError, GraphError, GraphParseError
from repro.graphs.generators import gnp_graph
from repro.graphs.io import (
    read_edge_list,
    read_json_graph,
    write_edge_list,
    write_json_graph,
)


class TestGraphParseErrorType:
    def test_is_both_dataset_and_graph_error(self):
        # Callers catching either historical base class keep working.
        assert issubclass(GraphParseError, DatasetError)
        assert issubclass(GraphParseError, GraphError)

    def test_carries_location_attributes(self):
        err = GraphParseError("bad token", source="g.txt", lineno=7,
                              token="oops")
        assert err.source == "g.txt"
        assert err.lineno == 7
        assert err.token == "oops"
        assert str(err) == "g.txt: line 7: bad token"


class TestEdgeListErrors:
    def test_bad_probability_reports_token_and_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b 0.5\nc d zero\n")
        with pytest.raises(GraphParseError) as exc_info:
            read_edge_list(path)
        err = exc_info.value
        assert err.lineno == 2
        assert err.token == "zero"
        assert err.source == str(path)
        assert "line 2" in str(err)

    def test_wrong_field_count_reports_line(self):
        with pytest.raises(GraphParseError) as exc_info:
            read_edge_list(io.StringIO("a b 0.5\nc\n"))
        assert exc_info.value.lineno == 2
        assert "truncated" in str(exc_info.value)

    def test_out_of_range_probability(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b 1.5\n")
        with pytest.raises(GraphParseError) as exc_info:
            read_edge_list(path)
        assert exc_info.value.lineno == 1

    @pytest.mark.parametrize("token", ["nan", "NaN", "inf", "-inf",
                                       "Infinity", "1e999"])
    def test_non_finite_probability_rejected(self, token):
        # float() parses all of these without complaint ("1e999"
        # overflows to inf); none of them is a probability.
        with pytest.raises(GraphParseError) as exc_info:
            read_edge_list(io.StringIO(f"a b 0.5\nc d {token}\n"))
        err = exc_info.value
        assert err.lineno == 2
        assert err.token == token
        assert "not finite" in str(err)

    def test_unconvertible_node_label(self):
        with pytest.raises(GraphParseError, match="node label"):
            read_edge_list(io.StringIO("a b 0.5\n"), node_type=int)

    def test_non_utf8_bytes(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_bytes(b"a b 0.5\n\xff\xfe broken\n")
        with pytest.raises(GraphParseError, match="UTF-8"):
            read_edge_list(path)


class TestTruncationRoundTrip:
    """A file cut mid-record fails loudly with the exact location."""

    def make_file(self, tmp_path, name="g.txt"):
        graph = gnp_graph(12, 0.4, seed=7)
        path = tmp_path / name
        write_edge_list(graph, path)
        return graph, path

    def test_round_trip_intact(self, tmp_path):
        graph, path = self.make_file(tmp_path)
        assert read_edge_list(path, node_type=int) == graph

    def test_cut_mid_record_raises_with_line(self, tmp_path):
        graph, path = self.make_file(tmp_path)
        data = path.read_bytes()
        # Cut inside the final record, right after its first field —
        # what a crashed writer or an interrupted download leaves behind.
        last_line_start = data.rstrip(b"\n").rfind(b"\n") + 1
        first_space = data.index(b" ", last_line_start)
        path.write_bytes(data[:first_space])
        n_lines = data[:first_space].count(b"\n") + 1
        with pytest.raises(GraphParseError) as exc_info:
            read_edge_list(path)
        assert exc_info.value.lineno == n_lines
        assert exc_info.value.source == str(path)

    def test_truncated_gzip_raises(self, tmp_path):
        graph, _ = self.make_file(tmp_path)
        gz_path = tmp_path / "g.txt.gz"
        buffer = io.BytesIO()
        with gzip.open(buffer, "wt", encoding="utf-8") as handle:
            write_edge_list(graph, handle)
        payload = buffer.getvalue()
        gz_path.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(GraphParseError, match="truncated or unreadable"):
            read_edge_list(gz_path)

    def test_intact_gzip_round_trips(self, tmp_path):
        graph, _ = self.make_file(tmp_path)
        gz_path = tmp_path / "g.txt.gz"
        write_edge_list(graph, gz_path)
        assert read_edge_list(gz_path, node_type=int) == graph


class TestJsonErrors:
    def test_truncated_json_raises_with_source(self, tmp_path):
        graph = gnp_graph(8, 0.5, seed=1)
        path = tmp_path / "g.json"
        write_json_graph(graph, path)
        data = path.read_text()
        path.write_text(data[: len(data) // 2])
        with pytest.raises(GraphParseError, match="corrupt or truncated"):
            read_json_graph(path)

    def test_wrong_format_tag(self):
        with pytest.raises(GraphParseError, match="not a repro"):
            read_json_graph(io.StringIO('{"format": "something-else"}'))

    def test_malformed_edge_entry(self):
        doc = ('{"format": "repro-probabilistic-graph", "version": 1, '
               '"nodes": [], "edges": [["a", "b"]]}')
        with pytest.raises(GraphParseError, match="malformed"):
            read_json_graph(io.StringIO(doc))

    def test_out_of_range_probability_in_json(self):
        doc = ('{"format": "repro-probabilistic-graph", "version": 1, '
               '"nodes": [], "edges": [["a", "b", 3.0]]}')
        with pytest.raises(GraphParseError, match="malformed"):
            read_json_graph(io.StringIO(doc))

    @pytest.mark.parametrize("literal", ["NaN", "Infinity", "-Infinity"])
    def test_non_finite_json_literal_rejected(self, literal):
        # Python's json module accepts these non-standard literals by
        # default; the reader must not let them become probabilities.
        doc = ('{"format": "repro-probabilistic-graph", "version": 1, '
               f'"nodes": [], "edges": [["a", "b", {literal}]]}}')
        with pytest.raises(GraphParseError, match="non-finite"):
            read_json_graph(io.StringIO(doc))
