"""Parallel execution layer: bit-identical equivalence with serial runs.

The contract under test (see ``docs/performance.md``): every
``workers=`` value — ``None``, the inline ``workers=1``, and any pool
size — produces *identical* output, because the work is keyed by
deterministic per-seed RNG streams and canonical orderings rather
than by dispatch order. The serial path derives the same per-seed
streams as the pool, so there is one determinism family, not two.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.global_decomp import global_truss_decomposition
from repro.core.local import local_truss_decomposition
from repro.exceptions import (
    CheckpointError,
    ComputationInterrupted,
    ParameterError,
)
from repro.graphs.generators import gnp_graph, running_example
from repro.graphs.probabilistic import ProbabilisticGraph
from repro.graphs.sampling import WorldSampleSet
from repro.parallel import (
    ParallelExecutor,
    SharedWorldSamples,
    attach_samples,
    resolve_workers,
)
from repro.runtime import (
    FaultPlan,
    run_global,
    run_local,
    serialize_global_result,
)

GAMMA = 0.3
N_SAMPLES = 60
BATCH = 20


def mixed_graph() -> ProbabilisticGraph:
    """A triangle-rich graph mixing int and str node labels."""
    return ProbabilisticGraph([
        (1, 2, 0.9), (2, "a", 0.8), (1, "a", 0.85),
        ("a", "b", 0.9), (2, "b", 0.7), (1, "b", 0.6),
        ("b", "c", 0.9), ("c", 3, 0.8), ("b", 3, 0.75),
        (3, "d", 0.5), ("c", "d", 0.95), ("a", 3, 0.65),
        ("d", 1, 0.7), ("c", 1, 0.55),
    ])


def canon(result) -> str:
    return serialize_global_result(result)


class TestResolveWorkers:
    def test_explicit_counts_pass_through(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(4) == 4

    @pytest.mark.parametrize("value", [0, "auto"])
    def test_auto_uses_cpu_count(self, value):
        assert resolve_workers(value) == max(1, os.cpu_count() or 1)

    @pytest.mark.parametrize("value", [True, False, -1, 1.5, "lots", None])
    def test_invalid_values_raise(self, value):
        with pytest.raises(ParameterError):
            resolve_workers(value)


class TestSharedMemory:
    def test_publish_view_round_trip(self):
        samples = WorldSampleSet.from_graph(running_example(), 50, seed=3)
        with SharedWorldSamples.publish(samples) as shared:
            view = shared.view()
            assert view.n_samples == samples.n_samples
            assert np.array_equal(view.packed_bits, samples.packed_bits)
            assert list(view.edge_index) == list(samples.edge_index)

    def test_attach_is_zero_copy_equal(self):
        samples = WorldSampleSet.from_graph(running_example(), 50, seed=3)
        shared = SharedWorldSamples.publish(samples)
        try:
            attached, shm = attach_samples(shared.handle)
            try:
                for u, v in running_example().edges():
                    assert np.array_equal(
                        attached.edge_bits(u, v), samples.edge_bits(u, v)
                    )
            finally:
                # Worker-side detach: unmap only, never unlink.
                del attached
                shm.close()
        finally:
            shared.close()

    def test_attach_after_unlink_raises(self):
        samples = WorldSampleSet.from_graph(running_example(), 8, seed=1)
        shared = SharedWorldSamples.publish(samples)
        handle = shared.handle
        shared.close()
        with pytest.raises(ParameterError, match="no longer exists"):
            attach_samples(handle)

    def test_edgeless_graph_publishes(self):
        samples = WorldSampleSet.from_graph(ProbabilisticGraph(), 5, seed=1)
        with SharedWorldSamples.publish(samples) as shared:
            view = shared.view()
            assert view.n_samples == 5
            assert view.n_edges == 0

    def test_handle_pickles_small(self):
        import pickle

        samples = WorldSampleSet.from_graph(running_example(), 1000, seed=2)
        with SharedWorldSamples.publish(samples) as shared:
            blob = pickle.dumps(shared.handle)
            assert len(blob) < 4096  # metadata only, never the bits
            clone = pickle.loads(blob)
            assert clone.name == shared.handle.name
            assert clone.n_samples == 1000


class TestInlineExecutor:
    """workers=1 runs every task in-process — no pool, same results."""

    def test_pool_workers_is_one(self):
        graph = running_example()
        with ParallelExecutor(1, graph=graph) as ex:
            assert ex.pool_workers == 1

    def test_local_trussness_matches_legacy(self):
        graph = mixed_graph()
        legacy = local_truss_decomposition(graph, GAMMA)
        with ParallelExecutor(1, graph=graph) as ex:
            inline = local_truss_decomposition(graph, GAMMA, executor=ex)
        assert inline.trussness == legacy.trussness


class TestParallelEquivalence:
    """The headline property: identical output for workers in {1, 2, 4}."""

    @pytest.mark.parametrize("seed", [1, 2])
    def test_gbu_library_level(self, seed):
        graph = gnp_graph(13, 0.3, seed=seed)
        reference = None
        for workers in (1, 2, 4):
            result = global_truss_decomposition(
                graph, GAMMA, method="gbu", seed=seed,
                n_samples=N_SAMPLES, workers=workers,
            )
            if reference is None:
                reference = canon(result)
            else:
                assert canon(result) == reference, f"workers={workers}"

    def test_gtd_library_level(self):
        graph = running_example()
        results = [
            canon(global_truss_decomposition(
                graph, 0.125, method="gtd", seed=7,
                n_samples=N_SAMPLES, max_states=20000, workers=w,
            ))
            for w in (1, 2)
        ]
        assert results[0] == results[1]

    @pytest.mark.parametrize("make_graph", [running_example, mixed_graph])
    def test_harness_run_global(self, make_graph):
        graph = make_graph()
        results = [
            canon(run_global(
                graph, GAMMA, method="gbu", seed=4, n_samples=N_SAMPLES,
                batch_size=BATCH, workers=w,
            ).result)
            for w in (1, 2)
        ]
        assert results[0] == results[1]

    def test_harness_run_local(self):
        graph = mixed_graph()
        results = [
            run_local(graph, GAMMA, workers=w).result.trussness
            for w in (1, 2)
        ]
        assert results[0] == results[1]


class TestParallelResume:
    """Kill/resume composes with workers — even across worker counts."""

    def full_run(self, graph, **kwargs):
        return run_global(graph, GAMMA, method="gbu", seed=6,
                          n_samples=N_SAMPLES, batch_size=BATCH, **kwargs)

    def test_kill_resume_across_worker_counts(self, tmp_path):
        graph = running_example()
        baseline = canon(self.full_run(graph, workers=2).result)
        ck = tmp_path / "ck"
        plan = FaultPlan().sigint_at("gbu-seed", 0)
        with pytest.raises(ComputationInterrupted):
            self.full_run(graph, workers=2, checkpoint_dir=ck, progress=plan)
        resumed = self.full_run(graph, workers=4, checkpoint_dir=ck,
                                resume=True)
        assert resumed.complete
        assert canon(resumed.result) == baseline

    def test_checkpointed_parallel_requires_seed(self, tmp_path):
        with pytest.raises(CheckpointError, match="seed"):
            run_global(running_example(), GAMMA, method="gbu", seed=None,
                       n_samples=N_SAMPLES, workers=2,
                       checkpoint_dir=tmp_path / "ck")

    def test_rng_scheme_recorded_in_manifest(self, tmp_path):
        import json

        ck = tmp_path / "ck"
        self.full_run(running_example(), workers=1, checkpoint_dir=ck)
        wrapper = json.loads((ck / "manifest.json").read_text())
        assert wrapper["manifest"]["params"]["rng_scheme"] == "per-seed"
        # Worker COUNT is deliberately absent: resuming with a different
        # count must be allowed (and bit-identical).
        assert "workers" not in wrapper["manifest"]["params"]
