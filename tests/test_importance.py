"""Unit tests for the importance-sampling alpha estimator."""

import math

import numpy as np
import pytest

from repro import ParameterError, ProbabilisticGraph, alpha_exact
from repro.core.importance import alpha_importance
from repro.graphs.generators import complete_graph, running_example


class TestValidation:
    def test_invalid_parameters(self, triangle):
        with pytest.raises(ParameterError):
            alpha_importance(triangle, 1)
        with pytest.raises(ParameterError):
            alpha_importance(triangle, 3, n_samples=0)
        with pytest.raises(ParameterError):
            alpha_importance(triangle, 3, tilt_floor=1.0)

    def test_empty_subgraph(self, empty_graph):
        result = alpha_importance(empty_graph, 3, n_samples=10, seed=1)
        assert dict(result) == {}
        assert result.effective_sample_size == 0.0


class TestUnbiasedness:
    def test_matches_exact_on_h2(self):
        g = running_example()
        h2 = g.subgraph(["q1", "v1", "v2", "v3"])
        exact = alpha_exact(h2, 4)
        means = {e: [] for e in exact}
        for trial in range(20):
            estimate = alpha_importance(h2, 4, n_samples=400, seed=trial)
            for e in exact:
                means[e].append(estimate[e])
        for e, samples in means.items():
            assert abs(np.mean(samples) - exact[e]) < 0.01

    def test_certain_graph(self):
        g = complete_graph(4, 1.0)
        estimate = alpha_importance(g, 4, n_samples=50, seed=1)
        assert all(math.isclose(v, 1.0) for v in estimate.values())
        assert estimate.qualifying_fraction == 1.0

    def test_zero_probability_edge_gets_zero(self):
        g = ProbabilisticGraph(
            [("a", "b", 0.0), ("b", "c", 0.9), ("a", "c", 0.9)]
        )
        estimate = alpha_importance(g, 2, n_samples=500, seed=2)
        assert estimate[("a", "b")] == 0.0


class TestRareEventRegime:
    def test_plain_mc_blind_where_is_sees(self):
        """A 6-edge chain of p = 0.1: reliability 1e-6. Plain MC with
        N = 2000 virtually never sees a qualifying world; importance
        sampling estimates it within a factor of two."""
        p = 0.1
        chain = ProbabilisticGraph(
            [(i, i + 1, p) for i in range(6)]
        )
        true_alpha = p ** 6  # connected only when all edges exist

        # Plain MC via the standard oracle machinery.
        from repro import GlobalTrussOracle, WorldSampleSet

        samples = WorldSampleSet.from_graph(chain, 2000, seed=3)
        plain = GlobalTrussOracle(samples).alpha_estimates(chain, 2)
        assert max(plain.values()) == 0.0  # blind

        estimate = alpha_importance(chain, 2, n_samples=2000, seed=3,
                                    tilt_floor=0.9)
        for value in estimate.values():
            assert true_alpha / 2 <= value <= true_alpha * 2
        assert estimate.qualifying_fraction > 0.3

    def test_h1_small_alpha(self):
        """H1's alpha is 0.5^6 ~ 0.016; IS with few samples still lands
        within 30% on average."""
        g = running_example()
        h1 = g.subgraph(["q1", "q2", "v1", "v2", "v3"])
        exact = 0.5 ** 6
        values = []
        for trial in range(15):
            estimate = alpha_importance(h1, 4, n_samples=300,
                                        seed=100 + trial)
            values.append(min(estimate.values()))
        assert abs(np.mean(values) - exact) < exact * 0.3

    def test_diagnostics_sane(self):
        g = running_example()
        h2 = g.subgraph(["q1", "v1", "v2", "v3"])
        estimate = alpha_importance(h2, 4, n_samples=500, seed=9)
        assert 0.0 < estimate.qualifying_fraction <= 1.0
        assert 0.0 < estimate.effective_sample_size <= 500
        assert estimate.n_samples == 500
