"""Unit tests for the local (k, gamma)-truss decomposition (Algorithm 1)."""

import math

import pytest

from repro import (
    ParameterError,
    ProbabilisticGraph,
    SupportProbability,
    local_truss_decomposition,
    maximal_local_trusses,
    truss_decomposition,
)
from repro.graphs.generators import complete_graph, running_example
from tests.strategies import random_probabilistic_graph


class TestBasics:
    def test_invalid_gamma(self, triangle):
        with pytest.raises(ParameterError):
            local_truss_decomposition(triangle, 1.5)

    def test_invalid_method(self, triangle):
        with pytest.raises(ParameterError):
            local_truss_decomposition(triangle, 0.5, method="magic")

    def test_empty_graph(self, empty_graph):
        result = local_truss_decomposition(empty_graph, 0.5)
        assert result.trussness == {}
        assert result.k_max == 0

    def test_input_not_modified(self, paper_graph):
        before = paper_graph.copy()
        local_truss_decomposition(paper_graph, 0.5)
        assert paper_graph == before

    def test_every_edge_assigned(self, paper_graph):
        result = local_truss_decomposition(paper_graph, 0.3)
        assert set(result.trussness) == set(paper_graph.edges())

    def test_trussness_of_accessor(self, paper_graph):
        result = local_truss_decomposition(paper_graph, 0.125)
        assert result.trussness_of("v1", "q1") == result.trussness[("q1", "v1")]

    def test_truss_edges_invalid_k(self, paper_graph):
        result = local_truss_decomposition(paper_graph, 0.5)
        with pytest.raises(ParameterError):
            result.truss_edges(1)


class TestGammaLimits:
    def test_gamma_zero_on_certain_graph_matches_deterministic(self):
        # With all p = 1 the decomposition must equal the deterministic one
        # for any gamma <= 1.
        g = running_example()
        for u, v in list(g.edges()):
            g.set_probability(u, v, 1.0)
        det = truss_decomposition(g)
        for gamma in (0.0, 0.5, 1.0):
            result = local_truss_decomposition(g, gamma)
            assert result.trussness == det

    def test_gamma_above_edge_probability_kills_edge(self):
        g = ProbabilisticGraph([(0, 1, 0.4)])
        result = local_truss_decomposition(g, 0.5)
        assert result.trussness[(0, 1)] == 1
        assert result.k_max == 0

    def test_single_edge_above_gamma_is_2truss(self):
        g = ProbabilisticGraph([(0, 1, 0.8)])
        result = local_truss_decomposition(g, 0.5)
        assert result.trussness[(0, 1)] == 2
        assert result.k_max == 2


class TestPaperExample:
    def test_local_4_truss_is_h1(self, paper_graph):
        result = local_truss_decomposition(paper_graph, 0.125)
        trusses = result.maximal_trusses(4)
        assert len(trusses) == 1
        assert set(trusses[0].nodes()) == {"q1", "q2", "v1", "v2", "v3"}
        assert trusses[0].number_of_edges() == 9

    def test_h1_edges_satisfy_definition(self, paper_graph):
        # Re-verify Definition 2 directly on the output subgraph.
        result = local_truss_decomposition(paper_graph, 0.125)
        h1 = result.maximal_trusses(4)[0]
        for u, v in h1.edges():
            sp = SupportProbability.from_edge(h1, u, v)
            assert sp.tail(2) * h1.probability(u, v) >= 0.125 - 1e-12

    def test_k_max(self, paper_graph):
        assert local_truss_decomposition(paper_graph, 0.125).k_max == 4

    def test_stricter_gamma_shrinks(self, paper_graph):
        loose = local_truss_decomposition(paper_graph, 0.125)
        strict = local_truss_decomposition(paper_graph, 0.5)
        assert strict.k_max <= loose.k_max
        for e in paper_graph.edges():
            assert strict.trussness[e] <= loose.trussness[e]


class TestDefinitionInvariants:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("gamma", [0.1, 0.4, 0.8])
    def test_output_trusses_satisfy_definition(self, seed, gamma):
        g = random_probabilistic_graph(18, 0.3, seed)
        result = local_truss_decomposition(g, gamma)
        for k in range(2, result.k_max + 1):
            for truss in result.maximal_trusses(k):
                from repro import is_connected

                assert is_connected(truss)
                for u, v in truss.edges():
                    sp = SupportProbability.from_edge(truss, u, v)
                    sigma = sp.tail(k - 2) * truss.probability(u, v)
                    assert sigma >= gamma * (1 - 1e-9)

    @pytest.mark.parametrize("seed", range(6))
    def test_maximality(self, seed):
        # No removed edge could be added back: edges with trussness < k
        # adjacent to a k-truss must violate the support condition there.
        gamma = 0.3
        g = random_probabilistic_graph(16, 0.35, seed)
        result = local_truss_decomposition(g, gamma)
        k = result.k_max
        if k < 3:
            pytest.skip("graph too sparse for a meaningful check")
        truss_edges = set(result.truss_edges(k))
        # The union of level-k edges is the unique maximal stable set: by
        # Theorem 2 re-running the reduction on the full graph restricted
        # to >= k edges reproduces exactly that set.
        sub = g.edge_subgraph(truss_edges)
        sub_result = local_truss_decomposition(sub, gamma)
        assert set(sub_result.truss_edges(k)) == truss_edges

    def test_monotone_hierarchy(self, paper_graph):
        result = local_truss_decomposition(paper_graph, 0.125)
        hierarchy = result.hierarchy()
        for k in range(2, result.k_max):
            upper = {e for t in hierarchy[k + 1] for e in t.edges()}
            lower = {e for t in hierarchy[k] for e in t.edges()}
            assert upper <= lower

    @pytest.mark.parametrize("seed", range(4))
    def test_trusses_at_same_k_are_disjoint(self, seed):
        # Section 5.2: maximal local trusses for a given k never overlap.
        g = random_probabilistic_graph(20, 0.25, seed)
        result = local_truss_decomposition(g, 0.2)
        for k in range(2, result.k_max + 1):
            seen = set()
            for truss in result.maximal_trusses(k):
                edges = set(truss.edges())
                assert not (edges & seen)
                seen |= edges


class TestDpVsBaseline:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("gamma", [0.1, 0.5, 0.9])
    def test_methods_agree(self, seed, gamma):
        g = random_probabilistic_graph(15, 0.35, seed)
        dp = local_truss_decomposition(g, gamma, method="dp")
        baseline = local_truss_decomposition(g, gamma, method="baseline")
        assert dp.trussness == baseline.trussness

    def test_methods_agree_on_paper_graph(self, paper_graph):
        for gamma in (0.05, 0.125, 0.3, 0.7):
            dp = local_truss_decomposition(paper_graph, gamma, method="dp")
            base = local_truss_decomposition(
                paper_graph, gamma, method="baseline"
            )
            assert dp.trussness == base.trussness

    def test_methods_agree_on_dense_graph(self):
        g = complete_graph(8, 0.8)
        for gamma in (0.1, 0.4):
            dp = local_truss_decomposition(g, gamma, method="dp")
            base = local_truss_decomposition(g, gamma, method="baseline")
            assert dp.trussness == base.trussness


class TestConvenienceWrapper:
    def test_maximal_local_trusses(self, paper_graph):
        trusses = maximal_local_trusses(paper_graph, 4, 0.125)
        assert len(trusses) == 1
        assert set(trusses[0].nodes()) == {"q1", "q2", "v1", "v2", "v3"}
