"""Unit tests for the h-index-iteration truss decomposition."""

import pytest

from repro import ParameterError, ProbabilisticGraph, truss_decomposition
from repro.truss.hindex import h_index, truss_decomposition_hindex
from repro.graphs.generators import complete_graph, powerlaw_cluster_graph
from tests.strategies import random_probabilistic_graph


class TestHIndex:
    @pytest.mark.parametrize("values,expected", [
        ([], 0),
        ([0], 0),
        ([1], 1),
        ([5], 1),
        ([1, 1], 1),
        ([2, 2], 2),
        ([3, 3, 3], 3),
        ([5, 4, 3, 2, 1], 3),
        ([10, 10, 1], 2),
        ([0, 0, 0], 0),
    ])
    def test_known_values(self, values, expected):
        assert h_index(values) == expected

    def test_order_independent(self):
        assert h_index([1, 5, 2, 4, 3]) == h_index([5, 4, 3, 2, 1])

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            h_index([1, -1])


class TestHIndexDecomposition:
    def test_complete_graphs(self):
        for n in (3, 4, 5, 6):
            g = complete_graph(n)
            tau = truss_decomposition_hindex(g)
            assert all(t == n for t in tau.values())

    def test_empty_graph(self, empty_graph):
        assert truss_decomposition_hindex(empty_graph) == {}

    def test_paper_example(self, paper_graph):
        assert truss_decomposition_hindex(paper_graph) == \
            truss_decomposition(paper_graph)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_peeling_random(self, seed):
        g = random_probabilistic_graph(20, 0.3, seed)
        assert truss_decomposition_hindex(g) == truss_decomposition(g)

    def test_matches_peeling_clustered(self):
        g = powerlaw_cluster_graph(80, 4, 0.6, seed=5)
        assert truss_decomposition_hindex(g) == truss_decomposition(g)

    def test_bounded_rounds_is_upper_bound(self):
        # A truncated iteration yields valid upper bounds on trussness.
        g = powerlaw_cluster_graph(60, 4, 0.6, seed=9)
        exact = truss_decomposition(g)
        partial = truss_decomposition_hindex(g, max_rounds=1)
        for e, t in exact.items():
            assert partial[e] >= t
