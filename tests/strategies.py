"""Seeded random-graph builders and exact sample-set strategies.

The test suite's generative inputs live here so every module draws from
the same distributions instead of hand-rolling fixtures:

* :func:`random_probabilistic_graph` — the original seeded Erdős–Rényi
  helper (moved from ``conftest``; ``conftest`` re-exports it for the
  existing importers).
* :func:`dyadic_random_graph` — the same shape, but every probability
  is a *dyadic rational* (``k / 2**b``). Products and one-complements
  of dyadic floats are exact in binary floating point, so quantities
  like existence probabilities come out bit-identical no matter which
  order the factors are folded in — the property that lets equivalence
  tests compare the sequential-stream sampler (``workers=None``)
  against the per-seed family (``workers=N``) byte for byte.
* :func:`exhaustive_sample_set` — the *exact* possible-world
  distribution of a small dyadic graph, materialised as an ordinary
  :class:`~repro.graphs.sampling.WorldSampleSet` via mixed-radix
  enumeration. Every empirical frequency equals its true probability
  exactly, so Monte-Carlo-thresholded answers computed against it
  coincide with exact enumeration (``repro.core.exact_enum``).
* hypothesis strategies (``probabilities``, ``q_lists``,
  ``dyadic_probabilities``) for the property-based cross-checks.
"""

from __future__ import annotations

import numpy as np

from hypothesis import strategies as st

from repro import ProbabilisticGraph
from repro.graphs.sampling import WorldSampleSet

__all__ = [
    "DYADIC_PROBS",
    "dyadic_probabilities",
    "dyadic_random_graph",
    "exhaustive_sample_set",
    "planted_clique_graph",
    "planted_clique_graphs",
    "probabilities",
    "q_lists",
    "random_probabilistic_graph",
]

#: Probabilities expressible in at most two binary digits. All float
#: arithmetic the decompositions perform on these (products, ``1 - p``)
#: is exact, so nothing downstream depends on summation order.
DYADIC_PROBS = (0.25, 0.5, 0.75)

#: Dyadic rationals up to four binary digits — still exact, but with
#: enough spread to exercise near-0 and near-1 behaviour.
_DYADIC_PROBS_WIDE = (0.0625, 0.25, 0.5, 0.75, 0.9375)

probabilities = st.floats(min_value=0.0, max_value=1.0,
                          allow_nan=False, allow_infinity=False)
q_lists = st.lists(probabilities, min_size=0, max_size=12)
dyadic_probabilities = st.sampled_from(_DYADIC_PROBS_WIDE)


def random_probabilistic_graph(
    n: int, density: float, seed: int
) -> ProbabilisticGraph:
    """Deterministic small random graph helper used across test modules."""
    gen = np.random.default_rng(seed)
    g = ProbabilisticGraph()
    for u in range(n):
        g.add_node(u)
    for u in range(n):
        for v in range(u + 1, n):
            if gen.random() < density:
                g.add_edge(u, v, float(gen.uniform(0.05, 1.0)))
    return g


def dyadic_random_graph(
    n: int, density: float, seed: int,
    probs: tuple[float, ...] = DYADIC_PROBS,
) -> ProbabilisticGraph:
    """Seeded random graph whose probabilities are dyadic rationals."""
    gen = np.random.default_rng(seed)
    g = ProbabilisticGraph()
    for u in range(n):
        g.add_node(u)
    for u in range(n):
        for v in range(u + 1, n):
            if gen.random() < density:
                g.add_edge(u, v, float(probs[gen.integers(len(probs))]))
    return g


def planted_clique_graph(
    n_cliques: int, size: int, seed: int,
    probs: tuple[float, ...] = DYADIC_PROBS,
    extra_density: float = 0.15,
) -> ProbabilisticGraph:
    """Seeded graph with planted, partially-overlapping cliques.

    Erdős–Rényi graphs at test sizes are triangle-poor and 4-clique
    starved, which makes them useless for exercising (3, 4)-nucleus
    support counting. This builder plants ``n_cliques`` cliques of
    ``size`` nodes each (consecutive cliques share one node, so their
    s-cliques interlock), then sprinkles extra edges with density
    ``extra_density``. All probabilities are drawn from ``probs`` —
    dyadic by default, so support products are exact and results are
    order-independent bit for bit.
    """
    gen = np.random.default_rng(seed)
    g = ProbabilisticGraph()
    stride = max(1, size - 1)  # consecutive cliques share one node
    n = stride * n_cliques + 1
    for u in range(n):
        g.add_node(u)
    for c in range(n_cliques):
        members = range(c * stride, c * stride + size)
        for u in members:
            for v in members:
                if u < v:
                    g.add_edge(u, v, float(probs[gen.integers(len(probs))]))
    for u in range(n):
        for v in range(u + 1, n):
            if not g.has_edge(u, v) and gen.random() < extra_density:
                g.add_edge(u, v, float(probs[gen.integers(len(probs))]))
    return g


#: Hypothesis strategy over planted-clique graphs: 4-clique-rich, all
#: probabilities dyadic. Shrinks toward a single small clique.
planted_clique_graphs = st.builds(
    planted_clique_graph,
    n_cliques=st.integers(min_value=1, max_value=3),
    size=st.integers(min_value=4, max_value=5),
    seed=st.integers(min_value=0, max_value=10 ** 6),
)


def _dyadic_bits(p: float) -> tuple[int, int]:
    """Smallest ``(b, k)`` with ``p == k / 2**b``; ``b`` capped at 16."""
    for b in range(17):
        scaled = p * (1 << b)
        if scaled == int(scaled):
            return b, int(scaled)
    raise ValueError(
        f"probability {p!r} is not a dyadic rational with <= 16 bits; "
        "exhaustive_sample_set needs exactly representable edge "
        "probabilities"
    )


def exhaustive_sample_set(
    graph: ProbabilisticGraph, max_rows: int = 65536
) -> WorldSampleSet:
    """The exact world distribution of ``graph`` as a ``WorldSampleSet``.

    Every edge probability must be a dyadic rational ``k / 2**b``. Row
    ``r``'s presence bits come from the digits of ``r`` in the mixed
    radix ``(2**b_1, ..., 2**b_m)``: edge ``j`` is present exactly when
    its digit is below ``k_j``. Over all ``prod(2**b_j)`` rows each
    possible world then appears with *exactly* its true frequency, so
    every ``alpha_hat`` the Monte-Carlo oracle computes against this
    set equals the exact ``alpha`` — no sampling error, no threshold
    ties (for any non-dyadic ``gamma``).
    """
    edges: list[tuple] = []
    radices: list[int] = []
    thresholds: list[int] = []
    for u, v, p in graph.edges_with_probabilities():
        b, k = _dyadic_bits(p)
        edges.append((u, v))
        radices.append(1 << b)
        thresholds.append(k)
    total = 1
    for radix in radices:
        total *= radix
    if total > max_rows:
        raise ValueError(
            f"exhaustive enumeration needs {total} rows "
            f"(> max_rows={max_rows}); use a smaller graph or coarser "
            "probabilities"
        )
    rows = np.arange(total, dtype=np.int64)
    presence = np.zeros((total, len(edges)), dtype=bool)
    divisor = 1
    for j, (radix, threshold) in enumerate(zip(radices, thresholds)):
        presence[:, j] = (rows // divisor) % radix < threshold
        divisor *= radix
    return WorldSampleSet(presence, edges)
