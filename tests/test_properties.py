"""Property-based tests (hypothesis) for the core invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    ProbabilisticGraph,
    SupportProbability,
    local_truss_decomposition,
    support_pmf,
    support_pmf_bruteforce,
    support_tail,
    truss_decomposition,
)
from repro.core.pcore import EtaDegree, eta_core_decomposition
from repro.truss.kcore import core_decomposition

probabilities = st.floats(min_value=0.0, max_value=1.0,
                          allow_nan=False, allow_infinity=False)
q_lists = st.lists(probabilities, min_size=0, max_size=10)


@st.composite
def probabilistic_graphs(draw, max_nodes=12):
    """Random small probabilistic graphs with arbitrary probabilities."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()):
                edges.append((u, v, draw(probabilities)))
    g = ProbabilisticGraph(edges)
    for u in range(n):
        g.add_node(u)
    return g


class TestSupportPmfProperties:
    @given(q_lists)
    def test_pmf_is_distribution(self, qs):
        f = support_pmf(qs)
        assert len(f) == len(qs) + 1
        assert all(x >= -1e-12 for x in f)
        assert math.isclose(sum(f), 1.0, abs_tol=1e-9)

    @given(st.lists(probabilities, min_size=0, max_size=8))
    def test_dp_matches_bruteforce(self, qs):
        assert np.allclose(support_pmf(qs), support_pmf_bruteforce(qs),
                           atol=1e-9)

    @given(q_lists)
    def test_tail_monotone(self, qs):
        sigma = support_tail(support_pmf(qs))
        assert all(a >= b - 1e-9 for a, b in zip(sigma, sigma[1:]))
        assert math.isclose(sigma[0], 1.0)

    @given(q_lists, probabilities)
    def test_mean_matches_sum_of_qs(self, qs, _):
        f = support_pmf(qs)
        mean = sum(i * p for i, p in enumerate(f))
        assert math.isclose(mean, sum(qs), abs_tol=1e-8)

    @given(st.lists(st.floats(min_value=0.01, max_value=0.99), min_size=1,
                    max_size=10),
           st.data())
    def test_remove_triangle_inverts_convolution(self, qs, data):
        idx = data.draw(st.integers(min_value=0, max_value=len(qs) - 1))
        sp = SupportProbability(qs)
        sp.remove_triangle(qs[idx])
        remaining = qs[:idx] + qs[idx + 1:]
        assert np.allclose(sp.pmf, support_pmf(remaining), atol=1e-7)

    @given(q_lists, st.floats(min_value=0.001, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    def test_level_consistent_with_tails(self, qs, gamma, p_edge):
        sp = SupportProbability(qs)
        level = sp.level(gamma, p_edge)
        if level == 1:
            assert p_edge < gamma
        else:
            t = level - 2
            # The chosen level passes; level + 1 must fail.
            assert sp.tail(t) * p_edge >= gamma * (1 - 1e-6)
            if t + 1 <= sp.max_support:
                assert sp.tail(t + 1) * p_edge < gamma


class TestLocalDecompositionProperties:
    @settings(max_examples=30, deadline=None)
    @given(probabilistic_graphs(), st.floats(min_value=0.05, max_value=0.95))
    def test_dp_equals_baseline(self, g, gamma):
        dp = local_truss_decomposition(g, gamma, method="dp")
        baseline = local_truss_decomposition(g, gamma, method="baseline")
        assert dp.trussness == baseline.trussness

    @settings(max_examples=30, deadline=None)
    @given(probabilistic_graphs())
    def test_certain_graph_reduces_to_deterministic(self, g):
        for u, v in list(g.edges()):
            g.set_probability(u, v, 1.0)
        result = local_truss_decomposition(g, 0.7)
        assert result.trussness == truss_decomposition(g)

    @settings(max_examples=25, deadline=None)
    @given(probabilistic_graphs(), st.floats(min_value=0.05, max_value=0.9))
    def test_trussness_antitone_in_gamma(self, g, gamma):
        loose = local_truss_decomposition(g, gamma)
        strict = local_truss_decomposition(g, min(1.0, gamma + 0.1))
        for e in g.edges():
            assert strict.trussness[e] <= loose.trussness[e]

    @settings(max_examples=25, deadline=None)
    @given(probabilistic_graphs(), st.floats(min_value=0.05, max_value=0.95))
    def test_definition_holds_on_outputs(self, g, gamma):
        result = local_truss_decomposition(g, gamma)
        for k in range(2, result.k_max + 1):
            for truss in result.maximal_trusses(k):
                for u, v in truss.edges():
                    sp = SupportProbability.from_edge(truss, u, v)
                    assert (
                        sp.tail(k - 2) * truss.probability(u, v)
                        >= gamma * (1 - 1e-6)
                    )


class TestEtaCoreProperties:
    @given(q_lists, st.floats(min_value=0.01, max_value=1.0))
    def test_eta_degree_bounds(self, qs, eta):
        d = EtaDegree(qs)
        k = d.eta_degree(eta)
        assert 0 <= k <= len(qs)
        if k > 0:
            assert d.tail(k) >= eta * (1 - 1e-9)

    @settings(max_examples=25, deadline=None)
    @given(probabilistic_graphs())
    def test_certain_graph_matches_kcore(self, g):
        for u, v in list(g.edges()):
            g.set_probability(u, v, 1.0)
        assert eta_core_decomposition(g, 0.6) == core_decomposition(g)

    @settings(max_examples=20, deadline=None)
    @given(probabilistic_graphs(), st.floats(min_value=0.05, max_value=0.85))
    def test_core_numbers_antitone_in_eta(self, g, eta):
        loose = eta_core_decomposition(g, eta)
        strict = eta_core_decomposition(g, min(1.0, eta + 0.1))
        for u in g.nodes():
            assert strict[u] <= loose[u]


class TestDeterministicTrussProperties:
    @settings(max_examples=30, deadline=None)
    @given(probabilistic_graphs())
    def test_trussness_at_most_core_plus_one(self, g):
        # Known relation: tau(e) <= min(core(u), core(v)) + 1.
        tau = truss_decomposition(g)
        core = core_decomposition(g)
        for (u, v), t in tau.items():
            assert t <= min(core[u], core[v]) + 1

    @settings(max_examples=30, deadline=None)
    @given(probabilistic_graphs())
    def test_trussness_lower_bounded_by_two(self, g):
        tau = truss_decomposition(g)
        assert all(t >= 2 for t in tau.values())

    @settings(max_examples=20, deadline=None)
    @given(probabilistic_graphs())
    def test_ktruss_subgraph_stable(self, g):
        from repro import k_truss_subgraph

        tau = truss_decomposition(g)
        if not tau:
            return
        k = max(tau.values())
        sub = k_truss_subgraph(g, k)
        # Its own decomposition must keep every edge at level >= k.
        sub_tau = truss_decomposition(sub)
        assert all(t >= k for t in sub_tau.values())


class TestSamplingProperties:
    @settings(max_examples=15, deadline=None)
    @given(probabilistic_graphs(max_nodes=8), st.integers(0, 2 ** 31 - 1))
    def test_projection_consistency(self, g, seed):
        """Theorem 3's mechanics: projecting whole-graph samples onto a
        subgraph is the same as reading the subgraph's edge columns."""
        from repro import WorldSampleSet

        if g.number_of_edges() < 2:
            return
        samples = WorldSampleSet.from_graph(g, 32, seed=seed)
        edges = list(g.edges())[: max(1, g.number_of_edges() // 2)]
        matrix = samples.presence_matrix(edges)
        for j, (u, v) in enumerate(edges):
            assert np.array_equal(matrix[:, j], samples.edge_bits(u, v))
