"""reprolint: fixture corpus, reporters, CLI, and the live-tree gate.

Three layers of coverage:

1. every rule fires on its ``*_fires.py`` fixture and is silenced by
   the pragma in its ``*_suppressed.py`` twin (with the suppression
   recorded, not dropped);
2. the reporters and the CLI honour the exit-code protocol
   (0 clean / 1 findings / 2 usage) and the JSON schema;
3. the real tree stays clean — ``run_lint`` over ``src/repro``,
   ``benchmarks`` and ``examples`` is the same gate CI runs — and the
   progress-phase registry agrees with its documentation table.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

import repro.runtime.progress as progress_mod
from repro.analysis import (
    FAMILIES,
    JSON_SCHEMA_VERSION,
    RULE_IDS,
    RULES,
    render_json,
    render_text,
    run_lint,
)
from repro.cli import main
from repro.exceptions import ParameterError
from repro.runtime.progress import KNOWN_PHASES, ProgressEvent

REPO = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

#: rule id -> fixture that must make exactly that rule fire.
FIRES = {
    "DET001": "plain/det001_fires.py",
    "DET002": "repro/core/det002_fires.py",
    "DET003": "plain/det003_fires.py",
    "PAR001": "plain/par001_fires.py",
    "PAR002": "plain/par002_fires.py",
    "PAR003": "plain/par003_fires.py",
    "PAR004": "repro/core/par004_fires.py",
    "EVT001": "plain/evt001_fires.py",
    "EVT002": "plain/evt002_fires.py",
    "EXC001": "repro/exc001_fires.py",
    "EXC002": "plain/exc002_fires.py",
    "EXC003": "plain/exc003_fires.py",
    "CONC001": "plain/conc001_fires.py",
    "CONC002": "plain/conc002_fires.py",
    "CONC003": "plain/conc003_fires.py",
    "CONC004": "plain/conc004_fires.py",
    "SUP001": "plain/sup001_fires.py",
    "SUP002": "plain/sup002_fires.py",
}

#: rule id -> fixture where the same violation sits behind a pragma.
#: SUP001/SUP002 (and LNT001) are findings about the pragmas
#: themselves, so they cannot be suppressed and have no twin.
SUPPRESSED = {
    rule: path.replace("_fires", "_suppressed")
    for rule, path in FIRES.items()
    if rule not in ("SUP001", "SUP002")
}

#: fixtures that exercise the rule's *negative* space: idioms close to
#: a violation that must not fire.
CLEAN = [
    "plain/det003_clean.py",
    "plain/par001_clean.py",
    "plain/exc003_clean.py",
    "plain/conc001_clean.py",
    "plain/conc002_clean.py",
    "plain/conc003_clean.py",
    "plain/conc004_clean.py",
    # Resolves to the module repro.core.kernels, the whitelisted home
    # of np.unpackbits — PAR004 must stay quiet there.
    "repro/core/kernels.py",
]


def lint(*relpaths: str, select=None):
    return run_lint([str(FIXTURES / p) for p in relpaths], select=select)


# --------------------------------------------------------------------------
# corpus completeness


def test_every_rule_has_a_fires_fixture():
    assert set(FIRES) == set(RULE_IDS) - {"LNT001"}


def test_fixture_files_exist():
    for rel in [*FIRES.values(), *SUPPRESSED.values(), *CLEAN]:
        assert (FIXTURES / rel).is_file(), rel


def test_rule_catalogue_is_consistent():
    assert set(RULE_IDS) == set(RULES)
    for rule_id, rule in RULES.items():
        assert rule.family in FAMILIES
        assert rule_id.startswith(rule.family)
        assert rule.summary


# --------------------------------------------------------------------------
# every rule fires / suppresses


@pytest.mark.parametrize("rule", sorted(FIRES))
def test_rule_fires(rule):
    result = lint(FIRES[rule])
    counts = result.counts_by_rule()
    assert counts.get(rule, 0) >= 1, (
        f"{rule} did not fire on {FIRES[rule]}: {counts}")
    # The fixture is single-purpose: nothing *else* may fire, or the
    # corpus no longer demonstrates what it claims to.
    assert set(counts) == {rule}, counts
    for finding in result.findings:
        assert finding.path.endswith(FIRES[rule].rsplit("/", 1)[-1])
        assert finding.line >= 1


@pytest.mark.parametrize("rule", sorted(SUPPRESSED))
def test_rule_suppressed(rule):
    result = lint(SUPPRESSED[rule])
    assert result.clean, (
        f"{rule} pragma did not silence {SUPPRESSED[rule]}: "
        f"{[f.render() for f in result.findings]}")
    silenced = [f for f in result.suppressed if f.rule == rule]
    assert silenced, "suppression must be recorded, not dropped"
    for finding in silenced:
        assert finding.suppressed
        assert finding.suppression_reason


@pytest.mark.parametrize("rel", CLEAN)
def test_clean_fixture_is_clean(rel):
    result = lint(rel)
    assert result.clean, [f.render() for f in result.findings]
    assert not result.suppressed


def test_sup001_reports_the_stale_rule():
    result = lint(FIRES["SUP001"])
    [finding] = result.findings
    assert finding.rule == "SUP001"
    assert "DET003" in finding.message


def test_sup002_catches_every_malformed_shape():
    result = lint(FIRES["SUP002"])
    assert len(result.findings) == 3
    messages = " | ".join(f.message for f in result.findings)
    assert "unknown rule id" in messages
    assert "missing its justification" in messages
    assert "expected '# repro: allow" in messages


def test_lnt001_on_unparsable_file(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n    pass\n")
    result = run_lint([str(bad)])
    [finding] = result.findings
    assert finding.rule == "LNT001"


# --------------------------------------------------------------------------
# engine semantics


def test_select_restricts_rules():
    result = lint(FIRES["DET001"], FIRES["EXC002"], select=["DET001"])
    assert set(result.counts_by_rule()) == {"DET001"}


def test_select_rejects_unknown_rule():
    with pytest.raises(ParameterError, match="unknown rule id"):
        lint(FIRES["DET001"], select=["BOGUS99"])


def test_missing_path_is_a_usage_error():
    with pytest.raises(ParameterError, match="does not exist"):
        run_lint([str(FIXTURES / "no-such-dir")])


def test_findings_are_sorted_and_stable():
    result = lint("plain", "repro")
    keys = [(f.path, f.line, f.col, f.rule) for f in result.findings]
    assert keys == sorted(keys)
    again = lint("plain", "repro")
    assert [f.render() for f in again.findings] == [
        f.render() for f in result.findings]


# --------------------------------------------------------------------------
# reporters


def test_text_reporter_lines_are_clickable():
    result = lint(FIRES["DET001"])
    text = render_text(result)
    assert re.search(r"det001_fires\.py:\d+:\d+: DET001 ", text)
    assert "finding" in text


def test_text_reporter_verbose_lists_suppressions():
    result = lint(SUPPRESSED["EXC003"])
    text = render_text(result, verbose=True)
    assert "EXC003" in text
    assert "best-effort probe" in text


def test_json_reporter_schema():
    result = lint(FIRES["DET001"], SUPPRESSED["EXC003"])
    payload = json.loads(render_json(result))
    assert payload["schema_version"] == JSON_SCHEMA_VERSION == 1
    for key in ("tool", "paths", "files_scanned", "clean",
                "summary", "rules", "findings", "suppressed"):
        assert key in payload, key
    assert payload["clean"] is False
    assert payload["summary"]["active"] == len(result.findings)
    assert payload["summary"]["suppressed"] == len(result.suppressed)
    assert payload["summary"]["by_rule"]["DET001"] >= 1
    for entry in payload["findings"]:
        for key in ("rule", "path", "line", "col", "message"):
            assert key in entry, key
    assert any(e["rule"] == "EXC003" and e["suppression_reason"]
               for e in payload["suppressed"])
    # Every rule that appears is documented in the embedded catalogue.
    seen = {e["rule"] for e in payload["findings"] + payload["suppressed"]}
    assert seen <= set(payload["rules"])


# --------------------------------------------------------------------------
# CLI exit-code protocol


def test_cli_exit_0_on_clean_tree(capsys):
    code = main(["lint", str(FIXTURES / "plain" / "det003_clean.py")])
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_cli_exit_1_on_findings(capsys):
    code = main(["lint", str(FIXTURES / FIRES["DET001"])])
    assert code == 1
    assert "DET001" in capsys.readouterr().out


def test_cli_exit_2_on_usage_error(capsys):
    code = main(["lint", "--select", "NOPE999",
                 str(FIXTURES / FIRES["DET001"])])
    assert code == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_cli_json_format(capsys):
    code = main(["lint", "--format", "json",
                 str(FIXTURES / FIRES["EXC002"])])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["by_rule"] == {"EXC002": 1}


# --------------------------------------------------------------------------
# the live tree stays clean (same gate CI runs)


def test_self_lint_repo_tree_is_clean():
    paths = [str(REPO / "src" / "repro"), str(REPO / "benchmarks"),
             str(REPO / "examples")]
    result = run_lint([p for p in paths if Path(p).exists()])
    assert result.clean, "\n".join(f.render() for f in result.findings)
    # Suppressions in the live tree all carry their justification.
    for finding in result.suppressed:
        assert finding.suppression_reason


# --------------------------------------------------------------------------
# progress-phase registry (satellite: promoted vocabulary)


def _table_phases() -> set[str]:
    """Phase names from the docstring table in runtime/progress.py."""
    doc = progress_mod.__doc__
    lines = doc.splitlines()
    rules = [i for i, line in enumerate(lines)
             if re.fullmatch(r"=+\s+=+", line.strip())]
    assert len(rules) >= 2, "docstring table delimiters missing"
    table = lines[rules[0] + 1:rules[-1]]
    # Phase rows start at column 0; continuation lines are indented.
    return {m.group(1) for line in table
            if (m := re.match(r"``([a-z0-9-]+)``", line))}


def test_docstring_table_matches_registry():
    assert _table_phases() == set(KNOWN_PHASES)


def test_service_phases_are_registered():
    """The ``repro serve`` vocabulary is part of the one registry."""
    assert {
        "service-request", "service-response", "service-shed",
        "service-degraded", "service-build", "service-breaker",
        "service-drain",
    } <= set(KNOWN_PHASES)


def test_nucleus_phases_are_registered():
    """The nucleus decomposition vocabulary is part of the one registry."""
    assert {"nucleus-peel", "nucleus-init"} <= set(KNOWN_PHASES)


def test_unregistered_nucleus_phase_fires_evt001():
    """An invented ``nucleus-*`` literal at an emission site is a lint
    error (and the pragma twin records its justification)."""
    result = lint("plain/evt001_nucleus_fires.py")
    assert set(result.counts_by_rule()) == {"EVT001"}
    twin = lint("plain/evt001_nucleus_suppressed.py")
    assert twin.clean
    assert any(f.rule == "EVT001" for f in twin.suppressed)


def test_unregistered_service_phase_fires_evt001():
    """An invented ``service-*`` literal at an emission site is a lint
    error (and the pragma twin records its justification)."""
    result = lint("plain/evt001_service_fires.py")
    assert set(result.counts_by_rule()) == {"EVT001"}
    twin = lint("plain/evt001_service_suppressed.py")
    assert twin.clean
    assert any(f.rule == "EVT001" for f in twin.suppressed)


def test_debug_validation_rejects_unknown_phase(monkeypatch):
    monkeypatch.setattr(progress_mod, "_VALIDATE_PHASES", True)
    with pytest.raises(ParameterError, match="unknown progress phase"):
        ProgressEvent("warp-core-align", step=0)
    ProgressEvent("sample-batch", step=0)  # registered: fine


def test_validation_off_by_default(monkeypatch):
    monkeypatch.setattr(progress_mod, "_VALIDATE_PHASES", False)
    ProgressEvent("forward-compatible-phase", step=0)


def test_repro_debug_env_enables_validation():
    env = dict(os.environ, REPRO_DEBUG="1",
               PYTHONPATH=str(REPO / "src"))
    probe = ("import repro.runtime.progress as p; "
             "p.ProgressEvent('bogus-phase', step=0)")
    proc = subprocess.run([sys.executable, "-c", probe], env=env,
                          capture_output=True, text=True, cwd=str(REPO))
    assert proc.returncode != 0
    assert "unknown progress phase" in proc.stderr
