"""Equivalence battery for intra-component frontier-sharded GTD.

The contract under test (see ``docs/performance.md``): with an
executor, the exact top-down search peels each component in
round-synchronous frontier shards — and serialises to *the same bytes*
as the serial DFS for every worker count, every shard boundary, every
repetition, and straight through worker death and mid-peel
kill/resume. Three structurally different families exercise it:

* the Lemma 2 windmill (exponentially many maximal answers, heavy
  answer dedup across shards),
* a planted high-probability truss in sparse background (one giant
  component, deep peel — the case inter-component parallelism cannot
  touch),
* a Holme–Kim power-law cluster graph (skewed degrees, many
  structural-pruning splits).

All probabilities are dyadic so no float product depends on evaluation
order anywhere in the pipeline.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.global_decomp import (
    _canonical_edge_list,
    _frontier_shards,
    global_truss_decomposition,
)
from repro.exceptions import CheckpointError, ComputationInterrupted
from repro.graphs.generators import (
    planted_truss_graph,
    powerlaw_cluster_graph,
    windmill_graph,
)
from repro.runtime import FaultPlan, run_global, serialize_global_result
from repro.runtime.checkpoint import CheckpointStore

N_SAMPLES = 64
BATCH = 32
MAX_STATES = 60_000


def _windmill():
    return windmill_graph(4, 0.5), 0.05


def _planted():
    graph, _ = planted_truss_graph(
        10, 5, background_density=0.25, clique_probability=0.9375,
        background_probability=0.25, seed=3,
    )
    return graph, 0.4


def _powerlaw():
    return powerlaw_cluster_graph(14, 2, 0.6, seed=5, probability=0.75), 0.3


FAMILIES = [("windmill", _windmill), ("planted", _planted),
            ("powerlaw", _powerlaw)]


def gtd_bytes(graph, gamma, workers, **kwargs):
    return serialize_global_result(global_truss_decomposition(
        graph, gamma, method="gtd", seed=9, n_samples=N_SAMPLES,
        max_states=MAX_STATES, workers=workers, **kwargs,
    ))


class TestWorkerCountEquivalence:
    @pytest.mark.parametrize("name,make", FAMILIES, ids=[f[0] for f in FAMILIES])
    def test_bit_identical_across_worker_counts(self, name, make):
        graph, gamma = make()
        reference = gtd_bytes(graph, gamma, None)
        for workers in (1, 2):
            assert gtd_bytes(graph, gamma, workers) == reference, (
                f"{name}: workers={workers} diverged from serial"
            )

    @pytest.mark.slow
    @pytest.mark.parametrize("name,make", FAMILIES, ids=[f[0] for f in FAMILIES])
    def test_bit_identical_at_four_workers_and_repeated(self, name, make):
        graph, gamma = make()
        reference = gtd_bytes(graph, gamma, None)
        assert gtd_bytes(graph, gamma, 4) == reference
        # Repetition: nothing hidden (hash seeds, pool scheduling,
        # shard completion order) leaks into the bytes.
        assert gtd_bytes(graph, gamma, 2) == gtd_bytes(graph, gamma, 2)
        assert gtd_bytes(graph, gamma, None) == reference


class TestFrontierSharding:
    """Unit properties of the canonical shard split."""

    @given(st.integers(min_value=0, max_value=200),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=80, deadline=None)
    def test_shards_partition_in_order(self, n, workers):
        frontier = list(range(n))
        shards = _frontier_shards(frontier, workers)
        assert [x for shard in shards for x in shard] == frontier
        assert all(len(shard) > 0 for shard in shards)
        assert len(shards) <= max(1, workers) * 2

    def test_empty_frontier_yields_no_shards(self):
        assert _frontier_shards([], 4) == []

    def test_canonical_edge_list_is_sorted(self):
        graph, _ = _planted()
        edges = _canonical_edge_list(graph)
        assert edges == sorted(edges, key=lambda e: (str(e[0]), str(e[1])))


class TestFrontierCheckpoint:
    """Round-trip and corruption behaviour of the mid-peel snapshot."""

    DETAIL = {
        "k": 3, "comp_index": 1, "round": 2,
        "found": [[(0, 1), (1, 2), (0, 2)]],
        "frontier": [[(0, 1), (0, 3), (1, 3)], [(2, 3), (2, 4), (3, 4)]],
        "visited": [[(0, 1), (1, 2), (0, 2)], [(0, 1), (0, 3), (1, 3)]],
    }

    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.load_frontier() is None
        store.save_frontier(self.DETAIL)
        assert store.load_frontier() == self.DETAIL

    def test_clear_frontier(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.clear_frontier()  # no-op without a snapshot
        store.save_frontier(self.DETAIL)
        store.clear_frontier()
        assert store.load_frontier() is None

    def test_corruption_is_detected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save_frontier(self.DETAIL)
        body = store.frontier_path.read_bytes()
        store.frontier_path.write_bytes(body.replace(b'"k": 3', b'"k": 4'))
        with pytest.raises(CheckpointError, match="integrity|corrupt"):
            store.load_frontier()

    def test_truncation_is_detected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save_frontier(self.DETAIL)
        store.frontier_path.write_bytes(
            store.frontier_path.read_bytes()[:20]
        )
        with pytest.raises(CheckpointError):
            store.load_frontier()


@pytest.mark.crash
class TestFrontierFaults:
    """Worker death, quarantine, and mid-peel kill/resume."""

    def full_run(self, graph, gamma, **kwargs):
        return run_global(
            graph, gamma, method="gtd", seed=9, n_samples=N_SAMPLES,
            batch_size=BATCH, max_states=MAX_STATES, **kwargs,
        )

    def test_worker_death_mid_round_is_byte_identical(self):
        graph, gamma = _planted()
        undisturbed = self.full_run(graph, gamma, workers=2)
        assert undisturbed.complete and not undisturbed.degraded
        plan = FaultPlan().kill_worker(after_tasks=1)
        disturbed = self.full_run(graph, gamma, workers=2, progress=plan)
        assert disturbed.complete and not disturbed.degraded
        assert (serialize_global_result(disturbed.result)
                == serialize_global_result(undisturbed.result))

    def test_dead_frontier_shard_degrades_component_to_gbu(self):
        graph, gamma = _planted()
        plan = FaultPlan().hang_task("gtd-frontier", payload_index=0,
                                     times=10)
        partial = self.full_run(
            graph, gamma, workers=2, task_timeout=2.0, max_task_retries=1,
            progress=plan,
        )
        assert partial.complete
        assert partial.degraded
        quarantined = partial.detail["quarantined"]
        assert quarantined[0]["task"] == "gtd-frontier"
        assert quarantined[0]["fallback"] == "gbu"

    @pytest.mark.parametrize("resume_workers", [2, 4])
    def test_kill_resume_lands_on_round_boundary(self, tmp_path,
                                                 resume_workers):
        graph, gamma = _planted()
        baseline = serialize_global_result(
            self.full_run(graph, gamma, workers=2).result
        )
        ck = tmp_path / "ck"
        plan = FaultPlan().sigint_at("gtd-frontier", 0)
        with pytest.raises(ComputationInterrupted):
            self.full_run(graph, gamma, workers=2, checkpoint_dir=ck,
                          progress=plan)
        assert plan.fired == [("gtd-frontier", 0)]
        # The interrupt landed after the round's snapshot was written.
        snapshot = CheckpointStore(ck).load_frontier()
        assert snapshot is not None and snapshot["round"] >= 1
        resumed = self.full_run(graph, gamma, workers=resume_workers,
                                checkpoint_dir=ck, resume=True)
        assert resumed.complete
        assert serialize_global_result(resumed.result) == baseline

    def test_finished_level_clears_frontier_snapshot(self, tmp_path):
        graph, gamma = _planted()
        ck = tmp_path / "ck"
        partial = self.full_run(graph, gamma, workers=2, checkpoint_dir=ck)
        assert partial.complete
        assert CheckpointStore(ck).load_frontier() is None
