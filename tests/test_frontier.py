"""Unit tests for the complete (k, gamma) truss frontier."""

import math

import pytest

from repro import ParameterError, local_truss_decomposition
from repro.core.frontier import truss_frontier
from repro.graphs.generators import complete_graph, running_example
from tests.conftest import random_probabilistic_graph


@pytest.fixture(scope="module")
def paper_frontier():
    return truss_frontier(running_example())


class TestFrontierShape:
    def test_k_max_matches_structure(self, paper_frontier):
        assert paper_frontier.k_max == 4

    def test_rows_non_increasing(self, paper_frontier):
        for row in paper_frontier.frontier.values():
            assert all(a >= b - 1e-12 for a, b in zip(row, row[1:]))

    def test_row_lengths(self, paper_frontier):
        for row in paper_frontier.frontier.values():
            assert len(row) == paper_frontier.k_max - 1

    def test_empty_graph(self, empty_graph):
        frontier = truss_frontier(empty_graph)
        assert frontier.k_max == 0
        assert frontier.frontier == {}


class TestKnownValues:
    def test_paper_boundary_values(self, paper_frontier):
        # (q1, v1) at k = 4: the binding H1 threshold, exactly 0.125.
        assert math.isclose(paper_frontier.gamma_at("q1", "v1", 4), 0.125)
        # p1's edges never reach k = 4.
        assert paper_frontier.gamma_at("p1", "q1", 4) == 0.0

    def test_gamma_beyond_feasible_is_zero(self, paper_frontier):
        assert paper_frontier.gamma_at("v1", "v2", 99) == 0.0

    def test_trussness_at_matches_algorithm1(self, paper_frontier):
        g = running_example()
        for gamma in (0.05, 0.125, 0.2, 0.5, 0.9):
            local = local_truss_decomposition(g, gamma)
            for e, tau in local.trussness.items():
                assert paper_frontier.trussness_at(*e, gamma) == tau

    def test_maximal_trusses_match_algorithm1(self, paper_frontier):
        g = running_example()
        for gamma, k in ((0.125, 4), (0.2, 3)):
            via_frontier = {
                frozenset(t.edges())
                for t in paper_frontier.maximal_trusses(k, gamma)
            }
            local = local_truss_decomposition(g, gamma)
            via_local = {
                frozenset(t.edges()) for t in local.maximal_trusses(k)
            }
            assert via_frontier == via_local

    def test_edge_profile(self, paper_frontier):
        profile = paper_frontier.edge_profile("q1", "v1")
        ks = [k for k, _ in profile]
        assert ks == [2, 3, 4]
        gammas = [g for _, g in profile]
        assert gammas == sorted(gammas, reverse=True)

    def test_uniform_clique(self):
        frontier = truss_frontier(complete_graph(4, 0.9))
        # k = 2 frontier is p(e); k = 4 is p * Pr[both triangles].
        assert math.isclose(frontier.gamma_at(0, 1, 2), 0.9)
        assert math.isclose(frontier.gamma_at(0, 1, 4), 0.9 * 0.81 ** 2)


class TestRandomConsistency:
    @pytest.mark.parametrize("seed", range(4))
    def test_frontier_answers_arbitrary_queries(self, seed):
        g = random_probabilistic_graph(14, 0.4, seed)
        frontier = truss_frontier(g)
        for gamma in (0.1, 0.45, 0.8):
            local = local_truss_decomposition(g, gamma)
            for e, tau in local.trussness.items():
                assert frontier.trussness_at(*e, gamma) == tau


class TestValidation:
    def test_invalid_parameters(self, paper_frontier):
        with pytest.raises(ParameterError):
            paper_frontier.gamma_at("q1", "v1", 1)
        with pytest.raises(ParameterError):
            paper_frontier.trussness_at("q1", "v1", 0.0)
        with pytest.raises(ParameterError):
            paper_frontier.maximal_trusses(1, 0.5)
        with pytest.raises(ParameterError):
            paper_frontier.maximal_trusses(3, 2.0)
