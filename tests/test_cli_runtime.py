"""CLI robustness: --deadline/--checkpoint/--resume, SIGINT, bad inputs."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.exceptions import ComputationInterrupted
from repro.graphs.generators import running_example
from repro.graphs.io import write_edge_list


@pytest.fixture
def example_path(tmp_path):
    path = tmp_path / "example.txt"
    write_edge_list(running_example(), path)
    return path


class TestDeadlineFlag:
    def test_global_deadline_degrades_not_crashes(self, example_path, capsys):
        code = main(["--seed", "1", "global", str(example_path),
                     "--gamma", "0.3", "--deadline", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "status=partial+degraded" in out
        assert "epsilon_effective=" in out

    def test_local_deadline_degrades(self, example_path, capsys):
        code = main(["local", str(example_path), "--gamma", "0.3",
                     "--deadline", "1e9"])
        out = capsys.readouterr().out
        assert code == 0
        assert "k_max=" in out
        assert "status=" not in out  # generous deadline: clean run

    def test_max_samples_flag(self, example_path, capsys):
        code = main(["--seed", "1", "global", str(example_path),
                     "--gamma", "0.3", "--batch-size", "25",
                     "--max-samples", "50"])
        out = capsys.readouterr().out
        assert code == 0
        assert "samples=75/150" in out

    def test_reliability_deadline(self, example_path, capsys):
        code = main(["reliability", str(example_path), "--samples", "500",
                     "--deadline", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Monte-Carlo reliability" in out
        assert "status=partial+degraded" in out


class TestCheckpointFlags:
    def test_global_checkpoint_then_resume_matches(self, example_path,
                                                   tmp_path, capsys):
        ck = tmp_path / "ck"
        argv = ["--seed", "3", "global", str(example_path),
                "--gamma", "0.3", "--checkpoint", str(ck)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_reliability_checkpoint_then_resume(self, example_path,
                                                tmp_path, capsys):
        ck = tmp_path / "ck"
        argv = ["reliability", str(example_path), "--samples", "200",
                "--checkpoint", str(ck)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first


class TestInterruptHandling:
    def test_interrupt_exits_130_with_pointer(self, monkeypatch, capsys,
                                              example_path):
        import repro.cli as cli

        def fake_run_global(*args, **kwargs):
            raise ComputationInterrupted(
                "interrupted at sample-batch step 1",
                checkpoint_path="/tmp/ck",
            )

        monkeypatch.setattr(cli, "run_global", fake_run_global)
        code = main(["global", str(example_path), "--gamma", "0.3"])
        captured = capsys.readouterr()
        assert code == 130
        assert captured.err.strip() == "interrupted — partial results at /tmp/ck"
        assert "Traceback" not in captured.err

    def test_interrupt_without_checkpoint_suggests_one(self, monkeypatch,
                                                       capsys, example_path):
        import repro.cli as cli

        monkeypatch.setattr(
            cli, "run_local",
            lambda *a, **k: (_ for _ in ()).throw(
                ComputationInterrupted("interrupted")),
        )
        code = main(["local", str(example_path), "--gamma", "0.3"])
        captured = capsys.readouterr()
        assert code == 130
        assert "--checkpoint" in captured.err

    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys,
                                          example_path):
        import repro.cli as cli

        monkeypatch.setattr(
            cli, "run_reliability",
            lambda *a, **k: (_ for _ in ()).throw(KeyboardInterrupt()),
        )
        code = main(["reliability", str(example_path)])
        assert code == 130
        assert "interrupted" in capsys.readouterr().err

    def test_sigterm_interrupt_exits_143(self, monkeypatch, capsys,
                                         example_path):
        import repro.cli as cli

        def fake_run_global(*args, **kwargs):
            raise ComputationInterrupted(
                "interrupted by SIGTERM at sample-batch step 1",
                checkpoint_path="/tmp/ck", exit_code=143,
            )

        monkeypatch.setattr(cli, "run_global", fake_run_global)
        code = main(["global", str(example_path), "--gamma", "0.3"])
        captured = capsys.readouterr()
        assert code == 143
        assert captured.err.strip() == "interrupted — partial results at /tmp/ck"
        assert "Traceback" not in captured.err


@pytest.mark.crash
class TestSigtermSubprocess:
    """A real ``kill -TERM`` mid-run: conventional 143, resumable."""

    CHILD = """\
import sys, time
import repro.cli as cli

real_run_global = cli.run_global

def slowed(*args, **kwargs):
    inner = kwargs.get("progress")

    def hook(event):
        if inner is not None:
            inner(event)
        if event.phase == "sample-batch":
            print("batch", event.step, flush=True)
            time.sleep(0.25)

    kwargs["progress"] = hook
    return real_run_global(*args, **kwargs)

cli.run_global = slowed
sys.exit(cli.main(sys.argv[1:]))
"""

    def argv(self, example_path, ck):
        return ["--seed", "5", "global", str(example_path),
                "--gamma", "0.3", "--batch-size", "20",
                "--checkpoint", str(ck)]

    def test_kill_term_exits_143_and_resumes_identically(
            self, example_path, tmp_path, capsys):
        import os
        import signal
        import subprocess
        import sys
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[1]
        baseline_argv = ["--seed", "5", "global", str(example_path),
                         "--gamma", "0.3", "--batch-size", "20"]
        assert main(baseline_argv) == 0
        baseline_out = capsys.readouterr().out

        ck = tmp_path / "ck"
        proc = subprocess.Popen(
            [sys.executable, "-c", self.CHILD] + self.argv(example_path, ck),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=dict(os.environ, PYTHONPATH=str(repo_root / "src")),
            cwd=repo_root,
        )
        # Wait until the run is demonstrably mid-sampling, then TERM it.
        line = proc.stdout.readline()
        assert line.startswith("batch")
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)
        stderr = proc.stderr.read()
        assert proc.returncode == 143
        assert "interrupted — partial results at" in stderr
        assert str(ck) in stderr
        assert "Traceback" not in stderr
        assert (ck / "manifest.json").exists()

        # Resuming the snapshot completes and prints the identical
        # report an uninterrupted run produces.
        assert main(self.argv(example_path, ck) + ["--resume"]) == 0
        assert capsys.readouterr().out == baseline_out


class TestBadInputHandling:
    def test_checkpoint_param_mismatch_exits_2(self, example_path, tmp_path,
                                               capsys):
        ck = tmp_path / "ck"
        assert main(["--seed", "1", "global", str(example_path),
                     "--gamma", "0.3", "--checkpoint", str(ck)]) == 0
        capsys.readouterr()
        code = main(["--seed", "1", "global", str(example_path),
                     "--gamma", "0.5", "--checkpoint", str(ck), "--resume"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error:")
        assert "different parameters" in captured.err
        assert "Traceback" not in captured.err


    def test_corrupt_edge_list_exits_2_with_location(self, tmp_path, capsys):
        path = tmp_path / "broken.txt"
        path.write_text("a b 0.5\nc d 0.25\ne f not-a-prob\n")
        code = main(["stats", str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "line 3" in captured.err
        assert "not-a-prob" in captured.err

    def test_truncated_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "cut.txt"
        path.write_text("a b 0.5\nc d 0.25\ne\n")
        code = main(["local", str(path), "--gamma", "0.3"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err
        assert "line 3" in captured.err
