"""CLI robustness: --deadline/--checkpoint/--resume, SIGINT, bad inputs."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.exceptions import ComputationInterrupted
from repro.graphs.generators import running_example
from repro.graphs.io import write_edge_list


@pytest.fixture
def example_path(tmp_path):
    path = tmp_path / "example.txt"
    write_edge_list(running_example(), path)
    return path


class TestDeadlineFlag:
    def test_global_deadline_degrades_not_crashes(self, example_path, capsys):
        code = main(["--seed", "1", "global", str(example_path),
                     "--gamma", "0.3", "--deadline", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "status=partial+degraded" in out
        assert "epsilon_effective=" in out

    def test_local_deadline_degrades(self, example_path, capsys):
        code = main(["local", str(example_path), "--gamma", "0.3",
                     "--deadline", "1e9"])
        out = capsys.readouterr().out
        assert code == 0
        assert "k_max=" in out
        assert "status=" not in out  # generous deadline: clean run

    def test_max_samples_flag(self, example_path, capsys):
        code = main(["--seed", "1", "global", str(example_path),
                     "--gamma", "0.3", "--batch-size", "25",
                     "--max-samples", "50"])
        out = capsys.readouterr().out
        assert code == 0
        assert "samples=75/150" in out

    def test_reliability_deadline(self, example_path, capsys):
        code = main(["reliability", str(example_path), "--samples", "500",
                     "--deadline", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Monte-Carlo reliability" in out
        assert "status=partial+degraded" in out


class TestCheckpointFlags:
    def test_global_checkpoint_then_resume_matches(self, example_path,
                                                   tmp_path, capsys):
        ck = tmp_path / "ck"
        argv = ["--seed", "3", "global", str(example_path),
                "--gamma", "0.3", "--checkpoint", str(ck)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_reliability_checkpoint_then_resume(self, example_path,
                                                tmp_path, capsys):
        ck = tmp_path / "ck"
        argv = ["reliability", str(example_path), "--samples", "200",
                "--checkpoint", str(ck)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first


class TestInterruptHandling:
    def test_interrupt_exits_130_with_pointer(self, monkeypatch, capsys,
                                              example_path):
        import repro.cli as cli

        def fake_run_global(*args, **kwargs):
            raise ComputationInterrupted(
                "interrupted at sample-batch step 1",
                checkpoint_path="/tmp/ck",
            )

        monkeypatch.setattr(cli, "run_global", fake_run_global)
        code = main(["global", str(example_path), "--gamma", "0.3"])
        captured = capsys.readouterr()
        assert code == 130
        assert captured.err.strip() == "interrupted — partial results at /tmp/ck"
        assert "Traceback" not in captured.err

    def test_interrupt_without_checkpoint_suggests_one(self, monkeypatch,
                                                       capsys, example_path):
        import repro.cli as cli

        monkeypatch.setattr(
            cli, "run_local",
            lambda *a, **k: (_ for _ in ()).throw(
                ComputationInterrupted("interrupted")),
        )
        code = main(["local", str(example_path), "--gamma", "0.3"])
        captured = capsys.readouterr()
        assert code == 130
        assert "--checkpoint" in captured.err

    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys,
                                          example_path):
        import repro.cli as cli

        monkeypatch.setattr(
            cli, "run_reliability",
            lambda *a, **k: (_ for _ in ()).throw(KeyboardInterrupt()),
        )
        code = main(["reliability", str(example_path)])
        assert code == 130
        assert "interrupted" in capsys.readouterr().err


class TestBadInputHandling:
    def test_checkpoint_param_mismatch_exits_2(self, example_path, tmp_path,
                                               capsys):
        ck = tmp_path / "ck"
        assert main(["--seed", "1", "global", str(example_path),
                     "--gamma", "0.3", "--checkpoint", str(ck)]) == 0
        capsys.readouterr()
        code = main(["--seed", "1", "global", str(example_path),
                     "--gamma", "0.5", "--checkpoint", str(ck), "--resume"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error:")
        assert "different parameters" in captured.err
        assert "Traceback" not in captured.err


    def test_corrupt_edge_list_exits_2_with_location(self, tmp_path, capsys):
        path = tmp_path / "broken.txt"
        path.write_text("a b 0.5\nc d 0.25\ne f not-a-prob\n")
        code = main(["stats", str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "line 3" in captured.err
        assert "not-a-prob" in captured.err

    def test_truncated_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "cut.txt"
        path.write_text("a b 0.5\nc d 0.25\ne\n")
        code = main(["local", str(path), "--gamma", "0.3"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err
        assert "line 3" in captured.err
