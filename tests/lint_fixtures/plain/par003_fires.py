"""PAR003 positive: dispatching a task kind the registry doesn't know."""


def run(executor, payloads, progress):
    return executor.map("warp-drive-align", payloads, progress=progress)
