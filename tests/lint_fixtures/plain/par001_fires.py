"""PAR001 positive: a shared segment with no release in scope."""

from multiprocessing import shared_memory


def publish(payload):
    shm = shared_memory.SharedMemory(create=True, size=len(payload))
    shm.buf[: len(payload)] = payload
    return shm.name
