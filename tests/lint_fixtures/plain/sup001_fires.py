"""SUP001 positive: a suppression whose violation was fixed long ago."""


def tidy(items):
    # repro: allow[DET003] sorted below makes iteration order canonical
    for item in sorted(set(items), key=str):
        yield item
