"""EXC003 negative: cleanup-and-bare-raise is exempt by design."""


def guarded(pool, callback):
    try:
        return callback()
    except BaseException:
        pool.abort()
        raise
