"""CONC001: the PR 8 pre-fix bug — stats counters without their lock.

``TrussService.stats`` was declared handler-shared but incremented with
a bare read-modify-write; the human review caught it, CONC001 must too.
"""

import threading


class Service:
    def __init__(self):
        self._stats_lock = threading.Lock()
        # repro: guarded-by[self._stats_lock]
        self.stats = {"requests": 0, "responses": 0}

    def handle_http(self):
        self.stats["requests"] += 1

    def respond(self):
        return self.stats["responses"]
