"""CONC003 negative space: nesting that must not be called a deadlock.

A consistent global order on every path, a reentrant RLock self-nest
(directly and through a helper call made while holding it), and a
``Condition`` canonicalised to the Lock it wraps.
"""

import threading


class Consistent:
    def __init__(self):
        self._outer = threading.Lock()
        self._inner = threading.Lock()
        self._emit = threading.RLock()
        self._cond = threading.Condition(self._outer)

    def one(self):
        with self._outer:
            with self._inner:
                pass

    def two(self):
        # Same order as one(): no cycle.
        with self._cond:  # the Condition *is* self._outer
            with self._inner:
                pass

    def emit(self):
        with self._emit:
            self.emit_line()

    def emit_line(self):
        # Re-acquiring the RLock on the same thread is fine.
        with self._emit:
            pass
