"""CONC004: sleeping while holding a lock serialises every waiter."""

import threading
import time


class Throttle:
    def __init__(self):
        self._lock = threading.Lock()

    def pace(self):
        with self._lock:
            time.sleep(0.1)
