"""CONC003: two locks nested in opposite orders on two code paths."""

import threading


class Ledger:
    def __init__(self):
        self._accounts = threading.Lock()
        self._audit = threading.Lock()

    def credit(self):
        with self._accounts:
            with self._audit:
                pass

    def debit(self):
        with self._audit:
            with self._accounts:
                pass
