"""EVT001 suppressed: an experimental phase behind a pragma."""

from repro.runtime.progress import ProgressEvent


def announce(progress, step):
    # repro: allow[EVT001] experimental phase; promoted before merge
    progress(ProgressEvent("warp-core-align", step=step))
