"""EVT002 suppressed: a reserved phase kept registered on purpose."""

# repro: allow[EVT002] reserved for the next protocol version
KNOWN_PHASES = frozenset({
    "reserved-phase",
})
