"""SUP002 positives: every malformed-pragma shape."""


def first(values):
    # repro: allow[DET999] no such rule id
    return list(set(values))


def second(values):
    # repro: allow[DET001]
    return list(set(values))


def third(values):
    # repro: allowlist me please
    return list(set(values))
