"""PAR001 negative: paired release in the same scope chain."""

import weakref
from multiprocessing import shared_memory


def copy_through(payload):
    shm = shared_memory.SharedMemory(create=True, size=len(payload))
    try:
        shm.buf[: len(payload)] = payload
        return bytes(shm.buf[: len(payload)])
    finally:
        shm.close()
        shm.unlink()


class Segment:
    """Finalizer-backed ownership, like repro.parallel.shared."""

    def __init__(self, size):
        self._shm = shared_memory.SharedMemory(create=True, size=size)
        self._finalizer = weakref.finalize(self, self._shm.close)
