"""CONC001 negative space: every guarded access pattern that is legal.

Locked access, access through a ``threading.Condition`` wrapping the
declared lock, the ``_locked``-suffix convention (caller holds the
lock), and ``__init__`` itself.
"""

import threading


class Admission:
    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self.inflight = 0  # repro: guarded-by[self._lock]
        self.inflight = self.inflight  # __init__ is exempt

    def acquire(self):
        # The Condition wraps the declared lock: same underlying lock.
        with self._cond:
            self.inflight += 1

    def release(self):
        with self._lock:
            self.inflight -= 1
            self._cond.notify_all()

    def _admit_locked(self):
        # _locked suffix: every caller already holds self._lock.
        self.inflight += 1
