"""CONC002 negative space: ownership respected.

The builder role calls its own breaker mutators (including through a
helper it reaches transitively); the handler only touches read-only
methods; role-free code (the test harness constructing everything) is
never judged.
"""


class CircuitBreaker:
    def __init__(self):
        self.state = "closed"
        self.failures = 0  # repro: owned-by[builder]

    # repro: owned-by[builder]
    def record_failure(self):
        self.failures += 1
        return self.state

    def retry_after(self):
        return 0.0 if self.state == "closed" else 1.0


class Builder:
    def __init__(self, breaker):
        self.breaker = breaker

    # repro: owned-by[builder]
    def run(self):
        self._strike()

    def _strike(self):
        # Reached only from the builder entry point: same role.
        self.breaker.record_failure()


class Service:
    def __init__(self, breaker):
        self.breaker = breaker

    # repro: owned-by[handler]
    def handle_request(self):
        return self.breaker.retry_after()


def wire_up():
    breaker = CircuitBreaker()
    Builder(breaker).run()
    return Service(breaker)
