"""EVT001 suppressed: an experimental nucleus phase behind a pragma."""

from repro.runtime.progress import ProgressEvent


def announce(progress, cells_done):
    # repro: allow[EVT001] staged nucleus phase; registered before merge
    progress(ProgressEvent("nucleus-reticulate", step=cells_done))
