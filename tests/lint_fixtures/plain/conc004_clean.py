"""CONC004 negative space: blocking-adjacent idioms that are fine.

``Condition.wait`` on the held lock (it releases the lock while
waiting), ``str.join`` (a positional argument, so not a thread join),
and blocking calls made *outside* the critical section.
"""

import threading
import time


class Paced:
    def __init__(self):
        self._cond = threading.Condition(threading.Lock())
        self.ready = False  # repro: guarded-by[self._cond]

    def wait_ready(self):
        with self._cond:
            while not self.ready:
                self._cond.wait(0.1)
        time.sleep(0.0)

    def label(self):
        with self._cond:
            return ", ".join(["a", "b"])

    def reap(self, worker):
        worker.join(timeout=1.0)
        with self._cond:
            self.ready = True
            self._cond.notify_all()
