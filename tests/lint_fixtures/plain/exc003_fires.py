"""EXC003 positive: broad except that swallows."""


def probe(callback):
    try:
        return callback()
    except Exception:
        pass
    return None
