"""EXC002 suppressed: a bare except behind a justified pragma."""


def load(path):
    try:
        return open(path).read()
    # repro: allow[EXC002] last-ditch demo loader; never library code
    except:
        return None
