"""DET003 positive: set iteration feeding order-sensitive sinks."""


def collect(graph, nodes):
    out = []
    for node in set(nodes):
        out.append(graph[node])
    return out


def fold(weights):
    total = 0.0
    candidates = {w for w in weights if w > 0}
    for w in candidates:
        total += w
    return total
