"""CONC002: the PR 8 pre-fix bug — handler thread calls ``allow()``.

The breaker's mutators belong to the builder thread; a request handler
calling ``allow()`` consumes the single open->half-open probe permit
and wedges the breaker. The human review caught it, CONC002 must too.
"""


class CircuitBreaker:
    def __init__(self):
        self.state = "closed"

    # repro: owned-by[builder]
    def allow(self):
        if self.state == "open":
            self.state = "half-open"
        return True


class Service:
    def __init__(self, breaker):
        self.breaker = breaker

    # repro: owned-by[handler]
    def handle_request(self):
        if self.breaker.allow():
            return "queued"
        return "shed"
