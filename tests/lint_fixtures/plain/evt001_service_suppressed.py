"""EVT001 suppressed: an experimental service phase behind a pragma."""

from repro.runtime.progress import ProgressEvent


def announce(progress, request_id):
    # repro: allow[EVT001] staged service phase; registered before merge
    progress(ProgressEvent("service-reticulate", step=request_id))
