"""EXC002 positive: a bare except."""


def load(path):
    try:
        return open(path).read()
    except:
        return None
