"""PAR002 positive: unpicklable callables handed to worker dispatch."""

import multiprocessing as mp


def launch(values):
    proc = mp.Process(target=lambda: sum(values))
    proc.start()
    return proc


def launch_nested(values):
    def work():
        return sum(values)

    proc = mp.Process(target=work)
    proc.start()
    return proc
