"""DET003 suppressed: order genuinely cannot matter here."""


def count(nodes):
    seen = []
    # repro: allow[DET003] len() of the result only; order never observed
    for node in set(nodes):
        seen.append(node)
    return len(seen)
