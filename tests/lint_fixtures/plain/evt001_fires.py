"""EVT001 positive: emitting a phase the registry doesn't know."""

from repro.runtime.progress import ProgressEvent


def announce(progress, step):
    progress(ProgressEvent("warp-core-align", step=step))
