"""PAR003 suppressed: a .map() that is not the task-dispatch protocol."""


def run(frame, payloads):
    # repro: allow[PAR003] pandas .map(), not the worker-pool protocol
    return frame.map("category", payloads)
