"""EXC003 suppressed: a justified catch-all."""


def probe(callback):
    try:
        return callback()
    # repro: allow[EXC003] best-effort probe; failure means unsupported
    except Exception:
        pass
    return None
