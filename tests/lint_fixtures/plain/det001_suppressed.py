"""DET001 suppressed: global RNG behind a justified pragma."""

import random


def shuffled(items):
    random.shuffle(items)  # repro: allow[DET001] demo script, not library
    return items
