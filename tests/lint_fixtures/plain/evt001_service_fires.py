"""EVT001 positive: a service phase nobody registered.

The ``repro serve`` vocabulary (``service-request`` ...
``service-drain``) lives in ``KNOWN_PHASES`` like every other phase;
inventing a new ``service-*`` literal at an emission site without
registering it is exactly the typo EVT001 exists to catch.
"""

from repro.runtime.progress import ProgressEvent


def announce(progress, request_id):
    progress(ProgressEvent("service-reticulate", step=request_id))
