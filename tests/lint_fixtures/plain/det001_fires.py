"""DET001 positive: process-global RNG use."""

import random

import numpy as np


def shuffled(items):
    random.shuffle(items)
    return items


def reseed_everything():
    np.random.seed(0)
    return np.random.RandomState(42)
