"""DET003 negative: sorted() wrappers make the same loops clean."""


def collect(graph, nodes):
    out = []
    for node in sorted(set(nodes), key=str):
        out.append(graph[node])
    return out


def fold(weights):
    total = 0.0
    for w in sorted({w for w in weights if w > 0}):
        total += w
    return total
