"""CONC003's cycle from the fires twin, silenced by a pragma."""

import threading


class Ledger:
    def __init__(self):
        self._accounts = threading.Lock()
        self._audit = threading.Lock()

    def credit(self):
        with self._accounts:
            with self._audit:  # repro: allow[CONC003] debit() is only ever called at single-threaded startup, before the pool exists
                pass

    def debit(self):
        with self._audit:
            with self._accounts:
                pass
