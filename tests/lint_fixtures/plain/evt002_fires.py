"""EVT002 positive: a registered phase nothing emits (dead event)."""

KNOWN_PHASES = frozenset({
    "ghost-phase",
})
