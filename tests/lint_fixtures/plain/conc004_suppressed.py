"""CONC004's blocking call from the fires twin, silenced by a pragma."""

import threading
import time


class Throttle:
    def __init__(self):
        self._lock = threading.Lock()

    def pace(self):
        with self._lock:
            time.sleep(0.1)  # repro: allow[CONC004] intentional: the lock IS the rate limiter; contending callers must queue behind the sleep
