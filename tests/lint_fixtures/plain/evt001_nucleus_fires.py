"""EVT001 positive: a nucleus phase nobody registered.

The nucleus decomposition vocabulary (``nucleus-peel``,
``nucleus-init``) lives in ``KNOWN_PHASES`` like every other phase;
inventing a new ``nucleus-*`` literal at an emission site without
registering it is exactly the typo EVT001 exists to catch.
"""

from repro.runtime.progress import ProgressEvent


def announce(progress, cells_done):
    progress(ProgressEvent("nucleus-reticulate", step=cells_done))
