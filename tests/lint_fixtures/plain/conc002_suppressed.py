"""CONC002's violation from the fires twin, silenced by a pragma."""


class CircuitBreaker:
    def __init__(self):
        self.state = "closed"

    # repro: owned-by[builder]
    def allow(self):
        if self.state == "open":
            self.state = "half-open"
        return True


class Service:
    def __init__(self, breaker):
        self.breaker = breaker

    # repro: owned-by[handler]
    def handle_request(self):
        if self.breaker.allow():  # repro: allow[CONC002] this service runs the builder inline on the handler thread; there is no second writer
            return "queued"
        return "shed"
