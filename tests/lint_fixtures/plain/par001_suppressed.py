"""PAR001 suppressed: ownership transferred somewhere the rule can't see."""

from multiprocessing import shared_memory


def publish(payload, registry):
    # repro: allow[PAR001] registry.adopt() owns the unlink lifecycle
    shm = shared_memory.SharedMemory(create=True, size=len(payload))
    registry.adopt(shm)
    return shm.name
