"""CONC001's violation from the fires twin, silenced by pragmas."""

import threading


class Service:
    def __init__(self):
        self._stats_lock = threading.Lock()
        # repro: guarded-by[self._stats_lock]
        self.stats = {"requests": 0, "responses": 0}

    def handle_http(self):
        self.stats["requests"] += 1  # repro: allow[CONC001] single-threaded smoke harness; no second thread exists here

    def respond(self):
        return self.stats["responses"]  # repro: allow[CONC001] read-only snapshot for a log line; staleness is fine
