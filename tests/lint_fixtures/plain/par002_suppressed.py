"""PAR002 suppressed: a thread-only dispatch that never pickles."""

import threading


def launch(values):
    # repro: allow[PAR002] threading.Thread shares memory; no pickling
    thread = threading.Thread(target=lambda: sum(values))
    thread.start()
    return thread
