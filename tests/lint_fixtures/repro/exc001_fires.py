"""EXC001 positive: raising a builtin from library code."""


def validate(gamma):
    if not 0 <= gamma <= 1:
        raise ValueError(f"gamma must be in [0, 1], got {gamma}")
    return gamma
