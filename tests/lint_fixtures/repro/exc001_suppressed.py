"""EXC001 suppressed: a deliberate builtin raise in library code."""


def checked_index(row, column):
    if column < 0:
        # repro: allow[EXC001] numpy indexing contract expects IndexError
        raise IndexError(column)
    return row[column]
