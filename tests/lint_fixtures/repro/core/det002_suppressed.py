"""DET002 suppressed: a justified clock read in a core module."""

import time


def decompose(graph):
    # repro: allow[DET002] diagnostic only; never reaches the result
    started = time.perf_counter()
    return graph, started
