"""DET002 positive: wall clock inside a core algorithm module."""

import time


def decompose(graph):
    started = time.perf_counter()
    return started
