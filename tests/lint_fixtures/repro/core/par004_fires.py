"""PAR004 positive: unpacking presence bits outside the kernels module."""

import numpy as np


def project(packed, n_samples):
    return np.unpackbits(packed, axis=0, count=n_samples).astype(bool)
