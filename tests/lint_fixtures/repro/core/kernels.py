"""PAR004 negative space: the one module allowed to call unpackbits."""

import numpy as np


def unpack_matrix(packed, n_samples):
    return np.unpackbits(packed, axis=0, count=n_samples).astype(bool)
