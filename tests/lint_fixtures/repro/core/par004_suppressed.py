"""PAR004 suppressed: a justified bounded unpack outside the kernels."""

import numpy as np


def restore_batch(packed, rows):
    # repro: allow[PAR004] one batch_size-bounded batch, not a projection
    return np.unpackbits(packed, axis=1, count=rows).astype(bool)
