"""GBU behaviour on the Lemma 2 windmill — the exponential-answers regime."""

import math

import pytest

from repro import (
    GlobalTrussOracle,
    WorldSampleSet,
    global_truss_decomposition,
    is_global_truss_exact,
)
from repro.core.exact_enum import enumerate_global_trusses
from repro.graphs.generators import windmill_graph


class TestWindmillGbu:
    """The windmill has C(n, ceil(n/2)) overlapping maximal global
    trusses; GBU must return *some* of them (each sound), never all
    guaranteed — the paper's completeness-for-speed trade."""

    @pytest.fixture(scope="class")
    def setting(self):
        n, p = 4, 0.5
        g = windmill_graph(n, p)
        # Exact 2-blade alpha is p^6; sampled tests run a bit below it
        # (Monte-Carlo estimates of an alpha exactly at gamma fall short
        # half the time) — 0.7x keeps the same answer set, since the
        # next level down (3 blades) has alpha p^9 = gamma / 8.
        gamma_exact = p ** (3 * math.ceil(n / 2))
        gamma_sampled = gamma_exact * 0.7
        return g, gamma_exact, gamma_sampled

    def test_gbu_answers_are_sound(self, setting):
        g, gamma_exact, gamma_sampled = setting
        result = global_truss_decomposition(
            g, gamma_sampled, method="gbu", seed=5, n_samples=3000
        )
        assert 3 in result.trusses
        for truss in result.trusses[3]:
            # Verified against the exact definition at a slightly
            # relaxed gamma (sampling tolerance).
            assert is_global_truss_exact(truss, 3, gamma_sampled * 0.7)

    def test_gbu_incomplete_vs_enumeration(self, setting):
        g, gamma_exact, gamma_sampled = setting
        exact = enumerate_global_trusses(g, 3, gamma_exact)
        result = global_truss_decomposition(
            g, gamma_sampled, method="gbu", seed=5, n_samples=3000
        )
        found = {frozenset(t.nodes()) for t in result.trusses.get(3, [])}
        exact_sets = {frozenset(t.nodes()) for t in exact}
        assert len(exact_sets) == 6  # C(4, 2)
        # Soundness: everything GBU found at k=3 is an exact answer or a
        # subgraph of one (non-maximal answers can slip through the
        # heuristic, as the paper notes for Figure 7).
        for nodes in found:
            assert any(nodes <= big for big in exact_sets)

    def test_gtd_finds_multiple_overlapping_answers(self, setting):
        g, gamma_exact, gamma_sampled = setting
        result = global_truss_decomposition(
            g, gamma_sampled, method="gtd", seed=5, n_samples=3000,
            max_states=100_000,
        )
        found = {frozenset(t.nodes()) for t in result.trusses.get(3, [])}
        # GTD is exact w.r.t. its samples: with N = 3000 it should
        # recover most of the 6 two-blade answers.
        assert len(found) >= 4
        # All overlap pairwise on the hub.
        for a in found:
            for b in found:
                assert "hub" in (a & b)
