"""Unit and live-loopback tests of the ``repro serve`` query service.

Covers the service building blocks (circuit breaker, admission control,
index store), the pure dispatch layer, the builder's failure handling,
and a real :class:`~http.server.ThreadingHTTPServer` on a loopback
socket — including fault-plan service injections (dropped connections,
stalled clients, accept refusals) and an in-process drain/warm-restart
byte-identity check. The subprocess ``kill -TERM`` battery lives in
``tests/test_service_chaos.py`` (crash-marked).
"""

from __future__ import annotations

import json
import signal
import threading
import time
import urllib.error
import urllib.request
from contextlib import contextmanager
from urllib.parse import quote

import pytest

from repro.exceptions import (
    DatasetError,
    GraphParseError,
    IndexUnavailableError,
    OverloadedError,
    ParameterError,
    ServiceError,
    http_status_of,
)
from repro.graphs.generators import running_example
from repro.graphs.io import write_edge_list
from repro.runtime import Budget, chain_hooks
from repro.runtime.faults import FaultPlan
from repro.service import (
    AdmissionController,
    CircuitBreaker,
    IndexBuilder,
    IndexKey,
    IndexStore,
    ServeConfig,
    TrussService,
)


@pytest.fixture
def example_path(tmp_path):
    path = tmp_path / "example.txt"
    write_edge_list(running_example(), path)
    return path


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCircuitBreaker:
    def test_opens_at_threshold_and_backs_off_exponentially(self):
        clk = FakeClock()
        b = CircuitBreaker(threshold=2, backoff_base=1.0, backoff_cap=8.0,
                           clock=clk)
        assert b.state == "closed" and b.allow()
        assert b.record_failure() == "closed"
        assert b.record_failure() == "open"
        assert not b.allow()
        assert b.retry_after() == pytest.approx(1.0)
        # Each further failure doubles the backoff, up to the cap.
        clk.advance(1.0)
        assert b.allow() and b.state == "half-open"
        assert b.record_failure() == "open"
        assert b.retry_after() == pytest.approx(2.0)
        clk.advance(2.0)
        assert b.allow()
        b.record_failure()
        b.record_failure()
        b.record_failure()
        assert b.retry_after() <= 8.0

    def test_half_open_admits_exactly_one_probe(self):
        clk = FakeClock()
        b = CircuitBreaker(threshold=1, backoff_base=1.0, clock=clk)
        b.record_failure()
        assert not b.allow()
        clk.advance(1.5)
        assert b.allow()          # the probe
        assert not b.allow()      # no second probe while half-open
        assert b.state == "half-open"

    def test_success_closes_and_resets(self):
        clk = FakeClock()
        b = CircuitBreaker(threshold=1, backoff_base=1.0, clock=clk)
        b.record_failure()
        clk.advance(1.0)
        assert b.allow()
        assert b.record_success() == "closed"
        assert b.failures == 0
        assert b.retry_after() == 0.0
        assert b.allow()


class TestAdmissionController:
    def test_sheds_typed_503_when_queue_full(self):
        a = AdmissionController(max_inflight=1, max_queue=0)
        a.acquire(timeout=0)
        with pytest.raises(OverloadedError) as exc:
            a.acquire(timeout=0)
        assert exc.value.retry_after > 0
        assert http_status_of(exc.value) == 503
        assert a.stats["shed_queue_full"] == 1
        a.release()

    def test_sheds_when_no_slot_frees_before_deadline(self):
        a = AdmissionController(max_inflight=1, max_queue=4)
        a.acquire(timeout=0)
        with pytest.raises(OverloadedError):
            a.acquire(timeout=0)
        assert a.stats["shed_wait_deadline"] == 1
        assert a.queued == 0
        a.release()
        assert a.inflight == 0

    def test_queued_request_proceeds_when_slot_frees(self):
        a = AdmissionController(max_inflight=1, max_queue=4)
        a.acquire(timeout=0)
        got = threading.Event()

        def waiter():
            with a.slot(timeout=10.0):
                got.set()

        t = threading.Thread(target=waiter, daemon=True)
        t.start()
        time.sleep(0.05)
        assert not got.is_set()
        a.release()
        t.join(timeout=5.0)
        assert got.is_set()
        assert a.stats["admitted"] == 2

    def test_wait_idle_observes_drain(self):
        a = AdmissionController(max_inflight=2, max_queue=0)
        a.acquire(timeout=0)
        assert not a.wait_idle(grace=0.05)
        a.release()
        assert a.wait_idle(grace=1.0)


def _key(kind="local", **overrides) -> IndexKey:
    base = dict(kind=kind, graph="g.txt", graph_nodes=4, graph_edges=5,
                graph_crc=12345, gamma=0.3, method="dp", seed=7)
    if kind == "global":
        base.update(method="gbu", epsilon=0.5, delta=0.5, n_samples=20)
    base.update(overrides)
    return IndexKey(**base)


class TestIndexStore:
    def test_token_is_stable_and_parameter_sensitive(self):
        assert _key().token == _key().token
        assert _key().token != _key(gamma=0.4).token
        assert _key().token != _key(graph_crc=99).token

    def test_complete_then_load_round_trips(self, tmp_path):
        store = IndexStore(tmp_path / "idx")
        entry, created = store.ensure(_key())
        assert created
        store.mark_building(entry.token)
        store.complete(entry.token, {"k_max": 3}, b"bytes-1",
                       degraded=False, reason=None)
        reloaded = IndexStore(tmp_path / "idx")
        pending = reloaded.load()
        assert pending == []
        again = reloaded.get(entry.token)
        assert again.status == "ready"
        assert again.payload == {"k_max": 3}
        assert again.result_path.read_bytes() == b"bytes-1"

    def test_ready_meta_without_result_bytes_means_interrupted(
            self, tmp_path):
        store = IndexStore(tmp_path / "idx")
        entry, _ = store.ensure(_key())
        store.complete(entry.token, {"k_max": 3}, b"x",
                       degraded=False, reason=None)
        entry.result_path.unlink()
        reloaded = IndexStore(tmp_path / "idx")
        pending = reloaded.load()
        assert [e.token for e in pending] == [entry.token]
        assert reloaded.get(entry.token).status == "interrupted"

    def test_failed_rebuild_keeps_last_good_payload(self, tmp_path):
        store = IndexStore(tmp_path / "idx")
        entry, _ = store.ensure(_key())
        store.complete(entry.token, {"k_max": 3}, b"x",
                       degraded=False, reason=None)
        store.fail(entry.token, "worker pool exploded")
        assert entry.status == "ready"
        assert entry.degraded
        assert entry.payload == {"k_max": 3}
        assert entry.failures == 1

    def test_build_in_progress_reloads_as_interrupted(self, tmp_path):
        store = IndexStore(tmp_path / "idx")
        entry, _ = store.ensure(_key())
        store.mark_building(entry.token)
        reloaded = IndexStore(tmp_path / "idx")
        pending = reloaded.load()
        assert [e.status for e in pending] == ["interrupted"]


class TestHttpStatusTable:
    def test_explicit_entry_beats_ancestor(self):
        # GraphParseError subclasses DatasetError (404) but is a client
        # error (400); the MRO walk must find the explicit entry first.
        assert http_status_of(GraphParseError("bad")) == 400
        assert http_status_of(DatasetError("missing")) == 404

    def test_service_errors(self):
        assert http_status_of(OverloadedError()) == 503
        assert http_status_of(IndexUnavailableError()) == 503
        assert http_status_of(ServiceError("boom")) == 500
        assert http_status_of(ParameterError("bad")) == 400

    def test_foreign_exception_defaults_to_500(self):
        assert http_status_of(RuntimeError("?")) == 500


class _FakeBuildService:
    """Just enough service surface for exercising IndexBuilder."""

    def __init__(self, tmp_path, fail_first: int = 0,
                 breaker: CircuitBreaker | None = None):
        self.store = IndexStore(tmp_path / "idx")
        self.entry, _ = self.store.ensure(_key())
        self.entry.breaker = breaker
        self.fail_remaining = fail_first
        self.builds = 0
        self.events = []

    def emit(self, phase, step, detail):
        self.events.append((phase, dict(detail)))

    def run_build(self, entry, extra_hooks=()):
        self.builds += 1
        if self.fail_remaining > 0:
            self.fail_remaining -= 1
            raise ServiceError(f"injected build failure {self.builds}")
        from repro.runtime.result import PartialResult

        class _R:
            pass

        partial = PartialResult(kind="local", result=_R(), complete=True,
                                degraded=False)
        return partial

    def payload_of(self, key, partial):
        return {"k_max": 3, "build": self.builds}, b"payload-bytes"


class TestIndexBuilder:
    def test_failures_trip_breaker_and_serve_last_good(self, tmp_path):
        breaker = CircuitBreaker(threshold=2, backoff_base=0.01,
                                 backoff_cap=0.05)
        fake = _FakeBuildService(tmp_path, breaker=breaker)
        builder = IndexBuilder(fake)
        builder.start()
        builder.request(fake.entry.token)
        self._wait(lambda: fake.entry.status == "ready")
        assert fake.entry.payload == {"k_max": 3, "build": 1}

        fake.fail_remaining = 10**9  # every rebuild fails from now on
        builder.request(fake.entry.token)
        self._wait(lambda: breaker.state == "open")
        # Last good payload survives, marked degraded with the reason.
        assert fake.entry.status == "ready"
        assert fake.entry.degraded
        assert "injected build failure" in fake.entry.reason
        opened = [d for p, d in fake.events
                  if p == "service-breaker" and d["state"] == "open"]
        assert opened and opened[0]["retry_after"] > 0
        builder.stop(grace=5.0)

    def test_half_open_probe_recovers_and_closes(self, tmp_path):
        clk = FakeClock()
        breaker = CircuitBreaker(threshold=1, backoff_base=0.01, clock=clk)
        fake = _FakeBuildService(tmp_path, fail_first=1, breaker=breaker)
        builder = IndexBuilder(fake)
        builder.start()
        builder.request(fake.entry.token)
        self._wait(lambda: breaker.state == "open")
        clk.advance(1.0)  # expire the backoff: next attempt is the probe
        self._wait(lambda: breaker.state == "closed")
        assert fake.entry.status == "ready"
        closed = [d for p, d in fake.events
                  if p == "service-breaker" and d["state"] == "closed"]
        assert closed
        builder.stop(grace=5.0)

    def test_builder_survives_store_commit_failure(self, tmp_path):
        # ENOSPC in store.mark_building/complete escapes _build's try
        # block; the _run guard must keep the loop alive and retry.
        breaker = CircuitBreaker(threshold=100, backoff_base=0.01)
        fake = _FakeBuildService(tmp_path, breaker=breaker)
        builder = IndexBuilder(fake)
        real_complete = fake.store.complete
        failures = {"left": 2}

        def flaky_complete(*args, **kwargs):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise ServiceError("index write failed: disk full")
            return real_complete(*args, **kwargs)

        fake.store.complete = flaky_complete
        builder.start()
        builder.request(fake.entry.token)
        self._wait(lambda: fake.entry.status == "ready")
        assert builder._thread.is_alive()
        crashed = [d for p, d in fake.events
                   if p == "service-build" and d["action"] == "crashed"]
        assert len(crashed) == 2
        assert all("disk full" in d["reason"] for d in crashed)
        assert fake.entry.payload is not None
        builder.stop(grace=5.0)

    def _wait(self, predicate, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return
            time.sleep(0.01)
        raise AssertionError("condition not reached within timeout")


# ----------------------------------------------------------------------
# live loopback server
@contextmanager
def live_service(state_dir, progress=None, **overrides):
    overrides.setdefault("default_deadline", 10.0)
    cfg = ServeConfig(state_dir=str(state_dir), **overrides)
    svc = TrussService(cfg, progress=progress)
    svc.start()
    thread = threading.Thread(
        target=svc.http_server.serve_forever,
        kwargs={"poll_interval": 0.02}, daemon=True)
    thread.start()
    try:
        yield svc
    finally:
        if not svc.draining:
            svc.drain(signal.SIGTERM)
        thread.join(timeout=5.0)


def http_get(svc, path, timeout=30.0):
    host, port = svc.address
    try:
        with urllib.request.urlopen(
                f"http://{host}:{port}{path}", timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read()), dict(err.headers)


class Recorder:
    """Thread-safe progress-event recorder."""

    def __init__(self):
        self._lock = threading.Lock()
        self.events = []

    def __call__(self, event):
        with self._lock:
            self.events.append(event)

    def phases(self):
        with self._lock:
            return [e.phase for e in self.events]

    def find(self, phase):
        with self._lock:
            return [e for e in self.events if e.phase == phase]


def _wait_until(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestLiveServer:
    def test_index_lifecycle_and_payload(self, tmp_path, example_path):
        rec = Recorder()
        with live_service(tmp_path / "state", progress=rec) as svc:
            spec = quote(str(example_path), safe="")
            code, body, headers = http_get(
                svc, f"/local?graph={spec}&gamma=0.3")
            assert code == 503
            assert body["error"]["type"] == "IndexUnavailableError"
            assert body["error"]["building"] is True
            assert int(headers["Retry-After"]) >= 1
            code, body, _ = http_get(
                svc, f"/local?graph={spec}&gamma=0.3&wait=1&deadline=30")
            assert code == 200
            assert body["degraded"] is False
            assert body["k_max"] >= 2
            assert body["truss_counts"]
            # Served straight from the store the second time.
            code, again, _ = http_get(svc, f"/local?graph={spec}&gamma=0.3")
            assert code == 200 and again["k_max"] == body["k_max"]
            code, listing, _ = http_get(svc, "/indexes")
            assert [e["status"] for e in listing["indexes"]] == ["ready"]
        assert "service-request" in rec.phases()
        assert "service-build" in rec.phases()
        assert "service-drain" in rec.phases()

    def test_nucleus_endpoint(self, tmp_path, example_path):
        with live_service(tmp_path / "state") as svc:
            spec = quote(str(example_path), safe="")
            # (2, 3) is the truss family: its k_max must agree with the
            # /local index for the same graph and gamma.
            code, body, _ = http_get(
                svc, f"/nucleus?graph={spec}&gamma=0.3&r=2&s=3"
                     "&wait=1&deadline=30")
            assert code == 200
            assert (body["r"], body["s"]) == (2, 3)
            code, local, _ = http_get(
                svc, f"/local?graph={spec}&gamma=0.3&wait=1&deadline=30")
            assert code == 200
            assert body["k_max"] == local["k_max"]
            # The default family is (3, 4) with its own clique counts.
            code, body34, _ = http_get(
                svc, f"/nucleus?graph={spec}&gamma=0.1&wait=1&deadline=30")
            assert code == 200
            assert (body34["r"], body34["s"]) == (3, 4)
            assert body34["clique_counts"]
            # Unsupported families are a client error, not a build.
            code, err, _ = http_get(
                svc, f"/nucleus?graph={spec}&gamma=0.3&r=2&s=4")
            assert code == 400
            assert err["error"]["type"] == "ParameterError"

    def test_stats_deadline_degrades_honestly(self, tmp_path, example_path):
        rec = Recorder()
        with live_service(tmp_path / "state", progress=rec) as svc:
            spec = quote(str(example_path), safe="")
            code, body, _ = http_get(
                svc, f"/stats?graph={spec}&deadline=0.05")
            assert code == 200
            assert body["degraded"] is True
            assert "deadline" in body["reason"]
            assert "clustering" not in body
            code, body, _ = http_get(svc, f"/stats?graph={spec}")
            assert code == 200 and body["degraded"] is False
            assert "clustering" in body
        assert rec.find("service-degraded")

    def test_typed_errors_and_status_codes(self, tmp_path):
        with live_service(tmp_path / "state") as svc:
            code, body, _ = http_get(svc, "/local?graph=nope.txt&gamma=0.3")
            assert (code, body["error"]["type"]) == (404, "DatasetError")
            code, body, _ = http_get(svc, "/local?graph=fruitfly&gamma=7")
            assert (code, body["error"]["type"]) == (400, "ParameterError")
            code, body, _ = http_get(svc, "/warp")
            assert (code, body["error"]["type"]) == (400, "ParameterError")
            code, body, _ = http_get(svc, "/local?gamma=0.3")
            assert (code, body["error"]["type"]) == (400, "ParameterError")

    def test_breaker_serves_stale_degraded_after_failures(
            self, tmp_path, example_path, monkeypatch):
        rec = Recorder()
        with live_service(tmp_path / "state", progress=rec,
                          breaker_threshold=1, backoff_base=30.0) as svc:
            spec = quote(str(example_path), safe="")
            code, body, _ = http_get(
                svc, f"/local?graph={spec}&gamma=0.3&wait=1&deadline=30")
            assert code == 200 and body["degraded"] is False

            def broken(entry, extra_hooks=()):
                raise ServiceError("injected rebuild failure")

            monkeypatch.setattr(svc, "run_build", broken)
            code, body, _ = http_get(
                svc, f"/local?graph={spec}&gamma=0.3&refresh=1")
            assert code == 200  # stale-while-revalidate
            token = body["token"]
            assert _wait_until(
                lambda: svc.store.get(token).breaker.state == "open")
            code, body, _ = http_get(svc, f"/local?graph={spec}&gamma=0.3")
            assert code == 200
            assert body["degraded"] is True
            assert body["breaker"] == "open"
            assert any("circuit open" in r for r in body["reasons"])
            assert body["k_max"] >= 2  # last good result still served
        assert rec.find("service-breaker")
        assert rec.find("service-degraded")

    def test_breaker_mutations_stay_on_builder_thread(
            self, tmp_path, example_path):
        # Regression: the request path used to call breaker.allow(),
        # consuming the open->half-open probe permit on a handler
        # thread and wedging the breaker half-open forever. Handlers
        # may only *read* the breaker.
        with live_service(tmp_path / "state") as svc:
            spec = quote(str(example_path), safe="")
            code, body, _ = http_get(
                svc, f"/local?graph={spec}&gamma=0.3&wait=1&deadline=30")
            assert code == 200
            entry = svc.store.get(body["token"])
            calls: list[str] = []
            orig_allow = entry.breaker.allow

            def spy_allow():
                calls.append(threading.current_thread().name)
                return orig_allow()

            entry.breaker.allow = spy_allow
            builds_before = entry.builds
            code, _, _ = http_get(
                svc, f"/local?graph={spec}&gamma=0.3&refresh=1"
                     "&wait=1&deadline=30")
            assert code == 200
            assert _wait_until(lambda: entry.builds > builds_before)
            assert calls, "the rebuild must consult the breaker"
            assert set(calls) == {"repro-serve-builder"}

    def test_open_breaker_recovers_through_probe(
            self, tmp_path, example_path):
        # Queries against an open breaker must not prevent the
        # half-open probe from running once the backoff expires; a
        # healthy probe closes the breaker and refreshes the index.
        with live_service(tmp_path / "state", breaker_threshold=1,
                          backoff_base=0.1, backoff_cap=0.2) as svc:
            spec = quote(str(example_path), safe="")
            code, body, _ = http_get(
                svc, f"/local?graph={spec}&gamma=0.3&wait=1&deadline=30")
            assert code == 200
            entry = svc.store.get(body["token"])

            def broken(e, extra_hooks=()):
                raise ServiceError("injected rebuild failure")

            svc.run_build = broken
            code, _, _ = http_get(
                svc, f"/local?graph={spec}&gamma=0.3&refresh=1")
            assert code == 200  # stale-while-revalidate
            assert _wait_until(lambda: entry.breaker.state == "open")
            # Hammer the open index the way a client would; none of
            # these handler hits may consume the probe permit.
            for _ in range(5):
                code, body, _ = http_get(
                    svc, f"/local?graph={spec}&gamma=0.3&refresh=1")
                assert code == 200 and body["degraded"] is True
                time.sleep(0.05)
            del svc.__dict__["run_build"]  # heal the build path
            assert _wait_until(lambda: entry.breaker.state == "closed")
            code, body, _ = http_get(svc, f"/local?graph={spec}&gamma=0.3")
            assert code == 200
            assert body["breaker"] == "closed"

    def test_drop_connection_fault_leaves_server_healthy(self, tmp_path):
        plan = FaultPlan().drop_connection()
        rec = Recorder()
        with live_service(tmp_path / "state",
                          progress=chain_hooks(plan, rec)) as svc:
            host, port = svc.address
            with pytest.raises((ConnectionError, urllib.error.URLError,
                                OSError)):
                urllib.request.urlopen(
                    f"http://{host}:{port}/healthz", timeout=10)
            assert ("drop_connection", 0) in plan.fired
            code, body, _ = http_get(svc, "/healthz")
            assert code == 200 and body["status"] == "ok"
            assert svc.stats["dropped_writes"] == 1
            dropped = [e for e in rec.find("service-response")
                       if e.detail.get("dropped")]
            assert dropped

    def test_slow_client_holds_slot_and_sheds_followers(self, tmp_path):
        plan = FaultPlan().slow_client(1.0)
        with live_service(tmp_path / "state", progress=plan,
                          max_inflight=1, max_queue=0) as svc:
            results = {}

            def stalled():
                results["stalled"] = http_get(svc, "/healthz")

            t = threading.Thread(target=stalled, daemon=True)
            t.start()
            assert _wait_until(lambda: svc.admission.inflight == 1,
                               timeout=5.0)
            code, body, headers = http_get(svc, "/healthz")
            assert code == 503
            assert body["error"]["type"] == "OverloadedError"
            assert "Retry-After" in headers
            t.join(timeout=10.0)
            assert results["stalled"][0] == 200
            code, _, _ = http_get(svc, "/healthz")
            assert code == 200
            assert svc.admission.stats["shed_queue_full"] >= 1

    def test_refuse_accept_fault_then_recovers(self, tmp_path):
        plan = FaultPlan().refuse_accept()
        rec = Recorder()
        with live_service(tmp_path / "state",
                          progress=chain_hooks(plan, rec)) as svc:
            host, port = svc.address
            with pytest.raises((ConnectionError, urllib.error.URLError,
                                OSError)):
                urllib.request.urlopen(
                    f"http://{host}:{port}/healthz", timeout=10)
            assert ("refuse_accept", 0) in plan.fired
            code, _, _ = http_get(svc, "/healthz")
            assert code == 200
            shed = rec.find("service-shed")
            assert any(e.detail["reason"] == "refuse-accept-fault"
                       for e in shed)

    def test_watchdog_pressure_sheds_with_503(self, tmp_path):
        cfg_extra = {"memory_probe": lambda: 10 * 2**30}  # 10 GiB "RSS"
        with live_service(tmp_path / "state", watchdog_interval=0.0,
                          max_memory_mb=64.0, extra=cfg_extra) as svc:
            code, body, headers = http_get(svc, "/indexes")
            assert code == 503
            assert body["error"]["type"] == "OverloadedError"
            assert "memory" in body["error"]["message"]
            assert "Retry-After" in headers
            # /healthz is exempt from pressure shedding — monitoring
            # must not go blind exactly when operators need it — and
            # reports the pressure state in its payload instead.
            code, body, _ = http_get(svc, "/healthz")
            assert code == 200
            assert body["status"] == "ok"
            assert body["pressure"] == "memory"

    def test_drain_then_warm_restart_is_byte_identical(
            self, tmp_path, example_path):
        spec = quote(str(example_path), safe="")
        query = (f"/global?graph={spec}&gamma=0.3&epsilon=0.5&delta=0.5"
                 "&samples=30")

        # Uninterrupted baseline.
        with live_service(tmp_path / "a", batch_size=10) as svc:
            code, body, _ = http_get(svc, query + "&wait=1&deadline=60")
            assert code == 200
            token = body["token"]
            baseline = svc.store.get(token).result_path.read_bytes()

        # Same build, drained mid-sampling.
        rec = Recorder()
        with live_service(tmp_path / "b", progress=rec, batch_size=10,
                          build_throttle=0.2) as svc:
            code, _, _ = http_get(svc, query)
            assert code == 503
            assert _wait_until(lambda: rec.find("sample-batch"))
            code = svc.drain(signal.SIGTERM)
            assert code == 143
            entry = svc.store.get(token)
            assert entry.status == "interrupted"
            assert (entry.checkpoint_dir / "manifest.json").exists()
            drain = rec.find("service-drain")
            assert [e.detail["action"] for e in drain] == [
                "begin", "idle", "done"]

        # Warm restart resumes the checkpointed build byte-identically.
        with live_service(tmp_path / "b", batch_size=10) as svc:
            assert _wait_until(
                lambda: svc.store.get(token).status == "ready")
            resumed = svc.store.get(token).result_path.read_bytes()
        assert resumed == baseline

    def test_draining_server_refuses_new_connections(self, tmp_path):
        with live_service(tmp_path / "state") as svc:
            code, _, _ = http_get(svc, "/healthz")
            assert code == 200
            svc.drain(signal.SIGINT)
            host, port = svc.address
            with pytest.raises((ConnectionError, urllib.error.URLError,
                                OSError)):
                urllib.request.urlopen(
                    f"http://{host}:{port}/healthz", timeout=5)


class TestServeCli:
    def test_serve_flags_reach_config(self, tmp_path, monkeypatch):
        import repro.service as service_module
        from repro.cli import main

        captured = {}

        def fake_serve(config, progress=None, *, ready=None):
            captured["config"] = config
            return 0

        monkeypatch.setattr(service_module, "serve", fake_serve)
        code = main([
            "serve", "--state-dir", str(tmp_path / "state"),
            "--max-deadline", "12", "--backoff-cap", "7.5",
            "--min-free", "128",
        ])
        assert code == 0
        cfg = captured["config"]
        assert cfg.max_deadline == 12.0
        assert cfg.backoff_cap == 7.5
        assert cfg.min_free_mb == 128.0
