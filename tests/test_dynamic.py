"""Unit tests for dynamic k-truss maintenance (deterministic + local)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    EdgeNotFoundError,
    ParameterError,
    ProbabilisticGraph,
    edge_key,
    k_truss_subgraph,
    local_truss_decomposition,
)
from repro.truss.dynamic import DynamicLocalTruss, DynamicTruss
from repro.graphs.generators import complete_graph
from tests.conftest import random_probabilistic_graph
from tests.strategies import DYADIC_PROBS, dyadic_random_graph


def _static_truss_edges(graph, k):
    sub = k_truss_subgraph(graph, k)
    return {edge_key(u, v) for u, v in sub.edges()}


def _static_local_edges(graph, k, gamma):
    result = local_truss_decomposition(graph, gamma)
    return {e for e, tau in result.trussness.items() if tau >= k}


class TestDynamicTruss:
    def test_initial_state_matches_static(self):
        for seed in range(4):
            g = random_probabilistic_graph(18, 0.3, seed)
            for k in (3, 4):
                dt = DynamicTruss(g, k)
                assert dt.truss_edges() == _static_truss_edges(g, k)

    def test_invalid_k(self, triangle):
        with pytest.raises(ParameterError):
            DynamicTruss(triangle, 1)

    def test_deletion_cascade(self):
        g = complete_graph(4)
        dt = DynamicTruss(g, 4)
        assert len(dt.truss_edges()) == 6
        dt.remove_edge(0, 1)
        # K4 minus an edge has no 4-truss.
        assert dt.truss_edges() == set()

    def test_deletion_outside_truss_is_noop(self):
        g = complete_graph(4)
        g.add_edge(0, 99, 1.0)
        dt = DynamicTruss(g, 4)
        before = dt.truss_edges()
        dt.remove_edge(0, 99)
        assert dt.truss_edges() == before

    def test_remove_missing_edge(self, triangle):
        dt = DynamicTruss(triangle, 3)
        with pytest.raises(EdgeNotFoundError):
            dt.remove_edge("a", "zzz")

    def test_insertion_completes_truss(self):
        g = complete_graph(4)
        g.remove_edge(0, 1)
        dt = DynamicTruss(g, 4)
        assert dt.truss_edges() == set()
        dt.insert_edge(0, 1)
        assert len(dt.truss_edges()) == 6

    def test_random_update_stream_matches_static(self):
        rng = np.random.default_rng(3)
        g = random_probabilistic_graph(14, 0.4, 7)
        k = 3
        dt = DynamicTruss(g, k)
        shadow = g.copy()
        for step in range(40):
            edges = list(shadow.edges())
            if edges and rng.random() < 0.55:
                u, v = edges[int(rng.integers(len(edges)))]
                dt.remove_edge(u, v)
                shadow.remove_edge(u, v)
            else:
                u = int(rng.integers(14))
                v = int(rng.integers(14))
                if u == v:
                    continue
                if shadow.has_node(u) and shadow.has_node(v) and \
                        shadow.has_edge(u, v):
                    continue
                dt.insert_edge(u, v, 1.0)
                shadow.add_edge(u, v, 1.0)
            assert dt.truss_edges() == _static_truss_edges(shadow, k), (
                f"divergence at step {step}"
            )

    def test_maximal_trusses_components(self):
        g = ProbabilisticGraph()
        for base in (0, 10):
            for i in range(4):
                for j in range(i):
                    g.add_edge(base + i, base + j, 1.0)
        dt = DynamicTruss(g, 4)
        assert len(dt.maximal_trusses()) == 2

    def test_in_truss_accessor(self):
        g = complete_graph(4)
        g.add_edge(0, 99, 1.0)
        dt = DynamicTruss(g, 3)
        assert dt.in_truss(0, 1)
        assert not dt.in_truss(0, 99)


class TestDynamicLocalTruss:
    def test_initial_state_matches_algorithm1(self):
        for seed in range(4):
            g = random_probabilistic_graph(14, 0.4, seed)
            for k, gamma in ((3, 0.3), (4, 0.15)):
                dlt = DynamicLocalTruss(g, k, gamma)
                assert dlt.truss_edges() == _static_local_edges(g, k, gamma)

    def test_invalid_parameters(self, triangle):
        with pytest.raises(ParameterError):
            DynamicLocalTruss(triangle, 1, 0.5)
        with pytest.raises(ParameterError):
            DynamicLocalTruss(triangle, 3, 1.5)

    def test_deletion_cascade_matches_static(self):
        rng = np.random.default_rng(11)
        g = random_probabilistic_graph(14, 0.45, 5)
        k, gamma = 3, 0.2
        dlt = DynamicLocalTruss(g, k, gamma)
        shadow = g.copy()
        edges = list(shadow.edges())
        rng.shuffle(edges)
        for u, v in edges[:10]:
            dlt.remove_edge(u, v)
            shadow.remove_edge(u, v)
            assert dlt.truss_edges() == _static_local_edges(shadow, k, gamma)

    def test_insertion_matches_static(self):
        g = complete_graph(4, 0.9)
        g.remove_edge(0, 1)
        k, gamma = 4, 0.3
        dlt = DynamicLocalTruss(g, k, gamma)
        assert dlt.truss_edges() == set()
        dlt.insert_edge(0, 1, 0.9)
        shadow = complete_graph(4, 0.9)
        assert dlt.truss_edges() == _static_local_edges(shadow, k, gamma)

    def test_reweighting_edge(self):
        g = complete_graph(4, 0.9)
        k, gamma = 4, 0.3
        dlt = DynamicLocalTruss(g, k, gamma)
        assert len(dlt.truss_edges()) == 6
        # Crushing one edge's probability evicts the whole K4 at k=4.
        dlt.insert_edge(0, 1, 0.01)
        shadow = complete_graph(4, 0.9)
        shadow.set_probability(0, 1, 0.01)
        assert dlt.truss_edges() == _static_local_edges(shadow, k, gamma)

    def test_random_update_stream_matches_static(self):
        rng = np.random.default_rng(9)
        g = random_probabilistic_graph(12, 0.45, 2)
        k, gamma = 3, 0.25
        dlt = DynamicLocalTruss(g, k, gamma)
        shadow = g.copy()
        for step in range(30):
            edges = list(shadow.edges())
            if edges and rng.random() < 0.55:
                u, v = edges[int(rng.integers(len(edges)))]
                dlt.remove_edge(u, v)
                shadow.remove_edge(u, v)
            else:
                u = int(rng.integers(12))
                v = int(rng.integers(12))
                if u == v or (
                    shadow.has_node(u) and shadow.has_node(v)
                    and shadow.has_edge(u, v)
                ):
                    continue
                p = float(rng.uniform(0.1, 1.0))
                dlt.insert_edge(u, v, p)
                shadow.add_edge(u, v, p)
            assert dlt.truss_edges() == _static_local_edges(shadow, k, gamma), (
                f"divergence at step {step}"
            )

    def test_remove_missing_edge(self, triangle):
        dlt = DynamicLocalTruss(triangle, 3, 0.2)
        with pytest.raises(EdgeNotFoundError):
            dlt.remove_edge("a", "zzz")

    def test_accessors(self, k4):
        dlt = DynamicLocalTruss(k4, 3, 0.2)
        assert dlt.k == 3
        assert dlt.gamma == 0.2
        assert dlt.in_truss("a", "b")
        assert len(dlt.maximal_trusses()) == 1


class TestTypedEdgeErrors:
    """Regression tests: duplicate / self-loop edges raise ParameterError.

    The graph layer and the dynamic layer used to disagree here: the
    graph classified a self-loop removal as a *missing edge* while the
    dynamic layer silently re-weighted duplicate inserts even for the
    deterministic truss, where there is no weight to refresh.
    """

    def test_graph_remove_self_loop(self, triangle):
        with pytest.raises(ParameterError):
            triangle.remove_edge("a", "a")

    def test_graph_remove_missing_still_edge_not_found(self, triangle):
        with pytest.raises(EdgeNotFoundError):
            triangle.remove_edge("a", "zzz")

    def test_dynamic_truss_duplicate_insert_rejected(self):
        dt = DynamicTruss(complete_graph(4), 3)
        before = dt.truss_edges()
        with pytest.raises(ParameterError):
            dt.insert_edge(0, 1)
        # the failed insert must not have perturbed the maintained truss
        assert dt.truss_edges() == before

    def test_dynamic_truss_self_loop_insert_rejected(self):
        dt = DynamicTruss(complete_graph(4), 3)
        with pytest.raises(ParameterError):
            dt.insert_edge(2, 2)

    def test_dynamic_local_self_loop_insert_rejected(self):
        dlt = DynamicLocalTruss(complete_graph(4, 0.9), 3, 0.2)
        with pytest.raises(ParameterError):
            dlt.insert_edge(1, 1, 0.5)

    def test_dynamic_local_duplicate_insert_reweights(self):
        # Contrast with DynamicTruss: the probabilistic variant keeps
        # its insert-or-reweight semantics, because refreshing an
        # edge's probability is a meaningful update there.
        dlt = DynamicLocalTruss(complete_graph(4, 0.9), 3, 0.2)
        dlt.insert_edge(0, 1, 0.75)  # no raise
        shadow = complete_graph(4, 0.9)
        shadow.set_probability(0, 1, 0.75)
        assert dlt.truss_edges() == _static_local_edges(shadow, 3, 0.2)


#: One churn step: an op selector (0 = insert, 1 = remove,
#: 2 = probability change), an edge/node selector token, and a dyadic
#: probability. Dyadic weights keep the recompute comparison exact.
_CHURN_OPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=10 ** 6),
        st.sampled_from(DYADIC_PROBS),
    ),
    min_size=1, max_size=10,
)


class TestChurnBattery:
    """Random update streams with update-vs-recompute after every step."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=60), ops=_CHURN_OPS)
    def test_dynamic_truss_churn(self, seed, ops):
        k = 3
        g = dyadic_random_graph(9, 0.4, seed)
        dt = DynamicTruss(g, k)
        shadow = g.copy()
        nodes = sorted(shadow.nodes())
        for op, sel, _p in ops:
            edges = sorted(shadow.edges())
            if op == 1 and edges:
                u, v = edges[sel % len(edges)]
                dt.remove_edge(u, v)
                shadow.remove_edge(u, v)
            else:
                u = nodes[sel % len(nodes)]
                v = nodes[(sel // 13) % len(nodes)]
                if u == v:
                    continue
                if shadow.has_edge(u, v):
                    # duplicate inserts are rejected and must leave the
                    # maintained truss untouched
                    before = dt.truss_edges()
                    with pytest.raises(ParameterError):
                        dt.insert_edge(u, v, 1.0)
                    assert dt.truss_edges() == before
                    continue
                dt.insert_edge(u, v, 1.0)
                shadow.add_edge(u, v, 1.0)
            assert dt.truss_edges() == _static_truss_edges(shadow, k)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=60), ops=_CHURN_OPS)
    def test_dynamic_local_truss_churn(self, seed, ops):
        k, gamma = 3, 0.3
        g = dyadic_random_graph(8, 0.45, seed)
        dlt = DynamicLocalTruss(g, k, gamma)
        shadow = g.copy()
        nodes = sorted(shadow.nodes())
        for op, sel, p in ops:
            edges = sorted(shadow.edges())
            if op == 1 and edges:
                u, v = edges[sel % len(edges)]
                dlt.remove_edge(u, v)
                shadow.remove_edge(u, v)
            elif op == 2 and edges:
                u, v = edges[sel % len(edges)]
                dlt.insert_edge(u, v, p)
                shadow.set_probability(u, v, p)
            else:
                u = nodes[sel % len(nodes)]
                v = nodes[(sel // 13) % len(nodes)]
                if u == v or shadow.has_edge(u, v):
                    continue
                dlt.insert_edge(u, v, p)
                shadow.add_edge(u, v, p)
            assert dlt.truss_edges() == _static_local_edges(shadow, k, gamma)
