"""Unit tests for dynamic k-truss maintenance (deterministic + local)."""

import numpy as np
import pytest

from repro import (
    EdgeNotFoundError,
    ParameterError,
    ProbabilisticGraph,
    edge_key,
    k_truss_subgraph,
    local_truss_decomposition,
)
from repro.truss.dynamic import DynamicLocalTruss, DynamicTruss
from repro.graphs.generators import complete_graph
from tests.conftest import random_probabilistic_graph


def _static_truss_edges(graph, k):
    sub = k_truss_subgraph(graph, k)
    return {edge_key(u, v) for u, v in sub.edges()}


def _static_local_edges(graph, k, gamma):
    result = local_truss_decomposition(graph, gamma)
    return {e for e, tau in result.trussness.items() if tau >= k}


class TestDynamicTruss:
    def test_initial_state_matches_static(self):
        for seed in range(4):
            g = random_probabilistic_graph(18, 0.3, seed)
            for k in (3, 4):
                dt = DynamicTruss(g, k)
                assert dt.truss_edges() == _static_truss_edges(g, k)

    def test_invalid_k(self, triangle):
        with pytest.raises(ParameterError):
            DynamicTruss(triangle, 1)

    def test_deletion_cascade(self):
        g = complete_graph(4)
        dt = DynamicTruss(g, 4)
        assert len(dt.truss_edges()) == 6
        dt.remove_edge(0, 1)
        # K4 minus an edge has no 4-truss.
        assert dt.truss_edges() == set()

    def test_deletion_outside_truss_is_noop(self):
        g = complete_graph(4)
        g.add_edge(0, 99, 1.0)
        dt = DynamicTruss(g, 4)
        before = dt.truss_edges()
        dt.remove_edge(0, 99)
        assert dt.truss_edges() == before

    def test_remove_missing_edge(self, triangle):
        dt = DynamicTruss(triangle, 3)
        with pytest.raises(EdgeNotFoundError):
            dt.remove_edge("a", "zzz")

    def test_insertion_completes_truss(self):
        g = complete_graph(4)
        g.remove_edge(0, 1)
        dt = DynamicTruss(g, 4)
        assert dt.truss_edges() == set()
        dt.insert_edge(0, 1)
        assert len(dt.truss_edges()) == 6

    def test_random_update_stream_matches_static(self):
        rng = np.random.default_rng(3)
        g = random_probabilistic_graph(14, 0.4, 7)
        k = 3
        dt = DynamicTruss(g, k)
        shadow = g.copy()
        for step in range(40):
            edges = list(shadow.edges())
            if edges and rng.random() < 0.55:
                u, v = edges[int(rng.integers(len(edges)))]
                dt.remove_edge(u, v)
                shadow.remove_edge(u, v)
            else:
                u = int(rng.integers(14))
                v = int(rng.integers(14))
                if u == v:
                    continue
                if shadow.has_node(u) and shadow.has_node(v) and \
                        shadow.has_edge(u, v):
                    continue
                dt.insert_edge(u, v, 1.0)
                shadow.add_edge(u, v, 1.0)
            assert dt.truss_edges() == _static_truss_edges(shadow, k), (
                f"divergence at step {step}"
            )

    def test_maximal_trusses_components(self):
        g = ProbabilisticGraph()
        for base in (0, 10):
            for i in range(4):
                for j in range(i):
                    g.add_edge(base + i, base + j, 1.0)
        dt = DynamicTruss(g, 4)
        assert len(dt.maximal_trusses()) == 2

    def test_in_truss_accessor(self):
        g = complete_graph(4)
        g.add_edge(0, 99, 1.0)
        dt = DynamicTruss(g, 3)
        assert dt.in_truss(0, 1)
        assert not dt.in_truss(0, 99)


class TestDynamicLocalTruss:
    def test_initial_state_matches_algorithm1(self):
        for seed in range(4):
            g = random_probabilistic_graph(14, 0.4, seed)
            for k, gamma in ((3, 0.3), (4, 0.15)):
                dlt = DynamicLocalTruss(g, k, gamma)
                assert dlt.truss_edges() == _static_local_edges(g, k, gamma)

    def test_invalid_parameters(self, triangle):
        with pytest.raises(ParameterError):
            DynamicLocalTruss(triangle, 1, 0.5)
        with pytest.raises(ParameterError):
            DynamicLocalTruss(triangle, 3, 1.5)

    def test_deletion_cascade_matches_static(self):
        rng = np.random.default_rng(11)
        g = random_probabilistic_graph(14, 0.45, 5)
        k, gamma = 3, 0.2
        dlt = DynamicLocalTruss(g, k, gamma)
        shadow = g.copy()
        edges = list(shadow.edges())
        rng.shuffle(edges)
        for u, v in edges[:10]:
            dlt.remove_edge(u, v)
            shadow.remove_edge(u, v)
            assert dlt.truss_edges() == _static_local_edges(shadow, k, gamma)

    def test_insertion_matches_static(self):
        g = complete_graph(4, 0.9)
        g.remove_edge(0, 1)
        k, gamma = 4, 0.3
        dlt = DynamicLocalTruss(g, k, gamma)
        assert dlt.truss_edges() == set()
        dlt.insert_edge(0, 1, 0.9)
        shadow = complete_graph(4, 0.9)
        assert dlt.truss_edges() == _static_local_edges(shadow, k, gamma)

    def test_reweighting_edge(self):
        g = complete_graph(4, 0.9)
        k, gamma = 4, 0.3
        dlt = DynamicLocalTruss(g, k, gamma)
        assert len(dlt.truss_edges()) == 6
        # Crushing one edge's probability evicts the whole K4 at k=4.
        dlt.insert_edge(0, 1, 0.01)
        shadow = complete_graph(4, 0.9)
        shadow.set_probability(0, 1, 0.01)
        assert dlt.truss_edges() == _static_local_edges(shadow, k, gamma)

    def test_random_update_stream_matches_static(self):
        rng = np.random.default_rng(9)
        g = random_probabilistic_graph(12, 0.45, 2)
        k, gamma = 3, 0.25
        dlt = DynamicLocalTruss(g, k, gamma)
        shadow = g.copy()
        for step in range(30):
            edges = list(shadow.edges())
            if edges and rng.random() < 0.55:
                u, v = edges[int(rng.integers(len(edges)))]
                dlt.remove_edge(u, v)
                shadow.remove_edge(u, v)
            else:
                u = int(rng.integers(12))
                v = int(rng.integers(12))
                if u == v or (
                    shadow.has_node(u) and shadow.has_node(v)
                    and shadow.has_edge(u, v)
                ):
                    continue
                p = float(rng.uniform(0.1, 1.0))
                dlt.insert_edge(u, v, p)
                shadow.add_edge(u, v, p)
            assert dlt.truss_edges() == _static_local_edges(shadow, k, gamma), (
                f"divergence at step {step}"
            )

    def test_remove_missing_edge(self, triangle):
        dlt = DynamicLocalTruss(triangle, 3, 0.2)
        with pytest.raises(EdgeNotFoundError):
            dlt.remove_edge("a", "zzz")

    def test_accessors(self, k4):
        dlt = DynamicLocalTruss(k4, 3, 0.2)
        assert dlt.k == 3
        assert dlt.gamma == 0.2
        assert dlt.in_truss("a", "b")
        assert len(dlt.maximal_trusses()) == 1
