"""Harness semantics: equivalence, degradation, and fallback."""

from __future__ import annotations

import pytest

from repro.core.global_decomp import global_truss_decomposition
from repro.core.local import local_truss_decomposition
from repro.core.reliability import network_reliability_mc
from repro.exceptions import CheckpointError
from repro.graphs.generators import gnp_graph, running_example
from repro.graphs.sampling import (
    WorldSampleSet,
    hoeffding_epsilon,
    hoeffding_sample_size,
)
from repro.runtime import (
    Budget,
    run_global,
    run_local,
    run_reliability,
    serialize_global_result,
    serialize_local_result,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestEquivalence:
    """The harness changes *how* runs execute, never *what* they compute."""

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_batched_sampling_matches_single_shot(self, seed):
        graph = running_example()
        one_shot = WorldSampleSet.from_graph(graph, 100, seed=seed)
        batched = WorldSampleSet.from_graph(graph, 100, seed=seed,
                                            batch_size=17)
        for u, v in graph.edges():
            assert (one_shot.edge_bits(u, v) == batched.edge_bits(u, v)).all()

    @pytest.mark.parametrize("method", ["gbu", "gtd"])
    def test_global_harness_matches_direct_call(self, method):
        graph = running_example()
        direct = global_truss_decomposition(
            graph, 0.3, method=method, seed=11, n_samples=80)
        partial = run_global(graph, 0.3, method=method, seed=11,
                             n_samples=80, batch_size=25)
        assert partial.complete and not partial.degraded
        assert (serialize_global_result(partial.result)
                == serialize_global_result(direct))

    def test_local_harness_matches_direct_call(self):
        graph = gnp_graph(25, 0.3, seed=3)
        direct = local_truss_decomposition(graph, 0.4)
        partial = run_local(graph, 0.4)
        assert partial.complete
        assert (serialize_local_result(partial.result)
                == serialize_local_result(direct))

    @pytest.mark.parametrize("seed", [0, 5])
    def test_reliability_harness_matches_direct_call(self, seed):
        graph = running_example()
        direct = network_reliability_mc(graph, n_samples=200, seed=seed)
        partial = run_reliability(graph, n_samples=200, batch_size=50,
                                  seed=seed)
        assert partial.complete
        assert partial.result == pytest.approx(direct)


class TestDegradation:
    def test_zero_deadline_still_returns_a_result(self):
        graph = running_example()
        partial = run_global(graph, 0.3, seed=1, n_samples=100,
                             batch_size=25, budget=Budget(deadline=0.0))
        assert partial.degraded and not partial.complete
        assert partial.n_samples_drawn >= 25  # one batch always lands
        assert "deadline" in partial.reason

    def test_epsilon_widens_per_hoeffding_on_truncation(self):
        graph = running_example()
        partial = run_global(graph, 0.3, seed=1, n_samples=100,
                             batch_size=25, budget=Budget(max_samples=50))
        drawn = partial.n_samples_drawn
        assert drawn < 100
        assert partial.effective_epsilon == pytest.approx(
            hoeffding_epsilon(drawn, 0.1))
        assert partial.result.epsilon == pytest.approx(
            partial.effective_epsilon)

    def test_full_run_keeps_requested_epsilon(self):
        graph = running_example()
        partial = run_global(graph, 0.3, seed=1, epsilon=0.1, delta=0.1)
        assert partial.n_samples_requested == hoeffding_sample_size(0.1, 0.1)
        assert partial.effective_epsilon == 0.1

    def test_summary_mentions_degradation(self):
        graph = running_example()
        partial = run_global(graph, 0.3, seed=1, n_samples=100,
                             batch_size=25, budget=Budget(deadline=0.0))
        line = partial.summary()
        assert "degraded" in line and "epsilon_effective" in line

    def test_deadline_overshoot_is_bounded_by_one_boundary(self):
        """A breach is detected at the first boundary past the deadline."""
        clock = FakeClock()
        budget = Budget(deadline=10.0, clock=clock)
        graph = running_example()

        def tick(event):
            clock.now += 4.0  # deadline crossed between boundaries

        partial = run_global(graph, 0.3, seed=1, n_samples=100,
                             batch_size=25, budget=budget, progress=tick)
        assert partial.degraded
        # Sampling crossed the deadline after the third batch boundary
        # (elapsed 12 > 10) and stopped right there: exactly three of
        # the four batches were drawn.
        assert partial.n_samples_drawn == 75
        # Each stage stops at its first boundary past the deadline, so
        # the total overshoot is bounded by one tick per stage.
        assert budget.elapsed() <= 10.0 + 2 * 4.0 + 1e-9


class TestGtdFallback:
    def test_soft_deadline_falls_back_to_gbu(self):
        graph = running_example()
        # gtd_fraction=0 gives GTD a zero share of the remaining
        # deadline, so its first explored state trips the soft budget
        # and the harness degrades to GBU deterministically.
        partial = run_global(graph, 0.3, method="gtd", seed=11,
                             n_samples=80, budget=Budget(deadline=3600.0),
                             gtd_fraction=0.0)
        assert partial.fallback == "gtd->gbu"
        assert partial.degraded
        assert partial.result.method == "gbu"
        pure_gbu = run_global(graph, 0.3, method="gbu", seed=11, n_samples=80)
        assert (serialize_global_result(partial.result)
                == serialize_global_result(pure_gbu.result))

    def test_state_explosion_falls_back_to_gbu(self):
        graph = running_example()
        partial = run_global(graph, 0.3, method="gtd", seed=11,
                             n_samples=80, max_states=1)
        assert partial.fallback == "gtd->gbu"
        assert partial.result.method == "gbu"

    def test_hard_deadline_breach_during_gtd_is_final(self):
        clock = FakeClock()
        budget = Budget(deadline=10.0, clock=clock)
        graph = running_example()
        clock_bump = [0.0]

        def tick(event):
            clock.now += clock_bump[0]
            if event.phase == "global-level":
                clock_bump[0] = 100.0  # hard breach once decomposition starts

        partial = run_global(graph, 0.3, method="gtd", seed=11,
                             n_samples=80, budget=budget, progress=tick,
                             gtd_fraction=0.9)
        assert partial.degraded and not partial.complete
        assert partial.fallback is None  # hard budget: no second chance


class TestLocalRun:
    def test_budget_breach_salvages_final_prefix(self):
        graph = gnp_graph(30, 0.3, seed=0)
        partial = run_local(graph, 0.3, budget=Budget(deadline=0.0))
        assert partial.degraded and not partial.complete
        full = run_local(graph, 0.3).result.trussness
        for edge, tau in partial.result.trussness.items():
            assert full[edge] == tau

    def test_checkpoint_memoises_finished_result(self, tmp_path):
        graph = gnp_graph(20, 0.3, seed=1)
        first = run_local(graph, 0.4, checkpoint_dir=tmp_path)
        resumed = run_local(graph, 0.4, checkpoint_dir=tmp_path, resume=True)
        assert resumed.complete
        assert (serialize_local_result(resumed.result)
                == serialize_local_result(first.result))

    def test_checkpoint_refuses_other_gamma(self, tmp_path):
        graph = gnp_graph(20, 0.3, seed=1)
        run_local(graph, 0.4, checkpoint_dir=tmp_path)
        with pytest.raises(CheckpointError, match="different parameters"):
            run_local(graph, 0.7, checkpoint_dir=tmp_path, resume=True)


class TestCrossProcessDeterminism:
    def test_gbu_result_is_hash_seed_independent(self):
        """Checkpoint resume runs in a fresh process with a fresh
        PYTHONHASHSEED, so results must not depend on set iteration
        order (regression: GBU apex choice once did)."""
        import os
        import pathlib
        import subprocess
        import sys

        repo_root = pathlib.Path(__file__).resolve().parent.parent
        script = (
            "from repro.graphs.generators import running_example\n"
            "from repro.runtime import run_global, serialize_global_result\n"
            "import hashlib\n"
            "p = run_global(running_example(), 0.1, method='gbu', seed=3,\n"
            "               n_samples=200)\n"
            "print(hashlib.sha256(serialize_global_result(p.result))"
            ".hexdigest())\n"
        )
        digests = set()
        for hash_seed in ("0", "1", "1050100594"):
            env = dict(os.environ,
                       PYTHONHASHSEED=hash_seed,
                       PYTHONPATH=str(repo_root / "src"))
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
                env=env, cwd=repo_root,
            )
            digests.add(proc.stdout.strip())
        assert len(digests) == 1


class TestCheckpointSeedDiscipline:
    def test_generator_seed_with_checkpoint_is_rejected(self, tmp_path):
        import numpy as np

        graph = running_example()
        with pytest.raises(CheckpointError, match="reproducible seed"):
            run_global(graph, 0.3, seed=np.random.default_rng(0),
                       checkpoint_dir=tmp_path)
