"""Differential cross-checks between independent implementations.

Three families of redundant computations the code base carries are
compared on shared seeded inputs (``tests/strategies.py``):

* **GTD vs. exhaustive enumeration** — Algorithm 4 is exact *with
  respect to its sample set*; feeding it the exact world distribution
  (:func:`~tests.strategies.exhaustive_sample_set`, dyadic
  probabilities) removes the sampling error entirely, so its answers
  must equal :func:`~repro.core.exact_enum.exact_global_decomposition`
  for every non-dyadic gamma. The same inputs run through the inline
  frontier-sharded executor path (``workers=1``) must serialise to the
  same bytes as the serial DFS.
* **Support DP vs. brute force** — Algorithm 2's O(k^2) dynamic program
  against the O(2^k) enumeration oracle, exact (``==``) on dyadic
  factor lists and within float tolerance on arbitrary ones.
* **GBU as a lower bound of GTD** — the heuristic may miss answers but
  must never report anything the exact search would not contain: every
  GBU truss is an edge-subgraph of some GTD truss at the same level,
  when both run against one shared sample set.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact_enum import exact_global_decomposition
from repro.core.global_decomp import global_truss_decomposition
from repro.core.support_prob import support_pmf, support_pmf_bruteforce
from repro.graphs.probabilistic import edge_key
from repro.runtime.result import serialize_global_result
from tests.strategies import (
    dyadic_probabilities,
    dyadic_random_graph,
    exhaustive_sample_set,
    q_lists,
)

#: Non-dyadic thresholds: every exact alpha is a multiple of 1/65536,
#: so no alpha can tie with (or sit inside the 1e-9 guard band below)
#: any of these gammas — the Monte-Carlo threshold and the exact
#: Definition 3 test then classify identically.
GAMMAS = (0.3, 0.55, 0.7)


def _small_dyadic_graphs(first_seed, want, max_edges=8):
    """Seeded dyadic graphs with between 3 and ``max_edges`` edges."""
    out = []
    seed = first_seed
    while len(out) < want:
        g = dyadic_random_graph(6, 0.45, seed)
        if 3 <= g.number_of_edges() <= max_edges:
            out.append((seed, g))
        seed += 1
    return out


def _canon(trusses):
    """Order-free form of a truss list: sorted tuples of edge keys."""
    return sorted(
        tuple(sorted(edge_key(u, v) for u, v in t.edges()))
        for t in trusses
    )


def _levels(trusses_by_k):
    return {k: _canon(ts) for k, ts in trusses_by_k.items() if ts}


class TestGTDAgainstExhaustiveEnumeration:
    @pytest.mark.parametrize(
        "seed,graph", _small_dyadic_graphs(0, 4),
        ids=lambda v: str(v) if isinstance(v, int) else "",
    )
    def test_gtd_equals_exact_decomposition(self, seed, graph):
        samples = exhaustive_sample_set(graph)
        for gamma in GAMMAS:
            exact = exact_global_decomposition(graph, gamma)
            result = global_truss_decomposition(
                graph, gamma, method="gtd", samples=samples, seed=0,
                max_states=200_000,
            )
            assert _levels(result.trusses) == _levels(exact), (
                f"seed={seed} gamma={gamma}"
            )

    @pytest.mark.parametrize(
        "seed,graph", _small_dyadic_graphs(0, 4),
        ids=lambda v: str(v) if isinstance(v, int) else "",
    )
    def test_inline_frontier_path_matches_serial_bytes(self, seed, graph):
        samples = exhaustive_sample_set(graph)
        for gamma in GAMMAS:
            serial = global_truss_decomposition(
                graph, gamma, method="gtd", samples=samples, seed=0,
                max_states=200_000,
            )
            inline = global_truss_decomposition(
                graph, gamma, method="gtd", samples=samples, seed=0,
                max_states=200_000, workers=1,
            )
            assert (serialize_global_result(serial)
                    == serialize_global_result(inline))

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "seed,graph", _small_dyadic_graphs(100, 12),
        ids=lambda v: str(v) if isinstance(v, int) else "",
    )
    def test_gtd_equals_exact_decomposition_sweep(self, seed, graph):
        samples = exhaustive_sample_set(graph)
        for gamma in GAMMAS:
            exact = exact_global_decomposition(graph, gamma)
            result = global_truss_decomposition(
                graph, gamma, method="gtd", samples=samples, seed=0,
                max_states=200_000,
            )
            assert _levels(result.trusses) == _levels(exact), (
                f"seed={seed} gamma={gamma}"
            )


class TestSupportPMFDifferential:
    @given(st.lists(dyadic_probabilities, min_size=0, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_dp_exactly_equals_bruteforce_on_dyadic_factors(self, qs):
        # Dyadic factors make every product exact, so the DP and the
        # enumeration must agree bit for bit, not just within tolerance.
        assert list(support_pmf(qs)) == list(support_pmf_bruteforce(qs))

    @given(q_lists)
    @settings(max_examples=60, deadline=None)
    def test_dp_matches_bruteforce_within_float_tolerance(self, qs):
        assert np.allclose(support_pmf(qs), support_pmf_bruteforce(qs),
                           atol=1e-12)


class TestGBULowerBoundsGTD:
    @pytest.mark.parametrize(
        "seed,graph", _small_dyadic_graphs(200, 4),
        ids=lambda v: str(v) if isinstance(v, int) else "",
    )
    def test_every_gbu_truss_is_inside_some_gtd_truss(self, seed, graph):
        samples = exhaustive_sample_set(graph)
        for gamma in GAMMAS:
            gtd = global_truss_decomposition(
                graph, gamma, method="gtd", samples=samples, seed=3,
                max_states=200_000,
            )
            gbu = global_truss_decomposition(
                graph, gamma, method="gbu", samples=samples, seed=3,
            )
            for k, trusses in gbu.trusses.items():
                exact_level = [
                    {edge_key(u, v) for u, v in t.edges()}
                    for t in gtd.trusses.get(k, [])
                ]
                for t in trusses:
                    edges = {edge_key(u, v) for u, v in t.edges()}
                    assert any(edges <= full for full in exact_level), (
                        f"seed={seed} gamma={gamma} k={k}: GBU reported "
                        "a truss no exact answer contains"
                    )
