"""Documentation and example-script smoke tests.

Keeps the README-level promises honest: the package docstring's
quickstart runs as a doctest, and the fast example scripts execute
end to end as a user would run them.
"""

import doctest
import subprocess
import sys
from pathlib import Path

import pytest

import repro
import repro.graphs.probabilistic
import repro.truss.dynamic

_EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

#: The examples fast enough for the unit-test suite; the heavier ones
#: (team_formation, ppi_modules, streaming_updates) run in CI-style
#: sweeps via the benches that exercise the same code paths.
_FAST_EXAMPLES = ("quickstart.py", "global_vs_local.py",
                  "truss_frontier.py")


class TestDoctests:
    @pytest.mark.parametrize("module", [
        repro,
        repro.graphs.probabilistic,
        repro.truss.dynamic,
    ])
    def test_module_doctests(self, module):
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0
        assert results.attempted > 0  # the examples actually exist


class TestExampleScripts:
    @pytest.mark.parametrize("script", _FAST_EXAMPLES)
    def test_example_runs_clean(self, script):
        completed = subprocess.run(
            [sys.executable, str(_EXAMPLES / script)],
            capture_output=True, text=True, timeout=300,
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert completed.stdout.strip()

    def test_all_examples_present(self):
        names = {p.name for p in _EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py", "ppi_modules.py", "team_formation.py",
            "global_vs_local.py", "cliques_and_communities.py",
            "streaming_updates.py", "truss_frontier.py",
        } <= names
