"""Unit tests for :class:`repro.graphs.probabilistic.ProbabilisticGraph`."""

import math

import pytest

from repro import (
    EdgeNotFoundError,
    GraphError,
    InvalidProbabilityError,
    NodeNotFoundError,
    ProbabilisticGraph,
    edge_key,
)


class TestEdgeKey:
    def test_orders_comparable_nodes(self):
        assert edge_key(2, 1) == (1, 2)
        assert edge_key(1, 2) == (1, 2)
        assert edge_key("b", "a") == ("a", "b")

    def test_symmetric(self):
        assert edge_key("x", "y") == edge_key("y", "x")

    def test_mixed_types_deterministic(self):
        k1 = edge_key(1, "a")
        k2 = edge_key("a", 1)
        assert k1 == k2

    def test_tuple_nodes(self):
        assert edge_key((1, 2), (0, 5)) == ((0, 5), (1, 2))


class TestConstruction:
    def test_empty(self, empty_graph):
        assert empty_graph.number_of_nodes() == 0
        assert empty_graph.number_of_edges() == 0
        assert not empty_graph
        assert len(empty_graph) == 0

    def test_init_from_edges(self):
        g = ProbabilisticGraph([("a", "b", 0.5), ("b", "c", 1.0)])
        assert g.number_of_edges() == 2
        assert g.probability("a", "b") == 0.5

    def test_add_edge_creates_nodes(self):
        g = ProbabilisticGraph()
        g.add_edge(1, 2, 0.3)
        assert g.has_node(1) and g.has_node(2)
        assert g.has_edge(2, 1)

    def test_add_node_idempotent(self):
        g = ProbabilisticGraph()
        g.add_node("x")
        g.add_edge("x", "y", 0.5)
        g.add_node("x")
        assert g.probability("x", "y") == 0.5

    def test_readd_edge_overwrites_probability(self):
        g = ProbabilisticGraph()
        g.add_edge(1, 2, 0.3)
        g.add_edge(2, 1, 0.8)
        assert g.probability(1, 2) == 0.8
        assert g.number_of_edges() == 1

    def test_self_loop_rejected(self):
        g = ProbabilisticGraph()
        with pytest.raises(GraphError):
            g.add_edge("a", "a", 0.5)

    @pytest.mark.parametrize("p", [-0.1, 1.1, float("nan"), 2.0])
    def test_invalid_probability_rejected(self, p):
        g = ProbabilisticGraph()
        with pytest.raises(InvalidProbabilityError):
            g.add_edge("a", "b", p)

    @pytest.mark.parametrize("p", [0.0, 1.0, 0.5])
    def test_boundary_probabilities_allowed(self, p):
        g = ProbabilisticGraph()
        g.add_edge("a", "b", p)
        assert g.probability("a", "b") == p

    def test_add_edges_bulk(self):
        g = ProbabilisticGraph()
        g.add_edges([(i, i + 1, 0.5) for i in range(5)])
        assert g.number_of_edges() == 5


class TestRemoval:
    def test_remove_edge(self, triangle):
        triangle.remove_edge("a", "b")
        assert not triangle.has_edge("b", "a")
        assert triangle.number_of_edges() == 2
        assert triangle.has_node("a")

    def test_remove_missing_edge_raises(self, triangle):
        with pytest.raises(EdgeNotFoundError):
            triangle.remove_edge("a", "zzz")

    def test_remove_node_drops_incident_edges(self, triangle):
        triangle.remove_node("a")
        assert triangle.number_of_edges() == 1
        assert not triangle.has_node("a")

    def test_remove_missing_node_raises(self, triangle):
        with pytest.raises(NodeNotFoundError):
            triangle.remove_node("zzz")

    def test_remove_isolated_nodes(self):
        g = ProbabilisticGraph()
        g.add_node("lonely")
        g.add_edge("a", "b", 0.5)
        removed = g.remove_isolated_nodes()
        assert removed == ["lonely"]
        assert g.number_of_nodes() == 2

    def test_set_probability(self, triangle):
        triangle.set_probability("a", "b", 0.42)
        assert triangle.probability("b", "a") == 0.42

    def test_set_probability_missing_edge(self, triangle):
        with pytest.raises(EdgeNotFoundError):
            triangle.set_probability("a", "zzz", 0.5)


class TestQueries:
    def test_probability_missing_edge(self, triangle):
        with pytest.raises(EdgeNotFoundError):
            triangle.probability("a", "nope")

    def test_neighbors(self, triangle):
        assert sorted(triangle.neighbors("a")) == ["b", "c"]

    def test_neighbors_missing_node(self, triangle):
        with pytest.raises(NodeNotFoundError):
            list(triangle.neighbors("nope"))

    def test_degree_and_expected_degree(self, triangle):
        assert triangle.degree("a") == 2
        assert math.isclose(triangle.expected_degree("a"), 0.9 + 0.7)

    def test_max_degree(self, triangle, empty_graph):
        assert triangle.max_degree() == 2
        assert empty_graph.max_degree() == 0

    def test_common_neighbors(self, two_triangles_sharing_edge):
        g = two_triangles_sharing_edge
        assert g.common_neighbors("a", "b") == {"c", "d"}
        assert g.common_neighbors("c", "d") == {"a", "b"}

    def test_support(self, two_triangles_sharing_edge):
        g = two_triangles_sharing_edge
        assert g.support("a", "b") == 2
        assert g.support("a", "c") == 1

    def test_support_missing_edge(self, two_triangles_sharing_edge):
        with pytest.raises(EdgeNotFoundError):
            two_triangles_sharing_edge.support("c", "d")

    def test_contains(self, triangle):
        assert "a" in triangle
        assert "zzz" not in triangle
        assert [1, 2] not in triangle  # unhashable -> False, no raise


class TestIteration:
    def test_edges_canonical_and_unique(self, k4):
        edges = list(k4.edges())
        assert len(edges) == 6
        assert len(set(edges)) == 6
        assert all(e == edge_key(*e) for e in edges)

    def test_edges_with_probabilities(self, triangle):
        triples = sorted(triangle.edges_with_probabilities())
        assert triples == [("a", "b", 0.9), ("a", "c", 0.7), ("b", "c", 0.8)]

    def test_triangles_unique(self, k4):
        tris = list(k4.triangles())
        assert len(tris) == 4
        as_sets = {frozenset(t) for t in tris}
        assert len(as_sets) == 4

    def test_triangles_of_edge(self, two_triangles_sharing_edge):
        apexes = set(two_triangles_sharing_edge.triangles_of_edge("a", "b"))
        assert apexes == {"c", "d"}

    def test_node_iteration(self, triangle):
        assert set(iter(triangle)) == {"a", "b", "c"}
        assert set(triangle.nodes()) == {"a", "b", "c"}


class TestDerivedGraphs:
    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.remove_edge("a", "b")
        assert triangle.has_edge("a", "b")
        assert not clone.has_edge("a", "b")

    def test_equality(self, triangle):
        assert triangle == triangle.copy()
        other = triangle.copy()
        other.set_probability("a", "b", 0.1)
        assert triangle != other
        assert triangle != "not a graph"

    def test_subgraph_induced(self, k4):
        sub = k4.subgraph(["a", "b", "c"])
        assert sub.number_of_nodes() == 3
        assert sub.number_of_edges() == 3
        assert sub.probability("a", "b") == 0.9

    def test_subgraph_ignores_unknown_nodes(self, triangle):
        sub = triangle.subgraph(["a", "b", "martian"])
        assert sub.number_of_nodes() == 2

    def test_edge_subgraph(self, k4):
        sub = k4.edge_subgraph([("a", "b"), ("c", "d")])
        assert sub.number_of_edges() == 2
        assert sub.number_of_nodes() == 4

    def test_edge_subgraph_missing_edge_raises(self, triangle):
        with pytest.raises(EdgeNotFoundError):
            triangle.edge_subgraph([("a", "zzz")])

    def test_project_world_keeps_all_nodes(self, triangle):
        world = triangle.project_world([("a", "b")])
        assert world.number_of_nodes() == 3
        assert world.number_of_edges() == 1
        assert world.probability("a", "b") == 1.0


class TestWorldProbability:
    def test_full_world(self, triangle):
        p = triangle.world_probability([("a", "b"), ("b", "c"), ("a", "c")])
        assert math.isclose(p, 0.9 * 0.8 * 0.7)

    def test_empty_world(self, triangle):
        p = triangle.world_probability([])
        assert math.isclose(p, 0.1 * 0.2 * 0.3)

    def test_partial_world(self, triangle):
        p = triangle.world_probability([("b", "a")])
        assert math.isclose(p, 0.9 * 0.2 * 0.3)

    def test_world_probabilities_sum_to_one(self, triangle):
        from itertools import combinations

        edges = list(triangle.edges())
        total = 0.0
        for r in range(len(edges) + 1):
            for subset in combinations(edges, r):
                total += triangle.world_probability(subset)
        assert math.isclose(total, 1.0)

    def test_unknown_edge_rejected(self, triangle):
        with pytest.raises(EdgeNotFoundError):
            triangle.world_probability([("a", "zzz")])


class TestNetworkxInterop:
    def test_round_trip(self, paper_graph):
        nx_graph = paper_graph.to_networkx()
        back = ProbabilisticGraph.from_networkx(nx_graph)
        assert back == paper_graph

    def test_from_networkx_default_probability(self):
        import networkx as nx

        g = nx.path_graph(3)
        pg = ProbabilisticGraph.from_networkx(g, default_probability=0.25)
        assert pg.probability(0, 1) == 0.25

    def test_from_networkx_drops_self_loops(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge(1, 1)
        g.add_edge(1, 2)
        pg = ProbabilisticGraph.from_networkx(g)
        assert pg.number_of_edges() == 1
