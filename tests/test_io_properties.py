"""Property-based round-trip tests for I/O and export formats."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    ProbabilisticGraph,
    read_edge_list,
    read_json_graph,
    write_edge_list,
    write_json_graph,
)
from repro.graphs.export import to_dot

probabilities = st.floats(min_value=0.0, max_value=1.0,
                          allow_nan=False, allow_infinity=False)
labels = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
    min_size=1, max_size=6,
)


@st.composite
def labelled_graphs(draw):
    names = draw(st.lists(labels, min_size=2, max_size=8, unique=True))
    g = ProbabilisticGraph()
    for name in names:
        g.add_node(name)
    for i, u in enumerate(names):
        for v in names[:i]:
            if draw(st.booleans()):
                g.add_edge(u, v, draw(probabilities))
    return g


class TestEdgeListRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(labelled_graphs())
    def test_round_trip_preserves_edges(self, g):
        buf = io.StringIO()
        write_edge_list(g, buf)
        buf.seek(0)
        back = read_edge_list(buf)
        assert set(back.edges()) == set(g.edges())
        for u, v in g.edges():
            assert back.probability(u, v) == g.probability(u, v)


class TestJsonRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(labelled_graphs())
    def test_round_trip_preserves_everything(self, g):
        buf = io.StringIO()
        write_json_graph(g, buf)
        buf.seek(0)
        assert read_json_graph(buf) == g


class TestDotWellFormed:
    @settings(max_examples=30, deadline=None)
    @given(labelled_graphs())
    def test_dot_mentions_every_element(self, g):
        dot = to_dot(g)
        assert dot.count(" -- ") == g.number_of_edges()
        for node in g.nodes():
            assert f'"{node}"' in dot
        # Balanced braces, single graph block.
        assert dot.count("{") == dot.count("}") == 1
