"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ProbabilisticGraph
from repro.graphs.generators import running_example, windmill_graph

# Re-exported for the many test modules that import the helper from
# here; the implementation (and its dyadic/exhaustive siblings) lives
# in tests/strategies.py.
from tests.strategies import random_probabilistic_graph  # noqa: F401


@pytest.fixture
def empty_graph() -> ProbabilisticGraph:
    return ProbabilisticGraph()


@pytest.fixture
def triangle() -> ProbabilisticGraph:
    """A single triangle with mixed probabilities."""
    g = ProbabilisticGraph()
    g.add_edge("a", "b", 0.9)
    g.add_edge("b", "c", 0.8)
    g.add_edge("a", "c", 0.7)
    return g


@pytest.fixture
def paper_graph() -> ProbabilisticGraph:
    """The Figure 1 running example."""
    return running_example()


@pytest.fixture
def k4() -> ProbabilisticGraph:
    """Complete graph on 4 nodes, all probabilities 0.9."""
    g = ProbabilisticGraph()
    nodes = ["a", "b", "c", "d"]
    for i, u in enumerate(nodes):
        for v in nodes[:i]:
            g.add_edge(u, v, 0.9)
    return g


@pytest.fixture
def two_triangles_sharing_edge() -> ProbabilisticGraph:
    """Two triangles glued along edge (a, b) — the smallest 4-ish structure."""
    g = ProbabilisticGraph()
    g.add_edge("a", "b", 0.9)
    g.add_edge("a", "c", 0.8)
    g.add_edge("b", "c", 0.8)
    g.add_edge("a", "d", 0.7)
    g.add_edge("b", "d", 0.7)
    return g


@pytest.fixture
def windmill4() -> ProbabilisticGraph:
    """The Lemma 2 windmill with 4 blades, p = 0.5."""
    return windmill_graph(4, 0.5)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
