"""Scaling behaviour of the synthetic datasets (the bench knob)."""

import pytest

from repro import DATASET_NAMES, dataset_statistics, load_dataset
from repro.core.stats import profile_graph


class TestScaleKnob:
    @pytest.mark.parametrize("name", ["wikivote", "dblp", "livejournal"])
    def test_monotone_in_scale(self, name):
        sizes = [
            load_dataset(name, seed=7, scale=s).number_of_edges()
            for s in (0.2, 0.5, 1.0)
        ]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[-1]

    def test_ordering_preserved_at_bench_scales(self):
        # The GBU bench scales must keep fruitfly the smallest dataset.
        from benchmarks.conftest import GBU_SCALES

        edges = {
            name: load_dataset(
                name, seed=42, scale=GBU_SCALES[name]
            ).number_of_edges()
            for name in ("fruitfly", "livejournal", "orkut")
        }
        assert edges["fruitfly"] < edges["livejournal"]
        assert edges["fruitfly"] < edges["orkut"]

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_small_scale_still_valid(self, name):
        g = load_dataset(name, seed=3, scale=0.1)
        stats = dataset_statistics(g)
        assert stats["nodes"] >= 4
        assert all(
            0.0 <= p <= 1.0 for _, _, p in g.edges_with_probabilities()
        )

    def test_probability_model_survives_scaling(self):
        # Flickr's Jaccard probabilities stay strictly positive at any
        # scale; uniform datasets keep a ~0.5 median.
        flickr = load_dataset("flickr", seed=5, scale=0.3)
        assert all(p > 0 for _, _, p in flickr.edges_with_probabilities())
        wiki = load_dataset("wikivote", seed=5, scale=0.3)
        profile = profile_graph(wiki)
        assert 0.35 <= profile.probability_median <= 0.65

    def test_fragmentation_character_survives_scaling(self):
        stats = dataset_statistics(load_dataset("fruitfly", seed=9,
                                                scale=0.5))
        assert stats["components"] > 20
        stats = dataset_statistics(load_dataset("orkut", seed=9,
                                                scale=0.2))
        assert stats["components"] == 1
