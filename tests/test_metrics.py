"""Unit tests for the probabilistic cohesiveness metrics (Eqs. 12-13)."""

import math

import pytest

from repro import (
    ProbabilisticGraph,
    clustering_coefficient,
    probabilistic_clustering_coefficient,
    probabilistic_density,
)
from repro.core.metrics import expected_edge_count
from repro.graphs.generators import complete_graph


class TestDensity:
    def test_certain_clique_density_one(self):
        assert math.isclose(probabilistic_density(complete_graph(5, 1.0)), 1.0)

    def test_uniform_probability_scales_density(self):
        assert math.isclose(probabilistic_density(complete_graph(5, 0.4)), 0.4)

    def test_single_edge(self):
        g = ProbabilisticGraph([("a", "b", 0.6)])
        assert math.isclose(probabilistic_density(g), 0.6)

    def test_sparse_graph(self):
        g = ProbabilisticGraph([(0, 1, 1.0)])
        g.add_node(2)
        # 1 expected edge over C(3,2) = 3 pairs.
        assert math.isclose(probabilistic_density(g), 1 / 3)

    def test_degenerate_graphs(self, empty_graph):
        assert probabilistic_density(empty_graph) == 0.0
        single = ProbabilisticGraph()
        single.add_node("x")
        assert probabilistic_density(single) == 0.0

    def test_expected_edge_count(self, triangle):
        assert math.isclose(expected_edge_count(triangle), 0.9 + 0.8 + 0.7)


class TestPCC:
    def test_certain_clique_pcc_one(self):
        assert math.isclose(
            probabilistic_clustering_coefficient(complete_graph(5, 1.0)), 1.0
        )

    def test_triangle_formula(self, triangle):
        # One triangle, wedge mass = sum over the three centres.
        p_ab, p_bc, p_ac = 0.9, 0.8, 0.7
        tri = p_ab * p_bc * p_ac
        wedges = p_ab * p_ac + p_ab * p_bc + p_bc * p_ac
        expected = 3 * tri / wedges
        assert math.isclose(
            probabilistic_clustering_coefficient(triangle), expected
        )

    def test_triangle_free_graph_zero(self):
        g = ProbabilisticGraph([(0, 1, 0.9), (1, 2, 0.9)])
        assert probabilistic_clustering_coefficient(g) == 0.0

    def test_single_edge_zero(self):
        g = ProbabilisticGraph([("a", "b", 0.5)])
        assert probabilistic_clustering_coefficient(g) == 0.0

    def test_empty(self, empty_graph):
        assert probabilistic_clustering_coefficient(empty_graph) == 0.0

    def test_uniform_probability_scaling(self):
        # For K_n with uniform p, PCC = 3 * T * p^3 / (W * p^2) = CC * p.
        for p in (0.3, 0.8):
            g = complete_graph(6, p)
            assert math.isclose(
                probabilistic_clustering_coefficient(g), p, rel_tol=1e-9
            )

    def test_bounded_by_one(self):
        from tests.conftest import random_probabilistic_graph

        for seed in range(5):
            g = random_probabilistic_graph(15, 0.4, seed)
            value = probabilistic_clustering_coefficient(g)
            assert 0.0 <= value <= 1.0 + 1e-9


class TestDeterministicCC:
    def test_clique(self):
        assert math.isclose(clustering_coefficient(complete_graph(5, 0.2)), 1.0)

    def test_star_zero(self):
        g = ProbabilisticGraph([(0, i, 1.0) for i in range(1, 6)])
        assert clustering_coefficient(g) == 0.0

    def test_matches_networkx_transitivity(self):
        import networkx as nx

        from tests.conftest import random_probabilistic_graph

        for seed in range(5):
            g = random_probabilistic_graph(20, 0.3, seed)
            ours = clustering_coefficient(g)
            theirs = nx.transitivity(g.to_networkx())
            assert math.isclose(ours, theirs, abs_tol=1e-12)

    def test_empty(self, empty_graph):
        assert clustering_coefficient(empty_graph) == 0.0
