"""Unit tests for the dataset registry and synthetic generators."""

import pytest

from repro import DATASET_NAMES, DatasetError, dataset_statistics, load_dataset
from repro.datasets import dataset_spec
from repro.datasets.probability_models import (
    assign_confidence,
    assign_exponential_collaboration,
    assign_jaccard,
    assign_uniform,
)
from repro import ParameterError, ProbabilisticGraph


class TestRegistry:
    def test_eight_datasets(self):
        assert len(DATASET_NAMES) == 8
        assert DATASET_NAMES[0] == "fruitfly"
        assert DATASET_NAMES[-1] == "wise"

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("facebook")

    def test_spec_case_insensitive(self):
        assert dataset_spec("FruitFly").name == "fruitfly"

    def test_spec_metadata(self):
        spec = dataset_spec("dblp")
        assert spec.paper_nodes == 684911
        assert "exp" in spec.probability_model

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_deterministic_under_seed(self, name):
        a = load_dataset(name, seed=3)
        b = load_dataset(name, seed=3)
        assert a == b

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_probabilities_in_range(self, name):
        g = load_dataset(name, seed=1)
        assert all(
            0.0 <= p <= 1.0 for _, _, p in g.edges_with_probabilities()
        )

    def test_scale_grows_graph(self):
        small = load_dataset("wikivote", seed=1, scale=0.5)
        large = load_dataset("wikivote", seed=1, scale=1.0)
        assert small.number_of_nodes() < large.number_of_nodes()

    def test_invalid_scale(self):
        with pytest.raises(ParameterError):
            load_dataset("wikivote", seed=1, scale=0.0)


class TestExportDatasets:
    def test_writes_all_eight(self, tmp_path):
        from repro.datasets.registry import export_datasets
        from repro.graphs.io import read_edge_list

        paths = export_datasets(tmp_path, seed=3, scale=0.1)
        assert len(paths) == 8
        for path in paths:
            g = read_edge_list(path, node_type=int)
            assert g.number_of_edges() > 0

    def test_compressed_round_trip(self, tmp_path):
        from repro.datasets.registry import export_datasets
        from repro.graphs.io import read_edge_list

        paths = export_datasets(tmp_path, seed=3, scale=0.1, compress=True)
        assert all(p.endswith(".txt.gz") for p in paths)
        g = read_edge_list(paths[0], node_type=int)
        original = load_dataset("fruitfly", seed=3, scale=0.1)
        assert g.number_of_edges() == original.number_of_edges()


class TestQualitativeShape:
    def test_size_ordering_follows_paper(self):
        # Table 1's relative ordering (by edges) must survive scaling.
        sizes = {
            name: load_dataset(name, seed=2).number_of_edges()
            for name in ("fruitfly", "wikivote", "livejournal", "orkut")
        }
        assert sizes["fruitfly"] < sizes["wikivote"] < sizes["livejournal"]
        assert sizes["livejournal"] < sizes["orkut"]

    def test_fruitfly_fragmented(self):
        stats = dataset_statistics(load_dataset("fruitfly", seed=2))
        assert stats["components"] > 50
        # Average degree ~ 2, like the paper's FruitFly.
        assert stats["edges"] / stats["nodes"] < 2.5

    def test_orkut_single_component(self):
        stats = dataset_statistics(load_dataset("orkut", seed=2))
        assert stats["components"] == 1

    def test_dblp_many_components(self):
        stats = dataset_statistics(load_dataset("dblp", seed=2))
        assert stats["components"] > 10

    def test_statistics_keys(self):
        stats = dataset_statistics(load_dataset("fruitfly", seed=1))
        assert set(stats) == {
            "nodes", "edges", "max_degree",
            "largest_cc_nodes", "largest_cc_edges", "components",
        }


class TestProbabilityModels:
    @pytest.fixture
    def path_graph(self):
        return ProbabilisticGraph(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 2, 1.0)]
        )

    def test_jaccard_positive_and_bounded(self, path_graph):
        assign_jaccard(path_graph)
        for _, _, p in path_graph.edges_with_probabilities():
            assert 0.0 < p <= 1.0

    def test_jaccard_values(self):
        g = ProbabilisticGraph([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])
        assign_jaccard(g)
        # Triangle: closed neighbourhoods are identical -> Jaccard 1.
        assert all(p == 1.0 for _, _, p in g.edges_with_probabilities())

    def test_exponential_collaboration_bounds(self, path_graph):
        assign_exponential_collaboration(path_graph, mu=2.0, seed=1)
        import math

        floor = 1.0 - math.exp(-1.0 / 2.0)  # c >= 1
        for _, _, p in path_graph.edges_with_probabilities():
            assert floor - 1e-12 <= p < 1.0

    def test_exponential_invalid_mu(self, path_graph):
        with pytest.raises(ParameterError):
            assign_exponential_collaboration(path_graph, mu=0.0)

    def test_uniform_bounds(self, path_graph):
        assign_uniform(path_graph, 0.2, 0.3, seed=4)
        for _, _, p in path_graph.edges_with_probabilities():
            assert 0.2 <= p <= 0.3

    def test_uniform_invalid(self, path_graph):
        with pytest.raises(ParameterError):
            assign_uniform(path_graph, 0.9, 0.1)

    def test_confidence_bounds(self, path_graph):
        assign_confidence(path_graph, 2.0, 2.0, seed=5)
        for _, _, p in path_graph.edges_with_probabilities():
            assert 0.0 <= p <= 1.0

    def test_confidence_invalid(self, path_graph):
        with pytest.raises(ParameterError):
            assign_confidence(path_graph, -1.0, 2.0)

    def test_models_deterministic(self, path_graph):
        a = path_graph.copy()
        b = path_graph.copy()
        assign_uniform(a, seed=9)
        assign_uniform(b, seed=9)
        assert a == b
