"""Unit tests for the deterministic k-core substrate."""

import pytest

from repro import (
    ParameterError,
    ProbabilisticGraph,
    core_decomposition,
    k_core_subgraph,
    max_core_number,
)
from repro.graphs.generators import complete_graph


class TestCoreDecomposition:
    def test_complete_graph(self):
        for n in (3, 5, 7):
            core = core_decomposition(complete_graph(n))
            assert all(c == n - 1 for c in core.values())

    def test_path(self):
        g = ProbabilisticGraph([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        core = core_decomposition(g)
        assert all(c == 1 for c in core.values())

    def test_star(self):
        g = ProbabilisticGraph([(0, i, 1.0) for i in range(1, 8)])
        core = core_decomposition(g)
        assert all(c == 1 for c in core.values())

    def test_clique_with_tail(self):
        g = complete_graph(4)
        g.add_edge(3, 10, 1.0)
        g.add_edge(10, 11, 1.0)
        core = core_decomposition(g)
        assert core[0] == 3
        assert core[10] == 1
        assert core[11] == 1

    def test_isolated_node(self):
        g = ProbabilisticGraph()
        g.add_node("x")
        assert core_decomposition(g) == {"x": 0}

    def test_empty(self, empty_graph):
        assert core_decomposition(empty_graph) == {}

    def test_matches_networkx(self, rng):
        import networkx as nx

        from tests.conftest import random_probabilistic_graph

        for seed in range(5):
            g = random_probabilistic_graph(25, 0.2, seed)
            ours = core_decomposition(g)
            theirs = nx.core_number(g.to_networkx())
            assert ours == theirs


class TestKCoreSubgraph:
    def test_extracts_clique(self):
        g = complete_graph(5)
        g.add_edge(0, 100, 1.0)
        sub = k_core_subgraph(g, 4)
        assert set(sub.nodes()) == {0, 1, 2, 3, 4}

    def test_invalid_k(self, k4):
        with pytest.raises(ParameterError):
            k_core_subgraph(k4, -1)

    def test_max_core_number(self, k4, empty_graph):
        assert max_core_number(k4) == 3
        assert max_core_number(empty_graph) == 0
