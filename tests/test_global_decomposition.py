"""Unit tests for the global decomposition: Algorithm 3 + GTD + GBU."""

import pytest

from repro import (
    DecompositionError,
    GlobalTrussOracle,
    ParameterError,
    ProbabilisticGraph,
    WorldSampleSet,
    alpha_exact,
    global_truss_decomposition,
    is_global_truss_exact,
    local_truss_decomposition,
)
from repro.core.global_decomp import (
    _prune_to_structural_ktruss,
    bottom_up_search,
    top_down_search,
)
from repro.graphs.generators import running_example, windmill_graph
from tests.conftest import random_probabilistic_graph


class TestStructuralPruning:
    def test_k2_keeps_everything(self, k4):
        edges = set(k4.edges())
        assert _prune_to_structural_ktruss(k4, edges, 2) == edges

    def test_prunes_pendant(self):
        g = ProbabilisticGraph(
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (2, 3, 1.0)]
        )
        pruned = _prune_to_structural_ktruss(g, set(g.edges()), 3)
        assert (2, 3) not in pruned
        assert len(pruned) == 3

    def test_cascade_empties(self):
        # A 4-cycle has no triangles: everything cascades away at k = 3.
        g = ProbabilisticGraph(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)]
        )
        assert _prune_to_structural_ktruss(g, set(g.edges()), 3) == set()


class TestPaperExampleDecomposition:
    @pytest.mark.parametrize("method", ["gtd", "gbu"])
    def test_finds_h2_h3(self, paper_graph, method):
        # gamma = 0.1 sits well below H2/H3's exact alpha (0.125) and well
        # above H1's (0.5^6), so the answer set matches Example 2 without
        # Monte-Carlo knife-edge flakiness at gamma = alpha = 0.125.
        result = global_truss_decomposition(
            paper_graph, 0.1, method=method, seed=3, n_samples=2000
        )
        assert result.k_max == 4
        found = {frozenset(t.nodes()) for t in result.trusses[4]}
        assert frozenset({"q1", "v1", "v2", "v3"}) in found
        assert frozenset({"q2", "v1", "v2", "v3"}) in found
        assert len(found) == 2

    def test_gtd_answers_are_exact_global_trusses(self, paper_graph):
        result = global_truss_decomposition(
            paper_graph, 0.1, method="gtd", seed=3, n_samples=2000
        )
        for k, truss in result.all_trusses():
            # With enough samples, every answer should be near the exact
            # definition; verify against the enumeration oracle at a
            # slightly relaxed gamma to absorb sampling noise.
            assert is_global_truss_exact(truss, k, 0.1 * 0.8)

    def test_results_are_local_trusses_too(self, paper_graph):
        # Lemma 1 consequence: answers at k live inside local trusses at k.
        local = local_truss_decomposition(paper_graph, 0.1)
        result = global_truss_decomposition(
            paper_graph, 0.1, method="gbu", seed=3, n_samples=2000,
            local_result=local,
        )
        for k, truss in result.all_trusses():
            for e in truss.edges():
                assert local.trussness[e] >= k


class TestBackboneBehaviour:
    def test_invalid_gamma(self, paper_graph):
        with pytest.raises(ParameterError):
            global_truss_decomposition(paper_graph, -0.1)

    def test_invalid_method(self, paper_graph):
        with pytest.raises(ParameterError):
            global_truss_decomposition(paper_graph, 0.5, method="dfs")

    def test_mismatched_local_result_rejected(self, paper_graph):
        local = local_truss_decomposition(paper_graph, 0.3)
        with pytest.raises(ParameterError):
            global_truss_decomposition(
                paper_graph, 0.125, local_result=local
            )

    def test_max_k_stops_early(self, paper_graph):
        result = global_truss_decomposition(
            paper_graph, 0.125, method="gbu", seed=1, n_samples=500, max_k=2
        )
        assert result.k_max <= 2

    def test_n_samples_default_is_hoeffding(self, paper_graph):
        result = global_truss_decomposition(
            paper_graph, 0.5, method="gbu", seed=1
        )
        assert result.n_samples == 150  # eps = delta = 0.1

    def test_empty_graph(self, empty_graph):
        result = global_truss_decomposition(empty_graph, 0.5, seed=1)
        assert result.trusses == {}
        assert result.k_max == 0

    def test_monotone_k_hierarchy(self, paper_graph):
        result = global_truss_decomposition(
            paper_graph, 0.1, method="gtd", seed=3, n_samples=1000
        )
        # Every k-level answer's edges appear in some (k-1)-level answer
        # union (Eq. 11 pruning guarantees this by construction).
        for k in sorted(result.trusses):
            if k - 1 not in result.trusses:
                continue
            lower = {
                e for t in result.trusses[k - 1] for e in t.edges()
            }
            upper = {e for t in result.trusses[k] for e in t.edges()}
            assert upper <= lower

    def test_all_trusses_ordering(self, paper_graph):
        result = global_truss_decomposition(
            paper_graph, 0.125, method="gbu", seed=3, n_samples=500
        )
        ks = [k for k, _ in result.all_trusses()]
        assert ks == sorted(ks)


class TestTopDownSearch:
    def test_returns_component_when_satisfying(self, paper_graph):
        samples = WorldSampleSet.from_graph(paper_graph, 1500, seed=5)
        oracle = GlobalTrussOracle(samples)
        h2 = paper_graph.subgraph(["q1", "v1", "v2", "v3"])
        answers = top_down_search(oracle, 4, h2, 0.1)
        assert len(answers) == 1
        assert set(answers[0].nodes()) == {"q1", "v1", "v2", "v3"}

    def test_state_budget_enforced(self, paper_graph):
        samples = WorldSampleSet.from_graph(paper_graph, 200, seed=5)
        oracle = GlobalTrussOracle(samples)
        h1 = paper_graph.subgraph(["q1", "q2", "v1", "v2", "v3"])
        with pytest.raises(DecompositionError):
            # gamma = 1.0 is unsatisfiable, forcing exploration past the
            # root state; a budget of 1 must trip on the first recursion.
            top_down_search(oracle, 4, h1, 1.0, max_states=1)

    def test_exactness_against_enumeration(self):
        # On a tiny graph, GTD + large sample count must find exactly the
        # maximal exact global trusses.
        g = windmill_graph(2, 0.6)
        samples = WorldSampleSet.from_graph(g, 4000, seed=11)
        oracle = GlobalTrussOracle(samples)
        gamma = 0.2
        answers = top_down_search(oracle, 3, g, gamma)
        # Exact: each blade triangle has alpha = 0.6^3 = 0.216 >= 0.2 only
        # if the world is exactly that triangle... actually worlds
        # containing a blade triangle and spanning all its nodes. For the
        # subgraph = one blade, alpha = 0.6^3 = 0.216.
        blade_found = {
            frozenset(t.nodes()) for t in answers
        }
        for t in answers:
            assert is_global_truss_exact(t, 3, gamma * 0.85)
        assert blade_found  # at least one blade qualifies


class TestBottomUpSearch:
    def test_finds_planted_truss(self, paper_graph):
        samples = WorldSampleSet.from_graph(paper_graph, 1500, seed=5)
        oracle = GlobalTrussOracle(samples)
        component = paper_graph.subgraph(["q1", "q2", "v1", "v2", "v3"])
        answers = bottom_up_search(oracle, 4, component, 0.1, rng=1)
        found = {frozenset(t.nodes()) for t in answers}
        assert frozenset({"q1", "v1", "v2", "v3"}) in found or frozenset(
            {"q2", "v1", "v2", "v3"}
        ) in found

    def test_skip_covered_reduces_or_keeps_answers(self, paper_graph):
        samples = WorldSampleSet.from_graph(paper_graph, 1000, seed=5)
        oracle = GlobalTrussOracle(samples)
        component = paper_graph.subgraph(["q1", "q2", "v1", "v2", "v3"])
        fast = bottom_up_search(oracle, 4, component, 0.1, rng=1,
                                skip_covered=True)
        slow = bottom_up_search(oracle, 4, component, 0.1, rng=1,
                                skip_covered=False)
        fast_keys = {frozenset(t.edges()) for t in fast}
        slow_keys = {frozenset(t.edges()) for t in slow}
        assert fast_keys <= slow_keys

    def test_answers_satisfy_oracle(self, paper_graph):
        samples = WorldSampleSet.from_graph(paper_graph, 1000, seed=5)
        oracle = GlobalTrussOracle(samples)
        component = paper_graph.subgraph(["q1", "q2", "v1", "v2", "v3"])
        for t in bottom_up_search(oracle, 4, component, 0.1, rng=1):
            assert oracle.satisfies(t, 4, 0.1)

    def test_impossible_k_returns_nothing(self, triangle):
        samples = WorldSampleSet.from_graph(triangle, 300, seed=5)
        oracle = GlobalTrussOracle(samples)
        assert bottom_up_search(oracle, 5, triangle, 0.1, rng=1) == []


class TestRandomGraphCrossValidation:
    @pytest.mark.parametrize("seed", range(3))
    def test_gbu_answers_within_gtd_closure(self, seed):
        # GBU is incomplete but sound: every GBU answer must satisfy the
        # same sampled oracle that GTD uses. Graphs are kept tiny — GTD
        # is exponential, which is the paper's whole point.
        g = random_probabilistic_graph(8, 0.4, seed)
        samples = WorldSampleSet.from_graph(g, 400, seed=seed)
        gtd = global_truss_decomposition(
            g, 0.3, method="gtd", seed=seed, samples=samples
        )
        gbu = global_truss_decomposition(
            g, 0.3, method="gbu", seed=seed, samples=samples
        )
        oracle = GlobalTrussOracle(samples)
        for k, truss in gbu.all_trusses():
            assert oracle.satisfies(truss, k, 0.3)
        # GBU's k_max can never exceed GTD's on the same samples.
        assert gbu.k_max <= gtd.k_max
