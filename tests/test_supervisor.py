"""Supervised parallel execution: crash recovery, timeouts, quarantine.

The contract under test (see ``docs/robustness.md``): a parallel map
survives worker death — real SIGKILL included — with byte-identical
output, a hung task is reclaimed by the ``task_timeout``, and a payload
that keeps killing workers is quarantined into an honest
:class:`PartialResult` instead of hanging the run or crashing it. The
shared-memory segment never leaks, not even when pool start fails, and
a corrupted segment is detected (CRC) and re-published without changing
the output.
"""

from __future__ import annotations

import gc
import os
import signal
import time

import pytest

from repro.core.global_decomp import global_truss_decomposition
from repro.exceptions import (
    ComputationInterrupted,
    ParameterError,
    TaskQuarantinedError,
)
from repro.graphs.generators import gnp_graph, running_example
from repro.graphs.probabilistic import ProbabilisticGraph
from repro.graphs.sampling import WorldSampleSet, hoeffding_epsilon
from repro.parallel import (
    QUARANTINED,
    ParallelExecutor,
    SharedWorldSamples,
    SupervisedPool,
)
from repro.runtime import (
    FaultPlan,
    run_global,
    run_local,
    run_reliability,
    serialize_global_result,
)
from repro.runtime.progress import chain_hooks

# The whole battery SIGKILLs real worker processes; it runs in CI's
# crash-injection and full-battery jobs, not in the tier-1 gate.
pytestmark = pytest.mark.crash

GAMMA = 0.3
N_SAMPLES = 60
BATCH = 20
TIMEOUT = 0.35


def canon(result) -> str:
    return serialize_global_result(result)


def two_component_graph() -> ProbabilisticGraph:
    """Two disconnected triangle-rich components (exercises the
    per-component ``gtd-component`` fan-out)."""
    graph = ProbabilisticGraph()
    for prefix, seed in (("a", 2), ("b", 3)):
        part = gnp_graph(7, 0.5, seed=seed)
        for u, v, p in part.edges_with_probabilities():
            graph.add_edge(f"{prefix}{u}", f"{prefix}{v}", p)
    return graph


def pmf_payloads(graph, chunk: int = 1) -> list:
    pairs = [(u, v) for u, v, _ in graph.edges_with_probabilities()]
    return [
        (GAMMA, pairs[i:i + chunk]) for i in range(0, len(pairs), chunk)
    ]


class Recorder:
    """Progress hook collecting every event it sees."""

    def __init__(self):
        self.events = []

    def __call__(self, event) -> None:
        self.events.append(event)

    def phases(self) -> set:
        return {e.phase for e in self.events}


def segment_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


# ----------------------------------------------------------------------
# Tunables: kwarg > environment > default, ParameterError on nonsense
# ----------------------------------------------------------------------
class TestKnobs:
    def test_defaults(self):
        ex = ParallelExecutor(2, graph=running_example())
        assert ex.pump_interval == pytest.approx(0.05)
        assert ex.abort_grace == pytest.approx(30.0)
        assert ex.task_timeout is None
        assert ex.task_cpu_timeout is None
        assert ex.max_task_retries == 2

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_PUMP_INTERVAL", "0.01")
        monkeypatch.setenv("REPRO_ABORT_GRACE", "1.5")
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "7")
        monkeypatch.setenv("REPRO_TASK_CPU_TIMEOUT", "3")
        monkeypatch.setenv("REPRO_MAX_TASK_RETRIES", "5")
        ex = ParallelExecutor(2, graph=running_example())
        assert ex.pump_interval == pytest.approx(0.01)
        assert ex.abort_grace == pytest.approx(1.5)
        assert ex.task_timeout == pytest.approx(7.0)
        assert ex.task_cpu_timeout == pytest.approx(3.0)
        assert ex.max_task_retries == 5

    def test_kwarg_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PUMP_INTERVAL", "0.01")
        monkeypatch.setenv("REPRO_MAX_TASK_RETRIES", "5")
        ex = ParallelExecutor(2, graph=running_example(),
                              pump_interval=0.2, max_task_retries=1)
        assert ex.pump_interval == pytest.approx(0.2)
        assert ex.max_task_retries == 1

    @pytest.mark.parametrize("env,value", [
        ("REPRO_PUMP_INTERVAL", "fast"),
        ("REPRO_PUMP_INTERVAL", "0"),
        ("REPRO_PUMP_INTERVAL", "-0.1"),
        ("REPRO_ABORT_GRACE", "-1"),
        ("REPRO_ABORT_GRACE", "soon"),
        ("REPRO_TASK_TIMEOUT", "0"),
        ("REPRO_TASK_CPU_TIMEOUT", "0"),
        ("REPRO_TASK_CPU_TIMEOUT", "never"),
        ("REPRO_MAX_TASK_RETRIES", "-1"),
        ("REPRO_MAX_TASK_RETRIES", "2.5"),
    ])
    def test_bad_env_values_raise(self, monkeypatch, env, value):
        monkeypatch.setenv(env, value)
        with pytest.raises(ParameterError, match=env):
            ParallelExecutor(2, graph=running_example())

    @pytest.mark.parametrize("kwargs", [
        {"pump_interval": 0},
        {"pump_interval": "soon"},
        {"abort_grace": -1},
        {"task_timeout": 0},
        {"task_timeout": -3},
        {"task_cpu_timeout": 0},
        {"task_cpu_timeout": "never"},
        {"max_task_retries": -1},
        {"max_task_retries": True},
    ])
    def test_bad_kwargs_raise(self, kwargs):
        with pytest.raises(ParameterError):
            ParallelExecutor(2, graph=running_example(), **kwargs)

    def test_bad_quarantine_policy_raises(self):
        with ParallelExecutor(1, graph=running_example()) as ex:
            with pytest.raises(ParameterError, match="on_quarantine"):
                ex.map("pmf-init", [(GAMMA, [])], on_quarantine="ignore")


# ----------------------------------------------------------------------
# Shared-memory leak guard
# ----------------------------------------------------------------------
class TestLeakGuard:
    def test_finalizer_unlinks_unclosed_segment(self):
        samples = WorldSampleSet.from_graph(running_example(), 30, seed=1)
        shared = SharedWorldSamples.publish(samples)
        name = shared.handle.name
        assert segment_exists(name)
        del shared  # owner forgot close(): the finalizer must unlink
        gc.collect()
        assert not segment_exists(name)

    def test_close_then_gc_is_clean(self):
        samples = WorldSampleSet.from_graph(running_example(), 30, seed=1)
        shared = SharedWorldSamples.publish(samples)
        name = shared.handle.name
        shared.close()
        assert not segment_exists(name)
        del shared
        gc.collect()  # finalizer was detached; no double-unlink error

    def test_failed_pool_start_leaves_no_segment(self, monkeypatch):
        """Regression: a partial start() must unlink what it published."""
        published = []
        real_publish = SharedWorldSamples.publish.__func__

        def capture(cls, samples):
            shared = real_publish(cls, samples)
            published.append(shared.handle.name)
            return shared

        monkeypatch.setattr(SharedWorldSamples, "publish",
                            classmethod(capture))
        monkeypatch.setattr(
            SupervisedPool, "start",
            lambda self: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        graph = running_example()
        samples = WorldSampleSet.from_graph(graph, 30, seed=2)
        with pytest.raises(RuntimeError, match="boom"):
            ParallelExecutor(2, graph=graph, samples=samples).start()
        assert published, "pool start never published a segment"
        for name in published:
            assert not segment_exists(name)

    def test_no_segment_survives_normal_close(self):
        graph = running_example()
        samples = WorldSampleSet.from_graph(graph, 30, seed=2)
        ex = ParallelExecutor(2, graph=graph, samples=samples).start()
        name = ex._shared.handle.name
        assert segment_exists(name)
        ex.close()
        assert not segment_exists(name)


# ----------------------------------------------------------------------
# Crash recovery: byte-identical replay after worker death
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def test_real_sigkill_replays_byte_identically(self):
        """Kill a live worker with os.kill(SIGKILL); the map must still
        return the inline reference result, and the pool must stay
        usable for the next map."""
        graph = gnp_graph(12, 0.35, seed=3)
        payloads = pmf_payloads(graph)
        with ParallelExecutor(1, graph=graph) as inline:
            reference = inline.map("pmf-init", payloads)
        with ParallelExecutor(2, graph=graph) as ex:
            pids = ex.pool_pids
            assert len(pids) == 2
            os.kill(pids[0], signal.SIGKILL)
            time.sleep(0.2)  # let the death reach the pipes
            assert ex.map("pmf-init", payloads) == reference
            assert len(ex.pool_pids) == 2
            assert pids[0] not in ex.pool_pids
            # Pool healthy: a second map on the same pool still works.
            assert ex.map("pmf-init", payloads[:3]) == reference[:3]
            assert ex.quarantined == []

    @pytest.mark.parametrize("workers", [2, 4])
    def test_kill_worker_fault_run_global_equivalence(self, workers):
        graph = gnp_graph(13, 0.3, seed=1)
        undisturbed = run_global(
            graph, GAMMA, method="gbu", seed=4, n_samples=N_SAMPLES,
            batch_size=BATCH, workers=workers,
        )
        assert undisturbed.complete and not undisturbed.degraded
        plan = FaultPlan().kill_worker(after_tasks=1)
        recorder = Recorder()
        disturbed = run_global(
            graph, GAMMA, method="gbu", seed=4, n_samples=N_SAMPLES,
            batch_size=BATCH, workers=workers,
            progress=chain_hooks(plan, recorder),
        )
        assert disturbed.complete
        assert canon(disturbed.result) == canon(undisturbed.result)
        # One worker really died and supervision reported it.
        assert "worker-died" in recorder.phases()
        assert "task-retried" in recorder.phases()
        # A replayed crash is not a degradation: nothing was lost.
        assert not disturbed.degraded

    def test_crash_between_checkpoint_batches(self, tmp_path):
        """A worker crash in a checkpointed run neither corrupts the
        checkpoint nor changes the output."""
        graph = running_example()
        undisturbed = run_global(
            graph, GAMMA, method="gbu", seed=6, n_samples=N_SAMPLES,
            batch_size=BATCH, workers=2,
        )
        plan = FaultPlan().kill_worker(after_tasks=0)
        disturbed = run_global(
            graph, GAMMA, method="gbu", seed=6, n_samples=N_SAMPLES,
            batch_size=BATCH, workers=2, checkpoint_dir=tmp_path / "ck",
            progress=plan,
        )
        assert disturbed.complete
        assert canon(disturbed.result) == canon(undisturbed.result)
        # The finished checkpoint resumes instantly and identically.
        resumed = run_global(
            graph, GAMMA, method="gbu", seed=6, n_samples=N_SAMPLES,
            batch_size=BATCH, workers=4, checkpoint_dir=tmp_path / "ck",
            resume=True,
        )
        assert resumed.complete
        assert canon(resumed.result) == canon(undisturbed.result)


# ----------------------------------------------------------------------
# Timeouts and the retry ladder
# ----------------------------------------------------------------------
class TestTimeouts:
    def test_hung_task_is_killed_and_retried(self):
        graph = gnp_graph(11, 0.35, seed=5)
        payloads = pmf_payloads(graph)
        with ParallelExecutor(1, graph=graph) as inline:
            reference = inline.map("pmf-init", payloads)
        plan = FaultPlan().hang_task("pmf-init", payload_index=0, times=1)
        recorder = Recorder()
        with ParallelExecutor(2, graph=graph, task_timeout=TIMEOUT,
                              faults=plan) as ex:
            results = ex.map("pmf-init", payloads, progress=recorder)
        assert results == reference
        assert "worker-died" in recorder.phases()
        assert "task-retried" in recorder.phases()
        retried = [e for e in recorder.events if e.phase == "task-retried"]
        assert retried[0].detail["payload_index"] == 0
        assert "timed out" in retried[0].detail["reason"]


# ----------------------------------------------------------------------
# CPU-time watchdog: wedged vs descheduled-but-busy workers
# ----------------------------------------------------------------------
class TestCpuStall:
    def test_wedged_task_is_killed_and_retried(self):
        """Zero CPU progress over task_cpu_timeout of wall time → the
        worker is reclaimed even though no wall-clock task_timeout is
        set, and the replay keeps the output byte-identical."""
        graph = gnp_graph(11, 0.35, seed=5)
        payloads = pmf_payloads(graph)
        with ParallelExecutor(1, graph=graph) as inline:
            reference = inline.map("pmf-init", payloads)
        plan = FaultPlan().stall_task_cpu("pmf-init", payload_index=0,
                                          times=1)
        recorder = Recorder()
        with ParallelExecutor(2, graph=graph, task_cpu_timeout=TIMEOUT,
                              faults=plan) as ex:
            results = ex.map("pmf-init", payloads, progress=recorder)
        assert results == reference
        assert "worker-died" in recorder.phases()
        retried = [e for e in recorder.events if e.phase == "task-retried"]
        assert retried[0].detail["payload_index"] == 0
        assert "CPU stalled" in retried[0].detail["reason"]

    def test_busy_task_gets_its_grace_extended(self):
        """A task that burns CPU for longer than task_cpu_timeout is
        *not* killed: advancing CPU time is proof of life, the exact
        case a pure wall-clock timeout misclassifies."""
        graph = gnp_graph(9, 0.35, seed=5)
        payloads = pmf_payloads(graph, chunk=4)
        with ParallelExecutor(1, graph=graph) as inline:
            reference = inline.map("pmf-init", payloads)
        plan = FaultPlan().spin_task("pmf-init", seconds=4 * TIMEOUT,
                                     payload_index=0)
        recorder = Recorder()
        with ParallelExecutor(2, graph=graph, task_cpu_timeout=TIMEOUT,
                              faults=plan) as ex:
            results = ex.map("pmf-init", payloads, progress=recorder)
            # The spin really consumed CPU and the supervisor saw it.
            assert ex.worker_cpu_seconds() > TIMEOUT
        assert results == reference
        assert "worker-died" not in recorder.phases()
        assert "task-retried" not in recorder.phases()

    def test_stall_during_run_global_is_transparent(self):
        graph = gnp_graph(13, 0.3, seed=1)
        undisturbed = run_global(
            graph, GAMMA, method="gbu", seed=4, n_samples=N_SAMPLES,
            batch_size=BATCH, workers=2,
        )
        plan = FaultPlan().stall_task_cpu("gbu-seed", payload_index=0,
                                          times=1)
        recorder = Recorder()
        disturbed = run_global(
            graph, GAMMA, method="gbu", seed=4, n_samples=N_SAMPLES,
            batch_size=BATCH, workers=2, task_cpu_timeout=TIMEOUT,
            progress=chain_hooks(plan, recorder),
        )
        assert disturbed.complete and not disturbed.degraded
        assert canon(disturbed.result) == canon(undisturbed.result)
        assert "worker-died" in recorder.phases()


# ----------------------------------------------------------------------
# Poison-task quarantine
# ----------------------------------------------------------------------
class TestQuarantine:
    def make_executor(self, graph, **kwargs):
        # times=2 exhausts max_task_retries=1 exactly, so follow-up maps
        # on the surviving pool run clean.
        plan = FaultPlan().hang_task("pmf-init", payload_index=0, times=2)
        return ParallelExecutor(2, graph=graph, task_timeout=TIMEOUT,
                                max_task_retries=1, faults=plan, **kwargs)

    def test_skip_policy_yields_sentinel_and_record(self):
        graph = gnp_graph(11, 0.35, seed=5)
        payloads = pmf_payloads(graph)
        with ParallelExecutor(1, graph=graph) as inline:
            reference = inline.map("pmf-init", payloads)
        recorder = Recorder()
        with self.make_executor(graph) as ex:
            name = ex._shared.handle.name if ex._shared else None
            results = ex.map("pmf-init", payloads, progress=recorder,
                             on_quarantine="skip")
            assert results[0] is QUARANTINED
            assert results[1:] == reference[1:]
            assert len(ex.quarantined) == 1
            record = ex.quarantined[0]
            assert record.name == "pmf-init"
            assert record.index == 0
            assert record.attempts == 2  # max_task_retries=1 → 2 tries
            assert all("timed out" in r for r in record.reasons)
            assert "task-quarantined" in recorder.phases()
            # The pool survived the poison payload and keeps serving.
            assert ex.map("pmf-init", payloads[1:]) == reference[1:]
        if name is not None:
            assert not segment_exists(name)

    def test_raise_policy_raises_with_records(self):
        graph = gnp_graph(11, 0.35, seed=5)
        payloads = pmf_payloads(graph)
        with self.make_executor(graph) as ex:
            with pytest.raises(TaskQuarantinedError) as info:
                ex.map("pmf-init", payloads)
            assert info.value.quarantined[0].index == 0
            assert "pmf-init" in str(info.value)

    def test_run_local_quarantine_is_honest_partial(self):
        graph = gnp_graph(11, 0.35, seed=5)
        plan = FaultPlan().hang_task("pmf-init", payload_index=0, times=10)
        partial = run_local(graph, GAMMA, workers=2, task_timeout=TIMEOUT,
                            max_task_retries=1, progress=plan)
        assert not partial.complete
        assert partial.degraded
        assert "quarantined" in partial.reason

    def test_gbu_seed_quarantine_degrades_run_global(self):
        graph = gnp_graph(13, 0.3, seed=1)
        plan = FaultPlan().hang_task("gbu-seed", payload_index=0, times=10)
        partial = run_global(
            graph, GAMMA, method="gbu", seed=4, n_samples=N_SAMPLES,
            batch_size=BATCH, workers=2, task_timeout=TIMEOUT,
            max_task_retries=1, progress=plan,
        )
        # The run finishes — no hang, no traceback — but says exactly
        # which payload it gave up on.
        assert partial.complete
        assert partial.degraded
        assert "quarantined" in partial.reason
        quarantined = partial.detail["quarantined"]
        assert quarantined[0]["task"] == "gbu-seed"
        assert quarantined[0]["payload_index"] == 0
        assert quarantined[0]["attempts"] == 2

    def test_gtd_component_falls_back_to_gbu(self):
        graph = two_component_graph()
        plan = FaultPlan().hang_task("gtd-component", payload_index=0,
                                     times=10)
        partial = run_global(
            graph, GAMMA, method="gtd", seed=5, n_samples=40,
            batch_size=BATCH, max_states=20000, workers=2,
            task_timeout=TIMEOUT, max_task_retries=1, progress=plan,
        )
        assert partial.complete
        assert partial.degraded
        quarantined = partial.detail["quarantined"]
        assert quarantined[0]["task"] == "gtd-component"
        assert quarantined[0]["fallback"] == "gbu"
        # The other component's exact search still contributed answers.
        assert partial.result is not None


# ----------------------------------------------------------------------
# Shared-segment corruption: CRC detect, re-publish, replay
# ----------------------------------------------------------------------
class TestCorruptSegment:
    def test_corruption_is_detected_and_output_unchanged(self):
        graph = gnp_graph(13, 0.3, seed=2)
        undisturbed = run_global(
            graph, GAMMA, method="gbu", seed=7, n_samples=N_SAMPLES,
            batch_size=BATCH, workers=2,
        )
        plan = (FaultPlan()
                .corrupt_shared_segment()
                .kill_worker(after_tasks=0))
        disturbed = run_global(
            graph, GAMMA, method="gbu", seed=7, n_samples=N_SAMPLES,
            batch_size=BATCH, workers=2, progress=plan,
        )
        assert disturbed.complete
        assert canon(disturbed.result) == canon(undisturbed.result)
        assert ("corrupt-shared-segment", 0) in plan.fired

    def test_verify_detects_scribble(self):
        samples = WorldSampleSet.from_graph(running_example(), 40, seed=3)
        with SharedWorldSamples.publish(samples) as shared:
            assert shared.verify()
            shared._shm.buf[0] = shared._shm.buf[0] ^ 0xFF
            assert not shared.verify()


# ----------------------------------------------------------------------
# SIGINT mid-pool-map: checkpoint written, resume byte-identical
# ----------------------------------------------------------------------
class TestSigintMidMap:
    def test_interrupt_during_pool_map_resumes_identically(self, tmp_path):
        graph = gnp_graph(13, 0.3, seed=1)
        undisturbed = run_global(
            graph, GAMMA, method="gbu", seed=8, n_samples=N_SAMPLES,
            batch_size=BATCH, workers=2,
        )
        # local-init counter events are pumped only while the pmf-init
        # pool map is in flight, so this fires mid-map by construction.
        plan = FaultPlan().sigint_on_phase("local-init")
        ck = tmp_path / "ck"
        with pytest.raises(ComputationInterrupted) as info:
            run_global(
                graph, GAMMA, method="gbu", seed=8, n_samples=N_SAMPLES,
                batch_size=BATCH, workers=2, checkpoint_dir=ck,
                progress=plan,
            )
        assert info.value.checkpoint_path == str(ck)
        assert (ck / "manifest.json").exists()
        resumed = run_global(
            graph, GAMMA, method="gbu", seed=8, n_samples=N_SAMPLES,
            batch_size=BATCH, workers=4, checkpoint_dir=ck, resume=True,
        )
        assert resumed.complete
        assert canon(resumed.result) == canon(undisturbed.result)


# ----------------------------------------------------------------------
# Parallel reliability: sequential RNG, fanned classification
# ----------------------------------------------------------------------
class TestReliabilityParallel:
    def test_equivalence_across_worker_counts(self):
        graph = gnp_graph(10, 0.3, seed=4)
        serial = run_reliability(graph, n_samples=120, seed=11,
                                 batch_size=25)
        assert serial.complete
        for workers in (1, 2, 4):
            parallel = run_reliability(graph, n_samples=120, seed=11,
                                       batch_size=25, workers=workers)
            assert parallel.complete
            assert parallel.result == serial.result
            assert parallel.detail["hits"] == serial.detail["hits"]
            assert parallel.n_samples_drawn == serial.n_samples_drawn

    def test_interrupt_mid_window_resumes_across_modes(self, tmp_path):
        graph = gnp_graph(10, 0.3, seed=4)
        serial = run_reliability(graph, n_samples=120, seed=12,
                                 batch_size=20)
        ck = tmp_path / "ck"
        plan = FaultPlan().sigint_at("reliability-batch", 1)
        with pytest.raises(ComputationInterrupted):
            run_reliability(graph, n_samples=120, seed=12, batch_size=20,
                            workers=2, checkpoint_dir=ck, progress=plan)
        # Resume *serially* from a parallel run's checkpoint: the RNG
        # stream is shared, so the estimate must match exactly.
        resumed = run_reliability(graph, n_samples=120, seed=12,
                                  batch_size=20, checkpoint_dir=ck,
                                  resume=True)
        assert resumed.complete
        assert resumed.result == serial.result
        assert resumed.detail["hits"] == serial.detail["hits"]

    def test_quarantined_batch_drops_rows_and_widens_epsilon(self):
        graph = gnp_graph(10, 0.3, seed=4)
        serial = run_reliability(graph, n_samples=120, seed=13,
                                 batch_size=20)
        # times=2: poisons payload 0 of the *first* window only —
        # payload_index restarts at 0 in each windowed map.
        plan = FaultPlan().hang_task("reliability-block", payload_index=0,
                                     times=2)
        partial = run_reliability(graph, n_samples=120, seed=13,
                                  batch_size=20, workers=2,
                                  task_timeout=TIMEOUT, max_task_retries=1,
                                  progress=plan)
        assert partial.complete
        assert partial.degraded
        assert partial.n_samples_drawn == 100  # one 20-row batch dropped
        assert partial.detail["rows_skipped"] == 20
        assert partial.detail["quarantined"][0]["task"] == "reliability-block"
        assert partial.effective_epsilon == pytest.approx(
            hoeffding_epsilon(100, 0.05)
        )
        assert partial.effective_epsilon > serial.effective_epsilon


# ----------------------------------------------------------------------
# FaultPlan extensions
# ----------------------------------------------------------------------
class TestFaultPlanExtensions:
    def test_raise_on_phase_fires_on_any_step(self):
        from repro.runtime.progress import ProgressEvent

        plan = FaultPlan().raise_on_phase("oracle-eval", RuntimeError)
        plan(ProgressEvent("sample-batch", step=3))  # no-op
        with pytest.raises(RuntimeError):
            plan(ProgressEvent("oracle-eval", step=17))
        # Fires once, then disarms.
        plan(ProgressEvent("oracle-eval", step=18))
        assert ("oracle-eval", 17) in plan.fired

    def test_pool_fault_specs_compose(self):
        plan = (FaultPlan()
                .kill_worker(after_tasks=2)
                .hang_task("gbu-seed", payload_index=1, times=3))
        assert plan.pool_faults == {
            "kill_after": 2,
            "hang_name": "gbu-seed",
            "hang_index": 1,
            "hang_limit": 3,
        }

    def test_take_segment_corruption_is_one_shot(self):
        plan = FaultPlan().corrupt_shared_segment()
        assert plan.take_segment_corruption()
        assert not plan.take_segment_corruption()
        assert ("corrupt-shared-segment", 0) in plan.fired
