"""Unit tests for the fixpoint-iteration local decomposition."""

import pytest

from repro import ParameterError, local_truss_decomposition
from repro.core.local_iterative import local_truss_decomposition_iterative
from repro.graphs.generators import (
    complete_graph,
    powerlaw_cluster_graph,
    running_example,
)
from repro.datasets.probability_models import assign_uniform
from tests.conftest import random_probabilistic_graph


class TestIterativeDecomposition:
    def test_invalid_gamma(self, triangle):
        with pytest.raises(ParameterError):
            local_truss_decomposition_iterative(triangle, -0.5)

    def test_empty(self, empty_graph):
        assert local_truss_decomposition_iterative(empty_graph, 0.5) == {}

    def test_paper_example(self):
        g = running_example()
        for gamma in (0.05, 0.125, 0.3, 0.7):
            iterative = local_truss_decomposition_iterative(g, gamma)
            peeling = local_truss_decomposition(g, gamma).trussness
            assert iterative == peeling

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("gamma", [0.1, 0.4, 0.8])
    def test_matches_peeling_random(self, seed, gamma):
        g = random_probabilistic_graph(16, 0.35, seed)
        iterative = local_truss_decomposition_iterative(g, gamma)
        peeling = local_truss_decomposition(g, gamma).trussness
        assert iterative == peeling

    def test_matches_peeling_clustered(self):
        import numpy as np

        rng = np.random.default_rng(4)
        g = assign_uniform(
            powerlaw_cluster_graph(70, 5, 0.6, seed=rng), seed=rng
        )
        for gamma in (0.2, 0.6):
            iterative = local_truss_decomposition_iterative(g, gamma)
            peeling = local_truss_decomposition(g, gamma).trussness
            assert iterative == peeling

    def test_certain_clique(self):
        g = complete_graph(6, 1.0)
        result = local_truss_decomposition_iterative(g, 1.0)
        assert all(t == 6 for t in result.values())

    def test_low_probability_edges_level_one(self):
        from repro import ProbabilisticGraph

        g = ProbabilisticGraph([(0, 1, 0.2), (1, 2, 0.9), (0, 2, 0.9)])
        result = local_truss_decomposition_iterative(g, 0.5)
        assert result[(0, 1)] == 1
        assert result[(1, 2)] == 2  # its only triangle uses the dead edge
