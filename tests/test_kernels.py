"""Differential tests: packed popcount kernels vs unpacked references.

Every kernel in :mod:`repro.core.kernels` has a pure-numpy boolean
counterpart (``unpacked.sum(axis=0)`` and friends) or a pure-Python
reference (``classify_worlds``, ``edge_supports_reference``,
``support_pmf_reference``). These tests pin the equivalences the hot
paths rely on:

* integer kernels are *exactly* equal to the boolean reference,
  including ragged tails (``n_samples % 8 != 0``) whose padding bits
  must never leak into a count;
* ``dedup_candidate_patterns`` reproduces ``np.unique(...,
  return_counts=True)`` bit for bit — pattern order included — so the
  float accumulation order downstream is unchanged;
* ``classify_worlds_packed`` equals ``classify_worlds`` for every k,
  for RAM-resident and spilled (memmapped) sample sets alike;
* the float kernels (``support_pmf``, oracle estimates) are
  *bit-identical* to their references, not just close.

The peak-allocation regression test at the bottom guards the point of
the whole module: classifying a spilled sample set must not
re-materialise the 8x boolean blow-up in RAM.
"""

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import ProbabilisticGraph, WorldSampleSet
from repro.core import kernels
from repro.core.global_truss import GlobalTrussOracle, classify_worlds
from repro.core.support_prob import support_pmf, support_pmf_reference
from repro.truss.support import edge_supports, edge_supports_reference

from .strategies import (
    dyadic_random_graph,
    exhaustive_sample_set,
    q_lists,
    random_probabilistic_graph,
)

# Ragged on purpose: every shape family includes n % 8 != 0 so a kernel
# that forgets the packing tail fails here, not in production.
matrix_shapes = st.tuples(
    st.integers(min_value=1, max_value=67),   # n_samples (rows)
    st.integers(min_value=0, max_value=9),    # n_edges (columns)
)


def _random_presence(shape, seed, density=0.5):
    n, m = shape
    gen = np.random.default_rng(seed)
    return gen.random((n, m)) < density


def _pack(presence):
    return np.packbits(presence, axis=0)


class TestBitKernels:
    @given(shape=matrix_shapes, seed=st.integers(0, 2**31),
           density=st.sampled_from([0.05, 0.5, 0.95]))
    @settings(max_examples=60, deadline=None)
    def test_column_counts(self, shape, seed, density):
        presence = _random_presence(shape, seed, density)
        got = kernels.column_counts(_pack(presence))
        np.testing.assert_array_equal(got, presence.sum(axis=0))

    @given(shape=matrix_shapes, seed=st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_masked_column_counts(self, shape, seed):
        presence = _random_presence(shape, seed)
        gen = np.random.default_rng(seed + 1)
        row_mask = gen.random(shape[0]) < 0.5
        got = kernels.masked_column_counts(
            _pack(presence), kernels.pack_row_mask(row_mask)
        )
        np.testing.assert_array_equal(got, presence[row_mask].sum(axis=0))

    @given(shape=matrix_shapes, seed=st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_row_sums(self, shape, seed):
        presence = _random_presence(shape, seed)
        got = kernels.row_sums(_pack(presence), shape[0])
        assert got.shape == (shape[0],)
        np.testing.assert_array_equal(got, presence.sum(axis=1))

    @given(shape=matrix_shapes, seed=st.integers(0, 2**31),
           density=st.sampled_from([0.5, 0.98]))
    @settings(max_examples=60, deadline=None)
    def test_and_reduce_columns(self, shape, seed, density):
        presence = _random_presence(shape, seed, density)
        full_bits = kernels.and_reduce_columns(_pack(presence))
        got = kernels.bits_at_rows(
            full_bits, np.arange(shape[0], dtype=np.int64)
        )
        np.testing.assert_array_equal(got, presence.all(axis=1))

    @given(shape=matrix_shapes, seed=st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_gather_rows(self, shape, seed):
        presence = _random_presence(shape, seed)
        gen = np.random.default_rng(seed + 2)
        rows = np.flatnonzero(gen.random(shape[0]) < 0.4)
        got = kernels.gather_rows(_pack(presence), rows)
        np.testing.assert_array_equal(got, presence[rows])

    @given(shape=matrix_shapes, seed=st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_unpack_matrix_roundtrip(self, shape, seed):
        presence = _random_presence(shape, seed)
        got = kernels.unpack_matrix(_pack(presence), shape[0])
        np.testing.assert_array_equal(got, presence)

    def test_popcount_all_byte_values(self):
        values = np.arange(256, dtype=np.uint8)
        expected = np.array([bin(v).count("1") for v in range(256)])
        np.testing.assert_array_equal(kernels.popcount(values), expected)


class TestDedupCandidatePatterns:
    @given(shape=matrix_shapes, seed=st.integers(0, 2**31),
           density=st.sampled_from([0.3, 0.95]))
    @settings(max_examples=60, deadline=None)
    def test_matches_np_unique_bit_for_bit(self, shape, seed, density):
        presence = _random_presence(shape, seed, density)
        gen = np.random.default_rng(seed + 3)
        rows = np.flatnonzero(gen.random(shape[0]) < 0.7)
        patterns, multiplicity = kernels.dedup_candidate_patterns(
            _pack(presence), rows
        )
        if rows.size == 0:
            assert patterns.shape[0] == 0
            return
        ref_patterns, ref_counts = np.unique(
            presence[rows], axis=0, return_counts=True
        )
        # Exact order match: the all-ones pattern sorts last in
        # np.unique's ascending lexicographic order, which is where the
        # packed kernel appends it.
        np.testing.assert_array_equal(patterns, ref_patterns)
        np.testing.assert_array_equal(multiplicity, ref_counts)

    def test_wide_projection_skips_dedup(self):
        # Above DEDUP_MAX_EDGES the reference keeps duplicate rows with
        # unit multiplicities, in candidate order; the kernel must too.
        m = kernels.DEDUP_MAX_EDGES + 1
        presence = _random_presence((24, m), seed=9, density=0.9)
        rows = np.array([3, 3, 7, 20], dtype=np.int64)
        patterns, multiplicity = kernels.dedup_candidate_patterns(
            _pack(presence), rows
        )
        np.testing.assert_array_equal(patterns, presence[rows])
        np.testing.assert_array_equal(multiplicity, np.ones(4, dtype=np.int64))


def _classify_case(n_nodes, density, seed, n_samples):
    graph = dyadic_random_graph(n_nodes, density, seed)
    edges = [tuple(sorted(e)) for e in graph.edges()]
    if not edges:
        return None
    samples = WorldSampleSet.from_graph(graph, n_samples, seed=seed + 1)
    return graph, edges, samples


class TestClassifyWorldsPacked:
    @pytest.mark.parametrize("k", [2, 3, 4])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_reference(self, k, seed):
        case = _classify_case(7, 0.6, seed, n_samples=101)  # ragged N
        if case is None:
            pytest.skip("empty random graph")
        graph, edges, samples = case
        nodes = list(graph.nodes())
        matrix = samples.presence_matrix(edges)
        packed = samples.packed_columns(edges)
        rows = np.flatnonzero(
            np.random.default_rng(seed).random(samples.n_samples) < 0.8
        )
        assert classify_worlds(edges, nodes, k, matrix, rows) == \
            kernels.classify_worlds_packed(edges, nodes, k, packed, rows)

    def test_matches_reference_on_spilled_set(self, tmp_path):
        case = _classify_case(6, 0.7, seed=5, n_samples=77)
        graph, edges, samples = case
        nodes = list(graph.nodes())
        matrix = samples.presence_matrix(edges)
        rows = np.arange(samples.n_samples, dtype=np.int64)
        reference = classify_worlds(edges, nodes, 3, matrix, rows)
        samples.spill_to(tmp_path / "worlds.bits")
        assert samples.is_spilled
        packed = samples.packed_columns(edges)
        assert kernels.classify_worlds_packed(
            edges, nodes, 3, packed, rows
        ) == reference

    def test_exhaustive_set_matches_reference(self):
        graph = ProbabilisticGraph(
            [(0, 1, 0.75), (1, 2, 0.5), (0, 2, 0.75), (2, 3, 0.25)]
        )
        samples = exhaustive_sample_set(graph)
        edges = [tuple(sorted(e)) for e in graph.edges()]
        nodes = list(graph.nodes())
        rows = np.arange(samples.n_samples, dtype=np.int64)
        for k in (2, 3):
            assert kernels.classify_worlds_packed(
                edges, nodes, k, samples.packed_columns(edges), rows
            ) == classify_worlds(
                edges, nodes, k, samples.presence_matrix(edges), rows
            )

    @pytest.mark.parametrize("spill", [False, True])
    def test_oracle_estimates_bit_identical(self, spill, tmp_path):
        # End-to-end through the oracle: packed hot path vs a manual
        # reference computation of the same estimates, byte for byte.
        graph = dyadic_random_graph(6, 0.7, seed=11)
        samples = WorldSampleSet.from_graph(graph, 93, seed=12)
        edges = [tuple(sorted(e)) for e in graph.edges()]
        nodes = list(graph.nodes())
        matrix = samples.presence_matrix(edges)
        if spill:
            samples.spill_to(tmp_path / "worlds.bits")
        oracle = GlobalTrussOracle(samples)
        got = oracle._estimates(edges, nodes, 3)
        rows = np.arange(samples.n_samples, dtype=np.int64)
        counts = classify_worlds(edges, nodes, 3, matrix, rows)
        want = {e: c / samples.n_samples for e, c in counts.items()}
        assert got == want  # == on floats: bit-identity, not closeness


class TestVectorizedSupports:
    @pytest.mark.parametrize("seed", [0, 1, 2, 7])
    def test_matches_reference(self, seed):
        graph = random_probabilistic_graph(14, 0.4, seed)
        assert edge_supports(graph) == edge_supports_reference(graph)

    def test_empty_and_triangle(self):
        assert edge_supports(ProbabilisticGraph()) == {}
        tri = ProbabilisticGraph([(0, 1, 0.5), (1, 2, 0.5), (0, 2, 0.5)])
        assert edge_supports(tri) == edge_supports_reference(tri)


class TestSupportPmfKernel:
    @given(qs=q_lists)
    @settings(max_examples=80, deadline=None)
    def test_bit_identical_to_reference(self, qs):
        got = support_pmf(qs)
        want = support_pmf_reference(qs)
        assert len(got) == len(want)
        # Bitwise equality, not allclose: IEEE addition commutativity
        # makes the vectorised accumulation exactly the scalar one.
        for a, b in zip(got, want):
            assert a == b


class TestSpilledPeakAllocation:
    def test_classification_never_materialises_bool_matrix(self, tmp_path):
        # Regression for the unpack-everything bug: evaluating a
        # candidate against a spilled sample set used to start with
        # presence_matrix(), re-inflating the full (N, m) boolean
        # projection into RAM (8x the packed bits, defeating the
        # spill). The packed path's peak transient must stay under the
        # boolean matrix it replaced. High edge probabilities keep the
        # sampled worlds dominated by the all-edges pattern, the case
        # the popcount shortcut is built for.
        gen = np.random.default_rng(3)
        graph = ProbabilisticGraph()
        for u in range(12):
            graph.add_node(u)
        for u in range(12):
            for v in range(u + 1, 12):
                if gen.random() < 0.6:
                    graph.add_edge(u, v, 0.999)
        n_samples, n_edges = 80_000, graph.number_of_edges()
        bool_matrix_bytes = n_samples * n_edges
        assert bool_matrix_bytes >= 2_000_000
        samples = WorldSampleSet.from_graph(graph, n_samples, seed=4)
        samples.spill_to(tmp_path / "worlds.bits")
        oracle = GlobalTrussOracle(samples)
        edges = [tuple(sorted(e)) for e in graph.edges()]
        nodes = list(graph.nodes())
        # Warm up the lazy scipy.sparse import inside the classifier
        # (a one-time ~10 MB importlib transient that would swamp the
        # measurement) and then drop the memoised estimates. The
        # warm-up nodes are only the covered endpoints so the world
        # classifier genuinely runs instead of fast-rejecting.
        warm_nodes = sorted({n for e in edges[:3] for n in e})
        oracle.satisfies_edges(edges[:3], warm_nodes, 2, 0.0)
        oracle.clear_cache()
        tracemalloc.start()
        try:
            oracle.satisfies_edges(edges, nodes, 3, 0.1)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # Packed projection + int64 row bookkeeping + partial-row
        # gather: strictly below the one boolean matrix the old path
        # materialised before it even computed its bounds. (The old
        # peak was >= 2x this: the full unpack plus np.unique's sort
        # copies over every candidate row — a regression reintroducing
        # either lands far above this line.)
        assert peak < bool_matrix_bytes, (
            f"classification peak {peak} bytes vs boolean matrix "
            f"{bool_matrix_bytes} bytes - the 8x unpack is back"
        )
