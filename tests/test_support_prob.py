"""Unit tests for edge support probabilities (Algorithm 2 DP + Eq. 8)."""

import math

import numpy as np
import pytest

from repro import (
    EdgeNotFoundError,
    ParameterError,
    SupportProbability,
    support_pmf,
    support_pmf_bruteforce,
    support_tail,
    triangle_probabilities,
)
from repro.graphs.generators import running_example


class TestTriangleProbabilities:
    def test_paper_edge(self):
        g = running_example()
        qs = triangle_probabilities(g, "q1", "v1")
        # Apexes: v2 (0.5 * 1), v3 (0.5 * 1), p1 (0.7 * 0.7).
        assert set(qs) == {"v2", "v3", "p1"}
        assert math.isclose(qs["v2"], 0.5)
        assert math.isclose(qs["p1"], 0.49)

    def test_missing_edge(self):
        g = running_example()
        with pytest.raises(EdgeNotFoundError):
            triangle_probabilities(g, "p1", "v3")

    def test_no_triangles(self):
        from repro import ProbabilisticGraph

        g = ProbabilisticGraph([(0, 1, 0.5)])
        assert triangle_probabilities(g, 0, 1) == {}


class TestSupportPmf:
    def test_no_triangles(self):
        assert support_pmf([]) == [1.0]

    def test_single_triangle(self):
        f = support_pmf([0.3])
        assert math.isclose(f[0], 0.7)
        assert math.isclose(f[1], 0.3)

    def test_certain_triangles(self):
        f = support_pmf([1.0, 1.0])
        assert f == [0.0, 0.0, 1.0]

    def test_impossible_triangles(self):
        f = support_pmf([0.0, 0.0, 0.0])
        assert f[0] == 1.0
        assert sum(f[1:]) == 0.0

    def test_sums_to_one(self):
        f = support_pmf([0.1, 0.5, 0.9, 0.33])
        assert math.isclose(sum(f), 1.0)

    @pytest.mark.parametrize(
        "qs",
        [
            [0.5], [0.2, 0.8], [0.3, 0.3, 0.3], [0.9, 0.1, 0.5, 0.7],
            [1.0, 0.5], [0.0, 0.5, 1.0],
        ],
    )
    def test_matches_bruteforce(self, qs):
        assert np.allclose(support_pmf(qs), support_pmf_bruteforce(qs))

    def test_invalid_probability(self):
        with pytest.raises(ParameterError):
            support_pmf([1.5])


class TestSupportTail:
    def test_tail_of_pmf(self):
        sigma = support_tail([0.2, 0.5, 0.3])
        assert math.isclose(sigma[0], 1.0)
        assert math.isclose(sigma[1], 0.8)
        assert math.isclose(sigma[2], 0.3)

    def test_monotone_non_increasing(self):
        sigma = support_tail(support_pmf([0.4, 0.6, 0.1, 0.8]))
        assert all(a >= b - 1e-12 for a, b in zip(sigma, sigma[1:]))

    def test_starts_at_one(self):
        assert support_tail([1.0])[0] == 1.0


class TestSupportProbabilityObject:
    def test_from_edge_matches_function(self):
        g = running_example()
        sp = SupportProbability.from_edge(g, "q1", "v1")
        qs = list(triangle_probabilities(g, "q1", "v1").values())
        assert np.allclose(sp.pmf, support_pmf(qs))

    def test_max_support(self):
        sp = SupportProbability([0.5, 0.5, 0.5])
        assert sp.max_support == 3

    def test_probability_eq_out_of_range(self):
        sp = SupportProbability([0.5])
        assert sp.probability_eq(-1) == 0.0
        assert sp.probability_eq(5) == 0.0

    def test_tail_boundaries(self):
        sp = SupportProbability([0.5, 0.5])
        assert sp.tail(0) == 1.0
        assert sp.tail(-3) == 1.0
        assert sp.tail(3) == 0.0

    def test_add_then_remove_round_trip(self):
        sp = SupportProbability([0.3, 0.7])
        before = sp.pmf
        sp.add_triangle(0.42)
        sp.remove_triangle(0.42)
        assert np.allclose(sp.pmf, before)

    def test_remove_triangle_matches_recompute(self):
        qs = [0.3, 0.7, 0.55, 0.9]
        sp = SupportProbability(qs)
        sp.remove_triangle(0.55)
        assert np.allclose(sp.pmf, support_pmf([0.3, 0.7, 0.9]), atol=1e-12)

    def test_remove_certain_triangle_shifts(self):
        sp = SupportProbability([1.0, 0.5])
        sp.remove_triangle(1.0)
        assert np.allclose(sp.pmf, support_pmf([0.5]))

    def test_remove_impossible_triangle(self):
        sp = SupportProbability([0.0, 0.5])
        sp.remove_triangle(0.0)
        assert np.allclose(sp.pmf, support_pmf([0.5]))

    def test_remove_from_empty_raises(self):
        sp = SupportProbability([])
        with pytest.raises(ParameterError):
            sp.remove_triangle(0.5)

    def test_remove_invalid_probability(self):
        sp = SupportProbability([0.5])
        with pytest.raises(ParameterError):
            sp.remove_triangle(-0.1)

    def test_repeated_removals_stay_accurate(self):
        # The Eq. 8 deconvolution must not accumulate damaging error even
        # after many removals (this is what makes the DP method viable).
        # The tracked error bound triggers an exact rebuild from the
        # remaining factors whenever the deconvolution becomes
        # ill-conditioned (near-0.5 removals), so drift stays at
        # float-dust levels unconditionally.
        rng = np.random.default_rng(0)
        qs = list(rng.uniform(0.05, 0.95, size=40))
        sp = SupportProbability(qs)
        order = list(rng.permutation(len(qs)))
        remaining = list(qs)
        for idx in sorted(order[:35], reverse=True):
            sp.remove_triangle(remaining[idx])
            del remaining[idx]
        assert np.allclose(sp.pmf, support_pmf(remaining), atol=1e-10)

    def test_from_pmf_validates(self):
        with pytest.raises(ParameterError):
            SupportProbability.from_pmf([0.5, 0.2])
        sp = SupportProbability.from_pmf([0.25, 0.75])
        assert sp.max_support == 1

    def test_copy_independent(self):
        sp = SupportProbability([0.5, 0.5])
        clone = sp.copy()
        clone.remove_triangle(0.5)
        assert sp.max_support == 2
        assert clone.max_support == 1


class TestLevel:
    def test_low_edge_probability_level_one(self):
        sp = SupportProbability([0.9, 0.9])
        assert sp.level(gamma=0.5, edge_probability=0.3) == 1

    def test_no_triangles_level_two(self):
        sp = SupportProbability([])
        assert sp.level(gamma=0.5, edge_probability=0.9) == 2

    def test_level_uses_tail_times_edge_probability(self):
        # One triangle with q = 0.8, edge p = 0.5: sigma(1) * p = 0.4.
        sp = SupportProbability([0.8])
        assert sp.level(gamma=0.39, edge_probability=0.5) == 3
        assert sp.level(gamma=0.41, edge_probability=0.5) == 2

    def test_level_exact_threshold_passes(self):
        # sigma(2) * p = 0.125 exactly — the paper's H1 boundary case.
        sp = SupportProbability([0.5, 0.5])
        assert sp.level(gamma=0.125, edge_probability=0.5) == 4

    def test_level_monotone_in_gamma(self):
        sp = SupportProbability([0.3, 0.6, 0.9])
        levels = [sp.level(g, 0.8) for g in (0.01, 0.1, 0.3, 0.6, 0.9)]
        assert levels == sorted(levels, reverse=True)

    def test_invalid_gamma(self):
        sp = SupportProbability([0.5])
        with pytest.raises(ParameterError):
            sp.level(gamma=1.5, edge_probability=0.5)
