"""The CONC rule family: semantics, annotations, golden corpus, CLI.

The fixture-corpus basics (fires / suppressed / clean) ride the
machinery in ``test_reprolint.py``; this module pins down the parts
specific to the concurrency analysis:

* annotation parsing (``guarded-by``/``owned-by``), including the
  malformed and dangling shapes that must surface as SUP002;
* the flow rules one by one — Condition-wraps-Lock aliasing, the
  ``_locked`` suffix convention, role propagation through the call
  graph, RLock reentrancy, the ``str.join`` / thread-``join``
  distinction;
* the golden JSON corpus CI diffs against;
* ``--select CONC`` (family expansion) and ``repro lint --changed``.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import run_lint
from repro.cli import main
from repro.exceptions import ParameterError

REPO = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def lint_source(tmp_path: Path, source: str, select=None):
    """Lint one inline module; returns the LintResult."""
    file = tmp_path / "snippet.py"
    file.write_text(source)
    return run_lint([str(file)], select=select)


def rules_of(result) -> list[str]:
    return [f.rule for f in result.findings]


# --------------------------------------------------------------------------
# annotation parsing


def test_malformed_guarded_by_is_sup002(tmp_path):
    result = lint_source(tmp_path, """\
import threading


class C:
    def __init__(self):
        self._lock = threading.Lock()
        self.x = 0  # repro: guarded-by[not a lock expr!]
""")
    assert rules_of(result) == ["SUP002"]
    assert "guarded-by" in result.findings[0].message


def test_malformed_owned_by_role_is_sup002(tmp_path):
    result = lint_source(tmp_path, """\
class C:
    def __init__(self):
        self.x = 0  # repro: owned-by[Not A Role]
""")
    assert rules_of(result) == ["SUP002"]


def test_dangling_annotation_is_sup002(tmp_path):
    # guarded-by on a def line declares nothing; it must not be
    # silently dropped.
    result = lint_source(tmp_path, """\
import threading


class C:
    def __init__(self):
        self._lock = threading.Lock()

    # repro: guarded-by[self._lock]
    def work(self):
        return 1
""")
    assert rules_of(result) == ["SUP002"]
    assert "dangling" in result.findings[0].message


def test_annotations_do_not_trip_sup001():
    # Annotations declare invariants; they are not suppressions and
    # must never be reported as stale pragmas.
    result = run_lint([str(FIXTURES / "plain" / "conc001_clean.py")])
    assert result.clean, [f.render() for f in result.findings]


# --------------------------------------------------------------------------
# CONC001 semantics


def test_condition_wrapping_lock_counts_as_holding_it(tmp_path):
    result = lint_source(tmp_path, """\
import threading


class C:
    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self.n = 0  # repro: guarded-by[self._cond]

    def locked_via_lock(self):
        # The raw lock and its Condition are one underlying lock.
        with self._lock:
            self.n += 1
""")
    assert result.clean, [f.render() for f in result.findings]


def test_locked_suffix_method_is_exempt(tmp_path):
    result = lint_source(tmp_path, """\
import threading


class C:
    def __init__(self):
        self._lock = threading.Lock()
        self.n = 0  # repro: guarded-by[self._lock]

    def _bump_locked(self):
        self.n += 1

    def bump(self):
        with self._lock:
            self._bump_locked()
""")
    assert result.clean, [f.render() for f in result.findings]


def test_nested_function_does_not_inherit_the_with_stack(tmp_path):
    # A closure defined under `with` may run long after the lock is
    # released: the guarded access inside it must still be flagged.
    result = lint_source(tmp_path, """\
import threading


class C:
    def __init__(self):
        self._lock = threading.Lock()
        self.n = 0  # repro: guarded-by[self._lock]

    def make_callback(self):
        with self._lock:
            def cb():
                self.n += 1
            return cb
""")
    assert rules_of(result) == ["CONC001"]


def test_wrong_lock_does_not_satisfy_the_guard(tmp_path):
    result = lint_source(tmp_path, """\
import threading


class C:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()
        self.n = 0  # repro: guarded-by[self._a]

    def bump(self):
        with self._b:
            self.n += 1
""")
    assert rules_of(result) == ["CONC001"]


# --------------------------------------------------------------------------
# CONC002 semantics


def test_role_propagates_transitively(tmp_path):
    # handler -> helper -> owned method: the violation survives one
    # level of indirection.
    result = lint_source(tmp_path, """\
class Breaker:
    # repro: owned-by[builder]
    def allow(self):
        return True


class Service:
    def __init__(self, breaker):
        self.breaker = breaker

    # repro: owned-by[handler]
    def handle(self):
        return self._helper()

    def _helper(self):
        return self.breaker.allow()
""")
    assert rules_of(result) == ["CONC002"]


def test_role_free_code_is_never_judged(tmp_path):
    # Test harnesses and wiring code have no declared role; calling an
    # owned method from them is fine (conservative by design).
    result = lint_source(tmp_path, """\
class Breaker:
    # repro: owned-by[builder]
    def allow(self):
        return True


def harness(breaker):
    return breaker.allow()
""")
    assert result.clean, [f.render() for f in result.findings]


def test_owned_attribute_write_from_foreign_role(tmp_path):
    result = lint_source(tmp_path, """\
class Breaker:
    def __init__(self):
        self.state = "closed"  # repro: owned-by[builder]

    # repro: owned-by[handler]
    def poke(self):
        self.state = "half-open"
""")
    assert rules_of(result) == ["CONC002"]
    assert "owned-by[builder]" in result.findings[0].message


# --------------------------------------------------------------------------
# CONC003 semantics


def test_interprocedural_cycle_is_found(tmp_path):
    # credit holds A and calls a helper that takes B; debit nests the
    # other way round — the cycle crosses a call edge.
    result = lint_source(tmp_path, """\
import threading


class C:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def credit(self):
        with self._a:
            self._take_b()

    def _take_b(self):
        with self._b:
            pass

    def debit(self):
        with self._b:
            with self._a:
                pass
""")
    assert rules_of(result) == ["CONC003"]


def test_plain_lock_self_nest_is_self_deadlock(tmp_path):
    result = lint_source(tmp_path, """\
import threading


class C:
    def __init__(self):
        self._lock = threading.Lock()

    def oops(self):
        with self._lock:
            with self._lock:
                pass
""")
    assert rules_of(result) == ["CONC003"]
    assert "self-deadlock" in result.findings[0].message


def test_rlock_self_nest_is_fine(tmp_path):
    result = lint_source(tmp_path, """\
import threading


class C:
    def __init__(self):
        self._lock = threading.RLock()

    def fine(self):
        with self._lock:
            with self._lock:
                pass
""")
    assert result.clean, [f.render() for f in result.findings]


def test_local_function_locks_participate(tmp_path):
    result = lint_source(tmp_path, """\
import threading


def worker_a():
    a = threading.Lock()
    b = threading.Lock()
    with a:
        with b:
            pass
    with b:
        with a:
            pass
""")
    assert rules_of(result) == ["CONC003"]


# --------------------------------------------------------------------------
# CONC004 semantics


@pytest.mark.parametrize("call, flagged", [
    ("time.sleep(0.1)", True),
    ("subprocess.run(['true'])", True),
    ("self.conn.recv()", True),
    ("self.pool.submit(work)", True),
    ("self.thread.join()", True),
    ("self.thread.join(timeout=1.0)", True),
    ("', '.join(parts)", False),       # str.join: positional arg
    ("self._lock.wait(0.1)", False),   # wait on the held lock
    ("self.event.wait(0.1)", True),    # wait on something else
])
def test_blocking_calls_under_lock(tmp_path, call, flagged):
    result = lint_source(tmp_path, f"""\
import subprocess
import threading
import time


def work():
    pass


class C:
    def __init__(self, conn, pool, thread, event):
        self._lock = threading.Condition(threading.Lock())
        self.conn = conn
        self.pool = pool
        self.thread = thread
        self.event = event

    def op(self, parts):
        with self._lock:
            {call}
""")
    if flagged:
        assert rules_of(result) == ["CONC004"], call
    else:
        assert result.clean, (call, [f.render() for f in result.findings])


def test_blocking_call_outside_lock_is_fine(tmp_path):
    result = lint_source(tmp_path, """\
import threading
import time


class C:
    def __init__(self):
        self._lock = threading.Lock()

    def op(self):
        with self._lock:
            pass
        time.sleep(0.1)
""")
    assert result.clean, [f.render() for f in result.findings]


# --------------------------------------------------------------------------
# golden corpus (the same diff CI runs)


def test_golden_corpus():
    golden = json.loads(
        (FIXTURES / "conc_golden.json").read_text())["expected"]
    for name, want in golden.items():
        result = run_lint([str(FIXTURES / "plain" / name)])
        got = [{"rule": f.rule, "line": f.line, "col": f.col}
               for f in result.findings]
        assert got == want, f"{name}: {got} != {want}"


# --------------------------------------------------------------------------
# --select family expansion and the CLI


def test_select_family_expands_to_all_conc_rules():
    result = run_lint(
        [str(FIXTURES / "plain" / "conc001_fires.py"),
         str(FIXTURES / "plain" / "det001_fires.py")],
        select=["CONC"])
    assert set(rules_of(result)) == {"CONC001"}


def test_select_unknown_family_is_a_parameter_error():
    with pytest.raises(ParameterError, match="families"):
        run_lint([str(FIXTURES / "plain" / "conc001_fires.py")],
                 select=["NOPE"])


def test_cli_select_conc_on_fixture(capsys):
    rel = FIXTURES / "plain" / "conc002_fires.py"
    code = main(["lint", str(rel), "--select", "CONC"])
    out = capsys.readouterr().out
    assert code == 1
    assert "CONC002" in out


def test_cli_select_conc_real_tree_is_clean(capsys):
    code = main(["lint", str(REPO / "src" / "repro"),
                 "--select", "CONC"])
    assert code == 0, capsys.readouterr().out


# --------------------------------------------------------------------------
# repro lint --changed


def run_cli(args, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, cwd=cwd,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )


@pytest.fixture
def git_repo(tmp_path):
    def git(*argv):
        subprocess.run(
            ["git", *argv], cwd=tmp_path, check=True,
            capture_output=True,
            env={"PATH": "/usr/bin:/bin",
                 "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                 "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
                 "HOME": str(tmp_path)},
        )

    git("init", "-q")
    clean = tmp_path / "clean.py"
    clean.write_text("X = 1\n")
    git("add", "clean.py")
    git("commit", "-q", "-m", "seed")
    return tmp_path


def test_changed_lints_only_touched_files(git_repo):
    # A committed violation stays invisible to --changed...
    bad = git_repo / "clean.py"
    bad.write_text("import threading\n\n\n"
                   "class C:\n"
                   "    def __init__(self):\n"
                   "        self._lock = threading.Lock()\n"
                   "        self.n = 0  # repro: guarded-by[self._lock]\n"
                   "\n"
                   "    def bump(self):\n"
                   "        self.n += 1\n")
    proc = run_cli(["lint", ".", "--changed"], cwd=git_repo)
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "CONC001" in proc.stdout
    assert "1 file" in proc.stdout  # only the touched file was scanned


def test_changed_includes_untracked_files(git_repo):
    new = git_repo / "fresh.py"
    new.write_text("Y = 2\n")
    proc = run_cli(["lint", ".", "--changed"], cwd=git_repo)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "1 file" in proc.stdout


def test_changed_with_no_touched_files_is_clean(git_repo):
    proc = run_cli(["lint", ".", "--changed"], cwd=git_repo)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 changed file(s)" in proc.stdout


def test_changed_bad_ref_is_usage_error(git_repo):
    proc = run_cli(["lint", ".", "--changed", "nosuchref"],
                   cwd=git_repo)
    assert proc.returncode == 2
    assert "git diff" in proc.stderr


def test_changed_outside_git_falls_back_to_full_lint(tmp_path):
    (tmp_path / "mod.py").write_text("Z = 3\n")
    proc = run_cli(["lint", "mod.py", "--changed"], cwd=tmp_path)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "not inside a git checkout" in proc.stderr
    assert "1 file(s) clean" in proc.stdout
