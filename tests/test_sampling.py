"""Unit tests for possible-world sampling and the bit-packed sample set."""

import math

import numpy as np
import pytest

from repro import (
    EdgeNotFoundError,
    ParameterError,
    ProbabilisticGraph,
    WorldSampleSet,
    hoeffding_sample_size,
    sample_possible_world,
    sample_possible_worlds,
)


class TestHoeffdingSampleSize:
    def test_paper_setting(self):
        # eps = delta = 0.1 -> N >= ln(20)/0.02 ~ 149.8; the paper uses 150.
        assert hoeffding_sample_size(0.1, 0.1) == 150

    def test_formula(self):
        eps, delta = 0.05, 0.01
        expected = math.ceil(math.log(2 / delta) / (2 * eps * eps))
        assert hoeffding_sample_size(eps, delta) == expected

    def test_tighter_epsilon_needs_more_samples(self):
        assert hoeffding_sample_size(0.01, 0.1) > hoeffding_sample_size(0.1, 0.1)

    @pytest.mark.parametrize("eps,delta", [(0, 0.1), (0.1, 0), (1.5, 0.1), (0.1, 1.5)])
    def test_invalid_parameters(self, eps, delta):
        with pytest.raises(ParameterError):
            hoeffding_sample_size(eps, delta)


class TestSamplePossibleWorld:
    def test_certain_edges_always_present(self, rng):
        g = ProbabilisticGraph([("a", "b", 1.0), ("b", "c", 0.0)])
        for _ in range(20):
            world = sample_possible_world(g, rng)
            assert ("a", "b") in world
            assert ("b", "c") not in world

    def test_frequency_approximates_probability(self, rng):
        g = ProbabilisticGraph([("a", "b", 0.3)])
        hits = sum(
            ("a", "b") in sample_possible_world(g, rng) for _ in range(4000)
        )
        assert abs(hits / 4000 - 0.3) < 0.03


class TestWorldSampleSet:
    def test_shapes(self, paper_graph):
        samples = WorldSampleSet.from_graph(paper_graph, 64, seed=1)
        assert samples.n_samples == 64
        assert samples.n_edges == paper_graph.number_of_edges()

    def test_invalid_sample_count(self, paper_graph):
        with pytest.raises(ParameterError):
            WorldSampleSet.from_graph(paper_graph, 0, seed=1)

    def test_deterministic_under_seed(self, paper_graph):
        a = WorldSampleSet.from_graph(paper_graph, 32, seed=5)
        b = WorldSampleSet.from_graph(paper_graph, 32, seed=5)
        for u, v in paper_graph.edges():
            assert np.array_equal(a.edge_bits(u, v), b.edge_bits(u, v))

    def test_edge_bits_round_trip(self):
        presence = np.array(
            [[True, False], [False, True], [True, True]], dtype=bool
        )
        samples = WorldSampleSet(presence, [("a", "b"), ("b", "c")])
        assert np.array_equal(
            samples.edge_bits("a", "b"), np.array([True, False, True])
        )
        assert np.array_equal(
            samples.edge_bits("c", "b"), np.array([False, True, True])
        )

    def test_certain_edge_bits(self, rng):
        g = ProbabilisticGraph([("a", "b", 1.0)])
        samples = WorldSampleSet.from_graph(g, 40, seed=rng)
        assert samples.edge_bits("a", "b").all()

    def test_unknown_edge_raises(self, paper_graph):
        samples = WorldSampleSet.from_graph(paper_graph, 8, seed=1)
        with pytest.raises(EdgeNotFoundError):
            samples.edge_bits("p1", "v3")

    def test_presence_matrix_projection(self, paper_graph):
        samples = WorldSampleSet.from_graph(paper_graph, 16, seed=2)
        edges = [("q1", "v1"), ("v1", "v2")]
        matrix = samples.presence_matrix(edges)
        assert matrix.shape == (16, 2)
        # Column order follows the requested edge order.
        assert np.array_equal(matrix[:, 0], samples.edge_bits("q1", "v1"))

    def test_presence_matrix_empty(self, paper_graph):
        samples = WorldSampleSet.from_graph(paper_graph, 16, seed=2)
        assert samples.presence_matrix([]).shape == (16, 0)

    def test_world_edges_consistent_with_matrix(self, paper_graph):
        samples = WorldSampleSet.from_graph(paper_graph, 10, seed=3)
        edges = list(paper_graph.edges())
        matrix = samples.presence_matrix(edges)
        for i in range(10):
            world = samples.world_edges(i)
            expected = {edges[j] for j in np.flatnonzero(matrix[i])}
            assert world == expected

    def test_world_edges_restricted(self, paper_graph):
        samples = WorldSampleSet.from_graph(paper_graph, 10, seed=3)
        restrict = [("v1", "v2"), ("v1", "v3")]
        world = samples.world_edges(0, restrict_to=restrict)
        assert world <= set(restrict)

    def test_world_index_out_of_range(self, paper_graph):
        samples = WorldSampleSet.from_graph(paper_graph, 4, seed=1)
        with pytest.raises(ParameterError):
            samples.world_edges(4)

    def test_iter_worlds_counts(self, paper_graph):
        samples = WorldSampleSet.from_graph(paper_graph, 12, seed=4)
        worlds = list(samples.iter_worlds())
        assert len(worlds) == 12

    def test_edge_frequency_certain(self):
        g = ProbabilisticGraph([("a", "b", 1.0), ("b", "c", 0.0)])
        samples = WorldSampleSet.from_graph(g, 30, seed=1)
        assert samples.edge_frequency("a", "b") == 1.0
        assert samples.edge_frequency("b", "c") == 0.0

    def test_edge_frequency_statistical(self):
        g = ProbabilisticGraph([("a", "b", 0.25)])
        samples = WorldSampleSet.from_graph(g, 5000, seed=6)
        assert abs(samples.edge_frequency("a", "b") - 0.25) < 0.03

    def test_bit_packing_memory(self, paper_graph):
        # 150 samples need ceil(150 / 8) = 19 bytes per edge.
        samples = WorldSampleSet.from_graph(paper_graph, 150, seed=1)
        assert samples.nbytes() == 19 * paper_graph.number_of_edges()

    def test_empty_graph(self):
        samples = WorldSampleSet.from_graph(ProbabilisticGraph(), 5, seed=1)
        assert samples.n_edges == 0
        assert list(samples.iter_worlds()) == [set()] * 5

    def test_convenience_wrapper(self, paper_graph):
        samples = sample_possible_worlds(paper_graph, 7, seed=9)
        assert samples.n_samples == 7

    def test_rejects_bad_matrix(self):
        with pytest.raises(ParameterError):
            WorldSampleSet(np.zeros((3,), dtype=bool), [("a", "b")])

    def test_rejects_empty_sample_set(self):
        # Regression: a (0, m) presence matrix used to be accepted, and
        # every downstream edge_frequency() then divided by zero.
        with pytest.raises(ParameterError, match="at least one sampled world"):
            WorldSampleSet(
                np.zeros((0, 2), dtype=bool), [("a", "b"), ("b", "c")]
            )

    def test_from_packed_rejects_zero_samples(self):
        with pytest.raises(ParameterError, match="at least one sampled world"):
            WorldSampleSet.from_packed(
                np.zeros((0, 1), dtype=np.uint8), 0, [("a", "b")]
            )

    def test_packed_round_trip(self, paper_graph):
        samples = WorldSampleSet.from_graph(paper_graph, 26, seed=7)
        again = WorldSampleSet.from_packed(
            samples.packed_bits, samples.n_samples, list(samples.edge_index)
        )
        assert again.n_samples == samples.n_samples
        for u, v in paper_graph.edges():
            assert np.array_equal(
                again.edge_bits(u, v), samples.edge_bits(u, v)
            )

    def test_rejects_duplicate_edges(self):
        with pytest.raises(ParameterError):
            WorldSampleSet(
                np.zeros((3, 2), dtype=bool), [("a", "b"), ("a", "b")]
            )
