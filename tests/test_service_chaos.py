"""Chaos battery for ``repro serve`` (crash-marked; CI ``service-chaos``).

Proves the robustness headline of the service against a *real* server:

* a real ``kill -TERM`` mid-index-build exits 143 with a resumable
  checkpoint, and the warm-restarted build reproduces the uninterrupted
  result **byte for byte** — across worker counts {None, 1, 2};
* a worker SIGKILLed mid-build (``FaultPlan.kill_worker``) is replaced
  by supervision and the served payload reports it;
* injected ENOSPC during a build degrades checkpointing, not the
  service — the query still answers, honestly marked;
* a storm of concurrent queries under dropped-connection and
  slow-client injection produces only well-formed JSON responses with
  documented status codes, no hangs past the deadline, and a healthy
  server afterwards.
"""

from __future__ import annotations

import json
import os
import queue
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from urllib.parse import quote

import pytest

from repro.graphs.generators import running_example
from repro.graphs.io import read_edge_list, write_edge_list
from repro.runtime import run_global
from repro.runtime.faults import FaultPlan
from repro.runtime.result import serialize_global_result

from tests.test_service import Recorder, http_get, live_service, _wait_until

pytestmark = pytest.mark.crash

GAMMA, EPSILON, DELTA, SAMPLES, BATCH = 0.3, 0.5, 0.5, 30, 10


@pytest.fixture
def example_path(tmp_path):
    path = tmp_path / "example.txt"
    write_edge_list(running_example(), path)
    return path


@pytest.fixture
def baseline_bytes(example_path):
    """The canonical bytes an uninterrupted build must reproduce."""
    graph = read_edge_list(example_path)
    partial = run_global(graph, GAMMA, epsilon=EPSILON, delta=DELTA,
                         seed=42, n_samples=SAMPLES, batch_size=BATCH)
    assert partial.complete
    return serialize_global_result(partial.result)


def _global_query(example_path, extra=""):
    spec = quote(str(example_path), safe="")
    return (f"/global?graph={spec}&gamma={GAMMA}&epsilon={EPSILON}"
            f"&delta={DELTA}&samples={SAMPLES}{extra}")


class _ServeProc:
    """A ``repro serve`` subprocess with a pumped stdout line queue."""

    def __init__(self, state_dir, *flags):
        repo_root = Path(__file__).resolve().parents[1]
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--state-dir", str(state_dir), "--trace",
             "--batch-size", str(BATCH), "--grace", "20", *flags],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=dict(os.environ, PYTHONPATH=str(repo_root / "src"),
                     PYTHONUNBUFFERED="1"),
            cwd=repo_root,
        )
        self.lines: queue.Queue[str | None] = queue.Queue()
        self._pump = threading.Thread(target=self._read, daemon=True)
        self._pump.start()
        banner = self.expect(r"serving on http://", timeout=30)
        match = re.search(r"http://([\d.]+):(\d+)", banner)
        self.base = f"http://{match.group(1)}:{match.group(2)}"

    def _read(self):
        for line in self.proc.stdout:
            self.lines.put(line)
        self.lines.put(None)

    def expect(self, pattern, timeout=60.0) -> str:
        """Next stdout line matching ``pattern`` (regex search)."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise AssertionError(f"no line matching {pattern!r}")
            try:
                line = self.lines.get(timeout=remaining)
            except queue.Empty:
                raise AssertionError(
                    f"no line matching {pattern!r}") from None
            if line is None:
                raise AssertionError(
                    f"stdout closed before {pattern!r} matched")
            if re.search(pattern, line):
                return line

    def get(self, path, timeout=30.0):
        try:
            with urllib.request.urlopen(self.base + path,
                                        timeout=timeout) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read())

    def terminate_and_wait(self, timeout=60.0) -> int:
        self.proc.send_signal(signal.SIGTERM)
        self.proc.wait(timeout=timeout)
        return self.proc.returncode


@pytest.mark.parametrize("workers", [None, 1, 2])
def test_kill_term_mid_build_resumes_byte_identical(
        tmp_path, example_path, baseline_bytes, workers):
    state = tmp_path / f"state-w{workers}"
    worker_flags = [] if workers is None else ["--workers", str(workers)]

    server = _ServeProc(state, "--build-throttle", "0.3", *worker_flags)
    try:
        code, body = server.get(_global_query(example_path))
        assert code == 503
        assert body["error"]["building"] is True
        server.expect(r"\[serve\] service-build .*started")
        # Demonstrably mid-sampling: the checkpointed batch boundary
        # the resume must land on.
        server.expect(r"\[serve\] sample-batch")
        code = server.terminate_and_wait()
    finally:
        if server.proc.poll() is None:
            server.proc.kill()
    assert code == 143

    index_dirs = list((state / "indexes").glob("global-*"))
    assert len(index_dirs) == 1
    meta = json.loads((index_dirs[0] / "meta.json").read_text())
    assert meta["status"] == "interrupted"
    assert (index_dirs[0] / "checkpoint" / "manifest.json").exists()

    # Warm restart (no throttle): the build resumes from the checkpoint
    # and must reproduce the uninterrupted bytes exactly.
    server = _ServeProc(state, *worker_flags)
    try:
        server.expect(r"\[serve\] service-build .*finished", timeout=120)
        code, listing = server.get("/indexes")
        assert code == 200
        statuses = [e["status"] for e in listing["indexes"]]
        assert statuses == ["ready"]
        code = server.terminate_and_wait()
        assert code == 143
    finally:
        if server.proc.poll() is None:
            server.proc.kill()
    resumed = (index_dirs[0] / "result.bin").read_bytes()
    assert resumed == baseline_bytes


def test_worker_killed_mid_build_is_supervised_and_reported(
        tmp_path, example_path, baseline_bytes):
    plan = FaultPlan().kill_worker()
    rec = Recorder()
    from repro.runtime import chain_hooks

    with live_service(tmp_path / "state",
                      progress=chain_hooks(plan, rec),
                      workers=2, batch_size=BATCH) as svc:
        code, body, _ = http_get(
            svc, _global_query(example_path, "&wait=1&deadline=120"),
            timeout=150)
        assert code == 200
        assert rec.find("worker-died"), "the injected kill must fire"
        supervision = body.get("supervision")
        assert supervision and supervision["workers_respawned"] >= 1
        token = body["token"]
        stored = svc.store.get(token).result_path.read_bytes()
    # Crash recovery must not change a single byte of the result.
    assert stored == baseline_bytes


def test_enospc_mid_build_degrades_checkpointing_not_service(
        tmp_path, example_path, baseline_bytes):
    plan = FaultPlan().exhaust_disk()
    rec = Recorder()
    from repro.runtime import chain_hooks

    with live_service(tmp_path / "state",
                      progress=chain_hooks(plan, rec),
                      batch_size=BATCH) as svc:
        code, body, _ = http_get(
            svc, _global_query(example_path, "&wait=1&deadline=120"),
            timeout=150)
        assert code == 200
        assert ("exhaust-disk", 0) in plan.fired
        assert rec.find("checkpoint-degraded")
        # Honestly degraded — but the decomposition itself is intact.
        assert body["degraded"] is True
        assert any("checkpoint" in r for r in body["reasons"])
        token = body["token"]
        stored = svc.store.get(token).result_path.read_bytes()
    assert stored == baseline_bytes


def test_concurrent_storm_yields_only_wellformed_bounded_responses(
        tmp_path, example_path):
    plan = FaultPlan().drop_connection(3).slow_client(0.4, times=2)
    deadline = 6.0
    with live_service(tmp_path / "state", progress=plan,
                      max_inflight=4, max_queue=2,
                      default_deadline=deadline,
                      batch_size=BATCH) as svc:
        spec = quote(str(example_path), safe="")
        paths = [
            "/healthz",
            f"/stats?graph={spec}",
            f"/local?graph={spec}&gamma=0.3&wait=1",
            _global_query(example_path, "&wait=1"),
            "/indexes",
            "/unknown-endpoint",
            f"/local?graph={spec}&gamma=42",
            "/local?graph=missing.txt&gamma=0.3",
        ] * 2
        results: list = [None] * len(paths)

        def hit(i, path):
            started = time.monotonic()
            try:
                results[i] = ("ok", http_get(svc, path, timeout=60),
                              time.monotonic() - started)
            except (ConnectionError, urllib.error.URLError, OSError) as e:
                results[i] = ("dropped", e, time.monotonic() - started)

        threads = [threading.Thread(target=hit, args=(i, p), daemon=True)
                   for i, p in enumerate(paths)]
        for t in threads:
            t.start()
        for t in threads:
            # No hangs: every request resolves well within a small
            # multiple of the deadline (admission wait + compute +
            # injected stalls are each bounded by it).
            t.join(timeout=4 * deadline)
        assert all(r is not None for r in results), "a request hung"

        dropped = [r for r in results if r[0] == "dropped"]
        assert len(dropped) <= 3  # at most the injected connection drops
        for kind, payload, elapsed in results:
            assert elapsed < 3 * deadline
            if kind != "ok":
                continue
            status, body, _ = payload
            # Documented status codes only, and every body is a dict
            # that decoded as JSON (http_get already parsed it).
            assert status in (200, 400, 404, 503)
            assert isinstance(body, dict)
            if status != 200:
                assert body["error"]["type"] in (
                    "ParameterError", "DatasetError", "OverloadedError",
                    "IndexUnavailableError")

        # The server is healthy after the storm: slots all released,
        # and a fresh request succeeds.
        assert _wait_until(lambda: svc.admission.inflight == 0,
                           timeout=10.0)
        code, body, _ = http_get(svc, "/healthz")
        assert code == 200 and body["status"] == "ok"
        # No torn index files: everything on disk is consistent.
        for entry in svc.store.entries():
            if entry.status == "ready":
                assert entry.result_path.exists()
                assert entry.payload is not None
