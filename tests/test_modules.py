"""Unit tests for the functional-module detection pipeline."""

import pytest

from repro import ParameterError, ProbabilisticGraph, load_dataset
from repro.apps.modules import Module, detect_modules
from repro.graphs.generators import complete_graph, planted_truss_graph


@pytest.fixture(scope="module")
def ppi():
    return load_dataset("fruitfly", seed=42)


class TestParameters:
    def test_invalid_gamma(self, triangle):
        with pytest.raises(ParameterError):
            detect_modules(triangle, 1.5)

    def test_invalid_min_k(self, triangle):
        with pytest.raises(ParameterError):
            detect_modules(triangle, 0.5, min_k=1)

    def test_invalid_min_nodes(self, triangle):
        with pytest.raises(ParameterError):
            detect_modules(triangle, 0.5, min_nodes=1)


class TestLocalDetection:
    def test_ppi_modules_found(self, ppi):
        modules = detect_modules(ppi, 0.5)
        assert modules
        assert all(isinstance(m, Module) for m in modules)
        assert all(m.k >= 3 for m in modules)
        assert all(m.n_nodes >= 3 for m in modules)

    def test_ranked_by_score(self, ppi):
        modules = detect_modules(ppi, 0.5)
        scores = [m.score for m in modules]
        assert scores == sorted(scores, reverse=True)

    def test_top_module_is_the_planted_complex(self, ppi):
        # The highest-scoring module on fruitfly is a high-confidence
        # planted complex: k >= 5 and near-clique density.
        top = detect_modules(ppi, 0.5)[0]
        assert top.k >= 5
        assert top.density > 0.8

    def test_no_duplicate_node_sets(self, ppi):
        modules = detect_modules(ppi, 0.5)
        keys = [frozenset(m.nodes) for m in modules]
        assert len(keys) == len(set(keys))

    def test_max_modules_truncates(self, ppi):
        assert len(detect_modules(ppi, 0.5, max_modules=3)) == 3

    def test_min_nodes_filters(self):
        g = complete_graph(3, 0.95)  # only a 3-node triangle
        assert detect_modules(g, 0.5, min_nodes=4) == []
        assert len(detect_modules(g, 0.5, min_nodes=3)) == 1

    def test_planted_clique_detected(self):
        g, clique = planted_truss_graph(30, 6, background_density=0.04,
                                        seed=5)
        modules = detect_modules(g, 0.5)
        assert modules
        assert modules[0].nodes == set(clique)

    def test_empty_result_on_hopeless_gamma(self, ppi):
        assert detect_modules(ppi, 1.0, min_k=4) == []


class TestGlobalRefinement:
    def test_refined_modules_valid(self, ppi):
        modules = detect_modules(ppi, 0.5, refine_global=True, seed=3,
                                 max_modules=10)
        assert modules
        kinds = {m.kind for m in modules}
        assert "global" in kinds  # at least some refinements succeed

    def test_refinement_never_increases_size(self, ppi):
        local = {
            frozenset(m.nodes): m for m in detect_modules(ppi, 0.5)
        }
        refined = detect_modules(ppi, 0.5, refine_global=True, seed=3)
        biggest_local = max(m.n_nodes for m in local.values())
        assert all(m.n_nodes <= biggest_local for m in refined)

    def test_module_repr(self, ppi):
        module = detect_modules(ppi, 0.5)[0]
        text = repr(module)
        assert "Module(" in text and "score=" in text
