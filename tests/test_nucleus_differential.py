"""Differential correctness battery for (r, s)-nucleus decomposition.

The nucleus workload ships with a built-in oracle: the (2, 3)-nucleus
*is* the local truss decomposition (docs/nucleus.md walks the
argument), so :func:`~repro.core.nucleus.nucleus_decomposition` at
``(r, s) = (2, 3)`` must reproduce
:func:`~repro.core.local.local_truss_decomposition` bit for bit —
serially and through the worker pool. The genuinely new (3, 4) case is
checked three independent ways:

* against a definitional **brute-force fixpoint oracle** (``bf_scores``
  below) that re-derives every nucleus level from first principles,
  using the O(2^k) :func:`~repro.core.support_prob.support_pmf_bruteforce`
  enumeration instead of the Eq. 8 DP and iterated removal instead of
  bucket peeling;
* against **exhaustive possible-world enumeration**
  (:func:`~tests.strategies.exhaustive_sample_set`): on dyadic graphs
  the DP's initial support-tail probabilities must coincide exactly
  with world-by-world counting of s-cliques;
* via the **containment property**: at equal ``k`` and ``gamma`` every
  edge of the (3, 4)-nucleus lies in the (2, 3)-nucleus (each 4-clique
  through a triangle yields a triangle through each of its edges, so
  the stronger support requirement can only shrink the subgraph) —
  exercised as a hypothesis property over planted 4-clique graphs.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings

from repro import (
    ParameterError,
    ProbabilisticGraph,
    local_truss_decomposition,
    nucleus_decomposition,
    run_nucleus,
    structural_nucleus_decomposition,
    truss_decomposition,
)
from repro.core.nucleus import apex_factor, clique_probability, nucleus_cell
from repro.core.support_prob import support_pmf_bruteforce
from repro.runtime.result import serialize_nucleus_result
from repro.truss.nucleus import (
    SUPPORTED_RS,
    apex_candidates,
    clique_key,
    enumerate_r_cliques,
    max_nucleus_number,
    validate_rs,
)
from tests.strategies import (
    dyadic_random_graph,
    exhaustive_sample_set,
    planted_clique_graph,
    planted_clique_graphs,
    random_probabilistic_graph,
)

#: Non-dyadic thresholds (same rationale as tests/test_differential.py):
#: no exact dyadic probability can tie with these, so threshold
#: classification is unambiguous.
GAMMAS = (0.3, 0.55, 0.7)


def bf_scores(g, r, s, gamma):
    """Definitional nucleus oracle: iterated removal, brute-force PMFs.

    For each level ``k`` starting at 2, keep every r-clique whose
    existence probability times the probability of supporting at least
    ``k - 2`` s-cliques (among *surviving* r-cliques — all ``r``
    sub-r-cliques of a supporting s-clique must still be alive) clears
    ``gamma``, deleting until a fixpoint. The score of ``R`` is the
    largest ``k`` whose fixpoint retains it. Shares only the clique
    enumeration and per-apex factor arithmetic with the production
    code; the PMF, the tail, and the peeling logic are all independent.
    """
    thr = gamma * (1.0 - 1e-9)
    cliques = enumerate_r_cliques(g, r)
    scores = {R: 1 for R in cliques}
    k = 2
    while True:
        alive = {R for R in cliques if clique_probability(g, R) >= thr}
        changed = True
        while changed:
            changed = False
            for R in list(alive):
                qs = []
                for x in apex_candidates(g, R):
                    sibs = [clique_key(R[:i] + R[i + 1:] + (x,))
                            for i in range(r)]
                    if all(o in alive for o in sibs):
                        qs.append(apex_factor(g, R, x))
                pmf = support_pmf_bruteforce(qs)
                tail = sum(pmf[t] for t in range(k - 2, len(pmf)))
                if clique_probability(g, R) * tail < thr:
                    alive.discard(R)
                    changed = True
        if not alive:
            return scores
        for R in alive:
            scores[R] = k
        k += 1


class TestStructuralNucleus:
    def test_23_equals_truss_decomposition(self):
        for seed in range(8):
            g = random_probabilistic_graph(14, 0.35, seed)
            assert structural_nucleus_decomposition(g, 2, 3) == \
                truss_decomposition(g)

    def test_k5_34_levels(self):
        # In K5 every triangle lies in exactly two 4-cliques, so every
        # triangle has support 2 and nucleus number 4; the max over the
        # (3, 4) family is reported accordingly.
        g = ProbabilisticGraph()
        for i in range(5):
            for j in range(i):
                g.add_edge(i, j, 1.0)
        scores = structural_nucleus_decomposition(g, 3, 4)
        assert len(scores) == 10
        assert set(scores.values()) == {4}
        assert max_nucleus_number(g, 3, 4) == 4

    def test_triangle_free_graph_has_no_cells(self):
        g = ProbabilisticGraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        assert structural_nucleus_decomposition(g, 3, 4) == {}

    def test_unsupported_families_rejected(self):
        for r, s in ((1, 2), (2, 4), (3, 5), (4, 5), (3, 3)):
            with pytest.raises(ParameterError):
                validate_rs(r, s)
        for r, s in SUPPORTED_RS:
            validate_rs(r, s)


class TestTwoThreeEqualsLocalTruss:
    """(2, 3)-nucleus ≡ probabilistic local truss, bit for bit."""

    def test_scores_equal_trussness(self):
        for seed in range(6):
            g = random_probabilistic_graph(13, 0.4, seed)
            local = local_truss_decomposition(g, 0.3).trussness
            for method in ("dp", "baseline"):
                res = nucleus_decomposition(g, 2, 3, 0.3, method=method)
                assert res.scores == local

    def test_scores_equal_trussness_across_gammas(self):
        g = random_probabilistic_graph(15, 0.35, 11)
        for gamma in GAMMAS:
            local = local_truss_decomposition(g, gamma).trussness
            assert nucleus_decomposition(g, 2, 3, gamma).scores == local

    def test_nucleus_edges_match_truss_subgraphs(self):
        g = random_probabilistic_graph(13, 0.4, 3)
        gamma = 0.3
        res = nucleus_decomposition(g, 2, 3, gamma)
        local = local_truss_decomposition(g, gamma)
        for k in range(2, res.k_max + 1):
            expected = {
                e for e, tau in local.trussness.items() if tau >= k}
            assert set(res.nucleus_edges(k)) == expected

    def test_workers_byte_identity(self, tmp_path):
        # The executor fan-out must not perturb a single bit: the
        # serialized result is compared across workers {None, 1, 2}
        # for both families.
        g = planted_clique_graph(2, 5, 7)
        for r, s in SUPPORTED_RS:
            blobs = set()
            for workers in (None, 1, 2):
                partial = run_nucleus(
                    g, r, s, 0.3, workers=workers,
                    checkpoint_dir=tmp_path / f"w{r}{s}{workers}")
                assert partial.complete, partial.summary()
                blobs.add(serialize_nucleus_result(partial.result))
            assert len(blobs) == 1

    def test_checkpoint_resume_byte_identity(self, tmp_path):
        g = planted_clique_graph(2, 4, 5)
        direct = run_nucleus(g, 3, 4, 0.3)
        first = run_nucleus(g, 3, 4, 0.3, checkpoint_dir=tmp_path)
        resumed = run_nucleus(
            g, 3, 4, 0.3, checkpoint_dir=tmp_path, resume=True)
        assert resumed.complete
        assert serialize_nucleus_result(direct.result) == \
            serialize_nucleus_result(first.result) == \
            serialize_nucleus_result(resumed.result)


class TestThreeFourVsBruteForce:
    """(3, 4) against the definitional fixpoint oracle."""

    def test_dyadic_graphs_match_oracle(self):
        for seed in range(8):
            g = dyadic_random_graph(7, 0.7, seed)
            for gamma in (0.15, 0.35, 0.6):
                for r, s in SUPPORTED_RS:
                    got = nucleus_decomposition(g, r, s, gamma).scores
                    assert got == bf_scores(g, r, s, gamma), (seed, gamma, r, s)

    def test_planted_cliques_match_oracle(self):
        for seed in range(4):
            g = planted_clique_graph(2, 4, seed, extra_density=0.3)
            got = nucleus_decomposition(g, 3, 4, 0.3).scores
            assert got == bf_scores(g, 3, 4, 0.3), seed

    def test_methods_agree(self):
        for seed in range(5):
            g = planted_clique_graph(1, 5, seed)
            for gamma in GAMMAS:
                dp = nucleus_decomposition(g, 3, 4, gamma, method="dp")
                base = nucleus_decomposition(g, 3, 4, gamma,
                                             method="baseline")
                assert dp.scores == base.scores

    @pytest.mark.slow
    def test_oracle_sweep_slow(self):
        # The wide version of the differential: more seeds, denser
        # graphs, every supported family x gamma.
        for seed in range(25):
            g = dyadic_random_graph(7, 0.7, seed)
            for gamma in (0.15, 0.35, 0.6):
                for r, s in SUPPORTED_RS:
                    got = nucleus_decomposition(g, r, s, gamma).scores
                    assert got == bf_scores(g, r, s, gamma), (seed, gamma, r, s)


class TestWorldEnumeration:
    """Initial support tails vs exhaustive possible-world counting."""

    def _world_tail(self, sample_set, cell, apexes, t):
        """Pr[cell exists and >= t supporting s-cliques exist], exactly."""
        import numpy as np
        from itertools import combinations

        def all_present(pairs):
            bits = np.ones(sample_set.n_samples, dtype=bool)
            for u, v in pairs:
                bits &= sample_set.edge_bits(u, v)
            return bits

        cell_alive = all_present(combinations(cell, 2))
        support = np.zeros(sample_set.n_samples, dtype=np.int64)
        for x in apexes:
            support += all_present((x, y) for y in cell)
        hits = int((cell_alive & (support >= t)).sum())
        return hits / sample_set.n_samples

    def test_dp_tail_equals_enumeration(self):
        for seed in (0, 2, 4):
            g = dyadic_random_graph(6, 0.6, seed)
            if g.number_of_edges() > 14:
                continue
            worlds = exhaustive_sample_set(g)
            for r, s in SUPPORTED_RS:
                for cell in enumerate_r_cliques(g, r)[:6]:
                    apexes = sorted(apex_candidates(g, cell), key=repr)
                    qs, pmf, _level = nucleus_cell(g, 0.5, cell)
                    prob = clique_probability(g, cell)
                    for t in range(len(qs) + 1):
                        dp_mass = prob * sum(pmf[t:])
                        world_mass = self._world_tail(
                            worlds, cell, apexes, t)
                        assert math.isclose(
                            dp_mass, world_mass, rel_tol=0, abs_tol=1e-12), (
                            seed, r, s, cell, t)


class TestContainmentMonotonicity:
    @settings(max_examples=15, deadline=None)
    @given(planted_clique_graphs)
    def test_34_edges_subset_of_23_edges(self, g):
        gamma = 0.3
        res34 = nucleus_decomposition(g, 3, 4, gamma)
        res23 = nucleus_decomposition(g, 2, 3, gamma)
        for k in range(2, res34.k_max + 1):
            edges34 = set(res34.nucleus_edges(k))
            edges23 = set(res23.nucleus_edges(k))
            assert edges34 <= edges23, (k, edges34 - edges23)


class TestResultApiAndValidation:
    def test_parameter_validation(self, k4):
        with pytest.raises(ParameterError):
            nucleus_decomposition(k4, 2, 4, 0.5)
        with pytest.raises(ParameterError):
            nucleus_decomposition(k4, 3, 4, 1.5)
        with pytest.raises(ParameterError):
            nucleus_decomposition(k4, 3, 4, 0.5, method="sampling")

    def test_score_of_arity(self, k4):
        res = nucleus_decomposition(k4, 3, 4, 0.1)
        assert res.score_of("a", "b", "c") >= 2
        with pytest.raises(ParameterError):
            res.score_of("a", "b")

    def test_nucleus_cliques_rejects_low_k(self, k4):
        res = nucleus_decomposition(k4, 3, 4, 0.1)
        with pytest.raises(ParameterError):
            res.nucleus_cliques(1)

    def test_k_max_empty(self):
        g = ProbabilisticGraph()
        g.add_edge(0, 1, 0.9)
        res = nucleus_decomposition(g, 3, 4, 0.5)
        assert res.k_max == 0
        assert res.nucleus_cliques(2) == []
        assert res.nucleus_edges(2) == []
