"""Statistical validation of Theorem 3 and Lemma 3 (projection sampling).

Theorem 3 justifies sampling possible worlds of the host graph G once
and projecting them onto every candidate subgraph H: the projected
estimator is distributed exactly like the direct estimator that samples
worlds of H. These tests verify (a) Lemma 3's projection identity
exactly by enumeration, and (b) the two estimators' agreement within
Hoeffding bounds.
"""

import math
from itertools import combinations

import numpy as np
import pytest

from repro import (
    GlobalTrussOracle,
    ProbabilisticGraph,
    WorldSampleSet,
    alpha_exact,
    edge_key,
)
from repro.graphs.generators import running_example


class TestLemma3Exact:
    """Pr[H | calH] equals the total mass of G-worlds projecting to H."""

    @pytest.mark.parametrize("seed", range(3))
    def test_projection_identity(self, seed):
        rng = np.random.default_rng(seed)
        g = ProbabilisticGraph()
        nodes = list(range(5))
        for u in nodes:
            for v in nodes[u + 1:]:
                if rng.random() < 0.6:
                    g.add_edge(u, v, float(rng.uniform(0.1, 0.9)))
        if g.number_of_edges() < 3:
            pytest.skip("graph too sparse")
        all_edges = list(g.edges())
        h_edges = all_edges[: len(all_edges) // 2]
        h = g.edge_subgraph(h_edges)

        # For every possible world H of the subgraph...
        for r in range(len(h_edges) + 1):
            for present in combinations(h_edges, r):
                # ... Pr[H | calH] directly:
                direct = h.world_probability(present)
                # ... vs the mass of all G-worlds whose projection is H.
                projected = 0.0
                rest = [e for e in all_edges if e not in set(h_edges)]
                for r2 in range(len(rest) + 1):
                    for extra in combinations(rest, r2):
                        projected += g.world_probability(
                            list(present) + list(extra)
                        )
                assert math.isclose(direct, projected, rel_tol=1e-9)


class TestTheorem3Statistical:
    def test_projected_estimator_is_unbiased(self):
        """alpha_hat from projected G-samples converges to the exact
        alpha — Theorem 3's claim — within the Hoeffding envelope."""
        g = running_example()
        h2 = g.subgraph(["q1", "v1", "v2", "v3"])
        exact = alpha_exact(h2, 4)

        n = 150  # the paper's N
        trials = 40
        errors = []
        for trial in range(trials):
            samples = WorldSampleSet.from_graph(g, n, seed=trial)
            oracle = GlobalTrussOracle(samples)
            estimates = oracle.alpha_estimates(h2, 4)
            errors.append(max(abs(estimates[e] - exact[e]) for e in exact))
        # eps for delta = 0.1 at N = 150 is ~0.0999; allow the usual
        # fraction of trials to exceed it but never grossly.
        eps = math.sqrt(math.log(2 / 0.1) / (2 * n))
        exceed = sum(1 for err in errors if err > eps)
        assert exceed <= trials * 0.2
        assert max(errors) < 2 * eps
        # The mean error must be well inside the envelope (unbiased,
        # concentrating estimator).
        assert float(np.mean(errors)) < eps / 2

    def test_direct_vs_projected_estimators_agree(self):
        """Sampling H's worlds directly and projecting G's worlds give
        statistically indistinguishable estimates (same expectation)."""
        g = running_example()
        h_nodes = ["q1", "v1", "v2", "v3"]
        h = g.subgraph(h_nodes)
        exact = alpha_exact(h, 4)
        target = exact[edge_key("q1", "v1")]

        n, trials = 400, 25
        direct_means = []
        projected_means = []
        for trial in range(trials):
            direct_samples = WorldSampleSet.from_graph(h, n, seed=trial)
            direct_oracle = GlobalTrussOracle(direct_samples)
            direct_means.append(
                direct_oracle.alpha_estimates(h, 4)[edge_key("q1", "v1")]
            )
            proj_samples = WorldSampleSet.from_graph(g, n, seed=10_000 + trial)
            proj_oracle = GlobalTrussOracle(proj_samples)
            projected_means.append(
                proj_oracle.alpha_estimates(h, 4)[edge_key("q1", "v1")]
            )
        # Both mean estimates approximate the same exact value.
        assert abs(np.mean(direct_means) - target) < 0.01
        assert abs(np.mean(projected_means) - target) < 0.01
        assert abs(np.mean(direct_means) - np.mean(projected_means)) < 0.015
