"""Unit tests for the probabilistic (k, eta)-core comparator."""

import math

import pytest

from repro import (
    EtaDegree,
    ParameterError,
    ProbabilisticGraph,
    core_decomposition,
    eta_core_decomposition,
    eta_core_subgraph,
    max_eta_core_number,
)
from repro.graphs.generators import complete_graph
from tests.strategies import random_probabilistic_graph


class TestEtaDegree:
    def test_certain_edges(self):
        d = EtaDegree([1.0, 1.0, 1.0])
        assert d.eta_degree(0.5) == 3
        assert d.eta_degree(1.0) == 3

    def test_tail(self):
        d = EtaDegree([0.5, 0.5])
        assert math.isclose(d.tail(1), 0.75)
        assert math.isclose(d.tail(2), 0.25)

    def test_eta_degree_threshold(self):
        d = EtaDegree([0.5, 0.5])
        assert d.eta_degree(0.7) == 1    # Pr[deg >= 1] = 0.75
        assert d.eta_degree(0.76) == 0
        assert d.eta_degree(0.2) == 2    # Pr[deg >= 2] = 0.25

    def test_no_edges(self):
        assert EtaDegree([]).eta_degree(0.5) == 0

    def test_invalid_eta(self):
        with pytest.raises(ParameterError):
            EtaDegree([0.5]).eta_degree(0.0)

    def test_remove_incident_edge(self):
        d = EtaDegree([0.5, 0.8])
        d.remove_incident_edge(0.8)
        assert d.max_degree == 1
        assert math.isclose(d.tail(1), 0.5)

    def test_from_node(self, triangle):
        d = EtaDegree.from_node(triangle, "a")
        assert d.max_degree == 2
        assert math.isclose(d.tail(2), 0.9 * 0.7)


class TestEtaCoreDecomposition:
    def test_certain_graph_matches_deterministic(self):
        # With all p = 1 and any eta, the eta-core equals the k-core.
        for seed in range(4):
            g = random_probabilistic_graph(20, 0.3, seed)
            for u, v in list(g.edges()):
                g.set_probability(u, v, 1.0)
            assert eta_core_decomposition(g, 0.5) == core_decomposition(g)

    def test_monotone_in_eta(self):
        g = random_probabilistic_graph(20, 0.4, 7)
        loose = eta_core_decomposition(g, 0.1)
        strict = eta_core_decomposition(g, 0.9)
        for u in g.nodes():
            assert strict[u] <= loose[u]

    def test_complete_graph(self):
        g = complete_graph(5, 0.9)
        core = eta_core_decomposition(g, 0.5)
        # Every node has Binomial(4, 0.9) degree; Pr[deg >= 4] = 0.9^4 ~ 0.656.
        assert all(c == 4 for c in core.values())
        strict = eta_core_decomposition(g, 0.7)
        assert all(c == 3 for c in strict.values())

    def test_empty(self, empty_graph):
        assert eta_core_decomposition(empty_graph, 0.5) == {}

    def test_invalid_eta(self, triangle):
        with pytest.raises(ParameterError):
            eta_core_decomposition(triangle, 0.0)

    def test_definition_on_output(self):
        # Every node of the (k, eta)-core has Pr[deg >= k] >= eta within it.
        g = random_probabilistic_graph(18, 0.4, 3)
        eta = 0.4
        core = eta_core_decomposition(g, eta)
        k = max(core.values())
        sub = eta_core_subgraph(g, k, eta)
        for u in sub.nodes():
            d = EtaDegree.from_node(sub, u)
            assert d.tail(k) >= eta - 1e-9

    def test_peeling_matches_naive(self):
        # Cross-check against a naive iterative-deletion implementation.
        def naive(graph, eta):
            work = graph.copy()
            core = {}
            k = 0
            while work.number_of_nodes():
                changed = True
                while changed:
                    changed = False
                    for u in list(work.nodes()):
                        d = EtaDegree.from_node(work, u)
                        if d.eta_degree(eta) <= k:
                            core[u] = k
                            work.remove_node(u)
                            changed = True
                k += 1
            return core

        for seed in range(4):
            g = random_probabilistic_graph(14, 0.4, seed)
            eta = 0.3
            assert eta_core_decomposition(g, eta) == naive(g, eta)


class TestEtaCoreSubgraph:
    def test_extracts_dense_part(self):
        g = complete_graph(5, 0.95)
        g.add_edge(0, 100, 0.95)
        sub = eta_core_subgraph(g, 4, 0.5)
        assert set(sub.nodes()) == {0, 1, 2, 3, 4}

    def test_invalid_k(self, triangle):
        with pytest.raises(ParameterError):
            eta_core_subgraph(triangle, -1, 0.5)

    def test_max_eta_core_number(self, empty_graph):
        assert max_eta_core_number(empty_graph, 0.5) == 0
        g = complete_graph(4, 1.0)
        assert max_eta_core_number(g, 0.5) == 3
