"""Unit tests for connected components and edge clustering."""

import pytest

from repro import ProbabilisticGraph, connected_components, is_connected
from repro.graphs.components import (
    component_of,
    edge_connected_components,
    largest_connected_component,
)


def two_component_graph() -> ProbabilisticGraph:
    g = ProbabilisticGraph()
    g.add_edge("a", "b", 0.5)
    g.add_edge("b", "c", 0.5)
    g.add_edge("x", "y", 0.5)
    g.add_node("lonely")
    return g


class TestConnectedComponents:
    def test_components_partition_nodes(self):
        g = two_component_graph()
        comps = list(connected_components(g))
        assert sorted(sorted(map(str, c)) for c in comps) == [
            ["a", "b", "c"], ["lonely"], ["x", "y"],
        ]

    def test_empty_graph_has_no_components(self, empty_graph):
        assert list(connected_components(empty_graph)) == []

    def test_component_of(self):
        g = two_component_graph()
        assert component_of(g, "a") == {"a", "b", "c"}
        assert component_of(g, "lonely") == {"lonely"}

    def test_probabilities_ignored(self):
        # An edge with probability 0 still connects structurally.
        g = ProbabilisticGraph()
        g.add_edge("a", "b", 0.0)
        assert is_connected(g)


class TestIsConnected:
    def test_connected(self, triangle):
        assert is_connected(triangle)

    def test_disconnected(self):
        assert not is_connected(two_component_graph())

    def test_empty_not_connected(self, empty_graph):
        assert not is_connected(empty_graph)

    def test_single_node_connected(self):
        g = ProbabilisticGraph()
        g.add_node(1)
        assert is_connected(g)


class TestLargestComponent:
    def test_largest(self):
        g = two_component_graph()
        largest = largest_connected_component(g)
        assert set(largest.nodes()) == {"a", "b", "c"}
        assert largest.number_of_edges() == 2

    def test_empty(self, empty_graph):
        assert largest_connected_component(empty_graph).number_of_nodes() == 0


class TestEdgeConnectedComponents:
    def test_clusters_by_shared_nodes(self):
        g = two_component_graph()
        clusters = edge_connected_components(g, list(g.edges()))
        sizes = sorted(len(c) for c in clusters)
        assert sizes == [1, 2]

    def test_subset_of_edges_may_split(self, k4):
        # Removing the middle edges separates (a, b) from (c, d).
        clusters = edge_connected_components(k4, [("a", "b"), ("c", "d")])
        assert len(clusters) == 2

    def test_empty_edge_list(self, k4):
        assert edge_connected_components(k4, []) == []

    def test_canonicalises_edge_order(self, triangle):
        clusters = edge_connected_components(triangle, [("b", "a"), ("c", "b")])
        assert len(clusters) == 1
        assert ("a", "b") in clusters[0]
