"""Edge-case and failure-injection tests across the whole stack."""

import math

import pytest

from repro import (
    GlobalTrussOracle,
    ProbabilisticGraph,
    WorldSampleSet,
    alpha_exact,
    eta_core_decomposition,
    gamma_truss_decomposition,
    global_truss_decomposition,
    local_truss_decomposition,
    probabilistic_density,
    truss_decomposition,
)
from repro.graphs.generators import complete_graph


class TestZeroProbabilityEdges:
    """p = 0 edges exist structurally but never materialise."""

    @pytest.fixture
    def ghost_triangle(self):
        g = ProbabilisticGraph(
            [("a", "b", 0.0), ("b", "c", 0.9), ("a", "c", 0.9)]
        )
        return g

    def test_deterministic_truss_sees_structure(self, ghost_triangle):
        tau = truss_decomposition(ghost_triangle)
        assert all(t == 3 for t in tau.values())

    def test_local_decomposition_kills_ghost(self, ghost_triangle):
        result = local_truss_decomposition(ghost_triangle, 0.5)
        assert result.trussness[("a", "b")] == 1
        # The other two edges lose their only triangle (its q includes
        # the ghost edge's 0), dropping them to 2-trusses.
        assert result.trussness[("b", "c")] == 2

    def test_alpha_zero_for_ghost(self, ghost_triangle):
        alpha = alpha_exact(ghost_triangle, 2)
        assert alpha[("a", "b")] == 0.0

    def test_sampling_never_draws_ghost(self, ghost_triangle):
        samples = WorldSampleSet.from_graph(ghost_triangle, 100, seed=1)
        assert samples.edge_frequency("a", "b") == 0.0

    def test_global_decomposition_survives(self, ghost_triangle):
        result = global_truss_decomposition(
            ghost_triangle, 0.5, seed=1, n_samples=200
        )
        for _, truss in result.all_trusses():
            assert not truss.has_edge("a", "b")


class TestCertainGraphs:
    """With all p = 1 everything must reduce to deterministic notions."""

    def test_local_equals_deterministic(self):
        g = complete_graph(6, 1.0)
        result = local_truss_decomposition(g, 1.0)
        assert result.trussness == truss_decomposition(g)

    def test_global_equals_deterministic_trusses(self):
        g = complete_graph(5, 1.0)
        result = global_truss_decomposition(
            g, 1.0, method="gtd", seed=1, n_samples=50
        )
        assert result.k_max == 5
        assert len(result.trusses[5]) == 1
        assert result.trusses[5][0].number_of_edges() == 10

    def test_eta_core_certain(self):
        g = complete_graph(5, 1.0)
        core = eta_core_decomposition(g, 1.0)
        assert all(c == 4 for c in core.values())

    def test_alpha_certain_truss_is_one(self):
        g = complete_graph(4, 1.0)
        alpha = alpha_exact(g, 4)
        assert all(math.isclose(a, 1.0) for a in alpha.values())


class TestDegenerateShapes:
    def test_single_node(self):
        g = ProbabilisticGraph()
        g.add_node("only")
        assert local_truss_decomposition(g, 0.5).k_max == 0
        assert eta_core_decomposition(g, 0.5) == {"only": 0}
        assert probabilistic_density(g) == 0.0

    def test_two_isolated_nodes(self):
        g = ProbabilisticGraph()
        g.add_nodes(["x", "y"])
        result = global_truss_decomposition(g, 0.5, seed=1, n_samples=10)
        assert result.trusses == {}

    def test_parallel_triangles_share_nothing(self):
        # Two vertex-disjoint triangles must each be separate maximal
        # trusses at every level and for both semantics.
        g = ProbabilisticGraph()
        for base in ("x", "y"):
            g.add_edge(f"{base}1", f"{base}2", 0.9)
            g.add_edge(f"{base}2", f"{base}3", 0.9)
            g.add_edge(f"{base}1", f"{base}3", 0.9)
        local = local_truss_decomposition(g, 0.5)
        assert len(local.maximal_trusses(3)) == 2
        result = global_truss_decomposition(
            g, 0.5, method="gtd", seed=1, n_samples=1500
        )
        assert len(result.trusses[3]) == 2

    def test_star_has_no_triangles(self):
        g = ProbabilisticGraph([("hub", i, 0.9) for i in range(6)])
        local = local_truss_decomposition(g, 0.5)
        assert local.k_max == 2
        gamma = gamma_truss_decomposition(g, 3)
        assert all(v == 0.0 for v in gamma.gamma_trussness.values())


class TestOracleRobustness:
    def test_oracle_on_disconnected_candidate(self):
        g = ProbabilisticGraph([("a", "b", 1.0), ("x", "y", 1.0)])
        samples = WorldSampleSet.from_graph(g, 50, seed=1)
        oracle = GlobalTrussOracle(samples)
        # The candidate spans two components: never connected-spanning.
        assert not oracle.satisfies(g, 2, 0.1)
        estimates = oracle.alpha_estimates(g, 2)
        assert all(a == 0.0 for a in estimates.values())

    def test_oracle_single_certain_edge(self):
        g = ProbabilisticGraph([("a", "b", 1.0)])
        samples = WorldSampleSet.from_graph(g, 50, seed=1)
        oracle = GlobalTrussOracle(samples)
        assert oracle.satisfies(g, 2, 1.0)
        assert not oracle.satisfies(g, 3, 0.01)

    def test_estimates_and_satisfies_agree(self):
        # satisfies' early-exit fast paths must never contradict the
        # plain estimator.
        from tests.conftest import random_probabilistic_graph

        for seed in range(5):
            g = random_probabilistic_graph(9, 0.5, seed)
            if g.number_of_edges() < 3:
                continue
            samples = WorldSampleSet.from_graph(g, 300, seed=seed)
            oracle = GlobalTrussOracle(samples)
            for k in (2, 3):
                estimates = oracle.alpha_estimates(g, k)
                m = min(estimates.values())
                for gamma in (0.1, 0.4, 0.8):
                    fresh = GlobalTrussOracle(samples)  # bypass cache
                    expected = (
                        g.number_of_edges() > 0
                        and m >= gamma * (1 - 1e-9)
                    )
                    assert fresh.satisfies(g, k, gamma) == expected


class TestMixedNodeTypes:
    def test_int_and_str_nodes_coexist(self):
        g = ProbabilisticGraph()
        g.add_edge(1, "a", 0.9)
        g.add_edge("a", (2, 3), 0.9)
        g.add_edge((2, 3), 1, 0.9)
        local = local_truss_decomposition(g, 0.5)
        assert local.k_max == 3
        result = global_truss_decomposition(
            g, 0.3, method="gtd", seed=1, n_samples=500
        )
        assert result.k_max >= 2
