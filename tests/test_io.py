"""Unit tests for graph I/O round trips and error handling."""

import io

import pytest

from repro import (
    GraphError,
    ProbabilisticGraph,
    read_edge_list,
    read_json_graph,
    write_edge_list,
    write_json_graph,
)


@pytest.fixture
def sample() -> ProbabilisticGraph:
    g = ProbabilisticGraph()
    g.add_edge("a", "b", 0.25)
    g.add_edge("b", "c", 1.0)
    g.add_edge("a", "c", 0.7071067811865476)  # check float fidelity
    return g


class TestEdgeList:
    def test_round_trip_file(self, sample, tmp_path):
        path = tmp_path / "graph.txt"
        write_edge_list(sample, path)
        back = read_edge_list(path)
        assert back == sample

    def test_round_trip_stream(self, sample):
        buf = io.StringIO()
        write_edge_list(sample, buf)
        buf.seek(0)
        assert read_edge_list(buf) == sample

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\na b 0.5\n   \nb c 0.75\n"
        g = read_edge_list(io.StringIO(text))
        assert g.number_of_edges() == 2

    def test_two_field_lines_use_default(self):
        g = read_edge_list(io.StringIO("a b\n"), default_probability=0.4)
        assert g.probability("a", "b") == 0.4

    def test_node_type_conversion(self):
        g = read_edge_list(io.StringIO("1 2 0.5\n"), node_type=int)
        assert g.has_edge(1, 2)
        assert not g.has_node("1")

    def test_custom_delimiter(self):
        g = read_edge_list(io.StringIO("a,b,0.5\n"), delimiter=",")
        assert g.probability("a", "b") == 0.5

    def test_bad_field_count(self):
        with pytest.raises(GraphError, match="expected 2 or 3 fields"):
            read_edge_list(io.StringIO("a b 0.5 extra\n"))

    def test_bad_probability(self):
        with pytest.raises(GraphError, match="not a number"):
            read_edge_list(io.StringIO("a b oops\n"))

    def test_header_written(self, sample):
        buf = io.StringIO()
        write_edge_list(sample, buf)
        assert buf.getvalue().startswith("# probabilistic edge list")

    def test_no_header(self, sample):
        buf = io.StringIO()
        write_edge_list(sample, buf, header=False)
        assert not buf.getvalue().startswith("#")


class TestGzip:
    def test_edge_list_gz_round_trip(self, sample, tmp_path):
        path = tmp_path / "graph.txt.gz"
        write_edge_list(sample, path)
        # The file really is gzip-compressed ...
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        # ... and round-trips transparently.
        assert read_edge_list(path) == sample

    def test_json_gz_round_trip(self, sample, tmp_path):
        path = tmp_path / "graph.json.gz"
        write_json_graph(sample, path)
        assert read_json_graph(path) == sample


class TestJson:
    def test_round_trip_preserves_isolated_nodes(self, sample, tmp_path):
        sample.add_node("isolated")
        path = tmp_path / "graph.json"
        write_json_graph(sample, path)
        back = read_json_graph(path)
        assert back == sample
        assert back.has_node("isolated")

    def test_round_trip_stream(self, sample):
        buf = io.StringIO()
        write_json_graph(sample, buf)
        buf.seek(0)
        assert read_json_graph(buf) == sample

    def test_rejects_foreign_document(self):
        with pytest.raises(GraphError, match="not a repro"):
            read_json_graph(io.StringIO('{"hello": "world"}'))

    def test_rejects_non_object(self):
        with pytest.raises(GraphError):
            read_json_graph(io.StringIO("[1, 2, 3]"))
