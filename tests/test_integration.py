"""Integration tests: full pipelines across modules, dataset to answer."""

import pytest

from repro import (
    GlobalTrussOracle,
    SupportProbability,
    WorldSampleSet,
    dataset_statistics,
    eta_core_decomposition,
    global_truss_decomposition,
    load_dataset,
    local_truss_decomposition,
    probabilistic_clustering_coefficient,
    probabilistic_density,
)
from repro.graphs.components import is_connected


@pytest.fixture(scope="module")
def fruitfly():
    return load_dataset("fruitfly", seed=42)


class TestFruitflyPipeline:
    def test_local_hierarchy_is_consistent(self, fruitfly):
        result = local_truss_decomposition(fruitfly, 0.5)
        assert result.k_max >= 4
        hierarchy = result.hierarchy()
        for k, trusses in hierarchy.items():
            for truss in trusses:
                assert is_connected(truss)
                for u, v in truss.edges():
                    sp = SupportProbability.from_edge(truss, u, v)
                    assert (
                        sp.tail(k - 2) * truss.probability(u, v)
                        >= 0.5 * (1 - 1e-9)
                    )

    def test_global_gbu_pipeline(self, fruitfly):
        result = global_truss_decomposition(
            fruitfly, 0.5, method="gbu", seed=7
        )
        assert result.k_max >= 4
        samples = WorldSampleSet.from_graph(fruitfly, 150, seed=99)
        # Answers satisfy their own definition against fresh samples,
        # within sampling tolerance: use a relaxed gamma.
        oracle = GlobalTrussOracle(samples)
        for k, truss in result.all_trusses():
            if k < 4:
                continue
            estimates = oracle.alpha_estimates(truss, k)
            assert min(estimates.values()) >= 0.5 - 0.2

    def test_global_denser_than_local(self, fruitfly):
        gamma = 0.5
        local = local_truss_decomposition(fruitfly, gamma)
        global_result = global_truss_decomposition(
            fruitfly, gamma, method="gbu", seed=7, local_result=local
        )
        k = min(local.k_max, global_result.k_max)
        local_density = _mean(
            probabilistic_density(t) for t in local.maximal_trusses(k)
        )
        global_density = _mean(
            probabilistic_density(t) for t in global_result.trusses[k]
        )
        assert global_density >= local_density * 0.9  # near-always strictly >

    def test_gtd_feasible_on_fruitfly_high_gamma(self, fruitfly):
        # The paper: GTD finishes on FruitFly for gamma >= 0.7.
        result = global_truss_decomposition(
            fruitfly, 0.9, method="gtd", seed=7, max_states=200_000
        )
        assert result.k_max >= 2


class TestCrossModelComparison:
    def test_truss_tighter_than_core(self, fruitfly):
        """Section 6.4's shape: the top truss is smaller and denser than
        the top core at the same threshold."""
        gamma = 0.5
        local = local_truss_decomposition(fruitfly, gamma)
        core = eta_core_decomposition(fruitfly, gamma)
        k_t = local.k_max
        k_c = max(core.values())
        truss_nodes = {
            u for t in local.maximal_trusses(k_t) for u in t.nodes()
        }
        core_nodes = [u for u, c in core.items() if c >= k_c]
        truss_sub = fruitfly.subgraph(truss_nodes)
        core_sub = fruitfly.subgraph(core_nodes)
        assert probabilistic_density(truss_sub) >= probabilistic_density(core_sub)
        # k_tmax <= k_cmax + 1 always; the paper observes k_tmax < k_cmax.
        assert k_t <= k_c + 1


class TestDatasetsDecompose:
    @pytest.mark.parametrize("name", ["wikivote", "dblp", "biomine"])
    def test_local_decomposition_runs_clean(self, name):
        g = load_dataset(name, seed=1, scale=0.3)
        result = local_truss_decomposition(g, 0.5)
        stats = dataset_statistics(g)
        assert len(result.trussness) == stats["edges"]
        assert result.k_max >= 2

    def test_metrics_on_top_trusses(self):
        g = load_dataset("dblp", seed=1, scale=0.3)
        result = local_truss_decomposition(g, 0.3)
        for truss in result.maximal_trusses(result.k_max):
            assert 0.0 <= probabilistic_density(truss) <= 1.0
            assert 0.0 <= probabilistic_clustering_coefficient(truss) <= 1 + 1e-9


class TestIORoundTripThroughDecomposition:
    def test_save_load_decompose(self, tmp_path, fruitfly):
        from repro import read_json_graph, write_json_graph

        path = tmp_path / "fruitfly.json"
        write_json_graph(fruitfly, path)
        loaded = read_json_graph(path)
        a = local_truss_decomposition(fruitfly, 0.5).trussness
        b = local_truss_decomposition(loaded, 0.5).trussness
        assert a == b


def _mean(values):
    values = list(values)
    return sum(values) / len(values) if values else 0.0
