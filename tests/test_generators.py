"""Unit tests for the random-graph generators."""

import numpy as np
import pytest

from repro import ParameterError, connected_components, is_connected
from repro.graphs.generators import (
    barabasi_albert_graph,
    beta_probabilities,
    complete_graph,
    duplication_divergence_graph,
    gnp_graph,
    planted_truss_graph,
    powerlaw_cluster_graph,
    running_example,
    uniform_probabilities,
    windmill_graph,
)


class TestRunningExample:
    def test_shape(self):
        g = running_example()
        assert g.number_of_nodes() == 6
        assert g.number_of_edges() == 11

    def test_probabilities_match_paper(self):
        g = running_example()
        assert g.probability("q1", "v1") == 0.5
        assert g.probability("v1", "v2") == 1.0
        assert g.probability("p1", "q1") == 0.7
        # H3's probability 0.125 requires all q2 edges at 0.5.
        for v in ("v1", "v2", "v3"):
            assert g.probability("q2", v) == 0.5


class TestWindmill:
    def test_blade_count(self):
        g = windmill_graph(5)
        assert g.number_of_nodes() == 11  # hub + 2 per blade
        assert g.number_of_edges() == 15  # 3 per blade

    def test_hub_degree(self):
        g = windmill_graph(4, hub="center")
        assert g.degree("center") == 8

    def test_uniform_probability(self):
        g = windmill_graph(3, 0.25)
        assert all(p == 0.25 for _, _, p in g.edges_with_probabilities())

    def test_invalid_blades(self):
        with pytest.raises(ParameterError):
            windmill_graph(0)


class TestCompleteGraph:
    @pytest.mark.parametrize("n,m", [(0, 0), (1, 0), (2, 1), (5, 10)])
    def test_sizes(self, n, m):
        g = complete_graph(n)
        assert g.number_of_nodes() == n
        assert g.number_of_edges() == m

    def test_negative_n(self):
        with pytest.raises(ParameterError):
            complete_graph(-1)


class TestGnp:
    def test_deterministic_under_seed(self):
        a = gnp_graph(30, 0.2, seed=7, probability=0.5)
        b = gnp_graph(30, 0.2, seed=7, probability=0.5)
        assert a == b

    def test_different_seeds_differ(self):
        a = gnp_graph(30, 0.3, seed=1)
        b = gnp_graph(30, 0.3, seed=2)
        assert a != b

    def test_density_extremes(self):
        assert gnp_graph(10, 0.0, seed=1).number_of_edges() == 0
        assert gnp_graph(10, 1.0, seed=1).number_of_edges() == 45

    def test_callable_probability(self):
        g = gnp_graph(20, 0.5, seed=3, probability=uniform_probabilities(0.2, 0.4))
        probs = [p for _, _, p in g.edges_with_probabilities()]
        assert probs and all(0.2 <= p <= 0.4 for p in probs)

    def test_invalid_density(self):
        with pytest.raises(ParameterError):
            gnp_graph(10, 1.5, seed=1)


class TestBarabasiAlbert:
    def test_size_and_connectivity(self):
        g = barabasi_albert_graph(80, 3, seed=5)
        assert g.number_of_nodes() == 80
        # Each of the 77 arrivals adds exactly 3 edges.
        assert g.number_of_edges() == 77 * 3
        assert is_connected(g)

    def test_invalid_m(self):
        with pytest.raises(ParameterError):
            barabasi_albert_graph(5, 5, seed=1)
        with pytest.raises(ParameterError):
            barabasi_albert_graph(5, 0, seed=1)

    def test_deterministic(self):
        assert barabasi_albert_graph(40, 2, seed=9) == barabasi_albert_graph(
            40, 2, seed=9
        )


class TestPowerlawCluster:
    def test_size(self):
        g = powerlaw_cluster_graph(60, 4, 0.5, seed=2)
        assert g.number_of_nodes() == 60
        assert g.number_of_edges() == 56 * 4

    def test_clustering_higher_with_triangle_steps(self):
        from repro.core.metrics import clustering_coefficient

        flat = powerlaw_cluster_graph(150, 4, 0.0, seed=3)
        clustered = powerlaw_cluster_graph(150, 4, 0.9, seed=3)
        assert clustering_coefficient(clustered) > clustering_coefficient(flat)

    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            powerlaw_cluster_graph(10, 0, 0.5, seed=1)
        with pytest.raises(ParameterError):
            powerlaw_cluster_graph(10, 2, 1.5, seed=1)

    def test_deterministic(self):
        a = powerlaw_cluster_graph(50, 3, 0.4, seed=11)
        b = powerlaw_cluster_graph(50, 3, 0.4, seed=11)
        assert a == b


class TestDuplicationDivergence:
    def test_size(self):
        g = duplication_divergence_graph(50, 0.3, seed=4)
        assert g.number_of_nodes() == 50

    def test_sparser_with_lower_retention(self):
        sparse = duplication_divergence_graph(100, 0.1, seed=6)
        dense = duplication_divergence_graph(100, 0.9, seed=6)
        assert sparse.number_of_edges() < dense.number_of_edges()

    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            duplication_divergence_graph(2, 0.5, seed=1)
        with pytest.raises(ParameterError):
            duplication_divergence_graph(10, 1.5, seed=1)


class TestPlantedTruss:
    def test_clique_is_planted(self):
        g, clique = planted_truss_graph(40, 6, seed=8)
        assert len(clique) == 6
        for i, u in enumerate(clique):
            for v in clique[:i]:
                assert g.has_edge(u, v)
                assert g.probability(u, v) == 0.95

    def test_planted_clique_is_top_local_truss(self):
        from repro import local_truss_decomposition

        g, clique = planted_truss_graph(
            30, 6, background_density=0.03, seed=8
        )
        result = local_truss_decomposition(g, gamma=0.5)
        top = result.maximal_trusses(result.k_max)
        assert len(top) == 1
        assert set(top[0].nodes()) == set(clique)

    def test_invalid_clique_size(self):
        with pytest.raises(ParameterError):
            planted_truss_graph(10, 2, seed=1)


class TestProbabilitySamplers:
    def test_uniform_bounds(self):
        sampler = uniform_probabilities(0.3, 0.6)
        rng = np.random.default_rng(0)
        values = [sampler(rng) for _ in range(200)]
        assert all(0.3 <= v <= 0.6 for v in values)

    def test_uniform_invalid(self):
        with pytest.raises(ParameterError):
            uniform_probabilities(0.9, 0.1)

    def test_beta_bounds(self):
        sampler = beta_probabilities(2.0, 5.0)
        rng = np.random.default_rng(0)
        values = [sampler(rng) for _ in range(200)]
        assert all(0.0 <= v <= 1.0 for v in values)
        assert np.mean(values) < 0.5  # Beta(2, 5) skews low

    def test_beta_invalid(self):
        with pytest.raises(ParameterError):
            beta_probabilities(0.0, 1.0)
