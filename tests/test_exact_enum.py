"""Unit tests for the exhaustive global-truss enumeration oracle."""

import math

import pytest

from repro import ParameterError, ProbabilisticGraph
from repro.core.exact_enum import (
    enumerate_global_trusses,
    exact_global_decomposition,
)
from repro.graphs.generators import complete_graph, running_example, windmill_graph


class TestEnumerateGlobalTrusses:
    def test_paper_h2_h3(self):
        g = running_example()
        trusses = enumerate_global_trusses(g, 4, 0.125)
        found = {frozenset(t.nodes()) for t in trusses}
        assert found == {
            frozenset({"q1", "v1", "v2", "v3"}),
            frozenset({"q2", "v1", "v2", "v3"}),
        }

    def test_windmill_lemma2_count(self):
        # n = 4 blades, gamma = p^(3*ceil(n/2)): C(4, 2) = 6 maximal
        # global 3-trusses, each a union of exactly 2 blades.
        n, p = 4, 0.5
        g = windmill_graph(n, p)
        gamma = p ** (3 * math.ceil(n / 2))
        trusses = enumerate_global_trusses(g, 3, gamma)
        assert len(trusses) == math.comb(n, math.ceil(n / 2))
        for t in trusses:
            assert t.number_of_edges() == 6  # two blades

    def test_certain_clique(self):
        g = complete_graph(4, 1.0)
        trusses = enumerate_global_trusses(g, 4, 1.0)
        assert len(trusses) == 1
        assert trusses[0].number_of_edges() == 6

    def test_no_answers_above_achievable_gamma(self, triangle):
        # Full-triangle world probability is 0.9*0.8*0.7 = 0.504.
        assert enumerate_global_trusses(triangle, 3, 0.6) == []
        assert len(enumerate_global_trusses(triangle, 3, 0.5)) == 1

    def test_answers_are_mutually_non_nested(self):
        g = windmill_graph(3, 0.6)
        trusses = enumerate_global_trusses(g, 3, 0.2)
        keys = [frozenset(t.edges()) for t in trusses]
        for i, a in enumerate(keys):
            for b in keys[i + 1:]:
                assert not (a <= b or b <= a)

    def test_invalid_parameters(self, triangle):
        with pytest.raises(ParameterError):
            enumerate_global_trusses(triangle, 1, 0.5)
        with pytest.raises(ParameterError):
            enumerate_global_trusses(triangle, 3, 0.0)

    def test_size_limit(self):
        g = complete_graph(7, 0.9)  # 21 candidate edges > 14
        with pytest.raises(ParameterError):
            enumerate_global_trusses(g, 3, 0.1)


class TestExactGlobalDecomposition:
    def test_running_example_full(self):
        g = running_example()
        # Restrict to the 4-truss core (11 edges total is fine, but the
        # candidate pruning reduces to <= 14 edges anyway).
        result = exact_global_decomposition(g, 0.125, max_k=4)
        assert sorted(result) == [2, 3, 4]
        found4 = {frozenset(t.nodes()) for t in result[4]}
        assert frozenset({"q1", "v1", "v2", "v3"}) in found4

    def test_k_monotone_union(self):
        g = windmill_graph(3, 0.7)
        result = exact_global_decomposition(g, 0.3, max_k=3)
        for k in sorted(result):
            if k - 1 in result:
                lower = {e for t in result[k - 1] for e in t.edges()}
                upper = {e for t in result[k] for e in t.edges()}
                assert upper <= lower

    def test_matches_sampled_gtd(self):
        """The sampled GTD (large N) must agree with exact enumeration
        on which node sets are maximal at the top k."""
        from repro import global_truss_decomposition

        g = running_example()
        exact = exact_global_decomposition(g, 0.1, max_k=4)
        sampled = global_truss_decomposition(
            g, 0.1, method="gtd", seed=5, n_samples=3000
        )
        exact_top = {frozenset(t.nodes()) for t in exact[4]}
        sampled_top = {frozenset(t.nodes()) for t in sampled.trusses[4]}
        assert exact_top == sampled_top

    def test_empty_graph(self, empty_graph):
        assert exact_global_decomposition(empty_graph, 0.5) == {}
