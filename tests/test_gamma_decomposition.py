"""Unit tests for the fixed-k gamma decomposition (paper §7 extension)."""

import math

import pytest

from repro import (
    ParameterError,
    ProbabilisticGraph,
    gamma_truss_decomposition,
    local_truss_decomposition,
)
from repro.graphs.generators import complete_graph, running_example
from tests.conftest import random_probabilistic_graph


class TestBasics:
    def test_invalid_k(self, triangle):
        with pytest.raises(ParameterError):
            gamma_truss_decomposition(triangle, 1)

    def test_empty_graph(self, empty_graph):
        result = gamma_truss_decomposition(empty_graph, 3)
        assert result.gamma_trussness == {}
        assert result.thresholds() == []

    def test_input_not_modified(self, paper_graph):
        before = paper_graph.copy()
        gamma_truss_decomposition(paper_graph, 3)
        assert paper_graph == before

    def test_every_edge_assigned(self, paper_graph):
        result = gamma_truss_decomposition(paper_graph, 4)
        assert set(result.gamma_trussness) == set(paper_graph.edges())

    def test_gamma_of_accessor(self, paper_graph):
        result = gamma_truss_decomposition(paper_graph, 4)
        assert result.gamma_of("v1", "q1") == result.gamma_trussness[
            ("q1", "v1")
        ]

    def test_invalid_gamma_query(self, paper_graph):
        result = gamma_truss_decomposition(paper_graph, 3)
        with pytest.raises(ParameterError):
            result.maximal_trusses_at(0.0)


class TestKnownValues:
    def test_k2_is_max_min_probability(self):
        # At k = 2 the value of an edge is just p(e); the gamma-trussness
        # of each edge in a path is the running max-min — here simply its
        # own probability (removing the weakest never helps the others).
        g = ProbabilisticGraph([(0, 1, 0.3), (1, 2, 0.8), (2, 3, 0.5)])
        result = gamma_truss_decomposition(g, 2)
        assert math.isclose(result.gamma_of(0, 1), 0.3)
        assert math.isclose(result.gamma_of(1, 2), 0.8)
        assert math.isclose(result.gamma_of(2, 3), 0.5)

    def test_paper_h1_boundary(self):
        # H1's binding constraint at k = 4 is sigma(2) p = 0.125: the
        # gamma-trussness of every H1 edge at k = 4 is >= 0.125, and the
        # decomposition at gamma = 0.125 recovers exactly H1.
        g = running_example()
        result = gamma_truss_decomposition(g, 4)
        trusses = result.maximal_trusses_at(0.125)
        assert len(trusses) == 1
        assert set(trusses[0].nodes()) == {"q1", "q2", "v1", "v2", "v3"}

    def test_uniform_clique(self):
        # In K4 with p = 0.9 everywhere, all edges share one gamma value.
        g = complete_graph(4, 0.9)
        result = gamma_truss_decomposition(g, 4)
        values = set(round(v, 12) for v in result.gamma_trussness.values())
        assert len(values) == 1
        # sigma(2) = (0.81)^2 per edge... with two triangles each of
        # q = 0.81: Pr[sup >= 2] = 0.81^2; times p = 0.9.
        assert math.isclose(
            next(iter(result.gamma_trussness.values())),
            (0.81 ** 2) * 0.9,
        )

    def test_structurally_impossible_edges_get_zero(self):
        g = ProbabilisticGraph([(0, 1, 0.9)])  # no triangles at all
        result = gamma_truss_decomposition(g, 3)
        assert result.gamma_of(0, 1) == 0.0
        assert result.maximal_trusses_at(0.5) == []


class TestConsistencyWithLocalDecomposition:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_matches_local_decomposition_at_every_threshold(self, seed, k):
        """The defining property: for any gamma,
        {e : gamma_k(e) >= gamma} == {e : tau_gamma(e) >= k}."""
        g = random_probabilistic_graph(14, 0.4, seed)
        result = gamma_truss_decomposition(g, k)
        for gamma in (0.05, 0.2, 0.5, 0.8):
            via_gamma = {
                e for e, v in result.gamma_trussness.items()
                if v >= gamma * (1 - 1e-9)
            }
            local = local_truss_decomposition(g, gamma)
            via_local = {
                e for e, tau in local.trussness.items() if tau >= k
            }
            assert via_gamma == via_local

    @pytest.mark.parametrize("seed", range(3))
    def test_thresholds_are_exact_transition_points(self, seed):
        g = random_probabilistic_graph(12, 0.45, seed)
        k = 3
        result = gamma_truss_decomposition(g, k)
        for gamma in result.thresholds():
            at = {frozenset(t.edges())
                  for t in result.maximal_trusses_at(gamma)}
            just_above = {
                frozenset(t.edges())
                for t in result.maximal_trusses_at(min(1.0, gamma * (1 + 1e-6)))
            }
            # Crossing the threshold strictly shrinks the edge set.
            assert {e for s in just_above for e in s} < {
                e for s in at for e in s
            } or (not just_above and at)

    def test_hierarchy_keys_descending(self, paper_graph):
        result = gamma_truss_decomposition(paper_graph, 3)
        keys = list(result.hierarchy())
        assert keys == sorted(keys, reverse=True)
