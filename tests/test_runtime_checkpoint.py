"""Checkpoint store integrity and bit-identical kill-and-resume."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import (
    CheckpointError,
    ComputationInterrupted,
    ParameterError,
)
from repro.graphs.generators import running_example
from repro.graphs.sampling import SampleBatcher
from repro.runtime import (
    CheckpointStore,
    FaultPlan,
    decode_node,
    encode_node,
    run_global,
    run_reliability,
    serialize_global_result,
)

GAMMA = 0.3
N_SAMPLES = 60
BATCH = 20  # -> 3 sample batches


def full_run(graph, seed, **kwargs):
    return run_global(graph, GAMMA, method="gbu", seed=seed,
                      n_samples=N_SAMPLES, batch_size=BATCH, **kwargs)


class TestNodeCodec:
    @pytest.mark.parametrize("label", [0, 7, -3, "a", "", "läbel", True, False])
    def test_round_trip(self, label):
        out = decode_node(encode_node(label))
        assert out == label and type(out) is type(label)

    def test_bool_is_not_conflated_with_int(self):
        assert encode_node(True)[0] == "b"
        assert encode_node(1)[0] == "i"

    def test_unsupported_label_raises(self):
        with pytest.raises(CheckpointError, match="cannot be checkpointed"):
            encode_node((1, 2))

    def test_malformed_encoding_raises(self):
        with pytest.raises(CheckpointError):
            decode_node(["x", 1])
        with pytest.raises(CheckpointError):
            decode_node("not-a-pair")


class TestCheckpointStore:
    def test_manifest_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert not store.exists()
        store.save_manifest({"params": {"kind": "t"}, "status": "x"})
        assert store.exists()
        doc = store.load_manifest(expect_params={"kind": "t"})
        assert doc["status"] == "x"

    def test_param_mismatch_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save_manifest({"params": {"gamma": 0.3}})
        with pytest.raises(CheckpointError, match="different parameters"):
            store.load_manifest(expect_params={"gamma": 0.5})

    def test_version_gate(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save_manifest({"params": {}})
        wrapper = json.loads(store.manifest_path.read_text())
        wrapper["manifest"]["version"] = 999
        # Recompute the crc so only the version is "wrong".
        import zlib

        body = json.dumps(wrapper["manifest"], sort_keys=True,
                          separators=(",", ":"))
        wrapper["crc"] = zlib.crc32(body.encode())
        store.manifest_path.write_text(json.dumps(wrapper, sort_keys=True))
        with pytest.raises(CheckpointError, match="version"):
            store.load_manifest()

    def test_crc_detects_tampering(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save_manifest({"params": {"gamma": 0.3}})
        wrapper = json.loads(store.manifest_path.read_text())
        wrapper["manifest"]["params"]["gamma"] = 0.9
        store.manifest_path.write_text(json.dumps(wrapper, sort_keys=True))
        with pytest.raises(CheckpointError, match="crc mismatch"):
            store.load_manifest()

    def test_sample_batch_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        rng = np.random.default_rng(0)
        presence = rng.random((25, 11)) < 0.5
        store.save_sample_batch(0, presence)
        assert np.array_equal(store.load_sample_batch(0), presence)

    def test_sample_batch_corruption_detected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save_sample_batch(0, np.ones((4, 3), dtype=bool))
        path = tmp_path / "samples_0000.npz"
        path.write_bytes(b"\x00" * 10)
        with pytest.raises(CheckpointError, match="corrupt"):
            store.load_sample_batch(0)

    def test_missing_files_raise(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(CheckpointError, match="no checkpoint manifest"):
            store.load_manifest()
        with pytest.raises(CheckpointError, match="missing"):
            store.load_sample_batch(3)
        with pytest.raises(CheckpointError, match="missing"):
            store.load_level(2)

    def test_level_round_trip(self, tmp_path):
        graph = running_example()
        store = CheckpointStore(tmp_path)
        sub = graph.edge_subgraph(list(graph.edges())[:4])
        store.save_level(2, [sub])
        [edges] = store.load_level(2)
        assert sorted(edges) == sorted(
            tuple(e) for e in sub.edges()
        )

    def test_clear(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save_manifest({"params": {}})
        store.save_sample_batch(0, np.ones((2, 2), dtype=bool))
        store.clear()
        assert not store.exists()
        assert list(tmp_path.glob("*")) == []


class TestCollectGarbage:
    """Pruning a finished checkpoint never touches what resume needs."""

    def test_removes_tmp_frontier_and_stale_batches(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save_manifest({"params": {}})
        for index in range(4):
            store.save_sample_batch(index, np.ones((2, 2), dtype=bool))
        store.save_frontier({"k": 3, "comp_index": 0, "round": 1,
                             "found": [], "frontier": [], "visited": []})
        torn = tmp_path / "samples_0009.npz.tmp"
        torn.write_bytes(b"partial")
        removed = store.collect_garbage(batches_drawn=2)
        assert torn in removed
        assert store.frontier_path in removed
        # Batches 2 and 3 are beyond the run that finished with 2.
        names = sorted(p.name for p in removed)
        assert "samples_0002.npz" in names and "samples_0003.npz" in names
        # What resume reads is untouched.
        assert store.exists()
        assert store.load_sample_batch(0) is not None
        assert store.load_sample_batch(1) is not None
        with pytest.raises(CheckpointError, match="missing"):
            store.load_sample_batch(2)

    def test_without_batches_drawn_keeps_all_batches(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save_sample_batch(0, np.ones((2, 2), dtype=bool))
        removed = store.collect_garbage()
        assert removed == []
        assert store.load_sample_batch(0) is not None

    def test_empty_directory_is_a_no_op(self, tmp_path):
        assert CheckpointStore(tmp_path).collect_garbage() == []

    def test_completed_global_run_leaves_no_garbage(self, tmp_path):
        """The harness GCs on completion: no *.tmp, no frontier, no
        out-of-range sample batches — and the pruned checkpoint still
        resumes byte-identically."""
        graph = running_example()
        first = full_run(graph, 7, checkpoint_dir=tmp_path)
        assert first.complete
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.suffix == ".tmp" or p.name == "frontier.json"]
        assert leftovers == []
        batches = sorted(p.name for p in tmp_path.glob("samples_*.npz"))
        assert len(batches) == N_SAMPLES // BATCH
        again = full_run(graph, 7, checkpoint_dir=tmp_path, resume=True)
        assert (serialize_global_result(again.result)
                == serialize_global_result(first.result))


class TestBatcherResume:
    """The checkpoint-resume path of :class:`SampleBatcher`."""

    def test_resume_via_load_batch_matches_direct_draw(self):
        graph = running_example()
        direct = SampleBatcher(graph, n_samples=40, batch_size=20, seed=0)
        batches = [direct.draw_next() for _ in range(2)]
        resumed = SampleBatcher(graph, n_samples=40, batch_size=20, seed=0)
        for batch in batches:
            resumed.load_batch(batch)
        assert np.array_equal(
            resumed.result().packed_bits, direct.result().packed_bits
        )

    def test_overfull_checkpoint_names_the_problem(self):
        # Regression: loading more batches than the run's parameters
        # allow used to fail inside batch_rows() with a misleading
        # "batch index out of range"; the real problem — an oversized or
        # mismatched checkpoint — is now named directly.
        graph = running_example()
        donor = SampleBatcher(graph, n_samples=60, batch_size=20, seed=0)
        extra = [donor.draw_next() for _ in range(3)]
        resumed = SampleBatcher(graph, n_samples=40, batch_size=20, seed=0)
        resumed.load_batch(extra[0])
        resumed.load_batch(extra[1])
        with pytest.raises(
            ParameterError,
            match="all 2 batches have already been drawn",
        ):
            resumed.load_batch(extra[2])

    def test_draw_next_past_the_end_raises(self):
        graph = running_example()
        batcher = SampleBatcher(graph, n_samples=20, batch_size=20, seed=0)
        batcher.draw_next()
        with pytest.raises(ParameterError, match="already been drawn"):
            batcher.draw_next()


#: Kill points covering all three stages of a global run: mid-sampling,
#: mid-level (GBU seed loop), and at a completed-level boundary.
KILL_POINTS = [
    ("sample-batch", 0),
    ("sample-batch", 1),
    ("gbu-seed", 0),
    ("global-level-done", 2),
]


class TestKillAndResume:
    """A killed run, resumed, is byte-identical to an uninterrupted one."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("phase,step", KILL_POINTS)
    def test_global_resume_is_bit_identical(self, tmp_path, seed, phase, step):
        graph = running_example()
        baseline = serialize_global_result(full_run(graph, seed).result)

        ck = tmp_path / "ck"
        plan = FaultPlan().sigint_at(phase, step)
        with pytest.raises(ComputationInterrupted) as exc_info:
            full_run(graph, seed, checkpoint_dir=ck, progress=plan)
        assert plan.fired == [(phase, step)]
        assert exc_info.value.checkpoint_path == str(ck)

        resumed = full_run(graph, seed, checkpoint_dir=ck, resume=True)
        assert resumed.complete
        assert serialize_global_result(resumed.result) == baseline

    def test_double_kill_then_resume(self, tmp_path):
        """Two successive kills at different boundaries still resume."""
        graph = running_example()
        baseline = serialize_global_result(full_run(graph, 5).result)
        ck = tmp_path / "ck"
        with pytest.raises(ComputationInterrupted):
            full_run(graph, 5, checkpoint_dir=ck,
                     progress=FaultPlan().sigint_at("sample-batch", 1))
        with pytest.raises(ComputationInterrupted):
            full_run(graph, 5, checkpoint_dir=ck, resume=True,
                     progress=FaultPlan().sigint_at("global-level-done", 2))
        resumed = full_run(graph, 5, checkpoint_dir=ck, resume=True)
        assert serialize_global_result(resumed.result) == baseline

    def test_resume_of_finished_run_returns_same_result(self, tmp_path):
        graph = running_example()
        first = full_run(graph, 2, checkpoint_dir=tmp_path)
        again = full_run(graph, 2, checkpoint_dir=tmp_path, resume=True)
        assert again.complete
        assert (serialize_global_result(again.result)
                == serialize_global_result(first.result))

    def test_resume_with_different_params_refuses(self, tmp_path):
        graph = running_example()
        full_run(graph, 2, checkpoint_dir=tmp_path)
        with pytest.raises(CheckpointError, match="different parameters"):
            run_global(graph, 0.7, method="gbu", seed=2,
                       n_samples=N_SAMPLES, batch_size=BATCH,
                       checkpoint_dir=tmp_path, resume=True)

    @pytest.mark.parametrize("seed", [1, 4])
    def test_reliability_resume_is_identical(self, tmp_path, seed):
        graph = running_example()
        baseline = run_reliability(graph, n_samples=120, batch_size=40,
                                   seed=seed)
        ck = tmp_path / "ck"
        with pytest.raises(ComputationInterrupted):
            run_reliability(graph, n_samples=120, batch_size=40, seed=seed,
                            checkpoint_dir=ck,
                            progress=FaultPlan().sigint_at(
                                "reliability-batch", 1))
        resumed = run_reliability(graph, n_samples=120, batch_size=40,
                                  seed=seed, checkpoint_dir=ck, resume=True)
        assert resumed.complete
        assert resumed.result == baseline.result
        assert resumed.detail["hits"] == baseline.detail["hits"]
