"""Ablation — Monte-Carlo estimator error versus sample count N.

Theorem 3 promises |alpha_hat - alpha| <= epsilon with probability
1 - delta when N >= ln(2/delta) / (2 eps^2). This ablation measures the
actual estimation error on the paper's H2 subgraph (exact alpha = 0.125
for every edge) across a sweep of N, checking the error shrinks and the
paper's N = 150 choice sits within its promised envelope.
"""

import math

import pytest

from repro import GlobalTrussOracle, WorldSampleSet, alpha_exact

from benchmarks.conftest import print_header, run_once
from repro.graphs.generators import running_example

_SAMPLE_COUNTS = (10, 50, 150, 600, 2400)
_TRIALS = 20


def test_ablation_estimator_error(benchmark):
    graph = running_example()
    h2 = graph.subgraph(["q1", "v1", "v2", "v3"])
    exact = alpha_exact(h2, 4)
    rows = []

    def sweep():
        for n in _SAMPLE_COUNTS:
            errors = []
            for trial in range(_TRIALS):
                samples = WorldSampleSet.from_graph(
                    graph, n, seed=1000 * n + trial
                )
                oracle = GlobalTrussOracle(samples)
                estimates = oracle.alpha_estimates(h2, 4)
                errors.append(max(
                    abs(estimates[e] - exact[e]) for e in exact
                ))
            mean_err = sum(errors) / len(errors)
            max_err = max(errors)
            # Hoeffding epsilon for this N at delta = 0.1.
            eps = math.sqrt(math.log(2 / 0.1) / (2 * n))
            rows.append((n, mean_err, max_err, eps))
        return rows

    run_once(benchmark, sweep)

    print_header(
        "Ablation: alpha_hat error vs sample count (H2, exact alpha=0.125)",
        f"{'N':>6} {'mean err':>9} {'max err':>9} {'Hoeffding eps':>14}",
    )
    for n, mean_err, max_err, eps in rows:
        print(f"{n:>6} {mean_err:>9.4f} {max_err:>9.4f} {eps:>14.4f}")

    # Error decreases with N (compare endpoints; jitter-tolerant).
    assert rows[-1][1] < rows[0][1]
    # At every N the observed max error respects the Hoeffding envelope
    # (which holds with prob 1 - delta per estimate; allow slack x1.5).
    for n, mean_err, max_err, eps in rows:
        assert max_err <= eps * 1.5
