"""Ablation — probability-mass vs expected-support truss semantics.

Measures, across the datasets, how often the naive expected-support
semantics (E[sup] >= k - 2) disagrees with the paper's probability-mass
semantics (Pr[sup >= k - 2] * p >= gamma) about which edges clear truss
order k — quantifying why the paper's definition is the right one for
uncertain graphs (expectation conflates one solid triangle with many
flimsy ones).
"""

import pytest

from repro import local_truss_decomposition
from repro.core.expected import expected_truss_decomposition

from benchmarks.conftest import cached_dataset, print_header, run_once

_DATASETS = ("fruitfly", "wikivote", "flickr", "dblp")
_GAMMA = 0.5
_K = 3


def test_ablation_semantics_disagreement(benchmark):
    rows = []

    def sweep():
        for name in _DATASETS:
            graph = cached_dataset(name)
            local = local_truss_decomposition(graph, _GAMMA)
            expected = expected_truss_decomposition(graph)
            prob_in = {
                e for e, tau in local.trussness.items() if tau >= _K
            }
            exp_in = {
                e for e, tau in expected.items() if tau >= _K
            }
            both = len(prob_in & exp_in)
            only_prob = len(prob_in - exp_in)
            only_exp = len(exp_in - prob_in)
            rows.append((name, len(local.trussness), both, only_prob,
                         only_exp))
        return rows

    run_once(benchmark, sweep)

    print_header(
        f"Ablation: edges clearing k={_K} under probability-mass "
        f"(gamma={_GAMMA}) vs expected-support semantics",
        f"{'network':<12} {'edges':>7} {'both':>6} {'prob only':>10} "
        f"{'expected only':>14}",
    )
    for name, m, both, only_prob, only_exp in rows:
        print(f"{name:<12} {m:>7} {both:>6} {only_prob:>10} {only_exp:>14}")

    # The semantics must genuinely differ somewhere: the expectation
    # admits flimsy-redundant edges the probability test rejects.
    assert any(only_exp > 0 for *_, only_exp in rows)
    # And on probability-heterogeneous data the expected semantics is
    # the looser one overall (it has no gamma knob to tighten).
    total_only_exp = sum(r[4] for r in rows)
    total_only_prob = sum(r[3] for r in rows)
    assert total_only_exp >= total_only_prob
