"""Figure 7 — quality on FruitFly vs k: Local vs GTD vs GBU, gamma = 0.7.

The paper's Figure 7 reports, for each k, (a) average density,
(b) average PCC, (c) average vertex count and (d) number of trusses of
the maximal (k, 0.7)-trusses found by Local, GTD and GBU on FruitFly.
Expected shape: global trusses (GTD/GBU) are denser and smaller than
local trusses; counts fall as k rises; density/PCC rise with k.
"""

import pytest

from repro import (
    global_truss_decomposition,
    local_truss_decomposition,
    probabilistic_clustering_coefficient,
    probabilistic_density,
)

from benchmarks.conftest import cached_dataset, print_header, run_once

_GAMMA = 0.7


def _avg(values):
    values = [v for v in values if v is not None]
    return sum(values) / len(values) if values else 0.0


def _quality(trusses):
    """(avg density, avg PCC, avg |V|, count); single-edge graphs are
    excluded from the PCC average, as in the paper."""
    if not trusses:
        return (0.0, 0.0, 0.0, 0)
    density = _avg(probabilistic_density(t) for t in trusses)
    pcc_values = [
        probabilistic_clustering_coefficient(t)
        for t in trusses
        if t.number_of_edges() > 1
    ]
    pcc = _avg(pcc_values) if pcc_values else 0.0
    vertices = _avg(t.number_of_nodes() for t in trusses)
    return (density, pcc, vertices, len(trusses))


def test_fig7_quality_by_k(benchmark):
    graph = cached_dataset("fruitfly")

    def decompose_all():
        local = local_truss_decomposition(graph, _GAMMA)
        gtd = global_truss_decomposition(
            graph, _GAMMA, method="gtd", seed=1, max_states=120_000
        )
        gbu = global_truss_decomposition(graph, _GAMMA, method="gbu", seed=1)
        return local, gtd, gbu

    local, gtd, gbu = run_once(benchmark, decompose_all)

    k_top = max(local.k_max, gtd.k_max, gbu.k_max)
    print_header(
        f"Figure 7 (fruitfly, gamma={_GAMMA}): quality by k",
        f"{'k':>3} {'method':<7} {'density':>9} {'PCC':>7} "
        f"{'avg |V|':>8} {'#trusses':>9}",
    )
    table = {}
    for k in range(2, k_top + 1):
        results = {
            "local": local.maximal_trusses(k) if k <= local.k_max else [],
            "GTD": gtd.trusses.get(k, []),
            "GBU": gbu.trusses.get(k, []),
        }
        for method, trusses in results.items():
            q = _quality(trusses)
            table[(k, method)] = q
            print(f"{k:>3} {method:<7} {q[0]:>9.4f} {q[1]:>7.4f} "
                  f"{q[2]:>8.1f} {q[3]:>9}")

    # Paper shapes:
    # (1) Global trusses are at least as dense as local ones at mid k.
    for k in range(3, min(local.k_max, gbu.k_max) + 1):
        if table[(k, "GBU")][3] and table[(k, "local")][3]:
            assert table[(k, "GBU")][0] >= table[(k, "local")][0] * 0.9
    # (2) Global trusses are no larger than local ones.
    for k in range(3, min(local.k_max, gbu.k_max) + 1):
        if table[(k, "GBU")][3] and table[(k, "local")][3]:
            assert table[(k, "GBU")][2] <= table[(k, "local")][2] + 1e-9
    # (3) The number of local trusses decreases as k grows.
    counts = [table[(k, "local")][3] for k in range(3, local.k_max + 1)]
    assert all(a >= b for a, b in zip(counts, counts[1:]))
