"""Table 1 — network statistics of all eight datasets.

Prints |V|, |E|, d_max, largest-CC size and component count for every
synthetic stand-in, next to the paper's real-network numbers, and
benchmarks the statistics computation itself on the largest graph.
"""

import pytest

from repro import dataset_statistics
from repro.datasets import dataset_spec

from benchmarks.conftest import ALL_DATASETS, cached_dataset, print_header, run_once


def test_table1_statistics(benchmark):
    graphs = {name: cached_dataset(name) for name in ALL_DATASETS}

    def compute_all():
        return {name: dataset_statistics(g) for name, g in graphs.items()}

    stats = run_once(benchmark, compute_all)

    from benchmarks.conftest import save_rows

    save_rows("table1_stats",
              ["dataset", "nodes", "edges", "max_degree",
               "largest_cc_nodes", "largest_cc_edges", "components"],
              [(name, *[stats[name][key] for key in (
                  "nodes", "edges", "max_degree", "largest_cc_nodes",
                  "largest_cc_edges", "components")])
               for name in ALL_DATASETS])
    print_header(
        "Table 1: network statistics (synthetic stand-ins)",
        f"{'network':<12} {'|V|':>7} {'|E|':>8} {'d_max':>6} "
        f"{'|V_C|':>7} {'|E_C|':>8} {'#comp':>6}   paper |V| / |E|",
    )
    for name in ALL_DATASETS:
        s = stats[name]
        spec = dataset_spec(name)
        print(
            f"{name:<12} {s['nodes']:>7} {s['edges']:>8} "
            f"{s['max_degree']:>6} {s['largest_cc_nodes']:>7} "
            f"{s['largest_cc_edges']:>8} {s['components']:>6}   "
            f"{spec.paper_nodes} / {spec.paper_edges}"
        )

    # Shape assertions mirroring the paper's Table 1:
    # sizes ascend fruitfly -> wise; fruitfly fragmented; orkut monolithic.
    assert stats["fruitfly"]["edges"] < stats["wikivote"]["edges"]
    assert stats["livejournal"]["edges"] < stats["orkut"]["edges"]
    assert stats["fruitfly"]["components"] > 50
    assert stats["orkut"]["components"] == 1
