"""Benchmark harness regenerating every table and figure of the paper.

Run with ``pytest benchmarks/ --benchmark-only``. See DESIGN.md §2 for
the experiment index and EXPERIMENTS.md for recorded paper-vs-measured
results.
"""
