"""Parallel scaling — ``--workers`` speedup at bit-identical output.

Two scenarios, each asserting the correctness claim unconditionally
(byte-identical serialised results for every worker count) and the
speedup claim only when the machine actually has cores to scale onto:

* **GBU / inter-component** — the Figure 6 mid-size configuration
  (FruitFly, gamma = 0.7): seed evaluations fan out across components.
* **GTD / intra-component frontier sharding** — a planted-truss graph
  that is one giant component, where inter-component fan-out has
  nothing to parallelise: speedup must come entirely from sharding each
  peel round's frontier (see docs/performance.md).

Besides the CSV rows, per-phase wall-clock attributions (sampling /
oracle / frontier / other, measured between progress events) are
written to ``bench_results/parallel_scaling.json`` so scaling
regressions can be pinned to a phase, not just a total.
"""

import json
import os
import time
from pathlib import Path

from repro import global_truss_decomposition
from repro.graphs.generators import planted_truss_graph
from repro.runtime import serialize_global_result

from benchmarks.conftest import (
    bench_scale,
    cached_dataset,
    print_header,
    run_once,
    save_rows,
)

_GAMMA = 0.7
_WORKER_COUNTS = (1, 4)

#: Cores needed before the speedup assertions are meaningful for 4
#: workers.
_MIN_CORES_FOR_SPEEDUP = 4

#: Single-component GTD scenario: ~45 edges, closure of a few hundred
#: residual states with peel rounds up to ~280 candidates wide — wide
#: enough that frontier shards keep 4 workers busy — and a sample set
#: large enough that the per-candidate oracle test dominates.
_GTD_GRAPH = dict(n_background=16, clique_size=6, background_density=0.12,
                  clique_probability=0.75, background_probability=0.375,
                  seed=11)
_GTD_GAMMA = 0.45
_GTD_SAMPLES = 2000
_GTD_MAX_STATES = 60_000

#: Progress phase -> timing bucket for the per-phase attribution.
_PHASE_BUCKETS = {
    "sample-batch": "sampling",
    "oracle-eval": "oracle",
    "gtd-state": "frontier",
    "gtd-frontier": "frontier",
    "gtd-component": "frontier",
}


class PhaseTimer:
    """Progress hook attributing inter-event wall time to coarse buckets.

    The elapsed time since the previous event is charged to the bucket
    of the *current* event's phase (the work that just finished emitted
    it). With workers the in-pool phases arrive coalesced through the
    pump, so parallel attributions are sampled rather than exact —
    fine for the macro question "which phase stopped scaling".
    """

    def __init__(self):
        self.buckets = {"sampling": 0.0, "oracle": 0.0, "frontier": 0.0,
                        "other": 0.0}
        self._last = time.perf_counter()

    def __call__(self, event) -> None:
        now = time.perf_counter()
        bucket = _PHASE_BUCKETS.get(event.phase, "other")
        self.buckets[bucket] += now - self._last
        self._last = now

    def rounded(self) -> dict:
        return {name: round(seconds, 4)
                for name, seconds in self.buckets.items()}


def _save_phase_json(scenario: str, entries: dict) -> str:
    """Merge one scenario's timings into parallel_scaling.json."""
    out_dir = Path(__file__).resolve().parent.parent / "bench_results"
    out_dir.mkdir(exist_ok=True)
    path = out_dir / "parallel_scaling.json"
    doc = {}
    if path.exists():
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            doc = {}
    doc[scenario] = entries
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return str(path)


def _sweep(graph, worker_counts, **kwargs):
    """Run the decomposition once per worker count, timing each pass."""
    rows = []
    for workers in worker_counts:
        timer = PhaseTimer()
        t0 = time.perf_counter()
        result = global_truss_decomposition(
            graph, workers=workers, progress=timer, **kwargs,
        )
        elapsed = time.perf_counter() - t0
        rows.append((workers, elapsed, timer.rounded(), result.k_max,
                     serialize_global_result(result)))
    return rows


def _report(scenario, rows, title):
    serial_t = rows[0][1]
    save_rows(f"parallel_scaling_{scenario}",
              ["workers", "seconds", "k_max", "speedup"],
              [(w, t, k, serial_t / t) for w, t, _, k, _ in rows])
    path = _save_phase_json(scenario, {
        str(workers): {"seconds": round(elapsed, 4),
                       "speedup": round(serial_t / elapsed, 3),
                       "phases": phases}
        for workers, elapsed, phases, _, _ in rows
    })
    print_header(
        f"{title} ({os.cpu_count()} cores)",
        f"{'workers':>8} {'seconds':>9} {'speedup':>8} {'k_max':>6}  phases",
    )
    for workers, elapsed, phases, k_max, _ in rows:
        summary = " ".join(f"{k}={v:.2f}s" for k, v in phases.items() if v)
        print(f"{workers:>8} {elapsed:>9.2f} {serial_t / elapsed:>8.2f} "
              f"{k_max:>6}  {summary}")
    print(f"per-phase timings -> {path}")

    # Correctness is unconditional: every worker count, same bytes.
    blobs = {blob for _, _, _, _, blob in rows}
    assert len(blobs) == 1, f"{scenario}: workers disagree on the result"
    return serial_t


def test_parallel_scaling_gbu(benchmark):
    graph = cached_dataset("fruitfly", scale=bench_scale(0.35))
    rows = run_once(benchmark, _sweep, graph, _WORKER_COUNTS,
                    gamma=_GAMMA, method="gbu", seed=1)
    serial_t = _report("gbu", rows, f"GBU scaling (fruitfly, gamma={_GAMMA})")

    cores = os.cpu_count() or 1
    if cores >= _MIN_CORES_FOR_SPEEDUP:
        parallel_t = rows[-1][1]
        assert serial_t / parallel_t >= 2.0, (
            f"expected >= 2x with {_WORKER_COUNTS[-1]} workers on "
            f"{cores} cores, got {serial_t / parallel_t:.2f}x"
        )


def test_parallel_scaling_gtd_frontier(benchmark):
    graph, _ = planted_truss_graph(**_GTD_GRAPH)
    rows = run_once(benchmark, _sweep, graph, _WORKER_COUNTS,
                    gamma=_GTD_GAMMA, method="gtd", seed=9,
                    n_samples=_GTD_SAMPLES, max_states=_GTD_MAX_STATES)
    serial_t = _report(
        "gtd_frontier", rows,
        f"GTD frontier sharding (planted truss, single component, "
        f"gamma={_GTD_GAMMA})",
    )

    # One component: any speedup here is intra-component by construction.
    cores = os.cpu_count() or 1
    if cores >= _MIN_CORES_FOR_SPEEDUP:
        parallel_t = rows[-1][1]
        assert serial_t / parallel_t >= 1.5, (
            f"expected >= 1.5x from frontier sharding with "
            f"{_WORKER_COUNTS[-1]} workers on {cores} cores, got "
            f"{serial_t / parallel_t:.2f}x"
        )
