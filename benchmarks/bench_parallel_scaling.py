"""Parallel scaling — ``--workers`` speedup at bit-identical output.

Runs the Figure 6 mid-size configuration (FruitFly, gamma = 0.7, GBU)
serially and with a 4-worker pool and reports the wall-clock ratio.
The *correctness* claim — byte-identical serialised results for every
worker count — is asserted unconditionally; the *speedup* claim is only
asserted when the machine actually has cores to scale onto (CI and the
paper-repro boxes do; a 1-core container cannot and merely records the
ratio).
"""

import os
import time

from repro import global_truss_decomposition
from repro.runtime import serialize_global_result

from benchmarks.conftest import (
    bench_scale,
    cached_dataset,
    print_header,
    run_once,
    save_rows,
)

_GAMMA = 0.7
_WORKER_COUNTS = (1, 4)

#: Cores needed before the >= 2x assertion is meaningful for 4 workers.
_MIN_CORES_FOR_SPEEDUP = 4


def test_parallel_scaling(benchmark):
    graph = cached_dataset("fruitfly", scale=bench_scale(0.35))
    rows = []

    def sweep():
        for workers in _WORKER_COUNTS:
            t0 = time.perf_counter()
            result = global_truss_decomposition(
                graph, _GAMMA, method="gbu", seed=1, workers=workers,
            )
            elapsed = time.perf_counter() - t0
            rows.append(
                (workers, elapsed, result.k_max,
                 serialize_global_result(result))
            )
        return rows

    run_once(benchmark, sweep)

    serial_t = rows[0][1]
    save_rows("parallel_scaling",
              ["workers", "seconds", "k_max", "speedup"],
              [(w, t, k, serial_t / t) for w, t, k, _ in rows])
    print_header(
        f"Parallel scaling (fruitfly, gamma={_GAMMA}, "
        f"{os.cpu_count()} cores)",
        f"{'workers':>8} {'seconds':>9} {'speedup':>8} {'k_max':>6}",
    )
    for workers, elapsed, k_max, _ in rows:
        print(f"{workers:>8} {elapsed:>9.2f} {serial_t / elapsed:>8.2f} "
              f"{k_max:>6}")

    # Correctness is unconditional: every worker count, same bytes.
    blobs = {blob for _, _, _, blob in rows}
    assert len(blobs) == 1, "worker counts disagree on the decomposition"

    # Speedup only where the hardware allows it.
    cores = os.cpu_count() or 1
    if cores >= _MIN_CORES_FOR_SPEEDUP:
        parallel_t = rows[-1][1]
        assert serial_t / parallel_t >= 2.0, (
            f"expected >= 2x with {_WORKER_COUNTS[-1]} workers on "
            f"{cores} cores, got {serial_t / parallel_t:.2f}x"
        )
