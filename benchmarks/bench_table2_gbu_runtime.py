"""Table 2 — GBU running time on all eight networks, gamma sweep.

The paper's Table 2 reports GBU runtime for gamma in {0.1 ... 0.9} on
every dataset, observing (i) runtime falls steeply as gamma rises and
(ii) runtime grows essentially linearly with graph size. Pure Python
cannot afford the paper's multi-hour low-gamma runs, so the heavy
datasets run at a reduced scale (REPRO_BENCH_SCALE, default 0.3) — the
*shape* across gamma and across datasets is what this bench checks.
"""

import os
import time

import pytest

from benchmarks.conftest import (
    ALL_DATASETS,
    bench_scale,
    cached_dataset,
    print_header,
    resumable_global,
    run_once,
)

_GAMMAS = (0.1, 0.3, 0.5, 0.7, 0.9)

#: Optional per-cell wall-clock budget (seconds). A cell that hits it
#: reports its completed levels and leaves a checkpoint behind, which
#: the next invocation of the bench resumes instead of starting over.
_CELL_DEADLINE = (
    float(os.environ["REPRO_BENCH_DEADLINE"])
    if "REPRO_BENCH_DEADLINE" in os.environ else None
)


@pytest.mark.parametrize("dataset", ALL_DATASETS)
def test_table2_gbu_runtime(benchmark, dataset):
    from benchmarks.conftest import GBU_SCALES

    scale = GBU_SCALES[dataset] * bench_scale(1.0)
    graph = cached_dataset(dataset, scale=scale)
    rows = []

    def sweep():
        for gamma in _GAMMAS:
            t0 = time.perf_counter()
            partial = resumable_global(
                graph, gamma, method="gbu", seed=1,
                tag=f"table2_{dataset}_g{gamma}",
                deadline=_CELL_DEADLINE,
            )
            elapsed = time.perf_counter() - t0
            result = partial.result
            n_trusses = sum(len(v) for v in result.trusses.values())
            rows.append((gamma, elapsed, result.k_max, n_trusses))
        return rows

    run_once(benchmark, sweep)

    from benchmarks.conftest import save_rows

    save_rows("table2_gbu_runtime",
              ["dataset", "gamma", "seconds", "k_max", "n_trusses"],
              [(dataset, *row) for row in rows])
    print_header(
        f"Table 2 ({dataset}, |E|={graph.number_of_edges()}): "
        "GBU runtime (s) by gamma",
        f"{'gamma':>6} {'time':>9} {'k_max':>6} {'#trusses':>9}",
    )
    for gamma, elapsed, k_max, n_trusses in rows:
        print(f"{gamma:>6.1f} {elapsed:>9.2f} {k_max:>6} {n_trusses:>9}")

    # Paper shape: high gamma is much cheaper than low gamma.
    assert rows[-1][1] <= rows[0][1] * 1.05 + 0.05
