"""Table 3 — (k_tmax, gamma)-truss vs (k_cmax, eta)-core statistics.

The paper's Table 3 compares the top local truss T with the top
(k, eta)-core C on WikiVote, DBLP and BioMine for eta = gamma in
{0.1, 0.5}: T is far smaller than C, k_tmax < k_cmax, and T beats C on
probabilistic density and PCC (CC is comparable).
"""

import pytest

from repro import (
    clustering_coefficient,
    eta_core_decomposition,
    local_truss_decomposition,
    probabilistic_clustering_coefficient,
    probabilistic_density,
)

from benchmarks.conftest import cached_dataset, print_header, run_once

_DATASETS = ("wikivote", "dblp", "biomine")
_THRESHOLDS = (0.1, 0.5)


def _top_truss_stats(graph, gamma):
    """(k_tmax, largest maximal truss at k_tmax).

    The paper's T is effectively one cohesive subgraph; on our
    community-structured stand-ins several disjoint maximal trusses can
    tie at k_tmax, so the comparison uses the largest of them (the union
    would conflate unrelated communities).
    """
    local = local_truss_decomposition(graph, gamma)
    k = local.k_max
    pieces = local.maximal_trusses(k) if k else []
    if not pieces:
        return k, graph.subgraph([])
    best = max(pieces, key=lambda t: t.number_of_edges())
    return k, best


def _top_core_stats(graph, eta):
    """(k_cmax, largest connected piece of the top eta-core)."""
    from repro.graphs.components import largest_connected_component

    core = eta_core_decomposition(graph, eta)
    k = max(core.values(), default=0)
    members = [u for u, c in core.items() if c >= k]
    return k, largest_connected_component(graph.subgraph(members))


def test_table3_truss_vs_core(benchmark):
    rows = []

    def sweep():
        for name in _DATASETS:
            graph = cached_dataset(name)
            for threshold in _THRESHOLDS:
                k_t, T = _top_truss_stats(graph, threshold)
                k_c, C = _top_core_stats(graph, threshold)
                rows.append((
                    name, threshold,
                    T.number_of_nodes(), C.number_of_nodes(),
                    T.number_of_edges(), C.number_of_edges(),
                    k_t, k_c,
                    clustering_coefficient(T), clustering_coefficient(C),
                    probabilistic_clustering_coefficient(T),
                    probabilistic_clustering_coefficient(C),
                    probabilistic_density(T), probabilistic_density(C),
                ))
        return rows

    run_once(benchmark, sweep)

    print_header(
        "Table 3: top local truss T vs top eta-core C",
        f"{'network':<10} {'g=eta':>5} {'V_T/V_C':>12} {'E_T/E_C':>14} "
        f"{'kt/kc':>7} {'CC_T/CC_C':>12} {'PCC_T/PCC_C':>13} "
        f"{'den_T/den_C':>13}",
    )
    for r in rows:
        (name, th, vt, vc, et, ec, kt, kc,
         cct, ccc, pcct, pccc, dt, dc) = r
        print(f"{name:<10} {th:>5.1f} {f'{vt}/{vc}':>12} "
              f"{f'{et}/{ec}':>14} {f'{kt}/{kc}':>7} "
              f"{f'{cct:.3f}/{ccc:.3f}':>12} "
              f"{f'{pcct:.3f}/{pccc:.3f}':>13} "
              f"{f'{dt:.3f}/{dc:.3f}':>13}")

    for r in rows:
        (name, th, vt, vc, et, ec, kt, kc,
         cct, ccc, pcct, pccc, dt, dc) = r
        # Paper shapes: the truss is smaller than the core ...
        assert vt <= vc, f"{name}@{th}: truss larger than core"
        # ... its truss number does not exceed the core number + 1
        # (k-truss => (k-1)-core) and in the paper k_tmax < k_cmax ...
        assert kt <= kc + 1
        # ... and the truss essentially wins on probability-aware
        # cohesion. The slack covers dblp, whose synthetic communities
        # are probability-homogeneous at laptop scale, so its top core
        # is itself a near-clique and the gap the paper reports (2-4x on
        # real DBLP) narrows to near-parity here.
        assert dt >= dc * 0.85, f"{name}@{th}: density should favour T"
        assert pcct >= pccc * 0.85, f"{name}@{th}: PCC should favour T"
