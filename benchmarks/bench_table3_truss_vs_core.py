"""Table 3 — (k_tmax, gamma)-truss vs (k_cmax, eta)-core vs (3, 4)-nucleus.

The paper's Table 3 compares the top local truss T with the top
(k, eta)-core C on WikiVote, DBLP and BioMine for eta = gamma in
{0.1, 0.5}: T is far smaller than C, k_tmax < k_cmax, and T beats C on
probabilistic density and PCC (CC is comparable).

This bench extends the comparison with the top probabilistic
(3, 4)-nucleus N (Esfahani et al.'s generalization; see
docs/nucleus.md): requiring 4-clique support is strictly stronger than
requiring triangle support, so N's edges always sit inside the
(2, 3)-truss at the same level and the hierarchy C >= T >= N orders the
three notions from loosest to tightest.
"""

import pytest

from repro import (
    ProbabilisticGraph,
    clustering_coefficient,
    eta_core_decomposition,
    local_truss_decomposition,
    nucleus_decomposition,
    probabilistic_clustering_coefficient,
    probabilistic_density,
)

from benchmarks.conftest import cached_dataset, print_header, run_once

_DATASETS = ("wikivote", "dblp", "biomine")
_THRESHOLDS = (0.1, 0.5)


def _top_truss_stats(graph, gamma):
    """(k_tmax, trussness map, largest maximal truss at k_tmax).

    The paper's T is effectively one cohesive subgraph; on our
    community-structured stand-ins several disjoint maximal trusses can
    tie at k_tmax, so the comparison uses the largest of them (the union
    would conflate unrelated communities).
    """
    local = local_truss_decomposition(graph, gamma)
    k = local.k_max
    pieces = local.maximal_trusses(k) if k else []
    if not pieces:
        return k, local.trussness, graph.subgraph([])
    best = max(pieces, key=lambda t: t.number_of_edges())
    return k, local.trussness, best


def _top_core_stats(graph, eta):
    """(k_cmax, largest connected piece of the top eta-core)."""
    from repro.graphs.components import largest_connected_component

    core = eta_core_decomposition(graph, eta)
    k = max(core.values(), default=0)
    members = [u for u, c in core.items() if c >= k]
    return k, largest_connected_component(graph.subgraph(members))


def _top_nucleus_stats(graph, gamma):
    """(k_nmax, edge list and induced subgraph of the top (3, 4)-nucleus).

    The nucleus lives on triangles; its quality stats are computed on
    the subgraph its top-level triangles' edges induce, the natural
    counterpart of T and C above.
    """
    result = nucleus_decomposition(graph, 3, 4, gamma)
    k = result.k_max
    edges = result.nucleus_edges(k) if k else []
    sub = ProbabilisticGraph()
    for u, v in edges:
        sub.add_edge(u, v, graph.probability(u, v))
    return k, edges, sub


def test_table3_truss_vs_core_vs_nucleus(benchmark):
    rows = []

    def sweep():
        for name in _DATASETS:
            graph = cached_dataset(name)
            for threshold in _THRESHOLDS:
                k_t, trussness, T = _top_truss_stats(graph, threshold)
                k_c, C = _top_core_stats(graph, threshold)
                k_n, n_edges, N = _top_nucleus_stats(graph, threshold)
                rows.append((
                    name, threshold, trussness, n_edges,
                    T.number_of_nodes(), C.number_of_nodes(),
                    N.number_of_nodes(),
                    T.number_of_edges(), C.number_of_edges(),
                    N.number_of_edges(),
                    k_t, k_c, k_n,
                    clustering_coefficient(T), clustering_coefficient(C),
                    probabilistic_clustering_coefficient(T),
                    probabilistic_clustering_coefficient(C),
                    probabilistic_density(T), probabilistic_density(C),
                    probabilistic_density(N),
                ))
        return rows

    run_once(benchmark, sweep)

    print_header(
        "Table 3: top truss T vs top eta-core C vs top (3,4)-nucleus N",
        f"{'network':<10} {'g=eta':>5} {'V_T/V_C/V_N':>16} "
        f"{'E_T/E_C/E_N':>18} {'kt/kc/kn':>9} {'CC_T/CC_C':>12} "
        f"{'PCC_T/PCC_C':>13} {'den_T/den_C/den_N':>19}",
    )
    for r in rows:
        (name, th, _trussness, _n_edges, vt, vc, vn, et, ec, en,
         kt, kc, kn, cct, ccc, pcct, pccc, dt, dc, dn) = r
        print(f"{name:<10} {th:>5.1f} {f'{vt}/{vc}/{vn}':>16} "
              f"{f'{et}/{ec}/{en}':>18} {f'{kt}/{kc}/{kn}':>9} "
              f"{f'{cct:.3f}/{ccc:.3f}':>12} "
              f"{f'{pcct:.3f}/{pccc:.3f}':>13} "
              f"{f'{dt:.3f}/{dc:.3f}/{dn:.3f}':>19}")

    for r in rows:
        (name, th, trussness, n_edges, vt, vc, vn, et, ec, en,
         kt, kc, kn, cct, ccc, pcct, pccc, dt, dc, dn) = r
        # Paper shapes: the truss is smaller than the core ...
        assert vt <= vc, f"{name}@{th}: truss larger than core"
        # ... its truss number does not exceed the core number + 1
        # (k-truss => (k-1)-core) and in the paper k_tmax < k_cmax ...
        assert kt <= kc + 1
        # ... and the truss essentially wins on probability-aware
        # cohesion. The slack covers dblp, whose synthetic communities
        # are probability-homogeneous at laptop scale, so its top core
        # is itself a near-clique and the gap the paper reports (2-4x on
        # real DBLP) narrows to near-parity here.
        assert dt >= dc * 0.85, f"{name}@{th}: density should favour T"
        assert pcct >= pccc * 0.85, f"{name}@{th}: PCC should favour T"
        # Nucleus shapes (guaranteed, see docs/nucleus.md): 4-clique
        # support is stronger than triangle support, so the top nucleus
        # level cannot exceed the top truss level and every top-nucleus
        # edge has trussness >= k_n.
        assert kn <= kt, f"{name}@{th}: nucleus level above truss level"
        for e in n_edges:
            assert trussness.get(e, 0) >= kn, (
                f"{name}@{th}: nucleus edge {e} outside the k_n-truss")
