"""Extension — alternative decomposition algorithms vs the flagships.

Cross-checks and times the alternative algorithms the library ships
alongside the paper's:

* deterministic trussness: peeling vs h-index iteration;
* probabilistic local trussness: Algorithm 1 (bucket peel) vs the
  asynchronous fixpoint iteration;
* dynamic maintenance: incremental updates vs from-scratch
  recomputation over an update stream.

All three pairs must agree exactly; the timings quantify the trade.
"""

import time

import numpy as np
import pytest

from repro import local_truss_decomposition, truss_decomposition
from repro.core.local_iterative import local_truss_decomposition_iterative
from repro.truss.dynamic import DynamicLocalTruss
from repro.truss.hindex import truss_decomposition_hindex

from benchmarks.conftest import cached_dataset, print_header, run_once


def test_ext_peeling_vs_hindex(benchmark):
    rows = []

    def sweep():
        for name in ("fruitfly", "wikivote", "dblp"):
            graph = cached_dataset(name)
            t0 = time.perf_counter()
            peel = truss_decomposition(graph)
            t_peel = time.perf_counter() - t0
            t0 = time.perf_counter()
            hind = truss_decomposition_hindex(graph)
            t_hind = time.perf_counter() - t0
            assert peel == hind
            rows.append((name, t_peel, t_hind))
        return rows

    run_once(benchmark, sweep)

    print_header(
        "Extension: deterministic trussness — peeling vs h-index",
        f"{'network':<12} {'peel (s)':>9} {'h-index (s)':>12}",
    )
    for name, t_peel, t_hind in rows:
        print(f"{name:<12} {t_peel:>9.3f} {t_hind:>12.3f}")


def test_ext_algorithm1_vs_fixpoint(benchmark):
    gamma = 0.5
    rows = []

    def sweep():
        for name in ("fruitfly", "dblp"):
            graph = cached_dataset(name)
            t0 = time.perf_counter()
            peel = local_truss_decomposition(graph, gamma).trussness
            t_peel = time.perf_counter() - t0
            t0 = time.perf_counter()
            fix = local_truss_decomposition_iterative(graph, gamma)
            t_fix = time.perf_counter() - t0
            assert peel == fix
            rows.append((name, t_peel, t_fix))
        return rows

    run_once(benchmark, sweep)

    print_header(
        f"Extension: local trussness (gamma={gamma}) — Algorithm 1 vs "
        "fixpoint iteration",
        f"{'network':<12} {'Alg.1 (s)':>10} {'fixpoint (s)':>13}",
    )
    for name, t_peel, t_fix in rows:
        print(f"{name:<12} {t_peel:>10.3f} {t_fix:>13.3f}")


def test_ext_dynamic_vs_recompute(benchmark):
    k, gamma = 3, 0.5
    graph = cached_dataset("wikivote", scale=0.4)
    rng = np.random.default_rng(21)
    n_events = 40
    holder = {}

    def stream():
        tracker = DynamicLocalTruss(graph, k, gamma)
        shadow = graph.copy()
        nodes = sorted(shadow.nodes())
        t_dynamic = 0.0
        t_static = 0.0
        for _ in range(n_events):
            edges = list(shadow.edges())
            if edges and rng.random() < 0.5:
                u, v = edges[int(rng.integers(len(edges)))]
                t0 = time.perf_counter()
                tracker.remove_edge(u, v)
                t_dynamic += time.perf_counter() - t0
                shadow.remove_edge(u, v)
            else:
                u = nodes[int(rng.integers(len(nodes)))]
                v = nodes[int(rng.integers(len(nodes)))]
                if u == v:
                    continue
                p = float(rng.uniform(0.3, 1.0))
                t0 = time.perf_counter()
                tracker.insert_edge(u, v, p)
                t_dynamic += time.perf_counter() - t0
                shadow.add_edge(u, v, p)
            t0 = time.perf_counter()
            static = local_truss_decomposition(shadow, gamma)
            t_static += time.perf_counter() - t0
            static_edges = {
                e for e, tau in static.trussness.items() if tau >= k
            }
            assert tracker.truss_edges() == static_edges
        holder.update(t_dynamic=t_dynamic, t_static=t_static)
        return holder

    run_once(benchmark, stream)

    print_header(
        f"Extension: {n_events}-event update stream (wikivote@0.4, "
        f"k={k}, gamma={gamma})",
        f"{'dynamic total (s)':>18} {'recompute total (s)':>20} "
        f"{'speedup':>8}",
    )
    t_d, t_s = holder["t_dynamic"], holder["t_static"]
    print(f"{t_d:>18.3f} {t_s:>20.3f} {t_s / max(t_d, 1e-9):>8.1f}")
    # Deletions dominate the stream; incremental must beat recompute.
    assert t_d < t_s
