"""Figure 5 — local decomposition: DP update vs recompute-from-scratch.

The paper's Figure 5 plots running time against gamma in {0.1 ... 0.9}
for the dynamic-programming update (Eq. 8) and the naive baseline that
recomputes sigma(e) from scratch after every edge removal, on all eight
datasets. The expected shape: (i) runtime decreases as gamma grows,
(ii) DP beats the baseline everywhere, by roughly an order of magnitude
on the denser graphs.
"""

import time

import pytest

from repro import local_truss_decomposition

from benchmarks.conftest import (
    ALL_DATASETS,
    GAMMA_SWEEP,
    cached_dataset,
    print_header,
    run_once,
)

#: The heavy tail of Table 1 runs at reduced gamma coverage to keep the
#: baseline sweep tractable in pure Python.
_SMALL = ("fruitfly", "wikivote", "flickr", "dblp")
_LARGE = ("biomine", "livejournal", "orkut", "wise")


def _load(dataset):
    if dataset == "dense-syn":
        # The paper's order-of-magnitude DP-vs-baseline gap comes from
        # large common neighbourhoods (k_e up to hundreds on WikiVote
        # etc.); the laptop-scale stand-ins have small k_e, so this
        # extra dense instance exhibits the asymptotic shape.
        from repro.graphs.generators import gnp_graph, uniform_probabilities

        return gnp_graph(140, 0.45, seed=7,
                         probability=uniform_probabilities())
    return cached_dataset(dataset)


@pytest.mark.parametrize("dataset", ALL_DATASETS + ("dense-syn",))
def test_fig5_dp_vs_baseline(benchmark, dataset):
    graph = _load(dataset)
    gammas = GAMMA_SWEEP if dataset in _SMALL else (0.1, 0.5, 0.9)

    rows = []

    def sweep():
        for gamma in gammas:
            t0 = time.perf_counter()
            dp = local_truss_decomposition(graph, gamma, method="dp")
            t_dp = time.perf_counter() - t0
            t0 = time.perf_counter()
            base = local_truss_decomposition(graph, gamma, method="baseline")
            t_base = time.perf_counter() - t0
            assert dp.trussness == base.trussness
            rows.append((gamma, t_dp, t_base, dp.k_max))
        return rows

    run_once(benchmark, sweep)

    from benchmarks.conftest import save_rows

    save_rows("fig5_dp_vs_baseline",
              ["dataset", "gamma", "dp_seconds", "baseline_seconds", "k_max"],
              [(dataset, *row) for row in rows])
    print_header(
        f"Figure 5 ({dataset}): DP vs baseline, runtime (s) by gamma",
        f"{'gamma':>6} {'DP':>9} {'baseline':>9} {'speedup':>8} {'k_max':>6}",
    )
    for gamma, t_dp, t_base, k_max in rows:
        speedup = t_base / t_dp if t_dp > 0 else float("inf")
        print(f"{gamma:>6.1f} {t_dp:>9.3f} {t_base:>9.3f} "
              f"{speedup:>8.1f} {k_max:>6}")

    # Paper shape: DP never loses to the baseline. Below ~50 ms of total
    # baseline work (fruitfly-sized graphs) the comparison is pure
    # scheduler jitter, so it is asserted only where there is signal.
    total_dp = sum(r[1] for r in rows)
    total_base = sum(r[2] for r in rows)
    if total_base >= 0.05:
        assert total_dp <= total_base * 1.1
        # Runtime decreases as gamma rises (sweep endpoints).
        assert rows[-1][1] <= rows[0][1] * 1.5
