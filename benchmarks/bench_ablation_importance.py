"""Ablation — plain Monte-Carlo vs importance sampling across alpha scales.

The paper's estimator (Eq. 10) needs ~1/alpha samples to see anything;
its own case study runs at gamma = 1e-11. This ablation measures, at a
fixed budget of N = 1000 worlds, the relative error of plain MC and of
the tilted importance-sampling estimator on targets whose true alpha
spans five orders of magnitude. Expected shape: comparable accuracy in
the easy regime, and plain MC going blind (100% error) exactly where
importance sampling keeps working.
"""

import numpy as np
import pytest

from repro import (
    GlobalTrussOracle,
    ProbabilisticGraph,
    WorldSampleSet,
    alpha_exact,
)
from repro.core.importance import alpha_importance
from repro.graphs.generators import running_example

from benchmarks.conftest import print_header, run_once

_N = 1000
_TRIALS = 10


def _targets():
    g = running_example()
    h2 = g.subgraph(["q1", "v1", "v2", "v3"])
    h1 = g.subgraph(["q1", "q2", "v1", "v2", "v3"])
    chain4 = ProbabilisticGraph([(i, i + 1, 0.18) for i in range(4)])
    chain6 = ProbabilisticGraph([(i, i + 1, 0.1) for i in range(6)])
    return [
        ("H2 (alpha=1.25e-1)", h2, 4),
        ("H1 (alpha=1.6e-2)", h1, 4),
        ("chain4 (alpha=1e-3)", chain4, 2),
        ("chain6 (alpha=1e-6)", chain6, 2),
    ]


def _mean_rel_error(estimates, exact):
    errs = [
        abs(estimates[e] - exact[e]) / exact[e]
        for e in exact if exact[e] > 0
    ]
    return float(np.mean(errs))


def test_ablation_importance_vs_plain(benchmark):
    rows = []

    def sweep():
        for label, graph, k in _targets():
            exact = alpha_exact(graph, k)
            plain_errs, is_errs = [], []
            for trial in range(_TRIALS):
                samples = WorldSampleSet.from_graph(graph, _N,
                                                    seed=trial)
                plain = GlobalTrussOracle(samples).alpha_estimates(graph, k)
                plain_errs.append(_mean_rel_error(plain, exact))
                tilted = alpha_importance(graph, k, n_samples=_N,
                                          seed=trial, tilt_floor=0.85)
                is_errs.append(_mean_rel_error(tilted, exact))
            rows.append((label, float(np.mean(plain_errs)),
                         float(np.mean(is_errs))))
        return rows

    run_once(benchmark, sweep)

    print_header(
        f"Ablation: relative alpha error at N={_N} — plain MC vs "
        "importance sampling",
        f"{'target':<22} {'plain MC':>9} {'importance':>11}",
    )
    for label, plain_err, is_err in rows:
        print(f"{label:<22} {plain_err:>9.3f} {is_err:>11.3f}")

    # Plain MC is blind on the rarest target (error ~ 1.0)...
    assert rows[-1][1] > 0.9
    # ... where importance sampling stays accurate.
    assert rows[-1][2] < 0.3
    # In the easy regime both are fine.
    assert rows[0][1] < 0.3 and rows[0][2] < 0.3
