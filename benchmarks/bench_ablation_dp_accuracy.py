"""Ablation — numerical drift of the Eq. (8) deconvolution update.

The DP decomposition repeatedly divides by (1 - q) when removing
triangles; this ablation measures the worst-case drift of the live PMF
against a from-scratch recomputation across an entire decomposition of
WikiVote, confirming the update is numerically safe (it must be, or the
Figure 5 speedup would come at a correctness cost).
"""

import numpy as np
import pytest

from repro import SupportProbability, local_truss_decomposition

from benchmarks.conftest import cached_dataset, print_header, run_once


def test_ablation_dp_drift(benchmark):
    graph = cached_dataset("wikivote", scale=0.5)
    gammas = (0.1, 0.5, 0.9)
    rows = []

    def sweep():
        for gamma in gammas:
            dp = local_truss_decomposition(graph, gamma, method="dp")
            base = local_truss_decomposition(graph, gamma, method="baseline")
            mismatches = sum(
                1 for e in dp.trussness
                if dp.trussness[e] != base.trussness[e]
            )
            rows.append((gamma, mismatches, len(dp.trussness)))
        return rows

    run_once(benchmark, sweep)

    print_header(
        "Ablation: DP (Eq. 8) vs recompute — trussness mismatches",
        f"{'gamma':>6} {'mismatches':>11} {'edges':>7}",
    )
    for gamma, mismatches, edges in rows:
        print(f"{gamma:>6.1f} {mismatches:>11} {edges:>7}")

    # Zero drift: the incremental update must reproduce the baseline
    # trussness exactly on every edge.
    assert all(m == 0 for _, m, _ in rows)


def test_ablation_pmf_drift_microscale(benchmark):
    """Worst-case PMF drift after hundreds of random removals."""
    rng = np.random.default_rng(5)

    def measure():
        worst = 0.0
        for _ in range(50):
            qs = list(rng.uniform(0.02, 0.98, size=60))
            sp = SupportProbability(qs)
            remaining = list(qs)
            while len(remaining) > 5:
                idx = int(rng.integers(len(remaining)))
                sp.remove_triangle(remaining[idx])
                del remaining[idx]
            from repro import support_pmf

            drift = float(np.max(np.abs(
                np.array(sp.pmf) - np.array(support_pmf(remaining))
            )))
            worst = max(worst, drift)
        return worst

    worst = run_once(benchmark, measure)
    print(f"\nworst PMF drift after 55 removals x50 trials: {worst:.3e}")
    # The error-bound-triggered recompute keeps drift far below any
    # probability scale that could flip a truss level, even under
    # adversarial near-0.5 removals.
    assert worst < 1e-9
