"""Figure 8 — memory usage of Local and GBU versus graph size.

The paper's Figure 8 shows that both methods stay within ~20x the
on-disk graph size: the dominant costs are the edge support vectors
(O(rho |E|)) and, for GBU, the bit-packed sample worlds (~19 bytes per
edge at N = 150, released support vectors notwithstanding). We measure
the same quantities analytically-by-construction: actual bytes of the
support PMFs, the packed sample set, and the serialized graph.
"""

import io
import sys

import pytest

from repro import (
    SupportProbability,
    WorldSampleSet,
    write_edge_list,
)

from benchmarks.conftest import ALL_DATASETS, bench_scale, cached_dataset, print_header, run_once


def _graph_disk_bytes(graph) -> int:
    buf = io.StringIO()
    write_edge_list(graph, buf, header=False)
    return len(buf.getvalue().encode())


def _support_vector_bytes(graph) -> int:
    total = 0
    for u, v in graph.edges():
        sp = SupportProbability.from_edge(graph, u, v)
        total += sys.getsizeof(sp.pmf) + 8 * len(sp.pmf)
    return total


def test_fig8_memory_usage(benchmark):
    scale = bench_scale(0.5)
    rows = []

    def measure():
        for name in ALL_DATASETS:
            graph = cached_dataset(name, scale=scale)
            disk = _graph_disk_bytes(graph)
            support = _support_vector_bytes(graph)
            samples = WorldSampleSet.from_graph(graph, 150, seed=1)
            sample_bytes = samples.nbytes()
            rows.append((name, graph.number_of_edges(), disk, support,
                         sample_bytes))
        return rows

    run_once(benchmark, measure)

    print_header(
        "Figure 8: memory (KiB) — graph on disk vs Local (support "
        "vectors) vs GBU extra (150 packed sample worlds)",
        f"{'network':<12} {'|E|':>7} {'disk':>9} {'local':>9} "
        f"{'gbu extra':>10} {'local/disk':>11}",
    )
    for name, m, disk, support, sample_bytes in rows:
        print(f"{name:<12} {m:>7} {disk / 1024:>9.1f} "
              f"{support / 1024:>9.1f} {sample_bytes / 1024:>10.1f} "
              f"{support / disk:>11.2f}")

    for name, m, disk, support, sample_bytes in rows:
        # Paper shape: support vectors stay within ~20x the disk size...
        assert support <= disk * 20
        # ... and the packed samples are 19 bytes/edge — far below the
        # support-vector cost (the paper's observation that GBU adds
        # little memory on top of Local).
        assert sample_bytes == 19 * m
        assert sample_bytes < max(support, 1) * 2
