"""Figure 10 / Section 6.5 — task-driven team formation case study.

The paper queries the DBLP collaboration network with
(Q = {"Jeffrey D. Ullman", "Piotr Indyk"}, W = {"data", "algorithm"}):
the local truss yields a 20-node team, the global decomposition refines
it to an 8-node denser team, while the (k, eta)-core balloons to 1153
nodes. We reproduce the ordering — global truss <= local truss << core —
on the synthetic collaboration network with the keyword-overlap
probability model.
"""

import pytest

from repro.apps.team_formation import (
    generate_collaboration_network,
    team_by_eta_core,
    team_by_global_truss,
    team_by_local_truss,
)

from benchmarks.conftest import print_header, run_once

QUERY = ("Jeffrey D. Ullman", "Piotr Indyk")
KEYWORDS = ("data", "algorithm")
GAMMA = 1e-3


def test_fig10_team_formation(benchmark):
    network = generate_collaboration_network(seed=11)
    task_graph = network.task_graph(list(KEYWORDS))

    def solve():
        local = team_by_local_truss(task_graph, QUERY, GAMMA)
        global_teams = team_by_global_truss(task_graph, QUERY, GAMMA, seed=2)
        core = team_by_eta_core(task_graph, QUERY, GAMMA)
        return local, global_teams, core

    local, global_teams, core = run_once(benchmark, solve)

    print_header(
        f"Figure 10: team formation, Q={list(QUERY)}, W={list(KEYWORDS)}, "
        f"gamma=eta={GAMMA}",
        f"{'method':<14} {'k':>3} {'members':>8} {'edges':>6} "
        f"{'density':>8} {'PCC':>7} {'has Q':>6}",
    )

    def report(label, team):
        print(f"{label:<14} {team.k:>3} {team.n_members:>8} "
              f"{team.n_edges:>6} {team.density:>8.4f} {team.pcc:>7.4f} "
              f"{str(team.contains_query):>6}")

    assert local is not None, "local truss team must exist"
    report("local-truss", local)
    assert global_teams, "global refinement must produce teams"
    report("global-truss", global_teams[0])
    assert core is not None, "core team must exist"
    report("eta-core", core)

    best_global = global_teams[0]
    # Paper shape: |global| <= |local| << |core|, and density ordering
    # global >= local >= core.
    assert best_global.n_members <= local.n_members
    assert local.n_members <= core.n_members
    assert core.n_members >= local.n_members  # cores balloon
    assert best_global.density >= local.density
    assert local.density >= core.density
