"""Extension — fixed-k gamma decomposition vs repeated local decompositions.

The paper's §7 poses as future work: given k, find the maximal local
(k, gamma)-trusses for every gamma. Our `gamma_truss_decomposition`
answers all thresholds with ONE max-min peel; the naive alternative
re-runs Algorithm 1 once per distinct threshold. This bench measures
the speedup and cross-validates the two answers.
"""

import time

import pytest

from repro import gamma_truss_decomposition, local_truss_decomposition

from benchmarks.conftest import cached_dataset, print_header, run_once

_K = 4


def test_ext_gamma_decomposition(benchmark):
    graph = cached_dataset("fruitfly")
    result_holder = {}

    def run_both():
        t0 = time.perf_counter()
        gamma_result = gamma_truss_decomposition(graph, _K)
        t_single = time.perf_counter() - t0

        thresholds = gamma_result.thresholds()
        t0 = time.perf_counter()
        naive = {}
        for gamma in thresholds:
            local = local_truss_decomposition(graph, gamma)
            naive[gamma] = {
                e for e, tau in local.trussness.items() if tau >= _K
            }
        t_naive = time.perf_counter() - t0
        result_holder.update(
            gamma_result=gamma_result, naive=naive,
            t_single=t_single, t_naive=t_naive, thresholds=thresholds,
        )
        return result_holder

    run_once(benchmark, run_both)

    gamma_result = result_holder["gamma_result"]
    thresholds = result_holder["thresholds"]
    print_header(
        f"Extension (fruitfly, k={_K}): one peel vs per-threshold re-runs",
        f"{'thresholds':>10} {'one peel (s)':>13} "
        f"{'naive re-runs (s)':>18} {'speedup':>8}",
    )
    t_single = result_holder["t_single"]
    t_naive = result_holder["t_naive"]
    speedup = t_naive / t_single if t_single > 0 else float("inf")
    print(f"{len(thresholds):>10} {t_single:>13.3f} {t_naive:>18.3f} "
          f"{speedup:>8.1f}")

    # Cross-validate: the single peel reproduces every per-threshold set.
    for gamma in thresholds:
        via_gamma = {
            e for e, v in gamma_result.gamma_trussness.items()
            if v >= gamma * (1 - 1e-9)
        }
        assert via_gamma == result_holder["naive"][gamma]
    # With dozens of thresholds, one peel must win clearly.
    if len(thresholds) >= 10:
        assert speedup > 2.0
