"""Ablation — GBU seed ordering: probability-desc vs random vs asc.

Section 5.3 of the paper ranks seed edges in descending probability "as
a heuristic". This ablation quantifies the choice on FruitFly: the
descending order should find trusses at least as dense as random or
ascending orders, at comparable cost.
"""

import time

import pytest

from repro import (
    GlobalTrussOracle,
    WorldSampleSet,
    local_truss_decomposition,
    probabilistic_density,
)
from repro.core.global_decomp import global_truss_decomposition

from benchmarks.conftest import cached_dataset, print_header, run_once

_GAMMA = 0.5
_ORDERS = ("probability-desc", "probability-asc", "random")


def test_ablation_gbu_seed_order(benchmark):
    graph = cached_dataset("fruitfly")
    local = local_truss_decomposition(graph, _GAMMA)
    rows = []

    def sweep():
        from repro.core.global_decomp import bottom_up_search
        from repro.core.global_decomp import _edge_subgraphs_of_components
        from repro.graphs.probabilistic import edge_key

        samples = WorldSampleSet.from_graph(graph, 150, seed=1)
        oracle = GlobalTrussOracle(samples)
        k = 4
        candidate_edges = {
            e for e, tau in local.trussness.items() if tau >= k
        }
        components = _edge_subgraphs_of_components(graph, candidate_edges)
        for order in _ORDERS:
            t0 = time.perf_counter()
            found = []
            for piece in components:
                found.extend(
                    bottom_up_search(oracle, k, piece, _GAMMA, rng=7,
                                     seed_order=order)
                )
            elapsed = time.perf_counter() - t0
            density = (
                sum(probabilistic_density(t) for t in found) / len(found)
                if found else 0.0
            )
            rows.append((order, len(found), density, elapsed))
        return rows

    run_once(benchmark, sweep)

    print_header(
        f"Ablation (fruitfly, k=4, gamma={_GAMMA}): GBU seed ordering",
        f"{'order':<18} {'#found':>7} {'avg density':>12} {'time':>7}",
    )
    for order, n, density, elapsed in rows:
        print(f"{order:<18} {n:>7} {density:>12.4f} {elapsed:>7.2f}")

    by_order = {r[0]: r for r in rows}
    # The paper's heuristic should not lose to ascending order on density.
    if by_order["probability-desc"][1] and by_order["probability-asc"][1]:
        assert (
            by_order["probability-desc"][2]
            >= by_order["probability-asc"][2] * 0.95
        )
    # All orders find at least one satisfying truss at k = 4 here.
    assert all(r[1] >= 1 for r in rows)
