"""Shared fixtures and helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper's Section 6
(see DESIGN.md §2 for the index) and prints the corresponding rows /
series so EXPERIMENTS.md can record paper-vs-measured shapes.

Conventions
-----------
* Long-running decompositions are measured with ``benchmark.pedantic``
  (one round, one iteration) — these are macro-benchmarks, not
  micro-benchmarks.
* Dataset sizes are controlled by ``REPRO_BENCH_SCALE`` (default 0.35
  for the heavy global benches, 1.0 for local ones); set it higher for a
  longer, closer-to-paper run.
* All randomness is seeded; reruns are reproducible.
"""

from __future__ import annotations

import os
from functools import lru_cache

import pytest

from repro import load_dataset

#: Table 1 order, smallest to largest.
ALL_DATASETS = (
    "fruitfly", "wikivote", "flickr", "dblp",
    "biomine", "livejournal", "orkut", "wise",
)

#: The gamma sweep used across the paper's runtime experiments.
GAMMA_SWEEP = (0.1, 0.3, 0.5, 0.7, 0.9)

SEED = 42


def bench_scale(default: float) -> float:
    """Dataset scale for heavy benches, overridable via env."""
    return float(os.environ.get("REPRO_BENCH_SCALE", default))


#: Per-dataset scales for the GBU-heavy benches (Table 2, Figure 9),
#: chosen so the worst (gamma = 0.1) cells stay within ~1-2 minutes of
#: pure Python. The Uniform[0,1] networks are the pathological ones —
#: exactly as in the paper, whose low-gamma cells ran for tens of
#: thousands of seconds in C++ — hence their small scales; the Table 1
#: edge-count ordering is preserved.
GBU_SCALES = {
    "fruitfly": 1.0,
    "wikivote": 0.18,
    "flickr": 0.30,
    "dblp": 0.40,
    "biomine": 0.30,
    "livejournal": 0.085,
    "orkut": 0.075,
    "wise": 0.075,
}


@lru_cache(maxsize=None)
def cached_dataset(name: str, scale: float = 1.0):
    """Load (and cache) a dataset so repeated benches reuse one instance."""
    return load_dataset(name, seed=SEED, scale=scale)


def print_header(title: str, columns: str) -> None:
    print()
    print(f"=== {title} ===")
    print(columns)


def run_once(benchmark, fn, *args, **kwargs):
    """Measure ``fn`` exactly once through pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def resumable_global(graph, gamma, *, tag: str, seed: int = SEED,
                     method: str = "gbu", deadline: float | None = None,
                     **kwargs):
    """Run a global decomposition under the runtime harness, resumably.

    Checkpoints live under ``bench_results/checkpoints/<tag>`` so a
    bench killed mid-sweep (deadline, Ctrl-C, crash) continues from its
    last batch boundary on the next invocation — bit-identical to an
    uninterrupted run. A checkpoint whose run already completed is
    cleared first so every finished bench starts fresh.

    Returns the :class:`repro.runtime.PartialResult`.
    """
    from pathlib import Path

    from repro.exceptions import CheckpointError
    from repro.runtime import Budget, CheckpointStore, run_global

    ck_dir = (Path(__file__).resolve().parent.parent
              / "bench_results" / "checkpoints" / tag)
    store = CheckpointStore(ck_dir)
    if store.exists():
        try:
            finished = store.load_manifest().get("status") == "complete"
        except (CheckpointError, OSError):
            finished = True  # corrupt: clear and start over
        if finished:
            store.clear()
    budget = Budget(deadline=deadline) if deadline is not None else None
    return run_global(
        graph, gamma, method=method, seed=seed, budget=budget,
        checkpoint_dir=ck_dir, resume=store.exists(), on_corrupt="restart",
        **kwargs,
    )


def save_rows(name: str, header: list[str], rows) -> str:
    """Append a bench's data rows to ``bench_results/<name>.csv``.

    Machine-readable companion to the printed tables; returns the path.
    """
    import csv
    from pathlib import Path

    out_dir = Path(__file__).resolve().parent.parent / "bench_results"
    out_dir.mkdir(exist_ok=True)
    path = out_dir / f"{name}.csv"
    fresh = not path.exists()
    with open(path, "a", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        if fresh:
            writer.writerow(header)
        for row in rows:
            writer.writerow(list(row))
    return str(path)
