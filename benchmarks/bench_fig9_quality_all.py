"""Figure 9 — average density / PCC of Local vs GBU on all networks.

The paper's Figure 9 compares the average density and average PCC over
all maximal (k, 0.5)-trusses found by Local and by GBU on every
dataset: GBU's global trusses win on both metrics everywhere.

Deviation note: the averages here run over k >= 3. At k = 2 a *global*
truss is just a reliably-connected subgraph — no triangles required —
and on our sparse laptop-scale stand-ins those come out tree-like,
dragging GBU's PCC to ~0 and flipping the comparison; the paper's far
denser graphs do not exhibit this. From k = 3 upward (where the truss
semantics actually constrains triangles) the paper's ordering holds.
"""

import pytest

from repro import (
    global_truss_decomposition,
    local_truss_decomposition,
    probabilistic_clustering_coefficient,
    probabilistic_density,
)

from benchmarks.conftest import (
    ALL_DATASETS,
    bench_scale,
    cached_dataset,
    print_header,
    run_once,
)

_GAMMA = 0.5


def _avg(values):
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def _collect_quality(trusses):
    density = _avg(probabilistic_density(t) for t in trusses)
    eligible = [t for t in trusses if t.number_of_edges() > 1]
    pcc = _avg(probabilistic_clustering_coefficient(t) for t in eligible)
    return density, pcc, len(eligible)


def test_fig9_density_pcc_local_vs_gbu(benchmark):
    from benchmarks.conftest import GBU_SCALES

    rows = []

    def sweep():
        for name in ALL_DATASETS:
            graph = cached_dataset(
                name, scale=GBU_SCALES[name] * bench_scale(1.0)
            )
            local = local_truss_decomposition(graph, _GAMMA)
            local_trusses = [
                t for k in range(3, local.k_max + 1)
                for t in local.maximal_trusses(k)
            ]
            gbu = global_truss_decomposition(
                graph, _GAMMA, method="gbu", seed=1, local_result=local
            )
            gbu_trusses = [t for k, t in gbu.all_trusses() if k >= 3]
            d_local, p_local, n_local = _collect_quality(local_trusses)
            d_gbu, p_gbu, n_gbu = _collect_quality(gbu_trusses)
            rows.append((name, d_local, d_gbu, p_local, p_gbu,
                         n_local, n_gbu))
        return rows

    run_once(benchmark, sweep)

    from benchmarks.conftest import save_rows

    save_rows("fig9_quality",
              ["dataset", "density_local", "density_gbu",
               "pcc_local", "pcc_gbu", "n_local", "n_gbu"],
              rows)
    print_header(
        f"Figure 9 (gamma={_GAMMA}): avg density / PCC, Local vs GBU",
        f"{'network':<12} {'den local':>10} {'den GBU':>9} "
        f"{'PCC local':>10} {'PCC GBU':>9}",
    )
    for name, dl, dg, pl, pg, nl, ng in rows:
        print(f"{name:<12} {dl:>10.4f} {dg:>9.4f} {pl:>10.4f} {pg:>9.4f}")

    # Paper shape: GBU achieves higher (or equal) density and PCC than
    # Local on every network. The PCC comparison needs enough
    # multi-edge trusses on both sides to be meaningful (flickr's
    # Jaccard probabilities leave almost nothing at gamma = 0.5).
    for name, dl, dg, pl, pg, nl, ng in rows:
        assert dg >= dl * 0.95, f"{name}: GBU density below Local"
        if min(nl, ng) >= 3:
            assert pg >= pl * 0.9, f"{name}: GBU PCC below Local"
