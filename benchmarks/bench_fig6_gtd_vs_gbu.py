"""Figure 6 — GTD vs GBU running time on FruitFly.

The paper's Figure 6 compares the exact top-down search (GTD) with the
bottom-up heuristic (GBU) on FruitFly for gamma in {0.5 ... 0.9}: GTD
cannot finish in reasonable time for gamma <= 0.6, and is orders of
magnitude slower than GBU where it does finish. We reproduce the shape
with a GTD state budget standing in for "did not finish".
"""

import time

import pytest

from repro import DecompositionError, global_truss_decomposition

from benchmarks.conftest import cached_dataset, print_header, run_once

#: The paper's Figure 6 sweeps gamma from 0.5 to 0.9.
_GAMMAS = (0.5, 0.6, 0.7, 0.8, 0.9)

#: GTD explored-state budget per component; exceeding it is reported as
#: "DNF", mirroring the paper's timeout on FruitFly for small gamma.
_GTD_BUDGET = 60_000


def test_fig6_gtd_vs_gbu(benchmark):
    graph = cached_dataset("fruitfly")
    rows = []

    def sweep():
        for gamma in _GAMMAS:
            t0 = time.perf_counter()
            try:
                gtd = global_truss_decomposition(
                    graph, gamma, method="gtd", seed=1,
                    max_states=_GTD_BUDGET,
                )
                t_gtd = time.perf_counter() - t0
                gtd_kmax = gtd.k_max
            except DecompositionError:
                t_gtd = float("inf")
                gtd_kmax = None
            t0 = time.perf_counter()
            gbu = global_truss_decomposition(
                graph, gamma, method="gbu", seed=1
            )
            t_gbu = time.perf_counter() - t0
            rows.append((gamma, t_gtd, t_gbu, gtd_kmax, gbu.k_max))
        return rows

    run_once(benchmark, sweep)

    from benchmarks.conftest import save_rows

    save_rows("fig6_gtd_vs_gbu",
              ["gamma", "gtd_seconds", "gbu_seconds",
               "gtd_kmax", "gbu_kmax"], rows)
    print_header(
        "Figure 6 (fruitfly): GTD vs GBU runtime (s) by gamma",
        f"{'gamma':>6} {'GTD':>10} {'GBU':>8} {'k_max GTD':>10} {'k_max GBU':>10}",
    )
    for gamma, t_gtd, t_gbu, k_gtd, k_gbu in rows:
        gtd_s = "DNF" if t_gtd == float("inf") else f"{t_gtd:.2f}"
        print(f"{gamma:>6.1f} {gtd_s:>10} {t_gbu:>8.2f} "
              f"{str(k_gtd):>10} {k_gbu:>10}")

    # Paper shape: GBU always finishes, at every gamma.
    assert all(r[2] < float("inf") for r in rows)
    # GTD must finish for the largest gamma ...
    assert rows[-1][1] < float("inf")
    # ... and the hard (small-gamma) end must show GTD's blowup: either a
    # DNF or a time at least as large as GBU's (the paper reports DNFs at
    # gamma <= 0.6 and orders-of-magnitude gaps at 0.7).
    hard = rows[0]
    assert hard[1] == float("inf") or hard[1] >= hard[2]
    # GTD's cost is non-increasing as gamma grows (DNF = infinite).
    gtd_times = [r[1] for r in rows]
    assert gtd_times[0] >= gtd_times[-1]
