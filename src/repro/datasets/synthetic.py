"""Generators for the eight scaled-down evaluation networks.

Each ``make_*`` function returns a seeded :class:`ProbabilisticGraph`
whose topology and probability model mirror the corresponding real
network of Table 1 at laptop scale (see DESIGN.md §3). Relative sizes
follow the paper's ordering: fruitfly is the smallest and the only one
where exhaustive global search (GTD) is feasible; wise is the largest.

All generators accept ``scale`` — a multiplier on the node budget — so
benches can grow or shrink every dataset coherently.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError
from repro.graphs.generators import (
    barabasi_albert_graph,
    beta_probabilities,
    complete_graph,
    duplication_divergence_graph,
    gnp_graph,
    powerlaw_cluster_graph,
)
from repro.graphs.probabilistic import ProbabilisticGraph
from repro.datasets.probability_models import (
    assign_exponential_collaboration,
    assign_jaccard,
    assign_uniform,
)

__all__ = [
    "make_fruitfly",
    "make_wikivote",
    "make_flickr",
    "make_dblp",
    "make_biomine",
    "make_livejournal",
    "make_orkut",
    "make_wise",
]


def _rng(seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _scaled(base: int, scale: float, minimum: int = 4) -> int:
    if scale <= 0:
        raise ParameterError(f"scale must be positive, got {scale}")
    return max(minimum, int(round(base * scale)))


def _embed_dense_pockets(
    graph: ProbabilisticGraph,
    rng: np.random.Generator,
    count: int,
    size_range: tuple[int, int],
    density: float = 0.85,
) -> ProbabilisticGraph:
    """Overlay ``count`` dense near-cliques on randomly chosen nodes.

    Real social networks contain tightly-knit groups much denser than a
    preferential-attachment backbone produces; these pockets are what
    gives the paper's datasets truss numbers of 5-8 rather than 3-4. New
    edges get probability 1.0 placeholders (the caller's probability
    model reassigns every edge afterwards).
    """
    nodes = sorted(graph.nodes())
    # Pockets shrink with the graph so reduced-scale benches keep a sane
    # pocket-to-graph ratio instead of one blob swallowing everything.
    cap = max(6, len(nodes) // 6)
    for _ in range(count):
        size = min(int(rng.integers(size_range[0], size_range[1] + 1)), cap)
        members = rng.choice(len(nodes), size=min(size, len(nodes)),
                             replace=False)
        members = [nodes[i] for i in members]
        for i, u in enumerate(members):
            for v in members[:i]:
                if not graph.has_edge(u, v) and rng.random() < density:
                    graph.add_edge(u, v, 1.0)
    return graph


def _relabel_offset(graph: ProbabilisticGraph, offset: int,
                    into: ProbabilisticGraph) -> int:
    """Copy ``graph`` into ``into`` with integer labels shifted by ``offset``.

    Returns the next free label. Assumes integer-labelled input.
    """
    mapping = {u: offset + i for i, u in enumerate(sorted(graph.nodes()))}
    for u in graph.nodes():
        into.add_node(mapping[u])
    for u, v, p in graph.edges_with_probabilities():
        into.add_edge(mapping[u], mapping[v], p)
    return offset + len(mapping)


def make_fruitfly(seed=None, scale: float = 1.0) -> ProbabilisticGraph:
    """PPI-like network: sparse, fragmented, confidence probabilities.

    A soup of small protein-complex motifs (triangles, K4/K5 cliques,
    short paths) plus a few duplication–divergence modules — reproducing
    FruitFly's signature in Table 1: average degree ~2 and hundreds of
    connected components. This is the one dataset where GTD is feasible,
    as in the paper.
    """
    rng = _rng(seed)
    beta = beta_probabilities(3.0, 2.0)
    graph = ProbabilisticGraph()
    offset = 0
    n_triangles = _scaled(40, scale)
    n_k4 = _scaled(16, scale)
    n_k5 = _scaled(6, scale)
    n_paths = _scaled(30, scale)
    n_modules = _scaled(8, scale)
    for _ in range(n_triangles):
        offset = _relabel_offset(
            complete_graph(3, 1.0), offset, graph
        )
    for _ in range(n_k4):
        offset = _relabel_offset(complete_graph(4, 1.0), offset, graph)
    for _ in range(n_k5):
        offset = _relabel_offset(complete_graph(5, 1.0), offset, graph)
    for _ in range(n_paths):
        length = int(rng.integers(3, 7))
        path = ProbabilisticGraph()
        for i in range(length - 1):
            path.add_edge(i, i + 1, 1.0)
        offset = _relabel_offset(path, offset, graph)
    for _ in range(n_modules):
        size = int(rng.integers(8, 16))
        module = duplication_divergence_graph(size, retention=0.4, seed=rng)
        offset = _relabel_offset(module, offset, graph)
    # Assign confidence probabilities to every edge.
    for u, v in list(graph.edges()):
        graph.set_probability(u, v, beta(rng))
    # A few high-confidence protein complexes (experimentally validated
    # cores): near-certain cliques, the source of the k = 5 trusses that
    # Figure 7 finds on FruitFly at gamma = 0.7.
    for size in (5, 5, 6):
        offset = _relabel_offset(complete_graph(size, 1.0), offset, graph)
        members = list(range(offset - size, offset))
        for i, u in enumerate(members):
            for v in members[:i]:
                graph.set_probability(u, v, float(rng.uniform(0.93, 1.0)))
    return graph


def make_wikivote(seed=None, scale: float = 1.0) -> ProbabilisticGraph:
    """Dense vote network: power-law-cluster topology, Uniform[0,1] probs."""
    rng = _rng(seed)
    g = powerlaw_cluster_graph(_scaled(350, scale, minimum=16), 7, 0.5, seed=rng)
    _embed_dense_pockets(g, rng, count=3, size_range=(18, 24))
    return assign_uniform(g, seed=rng)


def make_flickr(seed=None, scale: float = 1.0) -> ProbabilisticGraph:
    """Photo-sharing community: clustered power-law graph, Jaccard probs."""
    rng = _rng(seed)
    g = powerlaw_cluster_graph(_scaled(500, scale, minimum=16), 5, 0.5, seed=rng)
    _embed_dense_pockets(g, rng, count=2, size_range=(14, 18))
    return assign_jaccard(g)


def make_dblp(seed=None, scale: float = 1.0) -> ProbabilisticGraph:
    """Co-authorship network: dense communities, exponential-collab probs.

    Research groups appear as near-cliques; a fraction of groups link to
    a backbone, the rest stay separate components (DBLP's tens of
    thousands of components in Table 1, scaled down).
    """
    rng = _rng(seed)
    n_communities = _scaled(110, scale)
    graph = ProbabilisticGraph()
    offset = 0
    anchors: list[int] = []
    for i in range(n_communities):
        size = int(rng.integers(4, 12))
        community = gnp_graph(size, 0.8, seed=rng, probability=1.0)
        start = offset
        offset = _relabel_offset(community, offset, graph)
        # 60% of communities join the giant collaboration backbone.
        if rng.random() < 0.6:
            anchors.append(start)
    for i in range(1, len(anchors)):
        j = int(rng.integers(i))
        graph.add_edge(anchors[i], anchors[j], 1.0)
        # A second cross-link sometimes closes triangles between groups.
        if rng.random() < 0.4 and anchors[i] + 1 in graph:
            graph.add_edge(anchors[i] + 1, anchors[j], 1.0)
    return assign_exponential_collaboration(graph, mu=2.0, seed=rng)


def make_biomine(seed=None, scale: float = 1.0) -> ProbabilisticGraph:
    """Biological-interaction network: heavy-tailed hub structure,
    confidence probabilities, plus small peripheral components."""
    rng = _rng(seed)
    beta = beta_probabilities(1.5, 2.5)
    core = barabasi_albert_graph(
        _scaled(900, scale, minimum=16), 4, seed=rng, probability=beta
    )
    graph = ProbabilisticGraph()
    offset = _relabel_offset(core, 0, graph)
    for _ in range(_scaled(40, scale)):
        size = int(rng.integers(3, 7))
        motif = gnp_graph(size, 0.7, seed=rng, probability=1.0)
        offset = _relabel_offset(motif, offset, graph)
    for u, v in list(graph.edges()):
        if graph.probability(u, v) == 1.0:
            graph.set_probability(u, v, beta(rng))
    return graph


def make_livejournal(seed=None, scale: float = 1.0) -> ProbabilisticGraph:
    """Blogging social network: large clustered power-law, Uniform[0,1]."""
    rng = _rng(seed)
    g = powerlaw_cluster_graph(_scaled(1200, scale, minimum=16), 6, 0.3, seed=rng)
    _embed_dense_pockets(g, rng, count=3, size_range=(16, 22))
    return assign_uniform(g, seed=rng)


def make_orkut(seed=None, scale: float = 1.0) -> ProbabilisticGraph:
    """Densest social network; single connected component, Uniform[0,1]."""
    rng = _rng(seed)
    g = powerlaw_cluster_graph(_scaled(1400, scale, minimum=16), 8, 0.4, seed=rng)
    _embed_dense_pockets(g, rng, count=4, size_range=(18, 26))
    return assign_uniform(g, seed=rng)


def make_wise(seed=None, scale: float = 1.0) -> ProbabilisticGraph:
    """Micro-blogging network: the largest graph, sparse, Uniform[0,1]."""
    rng = _rng(seed)
    g = powerlaw_cluster_graph(_scaled(1800, scale, minimum=16), 5, 0.2, seed=rng)
    _embed_dense_pockets(g, rng, count=2, size_range=(14, 20))
    return assign_uniform(g, seed=rng)
