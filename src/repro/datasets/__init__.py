"""Synthetic stand-ins for the paper's eight evaluation networks.

The paper evaluates on FruitFly, WikiVote, Flickr, DBLP, BioMine,
LiveJournal, Orkut and Wise (Table 1) — up to 261 M edges, none bundled
here. :mod:`repro.datasets` provides seeded generators reproducing each
network's *qualitative* character at laptop scale, with the same
probability models the paper describes (Jaccard for Flickr, exponential
collaboration counts for DBLP, confidences for the biological networks,
Uniform[0, 1] for the four social networks). See DESIGN.md §3 for the
substitution rationale.
"""

from repro.datasets.registry import (
    DATASET_NAMES,
    DatasetSpec,
    dataset_spec,
    load_dataset,
    dataset_statistics,
)
from repro.datasets import probability_models, synthetic

__all__ = [
    "DATASET_NAMES",
    "DatasetSpec",
    "dataset_spec",
    "load_dataset",
    "dataset_statistics",
    "probability_models",
    "synthetic",
]
