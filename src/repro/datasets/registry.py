"""Dataset registry: the Table 1 networks by name.

``load_dataset(name, seed=..., scale=...)`` returns the seeded synthetic
stand-in; ``dataset_statistics`` computes the Table 1 columns (|V|, |E|,
d_max, largest component size, number of components) for any graph.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.exceptions import DatasetError
from repro.graphs.components import connected_components
from repro.graphs.probabilistic import ProbabilisticGraph
from repro.datasets import synthetic

__all__ = [
    "DatasetSpec",
    "DATASET_NAMES",
    "dataset_spec",
    "load_dataset",
    "dataset_statistics",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry for one evaluation network.

    Attributes
    ----------
    name:
        Canonical lower-case name.
    maker:
        Generator ``maker(seed=..., scale=...) -> ProbabilisticGraph``.
    description:
        One-line provenance note.
    probability_model:
        Short tag for the edge-probability model (Table 1 context).
    paper_nodes, paper_edges:
        The real network's size in the paper, for the record.
    """

    name: str
    maker: Callable[..., ProbabilisticGraph]
    description: str
    probability_model: str
    paper_nodes: int
    paper_edges: int


_REGISTRY: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            "fruitfly", synthetic.make_fruitfly,
            "protein-protein interaction network (BioGRID + STRING)",
            "beta confidence", 3751, 3692,
        ),
        DatasetSpec(
            "wikivote", synthetic.make_wikivote,
            "Wikipedia adminship vote network (SNAP)",
            "uniform [0,1]", 7118, 103689,
        ),
        DatasetSpec(
            "flickr", synthetic.make_flickr,
            "photo-sharing community; Jaccard of interest groups",
            "jaccard", 24125, 300836,
        ),
        DatasetSpec(
            "dblp", synthetic.make_dblp,
            "co-authorship network; exponential in collaboration count",
            "1 - exp(-c/mu)", 684911, 2284991,
        ),
        DatasetSpec(
            "biomine", synthetic.make_biomine,
            "biological interaction database snapshot (BioMine)",
            "beta confidence", 1008200, 6742939,
        ),
        DatasetSpec(
            "livejournal", synthetic.make_livejournal,
            "blogging social network (SNAP)",
            "uniform [0,1]", 4847571, 42851237,
        ),
        DatasetSpec(
            "orkut", synthetic.make_orkut,
            "social network, single giant component (SNAP)",
            "uniform [0,1]", 3072441, 117185083,
        ),
        DatasetSpec(
            "wise", synthetic.make_wise,
            "micro-blogging network (WISE 2012 challenge)",
            "uniform [0,1]", 58655849, 261321033,
        ),
    ]
}

#: Registry names in the paper's Table 1 order (smallest to largest).
DATASET_NAMES: tuple[str, ...] = tuple(_REGISTRY)


def dataset_spec(name: str) -> DatasetSpec:
    """Return the registry entry for ``name`` (case-insensitive)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(DATASET_NAMES)}"
        ) from None


def load_dataset(name: str, seed=None, scale: float = 1.0) -> ProbabilisticGraph:
    """Generate the named synthetic network.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES`.
    seed:
        RNG seed; a fixed seed reproduces the graph exactly.
    scale:
        Node-budget multiplier (1.0 = default laptop-scale size).
    """
    return dataset_spec(name).maker(seed=seed, scale=scale)


def export_datasets(directory, seed=42, scale: float = 1.0,
                    compress: bool = False) -> list[str]:
    """Materialise every registry dataset as an edge-list file.

    Writes ``<directory>/<name>.txt`` (or ``.txt.gz`` with
    ``compress``) for each of the eight networks and returns the paths —
    handy for feeding the stand-ins to external tools.
    """
    from pathlib import Path

    from repro.graphs.io import write_edge_list

    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    suffix = ".txt.gz" if compress else ".txt"
    paths: list[str] = []
    for name in DATASET_NAMES:
        graph = load_dataset(name, seed=seed, scale=scale)
        path = out_dir / f"{name}{suffix}"
        write_edge_list(graph, path)
        paths.append(str(path))
    return paths


def dataset_statistics(graph: ProbabilisticGraph) -> dict[str, int]:
    """Return the Table 1 columns for ``graph``.

    Keys: ``nodes``, ``edges``, ``max_degree``, ``largest_cc_nodes``,
    ``largest_cc_edges``, ``components``.
    """
    largest: set = set()
    n_components = 0
    for component in connected_components(graph):
        n_components += 1
        if len(component) > len(largest):
            largest = component
    sub = graph.subgraph(largest)
    return {
        "nodes": graph.number_of_nodes(),
        "edges": graph.number_of_edges(),
        "max_degree": graph.max_degree(),
        "largest_cc_nodes": sub.number_of_nodes(),
        "largest_cc_edges": sub.number_of_edges(),
        "components": n_components,
    }
