"""Edge-probability models used by the paper's datasets (Section 6.1).

* :func:`assign_jaccard` — Flickr: probability of an edge is the Jaccard
  coefficient of the endpoints' (closed) neighbourhoods. The paper uses
  Jaccard over interest groups; closed structural neighbourhoods are the
  standard proxy (and guarantee p > 0 for existing edges).
* :func:`assign_exponential_collaboration` — DBLP: an edge with ``c``
  collaborations gets ``p = 1 - exp(-c / mu)``.
* :func:`assign_uniform` — WikiVote/LiveJournal/Orkut/Wise: probabilities
  uniform in [0, 1].
* :func:`assign_confidence` — FruitFly/BioMine: Beta-shaped experimental
  confidences.

All assigners mutate the given graph in place and return it, and are
deterministic under a fixed seed.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ParameterError
from repro.graphs.probabilistic import ProbabilisticGraph

__all__ = [
    "assign_jaccard",
    "assign_exponential_collaboration",
    "assign_uniform",
    "assign_confidence",
]


def _rng(seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def assign_jaccard(graph: ProbabilisticGraph) -> ProbabilisticGraph:
    """Set ``p(u, v)`` to the Jaccard coefficient of closed neighbourhoods.

    ``p = |N[u] ∩ N[v]| / |N[u] ∪ N[v]|`` with ``N[x] = N(x) ∪ {x}``;
    both endpoints belong to the intersection whenever the edge exists,
    so probabilities are strictly positive.
    """
    closed = {u: set(graph.neighbors(u)) | {u} for u in graph.nodes()}
    for u, v in list(graph.edges()):
        inter = len(closed[u] & closed[v])
        union = len(closed[u] | closed[v])
        graph.set_probability(u, v, inter / union)
    return graph


def assign_exponential_collaboration(
    graph: ProbabilisticGraph,
    mu: float = 2.0,
    mean_collaborations: float = 2.0,
    seed=None,
) -> ProbabilisticGraph:
    """Set ``p(u, v) = 1 - exp(-c / mu)`` with geometric collaboration counts.

    ``c >= 1`` is drawn geometrically with the given mean — co-author
    pairs mostly share one or two papers, with a heavy tail — mirroring
    the DBLP model of Potamias et al. / Bonchi et al. that the paper
    adopts.
    """
    if mu <= 0:
        raise ParameterError(f"mu must be positive, got {mu}")
    if mean_collaborations < 1:
        raise ParameterError(
            f"mean_collaborations must be >= 1, got {mean_collaborations}"
        )
    rng = _rng(seed)
    success = 1.0 / mean_collaborations
    for u, v in list(graph.edges()):
        c = int(rng.geometric(success))
        graph.set_probability(u, v, 1.0 - math.exp(-c / mu))
    return graph


def assign_uniform(graph: ProbabilisticGraph, low: float = 0.0,
                   high: float = 1.0, seed=None) -> ProbabilisticGraph:
    """Set probabilities uniformly at random in [low, high]."""
    if not 0.0 <= low <= high <= 1.0:
        raise ParameterError(f"need 0 <= low <= high <= 1, got [{low}, {high}]")
    rng = _rng(seed)
    for u, v in list(graph.edges()):
        graph.set_probability(u, v, float(rng.uniform(low, high)))
    return graph


def assign_confidence(graph: ProbabilisticGraph, a: float = 2.0,
                      b: float = 2.0, seed=None) -> ProbabilisticGraph:
    """Set Beta(a, b)-distributed confidence probabilities."""
    if a <= 0 or b <= 0:
        raise ParameterError(f"Beta parameters must be positive, got a={a}, b={b}")
    rng = _rng(seed)
    for u, v in list(graph.edges()):
        graph.set_probability(u, v, float(rng.beta(a, b)))
    return graph
