"""Possible-world sampling (Section 5.1 of the paper).

The global decomposition estimates the #P-hard quantity ``alpha_k(H, e)``
by Monte-Carlo sampling. Theorem 3 lets us sample ``N`` possible worlds of
the *whole* graph once and re-use their projections ``G_i ↓ H`` for every
candidate subgraph ``H`` considered during the decomposition; the number
of samples needed for an (epsilon, delta) guarantee comes from Hoeffding's
inequality: ``N >= ln(2/delta) / (2 epsilon^2)``.

:class:`WorldSampleSet` stores the samples bit-packed, one bit per
(edge, sample) pair — the layout the paper reports as 192 bits per edge
for N = 150 samples.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Iterable, Iterator
from pathlib import Path

import numpy as np

from repro.exceptions import EdgeNotFoundError, ParameterError
from repro.graphs.probabilistic import ProbabilisticGraph, edge_key

__all__ = [
    "hoeffding_sample_size",
    "hoeffding_epsilon",
    "sample_possible_world",
    "sample_possible_worlds",
    "SampleBatcher",
    "WorldSampleSet",
]

Node = Hashable
Edge = tuple[Node, Node]


def hoeffding_sample_size(epsilon: float, delta: float) -> int:
    """Return the smallest ``N`` with ``N >= ln(2/delta) / (2 epsilon^2)``.

    This is the sample count guaranteeing, via Hoeffding's inequality
    (Proposition 1), that the Monte-Carlo estimate of any alpha_k(H, e)
    deviates from the truth by more than ``epsilon`` with probability at
    most ``delta``.
    """
    if not 0.0 < epsilon <= 1.0:
        raise ParameterError(f"epsilon must be in (0, 1], got {epsilon}")
    if not 0.0 < delta <= 1.0:
        raise ParameterError(f"delta must be in (0, 1], got {delta}")
    return math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon))


def hoeffding_epsilon(n_samples: int, delta: float) -> float:
    """Invert the Hoeffding bound: the epsilon that ``N`` samples buy.

    ``epsilon = sqrt(ln(2/delta) / (2 N))`` — this is how a run cut
    short after ``N' < N`` samples reports its honestly widened accuracy
    instead of pretending to the requested one.
    """
    if n_samples <= 0:
        raise ParameterError(f"n_samples must be positive, got {n_samples}")
    if not 0.0 < delta <= 1.0:
        raise ParameterError(f"delta must be in (0, 1], got {delta}")
    return math.sqrt(math.log(2.0 / delta) / (2.0 * n_samples))


def sample_possible_world(
    graph: ProbabilisticGraph, rng: np.random.Generator
) -> set[Edge]:
    """Sample one possible world; return the set of edges present in it."""
    present: set[Edge] = set()
    for u, v, p in graph.edges_with_probabilities():
        if rng.random() < p:
            present.add((u, v))
    return present


def sample_possible_worlds(
    graph: ProbabilisticGraph,
    n_samples: int,
    seed: int | np.random.Generator | None = None,
) -> "WorldSampleSet":
    """Sample ``n_samples`` independent possible worlds of ``graph``.

    Convenience wrapper around :meth:`WorldSampleSet.from_graph`.
    """
    return WorldSampleSet.from_graph(graph, n_samples, seed=seed)


class _PackedBatch:
    """One retained batch, bit-packed along the edge axis (8x RAM cut).

    Stands in for the boolean batch array inside
    :class:`SampleBatcher`: it keeps the original ``shape`` so row
    accounting is unchanged, and :meth:`unpack` restores the exact
    boolean matrix (``packbits``/``unpackbits`` round-trip bit-exactly).
    """

    __slots__ = ("_packed", "shape")

    def __init__(self, presence: np.ndarray):
        self.shape = presence.shape
        if presence.size:
            self._packed = np.packbits(presence, axis=1)
        else:
            self._packed = np.zeros((presence.shape[0], 0), dtype=np.uint8)

    def unpack(self) -> np.ndarray:
        rows, cols = self.shape
        if cols:
            # repro: allow[PAR004] one batch_size-bounded batch (axis=1), not a projection
            return np.unpackbits(self._packed, axis=1, count=cols).astype(bool)
        return np.zeros((rows, 0), dtype=bool)


class SampleBatcher:
    """Incremental, checkpointable possible-world sampler.

    Draws the ``n_samples x m`` presence matrix in row batches. Because
    numpy's ``Generator.random`` fills arrays from one sequential
    stream, drawing in batches is *bit-identical* to a single-shot draw
    with the same seed — the property the checkpoint/resume machinery
    relies on: a run killed between batches resumes from the serialised
    RNG state (:meth:`rng_state`/:meth:`set_rng_state`) and produces the
    same worlds as an uninterrupted run.
    """

    def __init__(
        self,
        graph: ProbabilisticGraph,
        n_samples: int,
        batch_size: int,
        seed: int | np.random.Generator | None = None,
    ):
        if n_samples <= 0:
            raise ParameterError(f"n_samples must be positive, got {n_samples}")
        if batch_size <= 0:
            raise ParameterError(f"batch_size must be positive, got {batch_size}")
        self._rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        self._edges: list[Edge] = []
        probs: list[float] = []
        for u, v, p in graph.edges_with_probabilities():
            self._edges.append((u, v))
            probs.append(p)
        self._probs = np.asarray(probs)
        self.n_samples = n_samples
        self.batch_size = batch_size
        self._batches: list[np.ndarray] = []

    @property
    def edges(self) -> list[Edge]:
        """Column order of the presence matrices (copy)."""
        return list(self._edges)

    @property
    def n_batches(self) -> int:
        """Total number of batches a full draw takes."""
        return -(-self.n_samples // self.batch_size)

    @property
    def batches_drawn(self) -> int:
        return len(self._batches)

    @property
    def samples_drawn(self) -> int:
        return sum(b.shape[0] for b in self._batches)

    def batch_rows(self, index: int) -> int:
        """Row count of batch ``index`` (the last one may be short)."""
        if not 0 <= index < self.n_batches:
            raise ParameterError(
                f"batch index {index} out of range [0, {self.n_batches})"
            )
        return min(self.batch_size, self.n_samples - index * self.batch_size)

    def rng_state(self) -> dict:
        """JSON-serialisable RNG state (valid between batches)."""
        return self._rng.bit_generator.state

    def set_rng_state(self, state: dict) -> None:
        """Restore an RNG state captured by :meth:`rng_state`."""
        self._rng.bit_generator.state = state

    def load_batch(self, presence: np.ndarray) -> None:
        """Append a previously drawn batch (checkpoint resume path)."""
        presence = np.asarray(presence, dtype=bool)
        if self.batches_drawn >= self.n_batches:
            # Without this check the batch_rows() call below would fail
            # with a misleading "index out of range" — the real problem
            # is a checkpoint holding more batches than the run needs
            # (oversized, corrupt, or from different parameters).
            raise ParameterError(
                f"all {self.n_batches} batches have already been drawn; "
                "cannot load another resumed batch (the checkpoint holds "
                "more sample batches than this run's parameters allow)"
            )
        expected = (self.batch_rows(self.batches_drawn), len(self._edges))
        if presence.shape != expected:
            raise ParameterError(
                f"resumed batch has shape {presence.shape}, expected {expected}"
            )
        self._batches.append(presence)

    def draw_presence(self, rows: int) -> np.ndarray:
        """Draw ``rows`` worlds from the RNG stream without retaining them.

        Streaming consumers (e.g. reliability estimation) classify each
        batch and discard it; this keeps the draw order — hence the
        bit-exact RNG stream — identical to :meth:`draw_next`.
        """
        if self._edges:
            return self._rng.random((rows, len(self._edges))) < self._probs
        return np.zeros((rows, 0), dtype=bool)

    def draw_next(self) -> np.ndarray:
        """Draw and retain the next batch; returns its presence matrix."""
        if self.batches_drawn >= self.n_batches:
            raise ParameterError("all batches have already been drawn")
        presence = self.draw_presence(self.batch_rows(self.batches_drawn))
        self._batches.append(presence)
        return presence

    def compact(self) -> int:
        """Bit-pack the retained batches in place; returns bytes freed.

        This is the first, cheap response to memory pressure: the
        ``n x m`` boolean batches shrink 8x without touching the RNG
        stream or the assembled result — ``packbits``/``unpackbits``
        round-trip bit-exactly, so :meth:`result` is unchanged.
        Idempotent; newly drawn batches stay unpacked until the next
        call.
        """
        freed = 0
        for i, batch in enumerate(self._batches):
            if isinstance(batch, _PackedBatch):
                continue
            packed = _PackedBatch(batch)
            freed += int(batch.nbytes) - int(packed._packed.nbytes)
            self._batches[i] = packed
        return freed

    def result(self, partial_ok: bool = False) -> "WorldSampleSet":
        """Assemble the drawn batches into a :class:`WorldSampleSet`.

        With ``partial_ok`` a prefix of the batches suffices (the
        graceful-degradation path); otherwise all batches are required.
        """
        if not partial_ok and self.batches_drawn < self.n_batches:
            raise ParameterError(
                f"only {self.batches_drawn} of {self.n_batches} batches drawn"
            )
        if not self._batches:
            raise ParameterError("no sample batches drawn yet")
        batches = [
            b.unpack() if isinstance(b, _PackedBatch) else b
            for b in self._batches
        ]
        presence = (
            batches[0]
            if len(batches) == 1
            else np.concatenate(batches, axis=0)
        )
        return WorldSampleSet(presence, self._edges)


class WorldSampleSet:
    """``N`` independent possible worlds of a probabilistic graph, bit-packed.

    The presence bits form an ``N x m`` boolean matrix (``m`` = number of
    edges), stored packed as ``uint8``. Column order is fixed at creation
    time and exposed through :attr:`edge_index`, so the same sample set
    can be projected onto any subgraph by column selection — the
    projection strategy justified by Theorem 3.
    """

    __slots__ = ("_packed", "_n_samples", "_edge_index", "_edges",
                 "_spill_path")

    def __init__(self, presence: np.ndarray, edges: list[Edge]):
        presence = np.asarray(presence, dtype=bool)
        if presence.ndim != 2 or presence.shape[1] != len(edges):
            raise ParameterError(
                "presence must be an (n_samples, n_edges) boolean matrix"
            )
        if presence.shape[0] < 1:
            # An empty sample set would make every downstream frequency
            # (c / n_samples) a division by zero.
            raise ParameterError(
                "a WorldSampleSet needs at least one sampled world, got "
                f"a ({presence.shape[0]}, {presence.shape[1]}) presence matrix"
            )
        self._n_samples = presence.shape[0]
        self._edges = list(edges)
        self._edge_index = {e: i for i, e in enumerate(self._edges)}
        if len(self._edge_index) != len(self._edges):
            raise ParameterError("duplicate edges in sample-set column order")
        # Pack along the sample axis: one column of bits per edge.
        self._packed = np.packbits(presence, axis=0)
        self._spill_path = None

    @classmethod
    def from_packed(
        cls, packed: np.ndarray, n_samples: int, edges: list[Edge]
    ) -> "WorldSampleSet":
        """Wrap an already bit-packed ``(ceil(N/8), m)`` matrix, zero-copy.

        ``packed`` must be laid out exactly as :attr:`packed_bits`
        produces it (bits packed along the sample axis). The array is
        *not* copied — this is how worker processes view a sample set
        published in shared memory without duplicating it.
        """
        if n_samples < 1:
            raise ParameterError(
                f"a WorldSampleSet needs at least one sampled world, "
                f"got n_samples={n_samples}"
            )
        packed = np.asarray(packed, dtype=np.uint8)
        expected = (-(-n_samples // 8), len(edges))
        if packed.ndim != 2 or packed.shape != expected:
            raise ParameterError(
                f"packed presence bits have shape {packed.shape}, "
                f"expected {expected} for {n_samples} samples over "
                f"{len(edges)} edges"
            )
        obj = cls.__new__(cls)
        obj._n_samples = int(n_samples)
        obj._edges = list(edges)
        obj._edge_index = {e: i for i, e in enumerate(obj._edges)}
        if len(obj._edge_index) != len(obj._edges):
            raise ParameterError("duplicate edges in sample-set column order")
        obj._packed = packed
        obj._spill_path = None
        return obj

    @property
    def packed_bits(self) -> np.ndarray:
        """The raw ``(ceil(N/8), m)`` bit-packed presence matrix (no copy).

        One column of packed bits per edge, samples along axis 0 — the
        layout :meth:`from_packed` accepts back. Treat as read-only.
        """
        return self._packed

    # -- spill-to-disk backend -----------------------------------------
    @property
    def is_spilled(self) -> bool:
        """True iff the packed bits live in a file-backed memmap."""
        return self._spill_path is not None

    @property
    def spill_path(self) -> Path | None:
        """The memmap file backing the packed bits, or None (RAM)."""
        return self._spill_path

    def spill_to(self, path) -> Path | None:
        """Move the packed bits into a read-only ``np.memmap`` at ``path``.

        The on-disk bytes are exactly :attr:`packed_bits` — same dtype,
        shape, and C order — so every downstream read is byte-identical
        to the RAM backing; only the residency changes. The mapping is
        reopened read-only so no consumer (this process or a worker
        mapping the same file) can scribble on the samples. Idempotent:
        an already spilled set returns its existing path. Returns None
        without spilling when there is nothing to spill (an edgeless
        matrix maps to a zero-byte file, which mmap rejects).
        """
        if self._spill_path is not None:
            return self._spill_path
        packed = np.ascontiguousarray(self._packed)
        if packed.size == 0:
            return None
        path = Path(path)
        mapped = np.memmap(path, dtype=np.uint8, mode="w+",
                           shape=packed.shape)
        mapped[:] = packed
        mapped.flush()
        del mapped  # close the writable mapping before reopening
        self._packed = np.memmap(path, dtype=np.uint8, mode="r",
                                 shape=packed.shape)
        self._spill_path = path
        return path

    @classmethod
    def from_graph(
        cls,
        graph: ProbabilisticGraph,
        n_samples: int,
        seed: int | np.random.Generator | None = None,
        batch_size: int | None = None,
        progress=None,
    ) -> "WorldSampleSet":
        """Draw ``n_samples`` worlds from ``graph`` with a seedable RNG.

        With ``batch_size`` the draw happens in row batches and
        ``progress`` (a hook taking a
        :class:`~repro.runtime.progress.ProgressEvent`) is called after
        each batch — the cooperative cancellation point budgets and
        interrupt guards use. Batched and single-shot draws are
        bit-identical for the same seed.
        """
        if n_samples <= 0:
            raise ParameterError(f"n_samples must be positive, got {n_samples}")
        if batch_size is None and progress is None:
            rng = (
                seed
                if isinstance(seed, np.random.Generator)
                else np.random.default_rng(seed)
            )
            edges: list[Edge] = []
            probs: list[float] = []
            for u, v, p in graph.edges_with_probabilities():
                edges.append((u, v))
                probs.append(p)
            if edges:
                presence = rng.random((n_samples, len(edges))) < np.asarray(probs)
            else:
                presence = np.zeros((n_samples, 0), dtype=bool)
            return cls(presence, edges)

        from repro.runtime.progress import ProgressEvent

        batcher = SampleBatcher(
            graph, n_samples, batch_size or n_samples, seed=seed
        )
        while batcher.batches_drawn < batcher.n_batches:
            batcher.draw_next()
            if progress is not None:
                progress(ProgressEvent(
                    "sample-batch",
                    step=batcher.batches_drawn - 1,
                    total=batcher.n_batches,
                    detail={"samples_drawn": batcher.samples_drawn},
                ))
        return batcher.result()

    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        """Number of sampled worlds ``N``."""
        return self._n_samples

    @property
    def n_edges(self) -> int:
        """Number of edges covered by the sample set."""
        return len(self._edges)

    @property
    def edge_index(self) -> dict[Edge, int]:
        """Mapping from canonical edge key to column index (copy)."""
        return dict(self._edge_index)

    def nbytes(self) -> int:
        """Size of the packed presence bits in bytes."""
        return int(self._packed.nbytes)

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return True iff edge (u, v) has a column in this sample set."""
        return edge_key(u, v) in self._edge_index

    def edge_bits(self, u: Node, v: Node) -> np.ndarray:
        """Return the length-``N`` boolean presence vector of edge (u, v)."""
        from repro.core import kernels

        key = edge_key(u, v)
        try:
            col = self._edge_index[key]
        except KeyError:
            raise EdgeNotFoundError(u, v) from None
        return kernels.unpack_matrix(
            self._packed[:, col:col + 1], self._n_samples
        )[:, 0]

    def _columns(self, edges: Iterable[Edge]) -> list[int]:
        """Resolve edges to column indices, raising on unknown edges."""
        cols: list[int] = []
        for u, v in edges:
            key = edge_key(u, v)
            try:
                cols.append(self._edge_index[key])
            except KeyError:
                raise EdgeNotFoundError(u, v) from None
        return cols

    def packed_columns(self, edges: Iterable[Edge]) -> np.ndarray:
        """Return the packed ``(ceil(N/8), len(edges))`` column submatrix.

        The bit-packed projection ``G_i ↓ H`` for every sample at once —
        8x smaller than :meth:`presence_matrix` and the only copy a
        spilled (memmapped) sample set's classification brings into RAM.
        Bit layout follows the :mod:`repro.core.kernels` contract.
        """
        cols = self._columns(edges)
        if not cols:
            return np.zeros((-(-self._n_samples // 8), 0), dtype=np.uint8)
        return np.ascontiguousarray(self._packed[:, cols])

    def presence_matrix(self, edges: Iterable[Edge]) -> np.ndarray:
        """Return the ``N x len(edges)`` presence submatrix for ``edges``.

        This is the projection ``G_i ↓ H`` for every sample at once, for a
        subgraph ``H`` with the given edge set. The result is the fully
        unpacked boolean matrix — 8x the packed bits; hot paths use
        :meth:`packed_columns` with the :mod:`repro.core.kernels`
        popcount kernels instead and never materialise this.
        """
        from repro.core import kernels

        cols = self._columns(edges)
        if not cols:
            return np.zeros((self._n_samples, 0), dtype=bool)
        return kernels.unpack_matrix(self._packed[:, cols], self._n_samples)

    def world_edges(
        self, sample: int, restrict_to: Iterable[Edge] | None = None
    ) -> set[Edge]:
        """Return the edges present in world ``sample``.

        With ``restrict_to``, only those edges are reported — i.e. the
        edge set of the projected world ``G_sample ↓ H``.
        """
        from repro.core import kernels

        if not 0 <= sample < self._n_samples:
            raise ParameterError(
                f"sample index {sample} out of range [0, {self._n_samples})"
            )
        if restrict_to is None:
            candidates = list(self._edges)
        else:
            candidates = [edge_key(u, v) for u, v in restrict_to]
        packed = self.packed_columns(candidates)
        row = kernels.gather_rows(packed, np.array([sample]))[0]
        return {candidates[j] for j in np.flatnonzero(row)}

    #: Samples per chunk when iterating worlds; bounds the unpacked
    #: working set to ``chunk x m`` bools regardless of N (spilled sets
    #: stream through this window instead of materialising 8x N x m).
    _ITER_CHUNK = 1024

    def iter_worlds(
        self, restrict_to: Iterable[Edge] | None = None
    ) -> Iterator[set[Edge]]:
        """Yield the (optionally projected) edge set of every sampled world.

        Worlds are unpacked in bounded row chunks, so iteration over a
        spilled (memmapped) sample set never materialises the full
        boolean matrix.
        """
        from repro.core import kernels

        if restrict_to is None:
            candidates = list(self._edges)
        else:
            candidates = [edge_key(u, v) for u, v in restrict_to]
        packed = self.packed_columns(candidates)
        for lo in range(0, self._n_samples, self._ITER_CHUNK):
            hi = min(lo + self._ITER_CHUNK, self._n_samples)
            chunk = kernels.gather_rows(packed, np.arange(lo, hi))
            for i in range(hi - lo):
                yield {candidates[j] for j in np.flatnonzero(chunk[i])}

    def edge_frequency(self, u: Node, v: Node) -> float:
        """Return the fraction of sampled worlds containing edge (u, v).

        Computed by popcount on the packed column — the boolean
        presence vector is never materialised.
        """
        from repro.core import kernels

        key = edge_key(u, v)
        try:
            col = self._edge_index[key]
        except KeyError:
            raise EdgeNotFoundError(u, v) from None
        count = kernels.column_counts(self._packed[:, col:col + 1])[0]
        return float(count) / self._n_samples
