"""Probabilistic-graph substrate: data structure, I/O, generators, sampling.

The central type is :class:`~repro.graphs.probabilistic.ProbabilisticGraph`,
an undirected simple graph in which every edge carries an independent
existence probability (the model of Section 3 of the paper). The other
modules in this package provide connected components and projections
(:mod:`~repro.graphs.components`), edge-list I/O (:mod:`~repro.graphs.io`),
seedable random-graph generators (:mod:`~repro.graphs.generators`) and the
possible-world sampling engine (:mod:`~repro.graphs.sampling`).
"""

from repro.graphs.probabilistic import ProbabilisticGraph, edge_key
from repro.graphs.components import (
    connected_components,
    is_connected,
    largest_connected_component,
    edge_connected_components,
)
from repro.graphs.sampling import (
    WorldSampleSet,
    hoeffding_sample_size,
    sample_possible_world,
    sample_possible_worlds,
)
from repro.graphs.io import (
    read_edge_list,
    write_edge_list,
    read_json_graph,
    write_json_graph,
)
from repro.graphs import generators, export

__all__ = [
    "ProbabilisticGraph",
    "edge_key",
    "connected_components",
    "is_connected",
    "largest_connected_component",
    "edge_connected_components",
    "WorldSampleSet",
    "hoeffding_sample_size",
    "sample_possible_world",
    "sample_possible_worlds",
    "read_edge_list",
    "write_edge_list",
    "read_json_graph",
    "write_json_graph",
    "generators",
    "export",
]
