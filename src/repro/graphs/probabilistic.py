"""The :class:`ProbabilisticGraph` data structure.

A probabilistic (a.k.a. uncertain) graph ``G = (V, E, p)`` is an
undirected simple graph in which every edge ``e`` exists independently
with probability ``p(e)`` (Section 3 of the paper). This module provides
the core container used throughout the library: a dict-of-dicts adjacency
structure mapping each node to ``{neighbour: probability}``.

Edges are identified by a *canonical key* ``edge_key(u, v)`` — a 2-tuple
whose endpoints appear in a deterministic order — so that ``(u, v)`` and
``(v, u)`` always refer to the same edge.

Example
-------
>>> g = ProbabilisticGraph()
>>> g.add_edge("a", "b", 0.5)
>>> g.add_edge("b", "c", 0.9)
>>> g.probability("b", "a")
0.5
>>> sorted(g.neighbors("b"))
['a', 'c']
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Any

from repro.exceptions import (
    EdgeNotFoundError,
    GraphError,
    InvalidProbabilityError,
    NodeNotFoundError,
    ParameterError,
)

__all__ = ["ProbabilisticGraph", "edge_key"]

Node = Hashable
Edge = tuple[Node, Node]


def edge_key(u: Node, v: Node) -> Edge:
    """Return the canonical (order-independent) key for edge ``(u, v)``.

    Endpoints are ordered with ``<`` when comparable; mixed or otherwise
    incomparable node types fall back to ordering by ``(type name, repr)``,
    which is deterministic within a process.
    """
    try:
        return (u, v) if u <= v else (v, u)
    except TypeError:
        ku = (type(u).__name__, repr(u))
        kv = (type(v).__name__, repr(v))
        return (u, v) if ku <= kv else (v, u)


def _check_probability(p: float) -> float:
    p = float(p)
    if math.isnan(p) or p < 0.0 or p > 1.0:
        raise InvalidProbabilityError(
            f"edge probability must lie in [0, 1], got {p!r}"
        )
    return p


class ProbabilisticGraph:
    """An undirected simple graph with independent edge probabilities.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v, p)`` triples to initialise from.

    Notes
    -----
    Self-loops are rejected (trusses are defined on simple graphs).
    Adding an existing edge overwrites its probability.
    """

    __slots__ = ("_adj",)

    def __init__(self, edges: Iterable[tuple[Node, Node, float]] | None = None):
        self._adj: dict[Node, dict[Node, float]] = {}
        if edges is not None:
            for u, v, p in edges:
                self.add_edge(u, v, p)

    # ------------------------------------------------------------------
    # Construction and mutation
    # ------------------------------------------------------------------
    def add_node(self, u: Node) -> None:
        """Add an isolated node (no-op if already present)."""
        if u not in self._adj:
            self._adj[u] = {}

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Add every node in ``nodes``."""
        for u in nodes:
            self.add_node(u)

    def add_edge(self, u: Node, v: Node, probability: float = 1.0) -> None:
        """Add edge ``(u, v)`` with the given existence probability.

        Missing endpoints are created. Re-adding an edge overwrites its
        probability. Raises :class:`InvalidProbabilityError` for
        probabilities outside [0, 1] and :class:`GraphError` for
        self-loops.
        """
        if u == v:
            raise GraphError(f"self-loop on node {u!r} is not allowed")
        p = _check_probability(probability)
        self.add_node(u)
        self.add_node(v)
        self._adj[u][v] = p
        self._adj[v][u] = p

    def add_edges(self, edges: Iterable[tuple[Node, Node, float]]) -> None:
        """Add every ``(u, v, p)`` triple in ``edges``."""
        for u, v, p in edges:
            self.add_edge(u, v, p)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove edge ``(u, v)``.

        Raises :class:`ParameterError` for a self-loop (which can never
        exist here, so naming one is a caller bug, not a missing edge)
        and :class:`EdgeNotFoundError` when the edge is absent.
        """
        if u == v:
            raise ParameterError(
                f"self-loop ({u!r}, {v!r}) is never a valid edge")
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        del self._adj[u][v]
        del self._adj[v][u]

    def remove_node(self, u: Node) -> None:
        """Remove node ``u`` and all its incident edges."""
        if u not in self._adj:
            raise NodeNotFoundError(u)
        for v in list(self._adj[u]):
            del self._adj[v][u]
        del self._adj[u]

    def remove_isolated_nodes(self) -> list[Node]:
        """Drop all degree-0 nodes; return the removed nodes."""
        isolated = [u for u, nbrs in self._adj.items() if not nbrs]
        for u in isolated:
            del self._adj[u]
        return isolated

    def set_probability(self, u: Node, v: Node, probability: float) -> None:
        """Overwrite the probability of an *existing* edge."""
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        p = _check_probability(probability)
        self._adj[u][v] = p
        self._adj[v][u] = p

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_node(self, u: Node) -> bool:
        """Return True iff node ``u`` is in the graph."""
        return u in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return True iff edge ``(u, v)`` is in the graph."""
        return u in self._adj and v in self._adj[u]

    def probability(self, u: Node, v: Node) -> float:
        """Return ``p(u, v)``; raises :class:`EdgeNotFoundError` if absent."""
        try:
            return self._adj[u][v]
        except KeyError:
            raise EdgeNotFoundError(u, v) from None

    def neighbors(self, u: Node) -> Iterator[Node]:
        """Iterate over the structural neighbours ``N(u)`` (probabilities ignored)."""
        try:
            return iter(self._adj[u])
        except KeyError:
            raise NodeNotFoundError(u) from None

    def neighbor_probabilities(self, u: Node) -> Mapping[Node, float]:
        """Return a read-only view of ``{neighbour: p(u, neighbour)}``."""
        try:
            return dict(self._adj[u])
        except KeyError:
            raise NodeNotFoundError(u) from None

    def degree(self, u: Node) -> int:
        """Return the structural degree of ``u``."""
        try:
            return len(self._adj[u])
        except KeyError:
            raise NodeNotFoundError(u) from None

    def expected_degree(self, u: Node) -> float:
        """Return the expected degree ``sum of p(u, v) over v in N(u)``."""
        try:
            return sum(self._adj[u].values())
        except KeyError:
            raise NodeNotFoundError(u) from None

    def max_degree(self) -> int:
        """Return the maximum structural degree (0 for an empty graph)."""
        return max((len(nbrs) for nbrs in self._adj.values()), default=0)

    def common_neighbors(self, u: Node, v: Node) -> set[Node]:
        """Return ``N(u) ∩ N(v)`` — the possible triangle apexes of edge (u, v)."""
        if u not in self._adj:
            raise NodeNotFoundError(u)
        if v not in self._adj:
            raise NodeNotFoundError(v)
        a, b = self._adj[u], self._adj[v]
        if len(a) > len(b):
            a, b = b, a
        return {w for w in a if w in b}

    def support(self, u: Node, v: Node) -> int:
        """Return the structural support ``k_e = |N(u) ∩ N(v)|`` of edge (u, v).

        This is the maximum possible support of the edge in any possible
        world (probabilities ignored).
        """
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        return len(self.common_neighbors(u, v))

    # ------------------------------------------------------------------
    # Iteration and sizes
    # ------------------------------------------------------------------
    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges once, as canonical keys."""
        seen: set[Node] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if v not in seen:
                    yield edge_key(u, v)
            seen.add(u)

    def edges_with_probabilities(self) -> Iterator[tuple[Node, Node, float]]:
        """Iterate over ``(u, v, p)`` triples, one per edge."""
        seen: set[Node] = set()
        for u, nbrs in self._adj.items():
            for v, p in nbrs.items():
                if v not in seen:
                    a, b = edge_key(u, v)
                    yield (a, b, p)
            seen.add(u)

    def triangles_of_edge(self, u: Node, v: Node) -> Iterator[Node]:
        """Iterate over apex nodes ``w`` forming a triangle with edge (u, v)."""
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        yield from self.common_neighbors(u, v)

    def triangles(self) -> Iterator[tuple[Node, Node, Node]]:
        """Iterate over every triangle exactly once (canonically ordered)."""
        for u, v in self.edges():
            for w in self.common_neighbors(u, v):
                a, b = edge_key(u, w)
                c, d = edge_key(v, w)
                # Emit each triangle once: only from its canonically
                # smallest edge. (u, v) is already canonical; require that
                # (u, v) sorts before both other edges of the triangle.
                if (u, v) < (a, b) and (u, v) < (c, d):
                    yield (u, v, w)

    def number_of_nodes(self) -> int:
        """Return |V|."""
        return len(self._adj)

    def number_of_edges(self) -> int:
        """Return |E|."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def __contains__(self, u: object) -> bool:
        try:
            return u in self._adj
        except TypeError:
            return False

    def __bool__(self) -> bool:
        # A graph is truthy iff it has at least one node. Explicit so that
        # ``if graph:`` never falls back to __len__-based surprises.
        return bool(self._adj)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProbabilisticGraph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(nodes={self.number_of_nodes()}, "
            f"edges={self.number_of_edges()})"
        )

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "ProbabilisticGraph":
        """Return a deep structural copy."""
        g = ProbabilisticGraph()
        g._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        return g

    def subgraph(self, nodes: Iterable[Node]) -> "ProbabilisticGraph":
        """Return the node-induced subgraph on ``nodes`` (unknown nodes ignored)."""
        keep = {u for u in nodes if u in self._adj}
        g = ProbabilisticGraph()
        for u in keep:
            g.add_node(u)
            for v, p in self._adj[u].items():
                if v in keep:
                    g._adj[u][v] = p
        return g

    def edge_subgraph(self, edges: Iterable[Edge]) -> "ProbabilisticGraph":
        """Return the subgraph containing exactly ``edges`` (and their endpoints).

        Edges absent from this graph raise :class:`EdgeNotFoundError`.
        """
        g = ProbabilisticGraph()
        for u, v in edges:
            g.add_edge(u, v, self.probability(u, v))
        return g

    def project_world(self, present_edges: Iterable[Edge]) -> "ProbabilisticGraph":
        """Return the possible world keeping all nodes and only ``present_edges``.

        The result mirrors the paper's possible-world semantics: a world
        retains **all** nodes of the graph, with every present edge given
        probability 1.
        """
        present = {edge_key(u, v) for u, v in present_edges}
        g = ProbabilisticGraph()
        for u in self._adj:
            g.add_node(u)
        for u, v in present:
            if not self.has_edge(u, v):
                raise EdgeNotFoundError(u, v)
            g.add_edge(u, v, 1.0)
        return g

    def world_probability(self, present_edges: Iterable[Edge]) -> float:
        """Return ``Pr[G | self]`` for the world with exactly ``present_edges`` (Eq. 1)."""
        present = {edge_key(u, v) for u, v in present_edges}
        for u, v in present:
            if not self.has_edge(u, v):
                raise EdgeNotFoundError(u, v)
        prob = 1.0
        for u, v, p in self.edges_with_probabilities():
            prob *= p if (u, v) in present else (1.0 - p)
        return prob

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self) -> Any:
        """Return a ``networkx.Graph`` with probabilities as the ``p`` edge attr."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self._adj)
        g.add_weighted_edges_from(self.edges_with_probabilities(), weight="p")
        return g

    @classmethod
    def from_networkx(cls, graph: Any, probability_attr: str = "p",
                      default_probability: float = 1.0) -> "ProbabilisticGraph":
        """Build from a ``networkx.Graph``.

        Edge probabilities are read from ``probability_attr``; edges
        lacking the attribute get ``default_probability``.
        """
        g = cls()
        for u in graph.nodes:
            g.add_node(u)
        for u, v, data in graph.edges(data=True):
            if u == v:
                continue  # truss semantics are on simple graphs
            g.add_edge(u, v, data.get(probability_attr, default_probability))
        return g
