"""Seedable random generators for probabilistic graphs.

These serve three roles in the reproduction:

* Constructions from the paper itself — :func:`windmill_graph` is the
  Lemma 2 gadget with exponentially many maximal global trusses, and
  :func:`running_example` is the Figure 1 graph used across the paper.
* Structural generators used by :mod:`repro.datasets` to synthesise
  scaled-down stand-ins for the eight real networks of Table 1
  (Erdős–Rényi, Barabási–Albert, Holme–Kim power-law-cluster, and a
  duplication–divergence model for PPI-like graphs).
* Planted-structure generators (:func:`planted_truss_graph`) for tests
  that need a known ground truth.

Every generator takes ``seed`` (int, ``numpy.random.Generator`` or None)
and is fully deterministic for a fixed seed.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.exceptions import ParameterError
from repro.graphs.probabilistic import ProbabilisticGraph

__all__ = [
    "running_example",
    "windmill_graph",
    "complete_graph",
    "gnp_graph",
    "barabasi_albert_graph",
    "powerlaw_cluster_graph",
    "duplication_divergence_graph",
    "planted_truss_graph",
    "uniform_probabilities",
    "beta_probabilities",
]

RngLike = "int | np.random.Generator | None"


def _rng(seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def running_example() -> ProbabilisticGraph:
    """Return the Figure 1 running example of the paper.

    Nodes: ``p1, q1, q2, v1, v2, v3``. The subgraph induced by
    ``{q1, q2, v1, v2, v3}`` is a deterministic 4-truss; the edge
    ``(q1, v1)`` is contained in two triangles with probability
    ``0.5 * (0.5 * 1) * (0.5 * 1) = 0.125``, making Figure 2(a) a local
    (4, 0.125)-truss, and Figure 3's H2/H3 global (4, 0.125)-trusses.
    """
    g = ProbabilisticGraph()
    g.add_edge("p1", "q1", 0.7)
    g.add_edge("p1", "v1", 0.7)
    g.add_edge("q1", "v1", 0.5)
    g.add_edge("q1", "v2", 0.5)
    g.add_edge("q1", "v3", 0.5)
    g.add_edge("q2", "v1", 0.5)
    g.add_edge("q2", "v2", 0.5)
    g.add_edge("q2", "v3", 0.5)
    g.add_edge("v1", "v2", 1.0)
    g.add_edge("v1", "v3", 1.0)
    g.add_edge("v2", "v3", 1.0)
    return g


def windmill_graph(n_blades: int, blade_probability: float = 0.5,
                   hub: str = "hub") -> ProbabilisticGraph:
    """Return the Lemma 2 "windmill": ``n_blades`` triangles sharing a hub.

    Blade ``i`` consists of nodes ``(hub, b{i}_0, b{i}_1)`` with all three
    edges carrying ``blade_probability``. With ``k = 3`` and
    ``gamma = blade_probability ** (3 * ceil(n/2))`` the graph has
    ``C(n, ceil(n/2))`` maximal global (k, gamma)-trusses — exponential in
    ``n`` — which is the paper's hardness-of-enumeration witness.
    """
    if n_blades <= 0:
        raise ParameterError(f"n_blades must be positive, got {n_blades}")
    g = ProbabilisticGraph()
    for i in range(n_blades):
        a, b = f"b{i}_0", f"b{i}_1"
        g.add_edge(hub, a, blade_probability)
        g.add_edge(hub, b, blade_probability)
        g.add_edge(a, b, blade_probability)
    return g


def complete_graph(n: int, probability: float = 1.0) -> ProbabilisticGraph:
    """Return ``K_n`` with a uniform edge probability."""
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    g = ProbabilisticGraph()
    for u in range(n):
        g.add_node(u)
        for v in range(u):
            g.add_edge(u, v, probability)
    return g


def gnp_graph(n: int, edge_density: float, seed=None,
              probability: Callable[[np.random.Generator], float] | float = 1.0,
              ) -> ProbabilisticGraph:
    """Return an Erdős–Rényi ``G(n, p)`` structure with edge probabilities.

    ``edge_density`` controls which edges *exist structurally*;
    ``probability`` assigns each existing edge its existence probability —
    either a constant or a callable drawing from the given RNG.
    """
    if not 0.0 <= edge_density <= 1.0:
        raise ParameterError(f"edge_density must be in [0, 1], got {edge_density}")
    rng = _rng(seed)
    g = ProbabilisticGraph()
    for u in range(n):
        g.add_node(u)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < edge_density:
                p = probability(rng) if callable(probability) else probability
                g.add_edge(u, v, p)
    return g


def barabasi_albert_graph(n: int, m: int, seed=None,
                          probability: Callable[[np.random.Generator], float] | float = 1.0,
                          ) -> ProbabilisticGraph:
    """Return a Barabási–Albert preferential-attachment graph.

    Each arriving node attaches to ``m`` distinct existing nodes chosen
    with probability proportional to degree (implemented with the
    standard repeated-nodes urn).
    """
    if m < 1 or m >= n:
        raise ParameterError(f"need 1 <= m < n, got m={m}, n={n}")
    rng = _rng(seed)
    g = ProbabilisticGraph()
    targets = list(range(m))
    for u in targets:
        g.add_node(u)
    repeated: list[int] = []
    for u in range(m, n):
        chosen = set(targets)
        for v in chosen:
            p = probability(rng) if callable(probability) else probability
            g.add_edge(u, v, p)
        repeated.extend(chosen)
        repeated.extend([u] * len(chosen))
        targets = []
        while len(targets) < m:
            pick = repeated[int(rng.integers(len(repeated)))]
            if pick not in targets:
                targets.append(pick)
    return g


def powerlaw_cluster_graph(n: int, m: int, triangle_probability: float,
                           seed=None,
                           probability: Callable[[np.random.Generator], float] | float = 1.0,
                           ) -> ProbabilisticGraph:
    """Return a Holme–Kim power-law graph with tunable clustering.

    Like Barabási–Albert, but after each preferential attachment step a
    triangle-closing step follows with probability
    ``triangle_probability`` — producing the high-clustering, heavy-tailed
    structure of social networks (WikiVote, Flickr, LiveJournal, Orkut).
    """
    if m < 1 or m >= n:
        raise ParameterError(f"need 1 <= m < n, got m={m}, n={n}")
    if not 0.0 <= triangle_probability <= 1.0:
        raise ParameterError(
            f"triangle_probability must be in [0, 1], got {triangle_probability}"
        )
    rng = _rng(seed)
    g = ProbabilisticGraph()
    for u in range(m):
        g.add_node(u)
    repeated: list[int] = list(range(m))

    def new_probability() -> float:
        return probability(rng) if callable(probability) else probability

    for u in range(m, n):
        added = 0
        last_target: int | None = None
        while added < m:
            if (
                last_target is not None
                and rng.random() < triangle_probability
                and g.degree(last_target) > 0
            ):
                # Triangle step: attach to a neighbour of the last target.
                nbrs = [w for w in g.neighbors(last_target)
                        if w != u and not g.has_edge(u, w)]
                if nbrs:
                    w = nbrs[int(rng.integers(len(nbrs)))]
                    g.add_edge(u, w, new_probability())
                    repeated.append(w)
                    repeated.append(u)
                    added += 1
                    last_target = w
                    continue
            # Preferential-attachment step.
            pick = repeated[int(rng.integers(len(repeated)))]
            if pick != u and not g.has_edge(u, pick):
                g.add_edge(u, pick, new_probability())
                repeated.append(pick)
                repeated.append(u)
                added += 1
                last_target = pick
    return g


def duplication_divergence_graph(n: int, retention: float, seed=None,
                                 probability: Callable[[np.random.Generator], float] | float = 1.0,
                                 ) -> ProbabilisticGraph:
    """Return a duplication–divergence graph (PPI-like structure).

    Starting from a triangle, each new node duplicates a random existing
    node, retaining each of its edges independently with probability
    ``retention`` and always linking to its template. Low retention yields
    the sparse, fragmented topology of protein-interaction networks
    (FruitFly in Table 1).
    """
    if n < 3:
        raise ParameterError(f"n must be at least 3, got {n}")
    if not 0.0 <= retention <= 1.0:
        raise ParameterError(f"retention must be in [0, 1], got {retention}")
    rng = _rng(seed)
    g = ProbabilisticGraph()

    def new_probability() -> float:
        return probability(rng) if callable(probability) else probability

    g.add_edge(0, 1, new_probability())
    g.add_edge(1, 2, new_probability())
    g.add_edge(0, 2, new_probability())
    for u in range(3, n):
        template = int(rng.integers(u))
        g.add_node(u)
        for v in list(g.neighbors(template)):
            if rng.random() < retention:
                g.add_edge(u, v, new_probability())
        g.add_edge(u, template, new_probability())
    return g


def planted_truss_graph(n_background: int, clique_size: int,
                        background_density: float = 0.05,
                        clique_probability: float = 0.95,
                        background_probability: float = 0.3,
                        seed=None) -> tuple[ProbabilisticGraph, list[int]]:
    """Return a sparse background graph with one planted high-probability clique.

    The clique nodes (returned as the second element) form a
    ``clique_size``-clique whose edges carry ``clique_probability``; all
    other edges are sparse background with ``background_probability``.
    Useful ground truth: for suitable gamma, the planted clique is the
    top local (and global) truss.
    """
    if clique_size < 3:
        raise ParameterError(f"clique_size must be >= 3, got {clique_size}")
    rng = _rng(seed)
    n = n_background + clique_size
    g = gnp_graph(n, background_density, seed=rng,
                  probability=background_probability)
    clique = list(range(n_background, n))
    for i, u in enumerate(clique):
        for v in clique[:i]:
            g.add_edge(u, v, clique_probability)
    return g, clique


def uniform_probabilities(low: float = 0.0, high: float = 1.0
                          ) -> Callable[[np.random.Generator], float]:
    """Return a sampler of Uniform[low, high] edge probabilities.

    This is the assignment the paper uses for WikiVote, LiveJournal,
    Orkut and Wise ("assigned uniformly at random from [0, 1]").
    """
    if not 0.0 <= low <= high <= 1.0:
        raise ParameterError(f"need 0 <= low <= high <= 1, got [{low}, {high}]")

    def sample(rng: np.random.Generator) -> float:
        return float(rng.uniform(low, high))

    return sample


def beta_probabilities(a: float, b: float) -> Callable[[np.random.Generator], float]:
    """Return a sampler of Beta(a, b) edge probabilities.

    Beta-shaped confidences model experimentally-derived interaction
    scores (FruitFly, BioMine).
    """
    if a <= 0 or b <= 0:
        raise ParameterError(f"Beta parameters must be positive, got a={a}, b={b}")

    def sample(rng: np.random.Generator) -> float:
        return float(rng.beta(a, b))

    return sample
