"""Connected components of probabilistic graphs (structure only).

Connectivity in the paper is always *structural*: a subgraph is connected
iff it is connected when every edge probability is ignored (Definition 2),
while a possible world is connected iff its present edges connect **all**
nodes of the world (Definition 3). Both notions are served here.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Iterator

from repro.graphs.probabilistic import ProbabilisticGraph, edge_key

__all__ = [
    "connected_components",
    "is_connected",
    "largest_connected_component",
    "edge_connected_components",
    "component_of",
]

Node = Hashable
Edge = tuple[Node, Node]


def connected_components(graph: ProbabilisticGraph) -> Iterator[set[Node]]:
    """Yield the node sets of the connected components of ``graph``."""
    seen: set[Node] = set()
    for start in graph.nodes():
        if start in seen:
            continue
        component = {start}
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if v not in component:
                    component.add(v)
                    queue.append(v)
        seen |= component
        yield component


def component_of(graph: ProbabilisticGraph, node: Node) -> set[Node]:
    """Return the node set of the component containing ``node``."""
    component = {node}
    queue = deque([node])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in component:
                component.add(v)
                queue.append(v)
    return component


def is_connected(graph: ProbabilisticGraph) -> bool:
    """Return True iff ``graph`` is non-empty and structurally connected."""
    n = graph.number_of_nodes()
    if n == 0:
        return False
    first = next(graph.nodes())
    return len(component_of(graph, first)) == n


def largest_connected_component(graph: ProbabilisticGraph) -> ProbabilisticGraph:
    """Return the induced subgraph on the largest component (empty graph if empty)."""
    best: set[Node] = set()
    for component in connected_components(graph):
        if len(component) > len(best):
            best = component
    return graph.subgraph(best)


def edge_connected_components(
    graph: ProbabilisticGraph, edges: Iterable[Edge]
) -> list[set[Edge]]:
    """Group ``edges`` of ``graph`` into connected clusters.

    Two edges are in the same cluster iff they are connected through the
    subgraph formed by ``edges`` alone. This is the post-processing step
    of Theorem 2: piecing edges of equal-or-higher trussness into maximal
    connected trusses.
    """
    canonical = [edge_key(u, v) for u, v in edges]
    incident: dict[Node, list[Edge]] = {}
    for e in canonical:
        incident.setdefault(e[0], []).append(e)
        incident.setdefault(e[1], []).append(e)

    clusters: list[set[Edge]] = []
    unvisited = set(canonical)
    while unvisited:
        seed = next(iter(unvisited))
        cluster = {seed}
        unvisited.discard(seed)
        queue = deque([seed])
        while queue:
            u, v = queue.popleft()
            for node in (u, v):
                for e in incident[node]:
                    if e in unvisited:
                        unvisited.discard(e)
                        cluster.add(e)
                        queue.append(e)
        clusters.append(cluster)
    return clusters
