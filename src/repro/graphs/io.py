"""Reading and writing probabilistic graphs.

Two interchange formats are supported:

* **Edge list** — one edge per line, ``u v p`` separated by whitespace (or
  a custom delimiter). Lines starting with ``#`` are comments. Node labels
  are read as strings unless ``node_type`` converts them. This is the
  format used by the public releases of the uncertain-graph datasets the
  paper evaluates on (Flickr, DBLP, BioMine ...).
* **JSON** — a self-describing document with explicit node list (so
  isolated nodes survive a round trip) and ``[u, v, p]`` edge triples.
"""

from __future__ import annotations

import json
import math
from collections.abc import Callable, Hashable
from pathlib import Path
from typing import Any

from repro.exceptions import GraphParseError, InvalidProbabilityError
from repro.graphs.probabilistic import ProbabilisticGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_json_graph",
    "write_json_graph",
]

Node = Hashable


def _open_maybe(path_or_file: Any, mode: str):
    if hasattr(path_or_file, "read") or hasattr(path_or_file, "write"):
        return path_or_file, False
    path = Path(path_or_file)
    if path.suffix == ".gz":
        import gzip

        return gzip.open(path, mode + "t", encoding="utf-8"), True
    return open(path, mode, encoding="utf-8"), True


def _source_name(path_or_file: Any, handle: Any) -> str | None:
    """Best-effort name of the data source for error messages."""
    if not (hasattr(path_or_file, "read") or hasattr(path_or_file, "write")):
        return str(path_or_file)
    name = getattr(handle, "name", None)
    return str(name) if isinstance(name, str) else None


def read_edge_list(
    path_or_file: Any,
    delimiter: str | None = None,
    node_type: Callable[[str], Node] = str,
    default_probability: float = 1.0,
) -> ProbabilisticGraph:
    """Parse a probabilistic edge list into a :class:`ProbabilisticGraph`.

    Each non-comment, non-blank line must contain ``u v`` or ``u v p``
    fields. Missing probabilities default to ``default_probability``.

    Parameters
    ----------
    path_or_file:
        A filesystem path or an open text file.
    delimiter:
        Field separator; ``None`` splits on arbitrary whitespace.
    node_type:
        Converter applied to node labels (e.g. ``int``).
    default_probability:
        Probability assigned to two-field lines.

    Raises
    ------
    GraphParseError
        On malformed lines (wrong field count, non-numeric or
        out-of-range probability, unconvertible node label) and on
        truncated or corrupt inputs (a ``.gz`` file cut short, bytes
        that do not decode as UTF-8). The error carries ``source``,
        ``lineno``, and the offending ``token``, e.g. a file sliced
        mid-record fails with the exact line left dangling.
    """
    handle, should_close = _open_maybe(path_or_file, "r")
    source = _source_name(path_or_file, handle)
    graph = ProbabilisticGraph()
    lineno = 0
    try:
        try:
            for lineno, raw in enumerate(handle, start=1):
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                fields = line.split(delimiter)
                if len(fields) == 2:
                    u, v = fields
                    p = default_probability
                elif len(fields) == 3:
                    u, v, p_str = fields
                    try:
                        p = float(p_str)
                    except ValueError:
                        raise GraphParseError(
                            f"probability {p_str!r} is not a number",
                            source=source, lineno=lineno, token=p_str,
                        ) from None
                    if not math.isfinite(p):
                        # float() happily parses "nan"/"inf"/"-inf";
                        # none of them is a probability.
                        raise GraphParseError(
                            f"probability {p_str!r} is not finite",
                            source=source, lineno=lineno, token=p_str,
                        )
                else:
                    raise GraphParseError(
                        f"expected 2 or 3 fields, got {len(fields)} "
                        "(file truncated mid-record?)",
                        source=source, lineno=lineno, token=line,
                    )
                try:
                    u_label, v_label = node_type(u), node_type(v)
                except (ValueError, TypeError) as err:
                    raise GraphParseError(
                        f"node label could not be converted: {err}",
                        source=source, lineno=lineno, token=line,
                    ) from None
                try:
                    graph.add_edge(u_label, v_label, p)
                except InvalidProbabilityError as err:
                    raise GraphParseError(
                        str(err), source=source, lineno=lineno,
                        token=str(p),
                    ) from None
        except (EOFError, OSError) as err:
            # gzip raises EOFError ("Compressed file ended before the
            # end-of-stream marker") or BadGzipFile on truncation.
            raise GraphParseError(
                f"input truncated or unreadable: {err}",
                source=source, lineno=lineno or None,
            ) from err
        except UnicodeDecodeError as err:
            raise GraphParseError(
                f"input is not valid UTF-8 text: {err}",
                source=source, lineno=lineno or None,
            ) from err
    finally:
        if should_close:
            handle.close()
    return graph


def write_edge_list(
    graph: ProbabilisticGraph,
    path_or_file: Any,
    delimiter: str = " ",
    header: bool = True,
) -> None:
    """Write ``graph`` as a ``u v p`` edge list.

    Isolated nodes are *not* representable in this format (use the JSON
    format to preserve them); a header comment records the counts.
    """
    handle, should_close = _open_maybe(path_or_file, "w")
    try:
        if header:
            handle.write(
                f"# probabilistic edge list: {graph.number_of_nodes()} nodes, "
                f"{graph.number_of_edges()} edges\n"
            )
        for u, v, p in sorted(
            graph.edges_with_probabilities(), key=lambda t: (str(t[0]), str(t[1]))
        ):
            handle.write(f"{u}{delimiter}{v}{delimiter}{p!r}\n")
    finally:
        if should_close:
            handle.close()


def write_json_graph(graph: ProbabilisticGraph, path_or_file: Any) -> None:
    """Serialise ``graph`` (including isolated nodes) as JSON."""
    doc = {
        "format": "repro-probabilistic-graph",
        "version": 1,
        "nodes": sorted(graph.nodes(), key=lambda n: (str(type(n)), str(n))),
        "edges": [
            [u, v, p]
            for u, v, p in sorted(
                graph.edges_with_probabilities(),
                key=lambda t: (str(t[0]), str(t[1])),
            )
        ],
    }
    handle, should_close = _open_maybe(path_or_file, "w")
    try:
        json.dump(doc, handle)
    finally:
        if should_close:
            handle.close()


def read_json_graph(path_or_file: Any) -> ProbabilisticGraph:
    """Deserialise a graph written by :func:`write_json_graph`.

    Raises :class:`GraphParseError` on corrupt or truncated JSON, a
    wrong format tag, or malformed node/edge entries; the error names
    the source file and, for syntax errors, the offending line.
    """
    handle, should_close = _open_maybe(path_or_file, "r")
    source = _source_name(path_or_file, handle)

    def reject_nonfinite(token: str):
        # json.load accepts the non-standard NaN/Infinity/-Infinity
        # literals by default; none of them belongs in a graph document.
        raise GraphParseError(
            f"non-finite number {token} is not valid JSON "
            "(and not a probability)",
            source=source, token=token,
        )

    try:
        try:
            doc = json.load(handle, parse_constant=reject_nonfinite)
        except json.JSONDecodeError as err:
            raise GraphParseError(
                f"corrupt or truncated JSON: {err.msg}",
                source=source, lineno=err.lineno,
            ) from None
        except (EOFError, OSError, UnicodeDecodeError) as err:
            raise GraphParseError(
                f"input truncated or unreadable: {err}", source=source,
            ) from err
    finally:
        if should_close:
            handle.close()
    if not isinstance(doc, dict) or doc.get("format") != "repro-probabilistic-graph":
        raise GraphParseError(
            "not a repro probabilistic-graph JSON document", source=source
        )
    graph = ProbabilisticGraph()
    try:
        graph.add_nodes(doc.get("nodes", []))
        for entry in doc.get("edges", []):
            u, v, p = entry
            graph.add_edge(u, v, p)
    except (InvalidProbabilityError, ValueError, TypeError) as err:
        raise GraphParseError(
            f"malformed node/edge entry: {err}", source=source
        ) from err
    return graph
