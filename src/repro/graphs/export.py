"""Exporting probabilistic graphs and truss hierarchies for visualization.

The paper lists visualization of complex networks among truss
applications ("k-truss is a useful tool for visualization [37]"). This
module renders decomposition results in formats external tools consume:

* :func:`to_dot` — Graphviz DOT with probability-weighted edges and
  truss levels encoded as colours/penwidths;
* :func:`hierarchy_to_dict` / :func:`hierarchy_to_json` — a
  JSON-serialisable summary of a local decomposition (per-level maximal
  trusses with their quality metrics), ready for D3-style frontends;
* :func:`write_gexf` — GEXF via networkx, with probability and
  trussness edge attributes.
"""

from __future__ import annotations

import json
from collections.abc import Hashable
from typing import Any

from repro.graphs.probabilistic import ProbabilisticGraph, edge_key
from repro.core.local import LocalTrussResult
from repro.core.metrics import (
    probabilistic_clustering_coefficient,
    probabilistic_density,
)

__all__ = ["to_dot", "hierarchy_to_dict", "hierarchy_to_json", "write_gexf"]

Node = Hashable
Edge = tuple[Node, Node]

#: Colour ramp for truss levels (k = 2 coolest, high k hottest).
_LEVEL_COLOURS = (
    "#bdd7e7", "#6baed6", "#3182bd", "#08519c",
    "#a63603", "#e6550d", "#fd8d3c",
)


def _level_colour(k: int) -> str:
    return _LEVEL_COLOURS[min(max(k - 2, 0), len(_LEVEL_COLOURS) - 1)]


def _quote(label: Any) -> str:
    text = str(label).replace('"', '\\"')
    return f'"{text}"'


def to_dot(
    graph: ProbabilisticGraph,
    trussness: dict[Edge, int] | None = None,
    name: str = "probabilistic_graph",
) -> str:
    """Render ``graph`` as Graphviz DOT.

    Edge probability becomes the label and the pen width; when a
    ``trussness`` map is given, edges are coloured by level.
    """
    lines = [f"graph {_quote(name)} {{"]
    lines.append("  node [shape=circle, fontsize=10];")
    for u in sorted(graph.nodes(), key=str):
        lines.append(f"  {_quote(u)};")
    for u, v, p in sorted(
        graph.edges_with_probabilities(), key=lambda t: (str(t[0]), str(t[1]))
    ):
        attrs = [f'label="{p:.2f}"', f"penwidth={0.5 + 2.5 * p:.2f}"]
        if trussness is not None:
            k = trussness.get(edge_key(u, v))
            if k is not None:
                attrs.append(f'color="{_level_colour(k)}"')
                attrs.append(f'tooltip="trussness {k}"')
        lines.append(f"  {_quote(u)} -- {_quote(v)} [{', '.join(attrs)}];")
    lines.append("}")
    return "\n".join(lines) + "\n"


def hierarchy_to_dict(result: LocalTrussResult) -> dict[str, Any]:
    """Summarise a local decomposition as a JSON-serialisable dict.

    One entry per truss level, each listing its maximal trusses with
    node lists and quality metrics (density, PCC).
    """
    levels = []
    for k in range(2, result.k_max + 1):
        trusses = []
        for truss in result.maximal_trusses(k):
            trusses.append({
                "nodes": sorted(map(str, truss.nodes())),
                "n_nodes": truss.number_of_nodes(),
                "n_edges": truss.number_of_edges(),
                "density": probabilistic_density(truss),
                "pcc": probabilistic_clustering_coefficient(truss),
            })
        levels.append({"k": k, "n_trusses": len(trusses), "trusses": trusses})
    return {
        "gamma": result.gamma,
        "k_max": result.k_max,
        "n_edges": len(result.trussness),
        "levels": levels,
    }


def hierarchy_to_json(result: LocalTrussResult, path_or_file=None,
                      indent: int = 2) -> str:
    """Serialise :func:`hierarchy_to_dict`; optionally write to a file."""
    text = json.dumps(hierarchy_to_dict(result), indent=indent)
    if path_or_file is not None:
        if hasattr(path_or_file, "write"):
            path_or_file.write(text)
        else:
            with open(path_or_file, "w", encoding="utf-8") as handle:
                handle.write(text)
    return text


def write_gexf(
    graph: ProbabilisticGraph,
    path,
    trussness: dict[Edge, int] | None = None,
) -> None:
    """Write a GEXF file (via networkx) with probability/trussness attrs."""
    nx_graph = graph.to_networkx()
    if trussness is not None:
        for u, v in nx_graph.edges:
            k = trussness.get(edge_key(u, v))
            if k is not None:
                nx_graph[u][v]["trussness"] = k
    import networkx as nx

    nx.write_gexf(nx_graph, path)
