"""The reprolint engine: discovery, per-file rules, cross-file passes.

``run_lint`` is the single entry point used by the CLI, the test
suite, and CI. It walks the requested paths, runs the per-file rule
families over each parsed module, then the three cross-file passes (the
PAR003 task vocabulary, the EVT002 dead-phase check, and the CONC
call-graph pass for thread ownership and lock ordering), and finally
applies the suppression pragmas — producing both the active findings
(which gate the exit code) and the suppressed ones (which the JSON
reporter still records, so suppressions stay auditable).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import conc, det, evt, exc, par
from repro.analysis.context import ModuleContext
from repro.analysis.findings import (
    FAMILIES, RULE_IDS, RULES, UNSUPPRESSABLE, Finding,
)
from repro.analysis.pragmas import PragmaSheet, parse_pragmas
from repro.exceptions import ParameterError

__all__ = ["LintResult", "run_lint"]

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist"}


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    paths: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


def _discover(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                files.append(path)
            continue
        for candidate in sorted(path.rglob("*.py")):
            if not any(part in _SKIP_DIRS for part in candidate.parts):
                files.append(candidate)
    seen: set[Path] = set()
    unique = []
    for file in files:
        resolved = file.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(file)
    return unique


def _load_base_task_registry() -> set[str]:
    """Task kinds from the live ``repro.parallel.work.TASKS`` registry."""
    from repro.parallel.work import TASKS

    return set(TASKS)


def _validate_select(select: Sequence[str] | None) -> frozenset[str] | None:
    """Expand rule ids and family names ("CONC") to a rule-id set."""
    if select is None:
        return None
    chosen: set[str] = set()
    unknown: list[str] = []
    for token in select:
        if token in RULE_IDS:
            chosen.add(token)
        elif token in FAMILIES:
            chosen.update(
                rule.id for rule in RULES.values()
                if rule.family == token)
        else:
            unknown.append(token)
    if unknown:
        raise ParameterError(
            f"unknown rule id(s) for --select: "
            f"{', '.join(sorted(unknown))}; "
            f"known rules are {', '.join(sorted(RULE_IDS))} "
            f"and families {', '.join(FAMILIES)}"
        )
    return frozenset(chosen)


def run_lint(paths: Sequence[str | Path], *,
             select: Sequence[str] | None = None) -> LintResult:
    """Lint ``paths`` (files or directories) and return the result.

    ``select`` optionally restricts checking to the given rule ids or
    family names ("CONC" selects CONC001..CONC004); SUP/LNT
    diagnostics are always produced: they are findings about the lint
    run itself. Raises :class:`repro.exceptions.
    ParameterError` for paths that do not exist or unknown rule ids —
    the CLI maps that to exit code 2.
    """
    selected = _validate_select(select)
    roots = [Path(p) for p in paths]
    for root in roots:
        if not root.exists():
            raise ParameterError(f"lint path does not exist: {root}")
    files = _discover(roots)

    contexts: list[ModuleContext] = []
    sheets: dict[str, PragmaSheet] = {}
    raw_findings: list[Finding] = []

    # -- parse everything first: the cross-file passes need the full
    # vocabulary before any module is judged.
    for file in files:
        try:
            context = ModuleContext.parse(file)
        except (SyntaxError, UnicodeDecodeError) as err:
            line = getattr(err, "lineno", None) or 1
            raw_findings.append(Finding(
                rule="LNT001", path=str(file), line=line, col=0,
                message=f"file could not be parsed: {err}",
            ))
            continue
        contexts.append(context)
        sheets[context.display_path] = parse_pragmas(
            context.source, context.display_path)

    task_registry = _load_base_task_registry()
    registered_phases: dict[str, tuple[str, int]] = {}
    emitted_phases: set[str] = set()
    for context in contexts:
        task_registry |= par.collect_task_registrations(context)
        for phase, line in evt.collect_registered_phases(context).items():
            registered_phases.setdefault(
                phase, (context.display_path, line))
        emitted_phases |= evt.collect_emitted_phases(context)
    known_phases = evt.load_runtime_phases() | set(registered_phases)

    # -- per-file rule families ----------------------------------------
    conc_modules: list[conc.ModuleConc] = []
    for context in contexts:
        raw_findings.extend(det.check(context))
        raw_findings.extend(par.check(context, frozenset(task_registry)))
        raw_findings.extend(evt.check(context, frozenset(known_phases)))
        raw_findings.extend(exc.check(context))
        module = conc.collect(context, sheets[context.display_path])
        conc_modules.append(module)
        raw_findings.extend(module.findings)

    # -- CONC002/CONC003: thread ownership and lock ordering need the
    # whole call graph, so they run as the third cross-file pass.
    raw_findings.extend(conc.check_cross(conc_modules))

    # -- EVT002: dead phases (only those registered by scanned files,
    # so linting a fixture tree never indicts the real registry).
    for phase, (path, line) in sorted(registered_phases.items()):
        if phase not in emitted_phases:
            raw_findings.append(Finding(
                rule="EVT002", path=path, line=line, col=0,
                message=(
                    f"registered progress phase {phase!r} has no "
                    "emitter in the scanned tree; remove the "
                    "registration or restore the emitter"
                ),
            ))

    if selected is not None:
        raw_findings = [
            f for f in raw_findings
            if f.rule in selected or f.rule in UNSUPPRESSABLE
        ]

    # -- suppression pass ----------------------------------------------
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in raw_findings:
        sheet = sheets.get(finding.path)
        pragma = None
        if sheet is not None and finding.rule not in UNSUPPRESSABLE:
            pragma = sheet.suppression_for(finding.rule, finding.line)
        if pragma is None:
            active.append(finding)
        else:
            pragma.used_rules.add(finding.rule)
            suppressed.append(Finding(
                rule=finding.rule, path=finding.path, line=finding.line,
                col=finding.col, message=finding.message,
                suppressed=True, suppression_reason=pragma.reason,
            ))

    # -- SUP001/SUP002: pragma hygiene ---------------------------------
    for path, sheet in sheets.items():
        active.extend(sheet.malformed)
        for pragma, rule in sheet.unused():
            if selected is not None and rule not in selected:
                # Restricted runs cannot tell whether the pragma's
                # rule would have fired; only a full run judges it.
                continue
            active.append(Finding(
                rule="SUP001", path=path, line=pragma.line, col=0,
                message=(
                    f"suppression allow[{rule}] never matched a "
                    "finding; delete the stale pragma"
                ),
            ))

    active.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintResult(
        findings=active, suppressed=suppressed,
        files_scanned=len(files),
        paths=[str(p) for p in roots],
    )
