"""EXC rules: the exception-taxonomy protocol.

``repro.exceptions`` is the library's failure contract: callers catch
``ReproError``, the CLI maps taxonomy classes to exit codes, and the
harness's degradation paths dispatch on them. EXC001 keeps ``raise``
sites inside ``src/repro`` on the taxonomy; EXC002/EXC003 keep handlers
from swallowing what the taxonomy was built to surface.
"""

from __future__ import annotations

import ast

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding

__all__ = ["check"]

#: Builtin exceptions whose *raising* is part of some other, equally
#: explicit protocol: process exit, the cooperative-SIGINT path, and
#: abstract-method guards. StopIteration belongs to the iterator
#: protocol itself.
_RAISE_ALLOWLIST = frozenset({
    "SystemExit", "KeyboardInterrupt", "NotImplementedError",
    "StopIteration", "StopAsyncIteration",
})

#: Builtin exception classes EXC001 recognises (and rejects) by name.
#: Unknown names — caught-and-re-raised variables, classes defined in
#: the raising module, ``exc(...)`` through a parameter — are left
#: alone: the rule only claims what it can prove statically.
_BUILTIN_EXCEPTIONS = frozenset({
    "Exception", "BaseException", "ValueError", "TypeError", "KeyError",
    "IndexError", "AttributeError", "RuntimeError", "OSError", "IOError",
    "LookupError", "ArithmeticError", "ZeroDivisionError",
    "OverflowError", "AssertionError", "EOFError", "MemoryError",
    "BufferError", "ReferenceError", "UnicodeError", "FileNotFoundError",
    "FileExistsError", "PermissionError", "InterruptedError",
    "TimeoutError", "ConnectionError", "BrokenPipeError",
    "NameError", "ImportError", "ModuleNotFoundError",
})

_BROAD_HANDLER_TYPES = frozenset({"Exception", "BaseException"})


def _handler_type_names(handler: ast.ExceptHandler) -> list[str]:
    node = handler.type
    if node is None:
        return []
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for element in elements:
        if isinstance(element, ast.Name):
            names.append(element.id)
        elif isinstance(element, ast.Attribute):
            names.append(element.attr)
    return names


def _contains_bare_raise(handler: ast.ExceptHandler) -> bool:
    """Cleanup-and-re-raise handlers never swallow; exempt them.

    Only a *bare* ``raise`` counts — ``raise Wrapped(...) from err``
    replaces the exception type and still needs a narrow handler (or a
    justified pragma) to prove the breadth is intentional.
    """
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
    return False


def check(ctx: ModuleContext) -> list[Finding]:
    findings: list[Finding] = []

    def hit(rule: str, node: ast.AST, message: str) -> None:
        findings.append(Finding(
            rule=rule, path=ctx.display_path, line=node.lineno,
            col=node.col_offset, message=message,
        ))

    for node in ast.walk(ctx.tree):
        # -- EXC001: taxonomy raises (src/repro only) ------------------
        if isinstance(node, ast.Raise) and ctx.in_repro_package:
            exc = node.exc
            callee = exc.func if isinstance(exc, ast.Call) else exc
            name = None
            if isinstance(callee, ast.Name):
                name = callee.id
            if (name in _BUILTIN_EXCEPTIONS
                    and name not in _RAISE_ALLOWLIST):
                hit("EXC001", node,
                    f"raises builtin {name} from library code; raise "
                    "a repro.exceptions class (ReproError subclass) "
                    "so callers and the CLI can dispatch on the "
                    "taxonomy")

        if not isinstance(node, ast.ExceptHandler):
            continue

        # -- EXC002: bare except ---------------------------------------
        if node.type is None:
            hit("EXC002", node,
                "bare 'except:' also catches SystemExit and "
                "KeyboardInterrupt; catch concrete exceptions (or "
                "'except Exception' with a pragma if a catch-all is "
                "genuinely required)")
            continue

        # -- EXC003: broad except without re-raise ---------------------
        broad = [name for name in _handler_type_names(node)
                 if name in _BROAD_HANDLER_TYPES]
        if broad and not _contains_bare_raise(node):
            hit("EXC003", node,
                f"'except {broad[0]}' without a bare re-raise "
                "swallows everything the taxonomy distinguishes; "
                "narrow it to the concrete exception(s), or justify "
                "the catch-all with '# repro: allow[EXC003] reason'")
    return findings
