"""Per-module analysis context shared by every rule family.

A :class:`ModuleContext` wraps one parsed file with the bookkeeping the
rules keep re-needing: a child-to-parent map over the AST (the standard
library parses trees downward only), the module's dotted name recovered
from its path, the import alias table (so ``import numpy.random as nr``
still looks like ``numpy.random`` to the DET rules), and scope-chain
walking for the PAR lifecycle checks.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path

__all__ = ["ModuleContext", "CORE_ALGORITHM_PACKAGES", "dotted_name"]

#: Sub-packages holding the paper's algorithms and data structures —
#: the modules whose outputs must replay bit-identically and therefore
#: may not consult wall clocks or entropy sources (DET002). The runtime
#: and parallel layers legitimately use monotonic time (deadlines,
#: pump intervals, timeouts) and are excluded.
CORE_ALGORITHM_PACKAGES = (
    "repro.core", "repro.truss", "repro.graphs", "repro.apps",
    "repro.datasets",
)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _module_name(path: Path) -> str | None:
    """Dotted module name, anchored at the ``repro`` package if present.

    ``src/repro/core/local.py`` -> ``repro.core.local``; files outside
    the package (benchmarks, examples) resolve to None and only the
    path-independent rules apply to them. Fixture corpora mirror the
    package layout (``lint_fixtures/repro/core/...``) to opt into the
    package-scoped rules.
    """
    parts = list(path.parts)
    if "repro" not in parts:
        return None
    start = parts.index("repro")
    module_parts = parts[start:]
    module_parts[-1] = path.stem
    if module_parts[-1] == "__init__":
        module_parts.pop()
    return ".".join(module_parts)


class ModuleContext:
    """One file's source, AST, and derived lookup tables."""

    def __init__(self, path: Path, source: str, tree: ast.Module) -> None:
        self.path = path
        self.display_path = str(path)
        self.source = source
        self.tree = tree
        self.module = _module_name(path)
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        #: alias -> imported dotted module ("np" -> "numpy",
        #: "nr" -> "numpy.random").
        self.module_aliases: dict[str, str] = {}
        #: local name -> "module.attr" for from-imports
        #: ("seed" -> "numpy.random.seed").
        self.symbol_imports: dict[str, str] = {}
        self._collect_imports()

    @classmethod
    def parse(cls, path: Path) -> "ModuleContext":
        source = path.read_text(encoding="utf-8")
        return cls(path, source, ast.parse(source, filename=str(path)))

    # -- package scoping ------------------------------------------------
    @property
    def in_repro_package(self) -> bool:
        return self.module is not None and (
            self.module == "repro" or self.module.startswith("repro.")
        )

    @property
    def is_core_algorithm(self) -> bool:
        if self.module is None:
            return False
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in CORE_ALGORITHM_PACKAGES
        )

    # -- imports --------------------------------------------------------
    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.module_aliases[alias.asname] = alias.name
                    else:
                        # "import a.b" binds the name "a" to package "a"
                        head = alias.name.split(".")[0]
                        self.module_aliases[head] = head
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:
                    continue  # relative imports never hide stdlib names
                for alias in node.names:
                    self.symbol_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolves_to(self, node: ast.AST) -> str | None:
        """Fully-qualified dotted name of an expression, if derivable.

        ``np.random.seed`` with ``import numpy as np`` resolves to
        ``numpy.random.seed``; ``seed`` after ``from numpy.random
        import seed`` resolves the same way.
        """
        name = dotted_name(node)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        if head in self.module_aliases:
            base = self.module_aliases[head]
            return f"{base}.{rest}" if rest else base
        if head in self.symbol_imports:
            target = self.symbol_imports[head]
            return f"{target}.{rest}" if rest else target
        return name

    # -- scopes ---------------------------------------------------------
    def scope_chain(self, node: ast.AST) -> Iterator[ast.AST]:
        """Yield enclosing FunctionDef/ClassDef nodes, then the module."""
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef, ast.Module)):
                yield current
            current = self.parents.get(current)

    def enclosing_function(
            self, node: ast.AST) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for scope in self.scope_chain(node):
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return scope
        return None

    def nested_function_names(self, node: ast.AST) -> set[str]:
        """Names of functions defined inside the function holding ``node``.

        Used by PAR002: a callable with one of these names cannot be
        pickled to a worker process.
        """
        function = self.enclosing_function(node)
        if function is None:
            return set()
        names: set[str] = set()
        for child in ast.walk(function):
            if (isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and child is not function):
                names.add(child.name)
        return names
