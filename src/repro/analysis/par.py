"""PAR rules: parallel-safety invariants of the supervised pool.

The parallel layer's contracts are structural: shared segments are
owned (created, closed, unlinked) by exactly one scope chain
(``repro/parallel/shared.py``), work travels to forked workers only as
picklable top-level callables, and the task vocabulary is the closed
``TASKS`` registry in ``repro/parallel/work.py`` that the supervised
pool routes by name. Each rule here rejects the code shape that breaks
one of those contracts before it can deadlock a pool or leak
``/dev/shm`` pages.
"""

from __future__ import annotations

import ast

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding

__all__ = ["check", "collect_task_registrations"]

#: Attribute methods that hand a callable to another process (or a
#: thread pool that may be swapped for one).
_SUBMIT_METHODS = ("submit", "apply_async", "apply")

#: The one module allowed to cross the packed/unpacked boundary; every
#: other ``np.unpackbits`` call re-inflates the presence bits 8x
#: (PAR004).
_UNPACK_HOME = "repro.core.kernels"


def _is_shared_memory_create(node: ast.Call) -> bool:
    """True for ``SharedMemory(..., create=True, ...)`` calls."""
    callee = node.func
    name = callee.attr if isinstance(callee, ast.Attribute) else (
        callee.id if isinstance(callee, ast.Name) else None)
    if name != "SharedMemory":
        return False
    for keyword in node.keywords:
        if keyword.arg == "create" and isinstance(
                keyword.value, ast.Constant):
            return bool(keyword.value.value)
    return False


def _scope_releases_segment(scope: ast.AST) -> bool:
    """Does ``scope`` contain a close() call plus unlink()/finalize?

    The pairing contract from ``docs/performance.md``: whoever creates
    a segment must also be the scope chain that unmaps (``close``) and
    removes (``unlink``) it, or that registers a ``weakref.finalize``
    backstop doing the same.
    """
    saw_close = saw_unlink = saw_finalize = False
    for node in ast.walk(scope):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        if isinstance(callee, ast.Attribute):
            if callee.attr == "close":
                saw_close = True
            elif callee.attr == "unlink":
                saw_unlink = True
            elif callee.attr == "finalize":
                saw_finalize = True
        elif isinstance(callee, ast.Name) and callee.id == "finalize":
            saw_finalize = True
    return saw_finalize or (saw_close and saw_unlink)


def _callable_argument(node: ast.Call) -> ast.AST | None:
    """The callable handed off by a pool/process call, if this is one."""
    for keyword in node.keywords:
        if keyword.arg == "target":
            return keyword.value
    if isinstance(node.func, ast.Attribute) and (
            node.func.attr in _SUBMIT_METHODS) and node.args:
        return node.args[0]
    return None


def collect_task_registrations(ctx: ModuleContext) -> set[str]:
    """Task kinds registered by ``TASKS = {"name": fn, ...}`` literals."""
    kinds: set[str] = set()
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and t.id == "TASKS"
                   for t in node.targets):
            continue
        if isinstance(node.value, ast.Dict):
            for key in node.value.keys:
                if isinstance(key, ast.Constant) and isinstance(
                        key.value, str):
                    kinds.add(key.value)
    return kinds


def _map_task_kind(node: ast.Call) -> ast.Constant | None:
    """The literal task-kind argument of an ``executor.map(...)`` call."""
    if not (isinstance(node.func, ast.Attribute)
            and node.func.attr == "map" and node.args):
        return None
    first = node.args[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return first
    return None


def check(ctx: ModuleContext, task_registry: frozenset[str]) -> list[Finding]:
    findings: list[Finding] = []

    def hit(rule: str, node: ast.AST, message: str) -> None:
        findings.append(Finding(
            rule=rule, path=ctx.display_path, line=node.lineno,
            col=node.col_offset, message=message,
        ))

    top_level_functions = {
        stmt.name for stmt in ctx.tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue

        # -- PAR001: unpaired SharedMemory creation --------------------
        if _is_shared_memory_create(node):
            if not any(_scope_releases_segment(scope)
                       for scope in ctx.scope_chain(node)):
                hit("PAR001", node,
                    "SharedMemory(create=True) without a paired "
                    "close()/unlink() or weakref.finalize in the "
                    "enclosing function/class/module; the segment "
                    "leaks in /dev/shm if this scope unwinds")

        # -- PAR002: non-top-level pool callables ----------------------
        callable_arg = _callable_argument(node)
        if callable_arg is not None:
            if isinstance(callable_arg, ast.Lambda):
                hit("PAR002", callable_arg,
                    "lambda handed to a worker dispatch; lambdas do "
                    "not pickle across the fork/pipe boundary — use a "
                    "module-level function")
            elif isinstance(callable_arg, ast.Name):
                if callable_arg.id in ctx.nested_function_names(node):
                    hit("PAR002", callable_arg,
                        f"nested function {callable_arg.id!r} handed "
                        "to a worker dispatch; nested functions do "
                        "not pickle — hoist it to module level")

        # -- PAR004: unpackbits outside the kernels module -------------
        if (ctx.in_repro_package and ctx.module != _UNPACK_HOME
                and ctx.resolves_to(node.func) == "numpy.unpackbits"):
            hit("PAR004", node,
                "np.unpackbits outside repro/core/kernels.py "
                "materialises the 8x boolean blow-up the packed "
                "popcount kernels exist to avoid (and re-inflates "
                "spilled sample sets into RAM); go through "
                "repro.core.kernels, which unpacks only the partial "
                "candidate rows")

        # -- PAR003: unregistered task kinds ---------------------------
        kind = _map_task_kind(node)
        if kind is not None and kind.value not in task_registry:
            registered = ", ".join(sorted(task_registry)) or "(none)"
            hit("PAR003", kind,
                f"task kind {kind.value!r} is not registered in "
                f"repro/parallel/work.py TASKS (registered: "
                f"{registered}); the pool would raise KeyError "
                "inside a worker")

    # -- PAR002, registry side: TASKS values must be top-level defs ----
    for stmt in ctx.tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and t.id == "TASKS"
                   for t in stmt.targets):
            continue
        if not isinstance(stmt.value, ast.Dict):
            continue
        for key, value in zip(stmt.value.keys, stmt.value.values):
            label = key.value if isinstance(key, ast.Constant) else "?"
            if isinstance(value, ast.Lambda):
                hit("PAR002", value,
                    f"task {label!r} is registered as a lambda; "
                    "workers receive tasks by name but the callable "
                    "must still be a picklable module-level function")
            elif isinstance(value, ast.Name) and (
                    value.id not in top_level_functions
                    and value.id not in ctx.symbol_imports):
                hit("PAR002", value,
                    f"task {label!r} is registered as {value.id!r}, "
                    "which is neither a top-level function of this "
                    "module nor an import; pool workers cannot "
                    "unpickle it")

    return findings
