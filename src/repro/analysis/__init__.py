"""reprolint — static enforcement of the repo's reproducibility contracts.

The runtime test suites prove the invariants hold on the code paths
they exercise; this package proves them on every code path, before
anything runs. Five rule families check the contracts earlier PRs
established (see ``docs/static-analysis.md`` for the catalogue and
rationale):

* **DET** — determinism: no module-global RNG, no wall clock inside
  core algorithm modules, no hash-order iteration feeding an
  order-sensitive fold.
* **PAR** — parallel safety: paired shared-memory lifecycle, picklable
  pool callables, the closed task-kind registry.
* **EVT** — progress protocol: every emitted phase literal is in
  ``repro.runtime.progress.KNOWN_PHASES``, and every registered phase
  still has an emitter.
* **EXC** — exception taxonomy: library raises stay on
  ``repro.exceptions``; no bare or silently-broad handlers.
* **CONC** — concurrency discipline: ``guarded-by``/``owned-by``
  annotations enforced by a flow-aware pass — lock-guarded attribute
  access, sole-writer thread ownership, an acyclic global lock order,
  and no blocking calls while holding a lock.

Findings are suppressed line-by-line with justified pragmas::

    # repro: allow[EXC003] salvage is best-effort by design
    except Exception:
        pass

Run it as ``repro lint [paths...]`` (exit 0 clean / 1 findings /
2 usage) or programmatically::

    from repro.analysis import run_lint
    result = run_lint(["src/repro", "benchmarks", "examples"])
    assert result.clean, [f.render() for f in result.findings]
"""

from repro.analysis.engine import LintResult, run_lint
from repro.analysis.findings import FAMILIES, RULE_IDS, RULES, Finding
from repro.analysis.report import (
    JSON_SCHEMA_VERSION,
    render_json,
    render_text,
)

__all__ = [
    "Finding",
    "LintResult",
    "RULES",
    "RULE_IDS",
    "FAMILIES",
    "JSON_SCHEMA_VERSION",
    "run_lint",
    "render_text",
    "render_json",
]
