"""The reprolint rule catalogue and the :class:`Finding` record.

Every diagnostic the checker can produce is declared here, once, with
the invariant it protects. The catalogue is what the reporters, the
pragma parser (which rejects unknown rule ids), the CLI ``--select``
validation, and ``docs/static-analysis.md`` all key off.

Rule families
-------------
``DET``  determinism — the bit-identical-across-worker-counts contract
         (docs/performance.md) dies the moment hidden global state or
         hash-order iteration feeds a result.
``PAR``  parallel safety — shared-memory lifecycle, picklable task
         callables, and the closed task-kind registry in
         ``repro/parallel/work.py``.
``EVT``  progress protocol — the machine-readable phase vocabulary
         exported as ``repro.runtime.progress.KNOWN_PHASES``.
``EXC``  exception taxonomy — ``repro.exceptions`` is the only way the
         library signals failure; broad handlers must justify
         themselves.
``CONC`` concurrency discipline — the declared threading invariants of
         the serving and parallel layers (``# repro: guarded-by[...]``
         and ``# repro: owned-by[...]`` annotations): lock-guarded
         attribute access, sole-writer thread ownership, global lock
         ordering, and no blocking calls while holding a lock.
``SUP``  the suppression system's own hygiene (unused or malformed
         pragmas).
``LNT``  checker infrastructure (files the checker could not parse).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding", "Rule", "RULES", "RULE_IDS", "FAMILIES"]


@dataclass(frozen=True)
class Rule:
    """One catalogue entry: a stable id, a summary, and its rationale."""

    id: str
    family: str
    summary: str
    rationale: str


RULES: dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            "DET001", "DET",
            "module-global RNG",
            "Seeding or drawing from process-global generator state "
            "(random.*, np.random.seed, legacy RandomState) makes "
            "results depend on import order and on what every other "
            "call site drew before; all randomness must flow from an "
            "explicit per-seed numpy SeedSequence/Generator.",
        ),
        Rule(
            "DET002", "DET",
            "wall-clock or entropy source in a core algorithm module",
            "time/datetime/uuid/os.urandom/secrets inside the "
            "decomposition algorithms leak the machine and the moment "
            "into results that must replay bit-identically; timing "
            "belongs in benchmarks and the runtime layer.",
        ),
        Rule(
            "DET003", "DET",
            "unordered iteration feeds order-sensitive accumulation",
            "Iterating a set (or .keys() of an untracked mapping) while "
            "appending to a list, extending, or folding with += makes "
            "the result depend on hash order, which varies across "
            "processes — the exact failure class that breaks "
            "bit-identical output across worker counts. Wrap the "
            "iterable in sorted(...) with a canonical key.",
        ),
        Rule(
            "PAR001", "PAR",
            "SharedMemory created without a paired release",
            "A SharedMemory(create=True) segment outlives the process "
            "unless some scope in the same function/class/module chain "
            "calls close() and unlink() (or registers a "
            "weakref.finalize); a missed pairing leaks /dev/shm pages "
            "until reboot.",
        ),
        Rule(
            "PAR002", "PAR",
            "pool-dispatched callable is not a top-level function",
            "Lambdas and nested functions do not pickle, so they die in "
            "the fork/pipe boundary of the supervised pool (or silently "
            "capture parent state that workers will not see refreshed); "
            "task callables and Process targets must be module-level "
            "defs.",
        ),
        Rule(
            "PAR003", "PAR",
            "task kind not registered in repro/parallel/work.py",
            "The supervised pool routes tasks by name through the "
            "closed TASKS registry; dispatching an unregistered kind "
            "raises KeyError inside a worker, which supervision then "
            "misreads as an application failure and replays.",
        ),
        Rule(
            "PAR004", "PAR",
            "np.unpackbits outside repro.core.kernels",
            "Unpacking the presence bits materialises an 8x boolean "
            "blow-up per call site — in every worker at once under the "
            "pool, and straight back into RAM for spilled (memmapped) "
            "sample sets, defeating the memory budget that triggered "
            "the spill. All packed/unpacked crossings go through the "
            "popcount kernels in repro/core/kernels.py, which unpack "
            "only the partial candidate rows classification needs.",
        ),
        Rule(
            "EVT001", "EVT",
            "unknown progress phase literal",
            "Every emitted phase must belong to "
            "repro.runtime.progress.KNOWN_PHASES — budgets, interrupt "
            "guards, fault plans, checkpoints, and the parallel pump "
            "all dispatch on these strings, and a typo degrades "
            "silently into an event nobody handles.",
        ),
        Rule(
            "EVT002", "EVT",
            "registered phase has no emitter (dead event)",
            "A phase in the registry that nothing emits is a stale "
            "contract: hooks written against it can never fire, and "
            "the docstring table drifts from reality. Remove the "
            "registration or restore the emitter.",
        ),
        Rule(
            "EXC001", "EXC",
            "raise outside the repro.exceptions taxonomy",
            "Library code must raise ReproError subclasses so callers "
            "can catch one base class and the CLI can map failures to "
            "exit codes; raising bare builtins (ValueError, "
            "RuntimeError, ...) bypasses the contract documented in "
            "repro/exceptions.py.",
        ),
        Rule(
            "EXC002", "EXC",
            "bare except:",
            "A bare except catches SystemExit and KeyboardInterrupt, "
            "turning a clean shutdown (or the cooperative SIGINT "
            "protocol's exit-130 path) into silently swallowed "
            "control flow.",
        ),
        Rule(
            "EXC003", "EXC",
            "broad except without re-raise",
            "except Exception/BaseException that does not re-raise "
            "swallows errors the taxonomy was built to surface "
            "(cleanup-and-bare-raise is exempt). Narrow the handler to "
            "the concrete exceptions, or keep the catch-all and "
            "justify it with a pragma.",
        ),
        Rule(
            "CONC001", "CONC",
            "guarded attribute accessed without its lock",
            "An attribute declared '# repro: guarded-by[self._lock]' at "
            "its __init__ assignment is shared mutable state; reading "
            "or writing it outside a 'with <that lock>:' block (or a "
            "threading.Condition wrapping it) is a data race — exactly "
            "the unlocked stats counters PR 8's review caught by hand. "
            "Methods whose names end in _locked are exempt: the suffix "
            "asserts every caller already holds the lock.",
        ),
        Rule(
            "CONC002", "CONC",
            "owned method or attribute touched from the wrong thread",
            "A method or attribute declared '# repro: owned-by[role]' "
            "has a sole-writer thread (the breaker's mutators belong to "
            "the builder thread); calling or mutating it from code "
            "reachable from a different role's entry points breaks the "
            "single-writer design — the handler-thread allow() call "
            "that consumed the breaker's half-open probe permit.",
        ),
        Rule(
            "CONC003", "CONC",
            "lock-order cycle (potential deadlock)",
            "Two locks acquired in different nested orders on different "
            "code paths can deadlock the moment both paths run "
            "concurrently; the acquisition graph built from nested "
            "'with' blocks (including through intra-package calls) "
            "must stay acyclic — pick one global order.",
        ),
        Rule(
            "CONC004", "CONC",
            "blocking call while holding a lock",
            "time.sleep, pipe/socket recv/accept, subprocess, .join() "
            "and pool dispatch calls made inside a 'with <lock>:' "
            "block stall every thread queued on that lock behind one "
            "slow operation; move the blocking call outside the "
            "critical section (Condition.wait on the held lock is "
            "fine — it releases the lock while waiting).",
        ),
        Rule(
            "SUP001", "SUP",
            "unused suppression pragma",
            "A '# repro: allow[...]' pragma whose rule no longer fires "
            "on that line is dead weight that hides future regressions "
            "of the same rule; delete it.",
        ),
        Rule(
            "SUP002", "SUP",
            "malformed suppression pragma",
            "A comment that starts with '# repro:' but is not "
            "'allow[RULE001, ...] reason' (unknown rule id, or a "
            "missing justification) suppresses nothing; every pragma "
            "must name real rules and say why.",
        ),
        Rule(
            "LNT001", "LNT",
            "file could not be parsed",
            "A file the checker cannot parse is a file none of the "
            "invariants are checked on; syntax errors never pass.",
        ),
    )
}

RULE_IDS = frozenset(RULES)
FAMILIES = tuple(sorted({rule.family for rule in RULES.values()}))

#: Findings from these rules cannot be pragma-suppressed: SUP findings
#: are about the pragmas themselves, LNT001 means the file's pragmas
#: were never even parsed.
UNSUPPRESSABLE = frozenset({"SUP001", "SUP002", "LNT001"})


@dataclass(frozen=True)
class Finding:
    """One diagnostic: ``rule`` at ``path:line:col`` with a message."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    suppression_reason: str | None = field(default=None, compare=False)

    @property
    def family(self) -> str:
        return RULES[self.rule].family

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        return f"{self.location()}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "family": self.family,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
            "suppression_reason": self.suppression_reason,
        }
