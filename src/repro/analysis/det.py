"""DET rules: the determinism invariants behind bit-identical replay.

The equivalence suite (``tests/test_parallel.py``) proves today's call
graph produces byte-identical output for every worker count; these
rules keep *new* call sites from quietly re-introducing the three ways
that contract historically breaks — global RNG state, wall-clock
reads inside algorithms, and hash-order iteration feeding an
order-sensitive fold.
"""

from __future__ import annotations

import ast

from repro.analysis.context import ModuleContext, dotted_name
from repro.analysis.findings import Finding

__all__ = ["check"]

#: numpy.random attributes that are *explicit-stream* constructors and
#: therefore fine; everything else on numpy.random touches the legacy
#: module-global generator.
_NP_RANDOM_OK = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: stdlib ``random`` module attributes that do not draw from or reseed
#: the shared global generator (explicit instances are fine — their
#: seeding is the caller's, auditable, problem).
_STDLIB_RANDOM_OK = frozenset({"Random", "SystemRandom"})

#: Fully-qualified callables that read the wall clock or an entropy
#: source (DET002, core algorithm modules only). ``time.monotonic`` and
#: friends are listed too: any time reading inside an algorithm module
#: implies time-dependent control flow.
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
    "uuid.uuid1", "uuid.uuid4",
    "os.urandom", "os.getrandom",
    "secrets.token_bytes", "secrets.token_hex", "secrets.randbits",
    "secrets.choice", "secrets.randbelow",
})


def _global_rng_message(qualified: str) -> str | None:
    """DET001 message for a resolved use of ``qualified``, if it is one."""
    if qualified.startswith("random."):
        attr = qualified.split(".", 1)[1]
        if "." not in attr and attr not in _STDLIB_RANDOM_OK:
            return (f"use of the process-global RNG ({qualified}); "
                    "derive randomness from an explicit "
                    "numpy.random.SeedSequence stream instead")
    if qualified.startswith("numpy.random."):
        attr = qualified.split(".", 2)[2]
        if "." not in attr and attr not in _NP_RANDOM_OK:
            return (f"use of numpy's legacy global RNG ({qualified}); "
                    "use numpy.random.default_rng(SeedSequence(...))")
    return None


def _imported_qualified(ctx: ModuleContext, node: ast.AST) -> str | None:
    """Resolve a use *through the import table only*.

    A local variable that merely shadows a module name (a parameter
    called ``random``) must not fire, so the head of the chain has to
    be an actual import binding of this module.
    """
    name = dotted_name(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    if head in ctx.module_aliases:
        base = ctx.module_aliases[head]
        return f"{base}.{rest}" if rest else base
    if head in ctx.symbol_imports:
        target = ctx.symbol_imports[head]
        return f"{target}.{rest}" if rest else target
    return None


def _unordered_reason(iterable: ast.AST) -> str | None:
    """Why ``iterable`` has no defined order, or None if it does.

    Recognised unordered forms: set literals and comprehensions,
    ``set(...)``/``frozenset(...)`` calls, set-algebra method calls
    (``.intersection(...)`` etc.), and ``.keys()`` calls. A
    ``sorted(...)`` wrapper changes the node type, so wrapped
    iterables never match.
    """
    if isinstance(iterable, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(iterable, ast.Call):
        callee = iterable.func
        if isinstance(callee, ast.Name) and callee.id in (
                "set", "frozenset"):
            return f"a {callee.id}()"
        if isinstance(callee, ast.Attribute):
            if callee.attr == "keys":
                return ".keys() of a mapping"
            if callee.attr in ("intersection", "union", "difference",
                              "symmetric_difference"):
                return f"a set .{callee.attr}()"
    return None


def _set_valued_names(function: ast.AST) -> set[str]:
    """Names assigned an unordered expression anywhere in ``function``."""
    names: set[str] = set()
    for node in ast.walk(function):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if isinstance(value, (ast.Set, ast.SetComp)) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("set", "frozenset")
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _order_sensitive_sink(body: list[ast.stmt]) -> str | None:
    """First order-sensitive accumulation inside a loop body.

    Matches ``.append(...)``, ``.extend(...)``, and augmented
    ``+=``/``-=`` folds — the sinks whose result depends on visit
    order. Adding to a set or assigning dict keys is order-free (for
    equal keys, last write wins identically) and deliberately not
    matched.
    """
    for stmt in body:
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("append", "extend")):
                return f".{node.func.attr}(...)"
            if isinstance(node, ast.AugAssign) and isinstance(
                    node.op, (ast.Add, ast.Sub)):
                return "an augmented +=/-= fold"
    return None


def check(ctx: ModuleContext) -> list[Finding]:
    findings: list[Finding] = []

    def hit(rule: str, node: ast.AST, message: str) -> None:
        findings.append(Finding(
            rule=rule, path=ctx.display_path, line=node.lineno,
            col=node.col_offset, message=message,
        ))

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Attribute) or (
                isinstance(node, ast.Name)
                and node.id in ctx.symbol_imports):
            qualified = _imported_qualified(ctx, node)
            if qualified is not None:
                message = _global_rng_message(qualified)
                if message is not None:
                    hit("DET001", node, message)
                elif ctx.is_core_algorithm and qualified in _WALL_CLOCK:
                    hit("DET002", node,
                        f"{qualified} inside a core algorithm module; "
                        "results must not depend on the clock or "
                        "machine entropy — keep timing in benchmarks/ "
                        "or the runtime layer")

        if isinstance(node, ast.For):
            reason = _unordered_reason(node.iter)
            if reason is None and isinstance(node.iter, ast.Name):
                function = ctx.enclosing_function(node)
                if function is not None and (
                        node.iter.id in _set_valued_names(function)):
                    reason = f"the set-valued name {node.iter.id!r}"
            if reason is not None:
                sink = _order_sensitive_sink(node.body)
                if sink is not None:
                    hit("DET003", node,
                        f"iterating {reason} feeds {sink}; hash order "
                        "varies across processes — wrap the iterable "
                        "in sorted(...) with a canonical key")
    return findings
