"""Reprolint directives: suppressions and concurrency annotations.

Suppression pragmas — ``# repro: allow[DET001] why it is safe here`` —
silence the named rule(s) on their own line, or — when the comment
stands alone on a line — on the next line, so both styles work::

    for w in common:  # repro: allow[DET003] folded into a max(), order-free
        best = max(best, score[w])

    # repro: allow[EXC003] salvage is best-effort; any pipe state is fine
    except Exception:
        pass

The reason text is mandatory: an unjustified suppression is exactly the
kind of silent bypass reprolint exists to prevent.

Concurrency annotations share the ``# repro:`` prefix and the same
line-coverage convention, but *declare* invariants for the CONC rule
family (:mod:`repro.analysis.conc`) instead of silencing findings::

    self.stats = {...}  # repro: guarded-by[self._stats_lock]

    # repro: owned-by[builder]
    def allow(self) -> bool: ...

Unknown rule ids and syntax the parser cannot read are reported as
SUP002 rather than being ignored, and pragmas that never matched a
finding come back as SUP001 (see :mod:`repro.analysis.engine`).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.findings import RULE_IDS, Finding

__all__ = ["Annotation", "Pragma", "PragmaSheet", "parse_pragmas"]

#: Anything that *announces* itself as a reprolint directive. Scanning
#: for this prefix first (rather than only for well-formed pragmas)
#: is what lets us flag near-miss syntax instead of silently ignoring
#: a suppression the author believes is active.
_PRAGMA_PREFIX = re.compile(r"#\s*repro\s*:")

_PRAGMA = re.compile(
    r"#\s*repro\s*:\s*allow\s*\[(?P<rules>[^\]]*)\]\s*(?P<reason>.*)$"
)

_RULE_TOKEN = re.compile(r"^[A-Z]{3,4}\d{3}$")

_DIRECTIVE = re.compile(
    r"#\s*repro\s*:\s*(?P<kind>guarded-by|owned-by)\s*"
    r"\[(?P<arg>[^\]]*)\]\s*(?P<note>.*)$"
)

#: guarded-by takes a lock expression: ``self._lock`` or a bare name.
_GUARD_TOKEN = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z0-9_]+)*$")

#: owned-by takes a thread-role name: ``builder``, ``pool-worker``, ...
_ROLE_TOKEN = re.compile(r"^[a-z][a-z0-9_-]*$")


@dataclass
class Pragma:
    """One parsed suppression comment."""

    line: int
    rules: tuple[str, ...]
    reason: str
    #: True when the pragma is the only thing on its line, in which
    #: case it also covers the following line.
    own_line: bool
    used: bool = False
    used_rules: set = field(default_factory=set)

    def covers(self, line: int) -> bool:
        if line == self.line:
            return True
        return self.own_line and line == self.line + 1


@dataclass
class Annotation:
    """One concurrency declaration: guarded-by[lock] or owned-by[role].

    An annotation attaches to the statement on its line (trailing
    comment) or on the next line (own-line comment) — the same coverage
    convention as :class:`Pragma`. What it may legally attach to is the
    CONC analysis's business (:mod:`repro.analysis.conc`): a
    ``self.attr = ...`` assignment inside ``__init__`` for either kind,
    or a ``def`` line for ``owned-by``.
    """

    line: int
    kind: str  # "guarded-by" | "owned-by"
    arg: str
    own_line: bool
    #: Set by conc.collect once the annotation finds its statement;
    #: dangling annotations are reported as SUP002.
    attached: bool = False

    def covers(self, line: int) -> bool:
        if line == self.line:
            return True
        return self.own_line and line == self.line + 1


class PragmaSheet:
    """All reprolint directives of one module, with match bookkeeping."""

    def __init__(self, pragmas: list[Pragma], malformed: list[Finding],
                 annotations: list[Annotation] | None = None) -> None:
        self.pragmas = pragmas
        self.malformed = malformed
        self.annotations: list[Annotation] = annotations or []

    def suppression_for(self, rule: str, line: int) -> Pragma | None:
        """The pragma suppressing ``rule`` at ``line``, if any."""
        for pragma in self.pragmas:
            if rule in pragma.rules and pragma.covers(line):
                return pragma
        return None

    def unused(self) -> list[tuple[Pragma, str]]:
        """(pragma, rule) pairs that never matched a finding."""
        stale = []
        for pragma in self.pragmas:
            for rule in pragma.rules:
                if rule not in pragma.used_rules:
                    stale.append((pragma, rule))
        return stale


def parse_pragmas(source: str, path: str) -> PragmaSheet:
    """Extract every directive (and directive near-miss) from ``source``."""
    pragmas: list[Pragma] = []
    malformed: list[Finding] = []
    annotations: list[Annotation] = []
    source_lines = source.splitlines()

    def bad(line: int, col: int, why: str) -> None:
        malformed.append(Finding(
            rule="SUP002", path=path, line=line, col=col,
            message=f"malformed suppression pragma: {why}",
        ))

    def is_own_line(line: int) -> bool:
        return source_lines[line - 1].strip().startswith("#")

    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            tok for tok in tokens if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The engine reports the file itself as LNT001; nothing to do.
        return PragmaSheet([], [])

    for tok in comments:
        text = tok.string
        if not _PRAGMA_PREFIX.match(text):
            continue
        line, col = tok.start
        match = _PRAGMA.match(text)
        if match is None:
            directive = _DIRECTIVE.match(text)
            if directive is not None:
                kind = directive.group("kind")
                arg = directive.group("arg").strip()
                token_re = (_GUARD_TOKEN if kind == "guarded-by"
                            else _ROLE_TOKEN)
                if not token_re.match(arg):
                    what = ("a lock expression like 'self._lock'"
                            if kind == "guarded-by"
                            else "a thread-role name like 'builder'")
                    bad(line, col,
                        f"{kind}[{arg}] — expected {what}")
                    continue
                annotations.append(Annotation(
                    line=line, kind=kind, arg=arg,
                    own_line=is_own_line(line)))
                continue
            bad(line, col,
                "expected '# repro: allow[RULE001, ...] reason', "
                "'# repro: guarded-by[lock]' or "
                "'# repro: owned-by[role]'")
            continue
        rules = tuple(
            token.strip() for token in match.group("rules").split(",")
            if token.strip()
        )
        reason = match.group("reason").strip()
        if not rules:
            bad(line, col, "no rule ids inside allow[...]")
            continue
        unknown = [r for r in rules if not _RULE_TOKEN.match(r)
                   or r not in RULE_IDS]
        if unknown:
            bad(line, col,
                f"unknown rule id(s) {', '.join(unknown)}")
            continue
        if not reason:
            bad(line, col,
                f"allow[{', '.join(rules)}] is missing its "
                "justification — say why the finding is safe here")
            continue
        pragmas.append(Pragma(line=line, rules=rules, reason=reason,
                              own_line=is_own_line(line)))
    return PragmaSheet(pragmas, malformed, annotations)
