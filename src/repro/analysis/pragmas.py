"""Suppression pragmas: ``# repro: allow[DET001] why it is safe here``.

A pragma suppresses the named rule(s) on its own line, or — when it
stands alone on a comment line — on the next line, so both styles work::

    for w in common:  # repro: allow[DET003] folded into a max(), order-free
        best = max(best, score[w])

    # repro: allow[EXC003] salvage is best-effort; any pipe state is fine
    except Exception:
        pass

The reason text is mandatory: an unjustified suppression is exactly the
kind of silent bypass reprolint exists to prevent. Unknown rule ids and
syntax the parser cannot read are reported as SUP002 rather than being
ignored, and pragmas that never matched a finding come back as SUP001
(see :mod:`repro.analysis.engine`).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.findings import RULE_IDS, Finding

__all__ = ["Pragma", "PragmaSheet", "parse_pragmas"]

#: Anything that *announces* itself as a reprolint directive. Scanning
#: for this prefix first (rather than only for well-formed pragmas)
#: is what lets us flag near-miss syntax instead of silently ignoring
#: a suppression the author believes is active.
_PRAGMA_PREFIX = re.compile(r"#\s*repro\s*:")

_PRAGMA = re.compile(
    r"#\s*repro\s*:\s*allow\s*\[(?P<rules>[^\]]*)\]\s*(?P<reason>.*)$"
)

_RULE_TOKEN = re.compile(r"^[A-Z]{3}\d{3}$")


@dataclass
class Pragma:
    """One parsed suppression comment."""

    line: int
    rules: tuple[str, ...]
    reason: str
    #: True when the pragma is the only thing on its line, in which
    #: case it also covers the following line.
    own_line: bool
    used: bool = False
    used_rules: set = field(default_factory=set)

    def covers(self, line: int) -> bool:
        if line == self.line:
            return True
        return self.own_line and line == self.line + 1


class PragmaSheet:
    """All pragmas of one module, with match bookkeeping."""

    def __init__(self, pragmas: list[Pragma], malformed: list[Finding]):
        self.pragmas = pragmas
        self.malformed = malformed

    def suppression_for(self, rule: str, line: int) -> Pragma | None:
        """The pragma suppressing ``rule`` at ``line``, if any."""
        for pragma in self.pragmas:
            if rule in pragma.rules and pragma.covers(line):
                return pragma
        return None

    def unused(self) -> list[tuple[Pragma, str]]:
        """(pragma, rule) pairs that never matched a finding."""
        stale = []
        for pragma in self.pragmas:
            for rule in pragma.rules:
                if rule not in pragma.used_rules:
                    stale.append((pragma, rule))
        return stale


def parse_pragmas(source: str, path: str) -> PragmaSheet:
    """Extract every pragma (and pragma near-miss) from ``source``."""
    pragmas: list[Pragma] = []
    malformed: list[Finding] = []

    def bad(line: int, col: int, why: str) -> None:
        malformed.append(Finding(
            rule="SUP002", path=path, line=line, col=col,
            message=f"malformed suppression pragma: {why}",
        ))

    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            tok for tok in tokens if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The engine reports the file itself as LNT001; nothing to do.
        return PragmaSheet([], [])

    for tok in comments:
        text = tok.string
        if not _PRAGMA_PREFIX.match(text):
            continue
        line, col = tok.start
        match = _PRAGMA.match(text)
        if match is None:
            bad(line, col,
                "expected '# repro: allow[RULE001, ...] reason'")
            continue
        rules = tuple(
            token.strip() for token in match.group("rules").split(",")
            if token.strip()
        )
        reason = match.group("reason").strip()
        if not rules:
            bad(line, col, "no rule ids inside allow[...]")
            continue
        unknown = [r for r in rules if not _RULE_TOKEN.match(r)
                   or r not in RULE_IDS]
        if unknown:
            bad(line, col,
                f"unknown rule id(s) {', '.join(unknown)}")
            continue
        if not reason:
            bad(line, col,
                f"allow[{', '.join(rules)}] is missing its "
                "justification — say why the finding is safe here")
            continue
        own_line = source.splitlines()[line - 1].strip().startswith("#")
        pragmas.append(Pragma(line=line, rules=rules, reason=reason,
                              own_line=own_line))
    return PragmaSheet(pragmas, malformed)
