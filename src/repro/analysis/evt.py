"""EVT rules: the machine-readable progress-event vocabulary.

Budgets, interrupt guards, fault plans, checkpoints, and the parallel
progress pump all dispatch on ``ProgressEvent.phase`` strings; the
vocabulary is exported as :data:`repro.runtime.progress.KNOWN_PHASES`.
EVT001 checks every phase *literal* at an emission or reference site
against the registry; EVT002 (cross-file, run by the engine) flags
registered phases that no scanned file emits — a dead contract.

Phase literals are recognised at:

* ``ProgressEvent("phase", ...)`` / ``ProgressEvent(phase="...")``
* ``emit("phase", ...)`` — the supervisor's local emission helper
* ``<state>.bump("phase", ...)`` — worker-side counter emission
* ``COUNTER_PHASES = (...)`` — phases re-emitted by the progress pump
* FaultPlan phase triggers (``raise_at``, ``raise_on_phase``,
  ``sigint_at``, ``sigint_on_phase``, ``oom_at``, ``hang_task``,
  ``memory_pressure``, ``stall_task_cpu``, ``spin_task``) —
  references, not emissions, but a typo there disables the fault.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding

__all__ = ["check", "collect_registered_phases", "collect_emitted_phases",
           "load_runtime_phases"]

#: Call shapes whose first string argument *emits* a phase.
_EMITTER_CALLS = frozenset({"ProgressEvent", "emit", "bump"})

#: Call shapes whose first string argument *references* a phase.
_REFERENCE_CALLS = frozenset({
    "raise_at", "raise_on_phase", "sigint_at", "sigint_on_phase",
    "oom_at", "hang_task", "memory_pressure", "stall_task_cpu",
    "spin_task",
})


def load_runtime_phases() -> frozenset[str]:
    """The live registry; import-time failure means no base vocabulary."""
    from repro.runtime.progress import KNOWN_PHASES

    return frozenset(KNOWN_PHASES)


def _registry_assignment(node: ast.Assign) -> bool:
    return any(isinstance(t, ast.Name) and t.id == "KNOWN_PHASES"
               for t in node.targets)


def _literal_strings(node: ast.AST) -> list[str]:
    """String constants inside a set/tuple/list/frozenset(...) literal."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("frozenset", "set", "tuple"):
        if node.args:
            return _literal_strings(node.args[0])
        return []
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        return [elt.value for elt in node.elts
                if isinstance(elt, ast.Constant)
                and isinstance(elt.value, str)]
    return []


def collect_registered_phases(ctx: ModuleContext) -> dict[str, int]:
    """Phases registered by a ``KNOWN_PHASES = frozenset({...})`` literal.

    Returns phase -> line of the registration, for EVT002 reporting.
    """
    registered: dict[str, int] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign) and _registry_assignment(node):
            for phase in _literal_strings(node.value):
                registered.setdefault(phase, node.lineno)
    return registered


def _phase_literal_sites(
        ctx: ModuleContext) -> Iterator[tuple[ast.AST, str, bool]]:
    """Yield ``(node, phase, is_emission)`` for every phase literal."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and (
                        target.id == "COUNTER_PHASES"):
                    for phase in _literal_strings(node.value):
                        yield node, phase, True
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        name = callee.id if isinstance(callee, ast.Name) else (
            callee.attr if isinstance(callee, ast.Attribute) else None)
        if name is None:
            continue
        emits = name in _EMITTER_CALLS
        references = name in _REFERENCE_CALLS
        if not (emits or references):
            continue
        literal = None
        if node.args and isinstance(node.args[0], ast.Constant) and (
                isinstance(node.args[0].value, str)):
            literal = node.args[0]
        else:
            for keyword in node.keywords:
                if keyword.arg in ("phase", "matching") and isinstance(
                        keyword.value, ast.Constant) and isinstance(
                        keyword.value.value, str):
                    literal = keyword.value
                    break
        if literal is not None:
            yield literal, literal.value, emits


def collect_emitted_phases(ctx: ModuleContext) -> set[str]:
    """Every phase this module emits through a recognised shape."""
    return {phase for _, phase, emits in _phase_literal_sites(ctx)
            if emits}


def check(ctx: ModuleContext, known_phases: frozenset[str]) -> list[Finding]:
    """EVT001 over one module, against the combined phase vocabulary."""
    findings: list[Finding] = []
    for node, phase, emits in _phase_literal_sites(ctx):
        if phase in known_phases:
            continue
        what = "emits" if emits else "references"
        findings.append(Finding(
            rule="EVT001", path=ctx.display_path, line=node.lineno,
            col=node.col_offset,
            message=(
                f"{what} unregistered progress phase {phase!r}; "
                "add it to repro.runtime.progress.KNOWN_PHASES (and "
                "the docstring table) or fix the typo"
            ),
        ))
    return findings
