"""Reprolint reporters: human text and machine-readable JSON.

Both render a :class:`repro.analysis.engine.LintResult`. The text form
is one ``path:line:col: RULE message`` line per active finding plus a
summary; the JSON form carries the full structure (active *and*
suppressed findings, per-rule counts, the schema version) for CI
artifacts and tooling.
"""

from __future__ import annotations

import json

from repro.analysis.engine import LintResult
from repro.analysis.findings import RULES

__all__ = ["render_text", "render_json", "JSON_SCHEMA_VERSION"]

JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult, *, verbose: bool = False) -> str:
    lines = [finding.render() for finding in result.findings]
    if verbose and result.suppressed:
        lines.append("")
        lines.append(f"{len(result.suppressed)} suppressed:")
        for finding in result.suppressed:
            lines.append(
                f"  {finding.render()}  "
                f"[allowed: {finding.suppression_reason}]"
            )
    if result.findings:
        counts = result.counts_by_rule()
        breakdown = ", ".join(
            f"{rule} x{count}" for rule, count in sorted(counts.items())
        )
        lines.append("")
        lines.append(
            f"{len(result.findings)} finding(s) in "
            f"{result.files_scanned} file(s): {breakdown}"
        )
    else:
        lines.append(
            f"{result.files_scanned} file(s) clean"
            + (f" ({len(result.suppressed)} suppressed)"
               if result.suppressed else "")
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    counts = result.counts_by_rule()
    document = {
        "schema_version": JSON_SCHEMA_VERSION,
        "tool": "reprolint",
        "paths": result.paths,
        "files_scanned": result.files_scanned,
        "clean": result.clean,
        "summary": {
            "active": len(result.findings),
            "suppressed": len(result.suppressed),
            "by_rule": {rule: counts[rule] for rule in sorted(counts)},
        },
        "rules": {
            rule.id: {"family": rule.family, "summary": rule.summary}
            for rule in RULES.values()
            if any(f.rule == rule.id
                   for f in result.findings + result.suppressed)
        },
        "findings": [f.to_dict() for f in result.findings],
        "suppressed": [f.to_dict() for f in result.suppressed],
    }
    return json.dumps(document, indent=2, sort_keys=False)
