"""CONC rules: thread-ownership and lock discipline (flow-aware).

The serving layer (``repro/service/``) and the parallel layer
(``repro/parallel/``) document their threading design in prose:
request-handler threads, one builder thread that solely owns each
circuit breaker, lock-guarded counters, condition-wrapped queues. PR 8's
review found exactly the bugs that prose cannot prevent — a handler
thread calling the builder-owned ``CircuitBreaker.allow()`` and stats
counters incremented without their lock. This module turns those
documented invariants into machine-checked annotations:

``# repro: guarded-by[self._lock]``
    on a ``self.attr = ...`` assignment in ``__init__`` declares the
    attribute lock-guarded. **CONC001** flags every other read or write
    of it that is not lexically inside ``with self._lock:`` (a
    ``threading.Condition`` wrapping the lock counts — both are
    canonicalised to the underlying lock). ``__init__`` itself and
    methods whose names end in ``_locked`` are exempt: the suffix is
    the project's convention for "every caller already holds the lock"
    (cf. ``AdmissionController._admit_locked``).

``# repro: owned-by[<thread-role>]``
    on a ``def`` line (or an ``__init__`` attribute assignment)
    declares a sole-writer thread role. **CONC002** builds a
    conservative intra-package call graph — the third cross-file pass,
    alongside the PAR003 task vocabulary and EVT002 dead phases — and
    flags calls/mutations of owned targets from functions reachable
    from a *different* role's entry points. Functions reachable from no
    annotated entry point are skipped (conservative: the analysis only
    judges flows it can prove).

**CONC003** needs no annotations: every ``threading.Lock``/``RLock``/
``Condition`` attribute assigned in an ``__init__`` (and every local
lock variable) becomes a node, nested ``with`` blocks and
calls-while-holding become edges, and any cycle in the resulting global
acquisition graph is a potential deadlock. Reentrant locks (RLock, or
``Condition()`` with its default RLock) may self-loop; plain Locks may
not.

**CONC004** flags blocking calls made while lexically holding a
declared lock: ``time.sleep``, pipe/socket ``recv``/``recv_bytes``/
``accept``, ``subprocess.*``, argument-less ``.join()`` (thread/process
join — ``", ".join(seq)`` takes a positional and is ignored), pool
dispatch (``submit``/``apply``/``apply_async``/``starmap``, and the
supervised pool's string-kind ``.map``), and ``.wait()`` on anything
*other* than a held lock (``Condition.wait`` on the held lock releases
it and is exempt).

Known limitations, all conservative (silent, never false-positive):
the with-stack is lexical per function, so a lock held by a caller is
invisible inside the callee (use the ``_locked`` suffix for that
idiom); attribute guards are only checked on ``self.<attr>`` in the
declaring class; CONC004 does not follow calls.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.context import ModuleContext, dotted_name
from repro.analysis.findings import Finding
from repro.analysis.pragmas import Annotation, PragmaSheet

__all__ = ["ModuleConc", "collect", "check_cross"]

#: (module_label, scope, name) — scope is the class name for attribute
#: locks, the function qualname for local lock variables.
LockId = tuple[str, str, str]

_LOCK_FACTORIES = {
    "threading.Lock": "lock",
    "threading.RLock": "rlock",
    "threading.Condition": "condition",
}

#: Methods that hand work to a pool/executor; blocking under a lock.
_DISPATCH_METHODS = frozenset({"submit", "apply", "apply_async",
                               "starmap"})

#: Receiver-method names that read from a pipe/socket; always blocking.
_RECV_METHODS = frozenset({"recv", "recv_bytes", "accept"})

#: Method names so common on builtin containers/streams that matching
#: them by bare name on a non-``self`` receiver would wire unrelated
#: classes into the call graph (``self.stats.get`` is a dict lookup,
#: not ``IndexStore.get``). Skipping them loses only role/lock flow
#: through identically-named project methods — conservative for every
#: CONC rule, which all under- rather than over-approximate.
_COMMON_METHODS = frozenset({
    "get", "items", "keys", "values", "append", "extend", "insert",
    "pop", "popitem", "update", "clear", "copy", "setdefault", "add",
    "discard", "remove", "sort", "count", "index", "join", "split",
    "strip", "format", "encode", "decode", "read", "write", "open",
    "close", "put", "get_nowait", "put_nowait",
})


def _render(lock: LockId) -> str:
    _, scope, name = lock
    return f"{scope}.{name}" if scope else name


@dataclass
class ConcClass:
    """Per-class lock and ownership declarations."""

    name: str
    #: lock attribute -> True when reacquiring it is safe (RLock, or a
    #: Condition over an RLock / the default RLock).
    reentrant: dict[str, bool] = field(default_factory=dict)
    #: condition attribute -> the Lock attribute it wraps.
    wraps: dict[str, str] = field(default_factory=dict)
    #: guarded attribute -> (guard text as written, annotation).
    guarded: dict[str, tuple[str, Annotation]] = field(default_factory=dict)
    #: owned attribute -> thread role.
    owned_attrs: dict[str, str] = field(default_factory=dict)
    #: method name -> FunctionRecord, for self-call resolution.
    methods: dict[str, "FunctionRecord"] = field(default_factory=dict)

    def known_locks(self) -> set[str]:
        locks = set(self.reentrant) | set(self.wraps)
        locks.update(self.wraps.values())
        for guard, _ in self.guarded.values():
            locks.add(_strip_self(guard))
        return locks

    def canon(self, label: str, attr: str) -> LockId:
        """Canonical LockId: a Condition stands for the Lock it wraps."""
        return (label, self.name, self.wraps.get(attr, attr))


@dataclass
class CallSite:
    name: str
    is_attr: bool
    self_recv: bool
    held: tuple[LockId, ...]
    node: ast.Call


@dataclass
class Access:
    attr: str
    mutates: bool
    held: tuple[LockId, ...]
    node: ast.Attribute


@dataclass
class FunctionRecord:
    """One function/method with everything the cross pass needs."""

    label: str
    path: str
    name: str
    qual: str
    node: ast.AST
    cls: ConcClass | None = None
    declared_role: str | None = None
    roles: set[str] = field(default_factory=set)
    calls: list[CallSite] = field(default_factory=list)
    accesses: list[Access] = field(default_factory=list)
    #: canonical lock -> first acquisition node.
    acquires: dict[LockId, ast.AST] = field(default_factory=dict)
    #: (outer, inner) -> inner acquisition node.
    lexical_edges: dict[tuple[LockId, LockId], ast.AST] = field(
        default_factory=dict)
    #: local lock variable -> reentrant.
    local_locks: dict[str, bool] = field(default_factory=dict)


@dataclass
class ModuleConc:
    """One module's CONC harvest: declarations, records, local findings."""

    path: str
    label: str
    classes: list[ConcClass] = field(default_factory=list)
    records: list[FunctionRecord] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)
    #: canonical lock -> reentrant (unknown locks are absent).
    kinds: dict[LockId, bool] = field(default_factory=dict)


def _strip_self(guard: str) -> str:
    return guard[5:] if guard.startswith("self.") else guard


def _nearest_class(ctx: ModuleContext, node: ast.AST) -> ast.ClassDef | None:
    current = ctx.parents.get(node)
    while current is not None:
        if isinstance(current, ast.ClassDef):
            return current
        current = ctx.parents.get(current)
    return None


def _qualname(ctx: ModuleContext, node: ast.AST) -> str:
    parts = [node.name]
    current = ctx.parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef)):
            parts.append(current.name)
        current = ctx.parents.get(current)
    return ".".join(reversed(parts))


def _lock_factory_kind(ctx: ModuleContext, value: ast.AST) -> str | None:
    if not isinstance(value, ast.Call):
        return None
    resolved = ctx.resolves_to(value.func)
    return _LOCK_FACTORIES.get(resolved) if resolved else None


def _classify_lock(ctx: ModuleContext, cls: ConcClass,
                   attr: str, value: ast.AST) -> None:
    kind = _lock_factory_kind(ctx, value)
    if kind == "lock":
        cls.reentrant[attr] = False
    elif kind == "rlock":
        cls.reentrant[attr] = True
    elif kind == "condition":
        assert isinstance(value, ast.Call)
        if not value.args:
            # threading.Condition() defaults to a fresh RLock.
            cls.reentrant[attr] = True
            return
        arg = value.args[0]
        inner = _lock_factory_kind(ctx, arg)
        if inner is not None:
            cls.reentrant[attr] = inner != "lock"
            return
        if (isinstance(arg, ast.Attribute)
                and isinstance(arg.value, ast.Name)
                and arg.value.id == "self"):
            # Condition over another self lock: one underlying lock.
            cls.wraps[attr] = arg.attr


def _assign_targets(stmt: ast.stmt) -> list[ast.expr]:
    if isinstance(stmt, ast.Assign):
        return list(stmt.targets)
    if isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        return [stmt.target]
    if isinstance(stmt, ast.Delete):
        return list(stmt.targets)
    return []


def _self_attr(node: ast.AST) -> str | None:
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _body_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Lexical statements of ``func``, not descending into nested defs."""
    stack = list(getattr(func, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _mutated_attr_nodes(func: ast.AST) -> set[ast.Attribute]:
    """``self.X`` Attribute nodes that a statement in ``func`` mutates.

    Direct stores (``self.x = v``, ``del self.x``), augmented stores,
    and container stores through subscripts (``self.stats["k"] += 1``)
    all count: each mutates the object named by the base attribute.
    """
    mutated: set[ast.Attribute] = set()

    def base_of(target: ast.expr) -> None:
        while isinstance(target, (ast.Subscript, ast.Starred)):
            target = target.value
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                base_of(elt)
            return
        if isinstance(target, ast.Attribute) and _self_attr(target):
            mutated.add(target)

    for node in _body_nodes(func):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                             ast.Delete)):
            for target in _assign_targets(node):
                base_of(target)
    return mutated


def _blocking_label(ctx: ModuleContext, call: ast.Call) -> str | None:
    resolved = ctx.resolves_to(call.func)
    if resolved == "time.sleep":
        return "time.sleep"
    if resolved is not None and resolved.startswith("subprocess."):
        return resolved
    if isinstance(call.func, ast.Attribute):
        attr = call.func.attr
        if attr in _RECV_METHODS:
            return f".{attr}()"
        if attr == "join" and not call.args:
            # thread/process join; str.join passes the iterable
            # positionally and never matches.
            return ".join()"
        if attr == "wait":
            return ".wait()"
        if attr in _DISPATCH_METHODS:
            return f".{attr}()"
        if (attr == "map" and call.args
                and isinstance(call.args[0], ast.Constant)
                and isinstance(call.args[0].value, str)):
            # The supervised pool's string-kind dispatch idiom.
            return ".map()"
    return None


def collect(ctx: ModuleContext, sheet: PragmaSheet) -> ModuleConc:
    """Harvest one module: declarations, with-stacks, local findings."""
    label = ctx.module or Path(ctx.display_path).stem
    module = ModuleConc(path=ctx.display_path, label=label)
    pending = [ann for ann in sheet.annotations]

    class_infos: dict[ast.ClassDef, ConcClass] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            info = ConcClass(name=node.name)
            class_infos[node] = info
            module.classes.append(info)
            _scan_init(ctx, node, info, pending)
            for attr, reentrant in info.reentrant.items():
                module.kinds[info.canon(label, attr)] = reentrant

    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        cls_node = _nearest_class(ctx, node)
        info = class_infos.get(cls_node) if cls_node is not None else None
        record = FunctionRecord(
            label=label, path=ctx.display_path, name=node.name,
            qual=_qualname(ctx, node), node=node, cls=info)
        for ann in pending:
            if not ann.attached and ann.covers(node.lineno):
                if ann.kind == "owned-by":
                    ann.attached = True
                    record.declared_role = ann.arg
                    record.roles.add(ann.arg)
                # guarded-by on a def stays unattached -> SUP002 below.
                break
        if info is not None:
            info.methods.setdefault(node.name, record)
        module.records.append(record)
        _walk_function(ctx, module, record)

    for ann in pending:
        if ann.attached:
            continue
        where = ("a 'self.attr = ...' assignment in __init__"
                 if ann.kind == "guarded-by"
                 else "a 'def' line or an __init__ attribute assignment")
        module.findings.append(Finding(
            rule="SUP002", path=ctx.display_path, line=ann.line, col=0,
            message=(f"dangling {ann.kind}[{ann.arg}] annotation: it "
                     f"must sit on {where} (trailing, or on the "
                     "comment line directly above)"),
        ))

    _check_guarded(module)
    return module


def _scan_init(ctx: ModuleContext, cls_node: ast.ClassDef,
               info: ConcClass, pending: list[Annotation]) -> None:
    init = next(
        (stmt for stmt in cls_node.body
         if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"),
        None)
    if init is None:
        return
    for stmt in _body_nodes(init):
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            continue
        for target in _assign_targets(stmt):
            attr = _self_attr(target)
            if attr is None:
                continue
            if stmt.value is not None:
                _classify_lock(ctx, info, attr, stmt.value)
            for ann in pending:
                if ann.attached or not ann.covers(stmt.lineno):
                    continue
                ann.attached = True
                if ann.kind == "guarded-by":
                    info.guarded[attr] = (ann.arg, ann)
                else:
                    info.owned_attrs[attr] = ann.arg
                break


def _walk_function(ctx: ModuleContext, module: ModuleConc,
                   record: FunctionRecord) -> None:
    mutated = _mutated_attr_nodes(record.node)
    known = record.cls.known_locks() if record.cls is not None else set()

    def lock_of(expr: ast.AST) -> LockId | None:
        attr = _self_attr(expr)
        if attr is not None and record.cls is not None and attr in known:
            return record.cls.canon(record.label, attr)
        if isinstance(expr, ast.Name) and expr.id in record.local_locks:
            lock = (record.label, record.qual, expr.id)
            module.kinds.setdefault(lock, record.local_locks[expr.id])
            return lock
        return None

    def visit(node: ast.AST, held: tuple[LockId, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held
            for item in node.items:
                visit(item.context_expr, inner)
                lock = lock_of(item.context_expr)
                if lock is not None:
                    record.acquires.setdefault(lock, item.context_expr)
                    if inner and inner[-1] != lock:
                        record.lexical_edges.setdefault(
                            (inner[-1], lock), item.context_expr)
                    elif inner and not module.kinds.get(lock, True):
                        # Immediate re-acquisition of a plain Lock:
                        # self-deadlock (an RLock self-nest is fine).
                        record.lexical_edges.setdefault(
                            (lock, lock), item.context_expr)
                    inner = inner + (lock,)
            for stmt in node.body:
                visit(stmt, inner)
            return
        if isinstance(node, ast.Assign):
            kind = _lock_factory_kind(ctx, node.value)
            if kind is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        record.local_locks[target.id] = kind != "lock"
        if isinstance(node, ast.Call):
            _record_call(node, held)
        attr = _self_attr(node)
        if attr is not None:
            record.accesses.append(Access(
                attr=attr, mutates=node in mutated,
                held=held, node=node))
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    def _record_call(call: ast.Call, held: tuple[LockId, ...]) -> None:
        func = call.func
        if isinstance(func, ast.Name):
            record.calls.append(CallSite(
                name=func.id, is_attr=False, self_recv=False,
                held=held, node=call))
        elif isinstance(func, ast.Attribute):
            record.calls.append(CallSite(
                name=func.attr, is_attr=True,
                self_recv=(isinstance(func.value, ast.Name)
                           and func.value.id == "self"),
                held=held, node=call))
        if not held:
            return
        label = _blocking_label(ctx, call)
        if label is None:
            return
        if label == ".wait()" and isinstance(func, ast.Attribute):
            receiver = lock_of(func.value)
            if receiver is not None and receiver in held:
                # Condition.wait on the held lock releases it.
                return
        module.findings.append(Finding(
            rule="CONC004", path=record.path,
            line=call.lineno, col=call.col_offset,
            message=(f"blocking call {label} while holding "
                     f"{_render(held[-1])}; threads queued on the lock "
                     "stall behind it — move the call outside the "
                     "'with' block"),
        ))

    for stmt in record.node.body:
        visit(stmt, ())


def _check_guarded(module: ModuleConc) -> None:
    """CONC001: guarded attributes accessed without their lock held."""
    for record in module.records:
        cls = record.cls
        if (cls is None or not cls.guarded
                or record.name == "__init__"
                or record.name.endswith("_locked")):
            continue
        for access in record.accesses:
            declared = cls.guarded.get(access.attr)
            if declared is None:
                continue
            guard_text, _ = declared
            guard = cls.canon(module.label, _strip_self(guard_text))
            if guard in access.held:
                continue
            verb = "write to" if access.mutates else "read of"
            module.findings.append(Finding(
                rule="CONC001", path=record.path,
                line=access.node.lineno, col=access.node.col_offset,
                message=(f"{verb} 'self.{access.attr}' "
                         f"(guarded-by[{guard_text}]) without holding "
                         f"{guard_text}; wrap the access in "
                         f"'with {guard_text}:' or rename the method "
                         "with a _locked suffix if every caller "
                         "already holds it"),
            ))


# -- cross-file pass ---------------------------------------------------


def _call_targets(record: FunctionRecord, site: CallSite,
                  by_name: dict[str, list[FunctionRecord]],
                  module_funcs: dict[str, dict[str, list[FunctionRecord]]],
                  ) -> list[FunctionRecord]:
    """Conservatively resolve one call site to candidate records.

    ``self.m()`` prefers the caller's own class; bare names prefer
    same-module functions; everything else falls back to a global
    match on the bare name (over-approximate by design).
    """
    if site.is_attr and site.self_recv and record.cls is not None:
        own = record.cls.methods.get(site.name)
        if own is not None:
            return [own]
    if not site.is_attr:
        local = module_funcs.get(record.path, {}).get(site.name)
        if local:
            return local
        return [r for r in by_name.get(site.name, ()) if r.cls is None]
    if site.name in _COMMON_METHODS:
        return []
    return by_name.get(site.name, [])


def check_cross(modules: list[ModuleConc]) -> list[Finding]:
    """CONC002 (ownership) and CONC003 (lock ordering) over all modules."""
    findings: list[Finding] = []
    records: list[FunctionRecord] = [
        r for m in modules for r in m.records]
    by_name: dict[str, list[FunctionRecord]] = {}
    module_funcs: dict[str, dict[str, list[FunctionRecord]]] = {}
    for r in records:
        by_name.setdefault(r.name, []).append(r)
        if r.cls is None:
            module_funcs.setdefault(r.path, {}).setdefault(
                r.name, []).append(r)

    def targets(record: FunctionRecord,
                site: CallSite) -> list[FunctionRecord]:
        return _call_targets(record, site, by_name, module_funcs)

    # -- role propagation: entry-point roles flow along call edges.
    worklist = [r for r in records if r.roles]
    while worklist:
        caller = worklist.pop()
        for site in caller.calls:
            for callee in targets(caller, site):
                if not caller.roles <= callee.roles:
                    callee.roles |= caller.roles
                    worklist.append(callee)

    # -- CONC002: owned targets reached from a foreign role.
    for record in sorted(records, key=lambda r: (r.path, r.node.lineno)):
        if not record.roles:
            continue
        for site in record.calls:
            owners = sorted({
                t.declared_role for t in targets(record, site)
                if t.declared_role is not None
                and record.roles - {t.declared_role}
            })
            if not owners:
                continue
            owner = owners[0]
            foreign = sorted(record.roles - {owner})
            findings.append(Finding(
                rule="CONC002", path=record.path,
                line=site.node.lineno, col=site.node.col_offset,
                message=(f"'{site.name}' is owned-by[{owner}] but is "
                         f"called here from code reachable from the "
                         f"{', '.join(foreign)} thread; route it "
                         f"through the {owner} thread instead"),
            ))
        if record.cls is None or record.name == "__init__":
            continue
        for access in record.accesses:
            owner_role = record.cls.owned_attrs.get(access.attr)
            if (owner_role is None or not access.mutates
                    or not record.roles - {owner_role}):
                continue
            foreign = sorted(record.roles - {owner_role})
            findings.append(Finding(
                rule="CONC002", path=record.path,
                line=access.node.lineno, col=access.node.col_offset,
                message=(f"'self.{access.attr}' is "
                         f"owned-by[{owner_role}] but is written here "
                         f"from code reachable from the "
                         f"{', '.join(foreign)} thread"),
            ))

    findings.extend(_check_lock_order(modules, records, targets))
    return findings


def _check_lock_order(
    modules: list[ModuleConc],
    records: list[FunctionRecord],
    targets: "Callable[[FunctionRecord, CallSite], list[FunctionRecord]]",
) -> list[Finding]:
    """CONC003: cycles in the global lock-acquisition graph."""
    kinds: dict[LockId, bool] = {}
    for m in modules:
        kinds.update(m.kinds)

    # Transitive acquires per record (which locks can a call take?).
    acquires: dict[int, set[LockId]] = {
        id(r): set(r.acquires) for r in records}
    changed = True
    while changed:
        changed = False
        for r in records:
            mine = acquires[id(r)]
            for site in r.calls:
                for callee in targets(r, site):
                    extra = acquires[id(callee)] - mine
                    if extra:
                        mine |= extra
                        changed = True

    edges: dict[tuple[LockId, LockId], tuple[str, int]] = {}
    for r in records:
        for (outer, inner), node in r.lexical_edges.items():
            edges.setdefault((outer, inner), (r.path, node.lineno))
        for site in r.calls:
            if not site.held:
                continue
            outer = site.held[-1]
            for callee in targets(r, site):
                for inner in acquires[id(callee)]:
                    if inner == outer and kinds.get(inner, True):
                        continue  # reentrant (or unknown kind): safe
                    edges.setdefault(
                        (outer, inner), (r.path, site.node.lineno))

    graph: dict[LockId, set[LockId]] = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())

    findings: list[Finding] = []
    for component in _cycles(graph):
        cycle_edges = sorted(
            ((a, b), where) for (a, b), where in edges.items()
            if a in component and b in component)
        if not cycle_edges:
            continue
        (_, anchor) = cycle_edges[0]
        if len(component) == 1:
            lock = next(iter(component))
            findings.append(Finding(
                rule="CONC003", path=anchor[0], line=anchor[1], col=0,
                message=(f"non-reentrant lock {_render(lock)} can be "
                         "re-acquired while already held "
                         "(self-deadlock); use threading.RLock or "
                         "restructure the nesting"),
            ))
            continue
        steps = "; ".join(
            f"{_render(a)} -> {_render(b)} at {path}:{line}"
            for (a, b), (path, line) in cycle_edges)
        names = ", ".join(sorted(_render(lock) for lock in component))
        findings.append(Finding(
            rule="CONC003", path=anchor[0], line=anchor[1], col=0,
            message=(f"lock-order cycle between {names}: {steps}; "
                     "two threads taking these locks in opposite "
                     "orders deadlock — pick one global order"),
        ))
    return findings


def _cycles(graph: dict[LockId, set[LockId]]) -> list[set[LockId]]:
    """Cyclic SCCs (size > 1, or a self-loop), iterative Tarjan."""
    index: dict[LockId, int] = {}
    low: dict[LockId, int] = {}
    on_stack: set[LockId] = set()
    stack: list[LockId] = []
    counter = [0]
    out: list[set[LockId]] = []

    for root in sorted(graph):
        if root in index:
            continue
        work = [(root, iter(sorted(graph[root])))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: set[LockId] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                if len(component) > 1 or any(
                        member in graph.get(member, ())
                        for member in component):
                    out.append(component)
    return out
