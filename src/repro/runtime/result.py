"""Structured outcomes of budgeted runs and canonical serialisation.

A :class:`PartialResult` is what the execution harness returns instead
of raising: it wraps whatever result object could be produced (possibly
None), says whether the run reached natural termination (``complete``),
whether any degradation was applied (``degraded`` — partial samples with
a widened epsilon, a GTD → GBU fallback, or an early stop), and carries
the metadata needed to report the degradation honestly.

:func:`serialize_global_result` renders a
:class:`~repro.core.global_decomp.GlobalTrussResult` as canonical bytes
(sorted edges, sorted trusses, fixed float formatting) so two runs can
be compared for *byte-identical* output — the contract the
checkpoint/resume tests enforce.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = [
    "PartialResult",
    "serialize_global_result",
    "serialize_local_result",
    "serialize_nucleus_result",
]


@dataclass
class PartialResult:
    """Outcome of a run under the execution harness.

    Attributes
    ----------
    kind:
        ``"global"``, ``"local"``, ``"nucleus"``, or ``"reliability"``.
    result:
        The underlying result object — a
        :class:`~repro.core.global_decomp.GlobalTrussResult`,
        :class:`~repro.core.local.LocalTrussResult`, or a float
        reliability estimate — or None when nothing was salvageable.
    complete:
        True iff the computation reached natural termination.
    degraded:
        True iff any degradation was applied; ``reason`` says why and
        ``fallback`` names a method switch (e.g. ``"gtd->gbu"``).
    requested_epsilon / effective_epsilon:
        The Hoeffding accuracy asked for versus the accuracy the drawn
        sample count actually guarantees (they differ only when
        sampling was cut short).
    n_samples_requested / n_samples_drawn:
        Monte-Carlo sample accounting.
    completed_k:
        Largest fully-completed truss level (global runs).
    checkpoint_path:
        Directory holding the last consistent snapshot, if any.
    """

    kind: str
    result: object | None
    complete: bool
    degraded: bool
    reason: str | None = None
    fallback: str | None = None
    requested_epsilon: float | None = None
    effective_epsilon: float | None = None
    n_samples_requested: int | None = None
    n_samples_drawn: int | None = None
    completed_k: int | None = None
    checkpoint_path: str | None = None
    elapsed_seconds: float | None = None
    detail: dict = field(default_factory=dict)

    def summary(self) -> str:
        """One status line for CLI output and logs."""
        parts = [
            f"status={'complete' if self.complete else 'partial'}"
            + ("+degraded" if self.degraded else ""),
        ]
        if self.reason:
            parts.append(f"reason={self.reason!r}")
        if self.fallback:
            parts.append(f"fallback={self.fallback}")
        if (self.effective_epsilon is not None
                and self.requested_epsilon is not None
                and self.effective_epsilon != self.requested_epsilon):
            parts.append(
                f"epsilon_effective={self.effective_epsilon:.4f}"
                f" (requested {self.requested_epsilon:.4f})"
            )
        if self.n_samples_drawn is not None:
            total = (f"/{self.n_samples_requested}"
                     if self.n_samples_requested is not None else "")
            parts.append(f"samples={self.n_samples_drawn}{total}")
        if self.completed_k is not None:
            parts.append(f"completed_k={self.completed_k}")
        if self.checkpoint_path:
            parts.append(f"checkpoint={self.checkpoint_path}")
        return " ".join(parts)


def _canonical_edges(graph) -> list:
    """Sorted ``[u, v, p]`` triples with order-independent bytes."""
    return sorted(
        [repr(u), repr(v), repr(float(p))]
        for u, v, p in graph.edges_with_probabilities()
    )


def serialize_global_result(result) -> bytes:
    """Render a global decomposition as canonical, comparable bytes."""
    doc = {
        "gamma": repr(float(result.gamma)),
        "epsilon": repr(float(result.epsilon)),
        "delta": repr(float(result.delta)),
        "n_samples": int(result.n_samples),
        "method": result.method,
        "trusses": {
            str(k): sorted(_canonical_edges(t) for t in trusses)
            for k, trusses in sorted(result.trusses.items())
        },
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()


def serialize_local_result(result) -> bytes:
    """Render a local decomposition as canonical, comparable bytes."""
    doc = {
        "gamma": repr(float(result.gamma)),
        "method": result.method,
        "trussness": sorted(
            [repr(u), repr(v), int(tau)]
            for (u, v), tau in result.trussness.items()
        ),
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()


def serialize_nucleus_result(result) -> bytes:
    """Render an (r, s)-nucleus decomposition as canonical bytes.

    For ``(2, 3)`` the ``scores`` rows coincide with
    :func:`serialize_local_result`'s ``trussness`` rows — the shape the
    byte-identity differential tests compare across worker counts and
    against the truss oracle.
    """
    doc = {
        "r": int(result.r),
        "s": int(result.s),
        "gamma": repr(float(result.gamma)),
        "method": result.method,
        "scores": sorted(
            [repr(node) for node in cell] + [int(nu)]
            for cell, nu in result.scores.items()
        ),
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
