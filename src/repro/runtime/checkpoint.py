"""Versioned, integrity-checked checkpoints for resumable runs.

A checkpoint is a directory::

    <dir>/manifest.json      format tag, version, parameters, RNG states
    <dir>/samples_0000.npz   one bit-packed batch of possible worlds
    <dir>/level_0003.json    maximal trusses found at k = 3

Every file is written atomically (temp file + rename) and carries a
CRC-32 of its payload, so a crash mid-write leaves the previous
consistent snapshot behind and silent corruption is detected at load
time as a :class:`~repro.exceptions.CheckpointError`. The manifest's
``version`` gates the format: loading a checkpoint written by an
incompatible release fails loudly instead of mis-resuming.

Node labels are encoded with a type tag (``["i", 7]`` / ``["s", "a"]``)
so int and str labels round-trip exactly; other label types are not
checkpointable and raise :class:`CheckpointError` up front.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

import numpy as np

from repro.exceptions import CheckpointError, CheckpointWriteError

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CheckpointStore",
    "encode_node",
    "decode_node",
]

CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_VERSION = 1


def encode_node(node):
    """Encode a node label as a JSON-safe ``[tag, value]`` pair."""
    if isinstance(node, bool):
        return ["b", bool(node)]
    if isinstance(node, (int, np.integer)):
        return ["i", int(node)]
    if isinstance(node, str):
        return ["s", node]
    raise CheckpointError(
        f"node label {node!r} of type {type(node).__name__} cannot be "
        "checkpointed (only int, str, and bool labels round-trip)"
    )


def decode_node(pair):
    """Invert :func:`encode_node`."""
    try:
        tag, value = pair
    except (TypeError, ValueError):
        raise CheckpointError(f"malformed node encoding {pair!r}") from None
    if tag == "b":
        return bool(value)
    if tag == "i":
        return int(value)
    if tag == "s":
        return str(value)
    raise CheckpointError(f"unknown node tag {tag!r}")


def _canonical_json(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class CheckpointStore:
    """Read/write access to one checkpoint directory."""

    def __init__(self, directory):
        self.path = Path(directory)
        self.path.mkdir(parents=True, exist_ok=True)
        #: Fault-injection hook: a callable returning an exception to
        #: raise mid-write, or None. Armed by the harness from
        #: :meth:`repro.runtime.FaultPlan.exhaust_disk` so the ENOSPC
        #: path is deterministically testable.
        self.write_fault = None

    def _write_atomic(self, path: Path, data: bytes) -> None:
        """Write ``data`` to ``path`` via temp file + fsync + rename.

        Any :class:`OSError` along the way — short write, failed fsync,
        failed rename; ENOSPC, quota, read-only filesystem — is caught
        exactly here: the partial temp file is unlinked so the
        directory never holds a torn write, and the failure surfaces as
        a :class:`~repro.exceptions.CheckpointWriteError` the harness
        can downgrade to "continue without checkpointing".
        """
        tmp = path.with_name(path.name + ".tmp")
        try:
            injected = (
                None if self.write_fault is None else self.write_fault()
            )
            with open(tmp, "wb") as handle:
                handle.write(data)
                if injected is not None:
                    raise injected
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as err:
            if tmp.exists():
                # Unlinking frees space rather than needing it, so this
                # succeeds even on the full disk that got us here.
                tmp.unlink()
            raise CheckpointWriteError(
                f"checkpoint write to {path} failed: {err}", path=path
            ) from err

    # -- manifest ------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.path / "manifest.json"

    def exists(self) -> bool:
        """True iff a manifest has been written here."""
        return self.manifest_path.exists()

    def save_manifest(self, manifest: dict) -> None:
        """Atomically persist ``manifest`` (format/version stamped)."""
        doc = dict(manifest)
        doc["format"] = CHECKPOINT_FORMAT
        doc["version"] = CHECKPOINT_VERSION
        body = _canonical_json(doc)
        wrapper = {"crc": zlib.crc32(body.encode("utf-8")), "manifest": doc}
        self._write_atomic(
            self.manifest_path,
            json.dumps(wrapper, sort_keys=True).encode("utf-8"),
        )

    def load_manifest(self, expect_params: dict | None = None) -> dict:
        """Load and validate the manifest.

        Raises :class:`CheckpointError` on a missing file, corrupt JSON,
        checksum mismatch, wrong format tag, unsupported version, or —
        when ``expect_params`` is given — a parameter fingerprint that
        differs from the one the checkpoint was created with.
        """
        if not self.manifest_path.exists():
            raise CheckpointError(f"no checkpoint manifest at {self.manifest_path}")
        try:
            wrapper = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as err:
            raise CheckpointError(
                f"corrupt checkpoint manifest {self.manifest_path}: {err}"
            ) from err
        if not isinstance(wrapper, dict) or "manifest" not in wrapper:
            raise CheckpointError(
                f"corrupt checkpoint manifest {self.manifest_path}: "
                "missing manifest body"
            )
        doc = wrapper["manifest"]
        body = _canonical_json(doc)
        if zlib.crc32(body.encode("utf-8")) != wrapper.get("crc"):
            raise CheckpointError(
                f"checkpoint manifest {self.manifest_path} failed its "
                "integrity check (crc mismatch)"
            )
        if doc.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"{self.manifest_path} is not a repro checkpoint"
            )
        if doc.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint version {doc.get('version')!r} is not "
                f"supported (expected {CHECKPOINT_VERSION})"
            )
        if expect_params is not None and doc.get("params") != expect_params:
            raise CheckpointError(
                "checkpoint was created with different parameters; "
                "refusing to resume (delete the checkpoint directory or "
                "rerun with the original parameters)"
            )
        return doc

    # -- sample batches ------------------------------------------------
    def _batch_path(self, index: int) -> Path:
        return self.path / f"samples_{index:04d}.npz"

    def save_sample_batch(self, index: int, presence: np.ndarray) -> None:
        """Persist one ``(rows, n_edges)`` boolean presence batch."""
        presence = np.asarray(presence, dtype=bool)
        packed = np.packbits(presence, axis=1) if presence.size else (
            np.zeros((presence.shape[0], 0), dtype=np.uint8)
        )
        import io

        buffer = io.BytesIO()
        np.savez(
            buffer,
            packed=packed,
            shape=np.array(presence.shape, dtype=np.int64),
            crc=np.array([zlib.crc32(packed.tobytes())], dtype=np.uint64),
        )
        self._write_atomic(self._batch_path(index), buffer.getvalue())

    def load_sample_batch(self, index: int) -> np.ndarray:
        """Load one presence batch, verifying shape and checksum."""
        path = self._batch_path(index)
        if not path.exists():
            raise CheckpointError(f"missing checkpoint sample batch {path}")
        try:
            with np.load(path) as doc:
                packed = doc["packed"]
                rows, cols = (int(x) for x in doc["shape"])
                crc = int(doc["crc"][0])
        # repro: allow[EXC003] any np.load failure means corruption; rewrapped
        except Exception as err:
            raise CheckpointError(
                f"corrupt checkpoint sample batch {path}: {err}"
            ) from err
        if zlib.crc32(packed.tobytes()) != crc:
            raise CheckpointError(
                f"checkpoint sample batch {path} failed its integrity "
                "check (crc mismatch)"
            )
        if cols:
            # repro: allow[PAR004] one batch_size-bounded batch restore (axis=1)
            presence = np.unpackbits(packed, axis=1, count=cols).astype(bool)
        else:
            presence = np.zeros((rows, 0), dtype=bool)
        if presence.shape != (rows, cols):
            raise CheckpointError(
                f"checkpoint sample batch {path} has inconsistent shape"
            )
        return presence

    # -- decomposition levels ------------------------------------------
    def _level_path(self, k: int) -> Path:
        return self.path / f"level_{k:04d}.json"

    def save_level(self, k: int, trusses) -> None:
        """Persist the maximal trusses found at level ``k``.

        ``trusses`` is a list of probabilistic subgraphs; only their
        edge sets are stored (probabilities live in the host graph).
        Edge lists are sorted so the bytes on disk do not depend on set
        iteration order.
        """
        payload = {
            "k": k,
            "trusses": [
                sorted(
                    [encode_node(u), encode_node(v)]
                    for u, v in truss.edges()
                )
                for truss in trusses
            ],
        }
        body = _canonical_json(payload)
        wrapper = {"crc": zlib.crc32(body.encode("utf-8")), "payload": payload}
        self._write_atomic(
            self._level_path(k),
            json.dumps(wrapper, sort_keys=True).encode("utf-8"),
        )

    def load_level(self, k: int):
        """Load level ``k`` as a list of edge lists (decoded labels)."""
        path = self._level_path(k)
        if not path.exists():
            raise CheckpointError(f"missing checkpoint level file {path}")
        try:
            wrapper = json.loads(path.read_text(encoding="utf-8"))
            payload = wrapper["payload"]
            body = _canonical_json(payload)
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError,
                TypeError) as err:
            raise CheckpointError(
                f"corrupt checkpoint level file {path}: {err}"
            ) from err
        if zlib.crc32(body.encode("utf-8")) != wrapper.get("crc"):
            raise CheckpointError(
                f"checkpoint level file {path} failed its integrity "
                "check (crc mismatch)"
            )
        return [
            [(decode_node(u), decode_node(v)) for u, v in truss]
            for truss in payload["trusses"]
        ]

    # -- mid-peel GTD frontier -----------------------------------------
    @property
    def frontier_path(self) -> Path:
        return self.path / "frontier.json"

    def save_frontier(self, detail) -> None:
        """Persist the mid-peel GTD state of one sharded round boundary.

        ``detail`` is a ``"gtd-frontier"`` progress event's payload: the
        level ``k``, the component index, the next round number, and —
        as edge lists — the level's answers so far (``found``), the
        outstanding ``frontier``, and the ``visited`` state set. Written
        atomically with a CRC like every other checkpoint file, so a
        kill mid-write leaves the previous round's snapshot behind and
        resume always lands on a complete round boundary.
        """
        def encode_edges(edges):
            return [[encode_node(u), encode_node(v)] for u, v in edges]

        payload = {
            "k": int(detail["k"]),
            "comp_index": int(detail["comp_index"]),
            "round": int(detail["round"]),
            "found": [encode_edges(t) for t in detail["found"]],
            "frontier": [encode_edges(c) for c in detail["frontier"]],
            "visited": [encode_edges(s) for s in detail["visited"]],
        }
        body = _canonical_json(payload)
        wrapper = {"crc": zlib.crc32(body.encode("utf-8")), "payload": payload}
        self._write_atomic(
            self.frontier_path,
            json.dumps(wrapper, sort_keys=True).encode("utf-8"),
        )

    def load_frontier(self):
        """Load the mid-peel snapshot, or None when none was saved.

        Returns the decoded ``{"k", "comp_index", "round", "found",
        "frontier", "visited"}`` dict with node labels restored —
        exactly the ``frontier_state`` shape
        :func:`~repro.core.global_decomp.global_truss_decomposition`
        accepts. Corruption raises :class:`CheckpointError`.
        """
        path = self.frontier_path
        if not path.exists():
            return None
        try:
            wrapper = json.loads(path.read_text(encoding="utf-8"))
            payload = wrapper["payload"]
            body = _canonical_json(payload)
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError,
                TypeError) as err:
            raise CheckpointError(
                f"corrupt checkpoint frontier file {path}: {err}"
            ) from err
        if zlib.crc32(body.encode("utf-8")) != wrapper.get("crc"):
            raise CheckpointError(
                f"checkpoint frontier file {path} failed its integrity "
                "check (crc mismatch)"
            )

        def decode_edges(edges):
            return [(decode_node(u), decode_node(v)) for u, v in edges]

        try:
            return {
                "k": int(payload["k"]),
                "comp_index": int(payload["comp_index"]),
                "round": int(payload["round"]),
                "found": [decode_edges(t) for t in payload["found"]],
                "frontier": [decode_edges(c) for c in payload["frontier"]],
                "visited": [decode_edges(s) for s in payload["visited"]],
            }
        except (KeyError, TypeError, ValueError) as err:
            raise CheckpointError(
                f"corrupt checkpoint frontier file {path}: {err}"
            ) from err

    def clear_frontier(self) -> None:
        """Delete the mid-peel snapshot (a finished level supersedes it)."""
        if self.frontier_path.exists():
            self.frontier_path.unlink()

    # -- garbage collection --------------------------------------------
    def collect_garbage(self, batches_drawn: int | None = None) -> list:
        """Prune files a completed run no longer needs; returns them.

        Removes orphaned ``*.tmp`` partial writes (a crash between
        temp-file creation and rename leaves one behind), the stale
        mid-peel ``frontier.json`` (a finished run supersedes it), and —
        when ``batches_drawn`` is given — sample-batch files with an
        index at or beyond it (left over from an earlier, larger run in
        the same directory). Everything a finished checkpoint still
        resumes from — the manifest, in-range sample batches, and level
        files — is kept, so ``resume=True`` of a completed run keeps
        returning the identical result.
        """
        removed = []
        for path in sorted(self.path.glob("*.tmp")):
            path.unlink()
            removed.append(path)
        if self.frontier_path.exists():
            self.frontier_path.unlink()
            removed.append(self.frontier_path)
        if batches_drawn is not None:
            for path in sorted(self.path.glob("samples_*.npz")):
                try:
                    index = int(path.stem.split("_", 1)[1])
                except (IndexError, ValueError):
                    continue
                if index >= batches_drawn:
                    path.unlink()
                    removed.append(path)
        return removed

    # -- misc ----------------------------------------------------------
    def clear(self) -> None:
        """Delete every file of this checkpoint (directory stays)."""
        for path in self.path.glob("*"):
            if path.is_file():
                path.unlink()
