"""On-disk home for spilled sample matrices.

When a run crosses its memory budget with ``--on-memory-pressure
spill``, the packed possible-world presence matrix moves out of RAM
into a file-backed ``np.memmap`` (see
:meth:`repro.graphs.sampling.WorldSampleSet.spill_to`). A
:class:`SpillDirectory` owns where those files live: a caller-supplied
directory (kept afterwards — only the spill files themselves are
removed) or a private temporary directory deleted wholesale on
cleanup. It also answers "how much disk is left here", which the
:class:`~repro.runtime.pressure.ResourceWatchdog` probes.

The bit-packed layout is unchanged on disk — ``(ceil(N/8), m)`` uint8,
bits packed along the sample axis — so a spilled set is byte-identical
to its RAM twin and sequential column reads (the access pattern of
``presence_matrix``) stay cache- and readahead-friendly.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

__all__ = ["SpillDirectory"]


class SpillDirectory:
    """Owns the directory spilled sample files are allocated in.

    With ``directory=None`` a private temporary directory is created
    (prefix ``repro-spill-``) and removed entirely by :meth:`cleanup`;
    a caller-supplied directory is created if missing but only the
    files handed out by :meth:`allocate` are removed on cleanup.
    """

    def __init__(self, directory=None):
        if directory is None:
            self.path = Path(tempfile.mkdtemp(prefix="repro-spill-"))
            self._owned = True
        else:
            self.path = Path(directory)
            self.path.mkdir(parents=True, exist_ok=True)
            self._owned = False
        self._allocated: list[Path] = []

    def free_bytes(self) -> int:
        """Free bytes on the filesystem holding this directory."""
        return int(shutil.disk_usage(self.path).free)

    def allocate(self, name: str) -> Path:
        """Reserve a file path for one spilled matrix (tracked for GC)."""
        path = self.path / name
        self._allocated.append(path)
        return path

    def cleanup(self) -> None:
        """Remove allocated spill files (and the tempdir, if owned).

        On Linux, unlinking a file that live workers still have mapped
        is safe — the pages stay valid until the last mapping goes.
        """
        for path in self._allocated:
            if path.exists():
                path.unlink()
        self._allocated.clear()
        if self._owned:
            shutil.rmtree(self.path, ignore_errors=True)

    def __enter__(self) -> "SpillDirectory":
        return self

    def __exit__(self, *exc_info) -> None:
        self.cleanup()
