"""Resource-pressure watchdog: RSS, disk headroom, and worker CPU.

A :class:`ResourceWatchdog` is a progress hook. Riding the same batch
boundaries every other hook uses, it probes — at most once per
``interval`` seconds — the process's peak RSS, the free bytes at the
checkpoint/spill directory, and (when a probe is wired in) the
cumulative CPU seconds of the worker pool. Every probe is recorded in
:attr:`samples`; a probe that crosses a configured threshold is
additionally recorded in :attr:`alerts` and announced as a
``resource-pressure`` progress event through the ``emit`` callback, so
operators see pressure building *before* a budget aborts the run or
the kernel's OOM killer ends it.

Unlike a :class:`~repro.runtime.budget.Budget` the watchdog never
raises: it observes and warns. The pressure *responses* live elsewhere
(spill-to-disk in the harness, checkpoint degradation in the store,
CPU-stall reclaim in the supervisor); the watchdog is their shared
pair of eyes.
"""

from __future__ import annotations

import shutil
import time
from pathlib import Path

from repro.exceptions import ParameterError
from repro.runtime.budget import default_memory_probe
from repro.runtime.progress import ProgressEvent

__all__ = ["ResourceWatchdog"]

#: Phases the watchdog itself (or its sibling degradation paths) emits;
#: reacting to them would recurse through the same hook chain.
_SELF_PHASES = frozenset({"resource-pressure", "checkpoint-degraded"})


class ResourceWatchdog:
    """Progress hook sampling resource probes on a pump cadence.

    Parameters
    ----------
    probe_dir:
        Directory whose filesystem headroom to watch (checkpoint or
        spill directory); None disables the disk probe.
    interval:
        Minimum seconds between probes; 0 probes at every boundary.
    memory_limit_bytes, min_free_bytes:
        Alert thresholds for peak RSS and disk headroom; None disables
        the respective alert (the probe is still recorded).
    emit:
        Callable receiving the ``resource-pressure``
        :class:`ProgressEvent` for each alert; None keeps alerts local.
    memory_probe, cpu_probe, clock:
        Injectable probes — peak RSS in bytes (defaults to
        :func:`~repro.runtime.budget.default_memory_probe`), cumulative
        worker CPU seconds (e.g. a bound
        ``ParallelExecutor.worker_cpu_seconds``), and a monotonic time
        source.
    """

    def __init__(self, *, probe_dir=None, interval: float = 5.0,
                 memory_limit_bytes: int | None = None,
                 min_free_bytes: int | None = None,
                 emit=None, memory_probe=None, cpu_probe=None,
                 clock=time.monotonic):
        if interval < 0:
            raise ParameterError(
                f"watchdog interval must be >= 0, got {interval}"
            )
        self.probe_dir = None if probe_dir is None else Path(probe_dir)
        self.interval = float(interval)
        self.memory_limit_bytes = memory_limit_bytes
        self.min_free_bytes = min_free_bytes
        self._emit = emit
        self._memory_probe = memory_probe or default_memory_probe
        self._cpu_probe = cpu_probe
        self._clock = clock
        self._last_probe: float | None = None
        #: Every probe taken, in order: dicts with ``tick``,
        #: ``peak_rss_bytes``, and — when probed — ``free_bytes`` and
        #: ``worker_cpu_seconds``.
        self.samples: list[dict] = []
        #: The subset of probes that crossed a threshold, annotated
        #: with ``resource`` (``"memory"``/``"disk"``).
        self.alerts: list[dict] = []

    def probe(self) -> dict:
        """Take one probe now (ignoring the interval) and record it."""
        sample: dict = {
            "tick": len(self.samples),
            "peak_rss_bytes": self._memory_probe(),
        }
        if self.probe_dir is not None:
            sample["free_bytes"] = int(shutil.disk_usage(self.probe_dir).free)
        if self._cpu_probe is not None:
            sample["worker_cpu_seconds"] = self._cpu_probe()
        self.samples.append(sample)
        self._check_thresholds(sample)
        return sample

    def _check_thresholds(self, sample: dict) -> None:
        rss = sample.get("peak_rss_bytes")
        if (self.memory_limit_bytes is not None and rss is not None
                and rss > self.memory_limit_bytes):
            self._alert("memory", sample, observed=rss,
                        threshold=self.memory_limit_bytes)
        free = sample.get("free_bytes")
        if (self.min_free_bytes is not None and free is not None
                and free < self.min_free_bytes):
            self._alert("disk", sample, observed=free,
                        threshold=self.min_free_bytes)

    def _alert(self, resource: str, sample: dict, *, observed,
               threshold) -> None:
        alert = dict(sample, resource=resource, observed=observed,
                     threshold=threshold)
        self.alerts.append(alert)
        if self._emit is not None:
            self._emit(ProgressEvent(
                "resource-pressure",
                step=len(self.alerts) - 1,
                detail={
                    "resource": resource,
                    "action": "warn",
                    "observed": observed,
                    "threshold": threshold,
                },
            ))

    def status(self) -> str:
        """One-line human summary of the latest probe."""
        if not self.samples:
            return "watchdog: no probes taken"
        last = self.samples[-1]
        parts = [f"probes={len(self.samples)}", f"alerts={len(self.alerts)}"]
        rss = last.get("peak_rss_bytes")
        if rss is not None:
            parts.append(f"peak_rss={rss / 2**20:.1f}MiB")
        if "free_bytes" in last:
            parts.append(f"disk_free={last['free_bytes'] / 2**20:.1f}MiB")
        if "worker_cpu_seconds" in last:
            parts.append(f"worker_cpu={last['worker_cpu_seconds']:.2f}s")
        return "watchdog: " + " ".join(parts)

    def __call__(self, event: ProgressEvent) -> None:
        if event.phase in _SELF_PHASES:
            return
        now = self._clock()
        if (self._last_probe is not None
                and now - self._last_probe < self.interval):
            return
        self._last_probe = now
        self.probe()
