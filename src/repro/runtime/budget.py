"""Cooperative execution budgets: wall clock, sample count, memory.

A :class:`Budget` is a progress hook (it is callable) that raises
:class:`~repro.exceptions.BudgetExceededError` at the first batch
boundary where one of its limits is exceeded. Budgets are *cooperative*:
nothing is pre-empted, so a breach can overshoot by at most one batch —
the granularity the emitting loops were chosen to keep small.

The clock and the memory probe are injectable so tests can drive a
budget deterministically without sleeping or allocating.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro.exceptions import BudgetExceededError
from repro.runtime.progress import ProgressEvent

__all__ = ["Budget", "default_memory_probe"]


def default_memory_probe() -> int | None:
    """Return this process's peak RSS in bytes, or None when unknown.

    Uses :mod:`resource` (Unix). ``ru_maxrss`` is reported in KiB on
    Linux and bytes on macOS; both are normalised to bytes.
    """
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-Unix platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover
        return int(peak)
    return int(peak) * 1024


class Budget:
    """Limits checked cooperatively at batch boundaries.

    Parameters
    ----------
    deadline:
        Wall-clock allowance in seconds, measured from :meth:`start`
        (the first :meth:`check` starts the clock implicitly).
    max_samples:
        Ceiling on ``detail["samples_drawn"]`` reported by sampling
        events.
    max_memory_bytes:
        Soft ceiling on the process's peak RSS; "soft" because peak RSS
        never shrinks and the check only fires between batches.
    clock, memory_probe:
        Injectable time source (monotonic seconds) and memory probe.
    """

    def __init__(
        self,
        deadline: float | None = None,
        max_samples: int | None = None,
        max_memory_bytes: int | None = None,
        clock: Callable[[], float] = time.monotonic,
        memory_probe: Callable[[], int | None] = default_memory_probe,
    ):
        self.deadline = deadline
        self.max_samples = max_samples
        self.max_memory_bytes = max_memory_bytes
        self._clock = clock
        self._memory_probe = memory_probe
        self._t0: float | None = None

    def start(self) -> "Budget":
        """Start (or restart) the wall clock; returns self for chaining."""
        self._t0 = self._clock()
        return self

    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0.0 if never started)."""
        if self._t0 is None:
            return 0.0
        return self._clock() - self._t0

    def remaining(self) -> float | None:
        """Seconds left on the deadline, or None when unbounded."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self.elapsed())

    def _raise(self, resource: str, limit, observed,
               event: ProgressEvent) -> None:
        err = BudgetExceededError(
            resource, limit, observed,
            message=(
                f"{resource} budget exceeded at {event.phase} "
                f"step {event.step}: observed {observed!r} against "
                f"limit {limit!r}"
            ),
        )
        err.budget = self
        raise err

    def check(self, event: ProgressEvent) -> None:
        """Raise :class:`BudgetExceededError` if any limit is exceeded."""
        if self._t0 is None:
            self.start()
        if self.deadline is not None:
            elapsed = self.elapsed()
            if elapsed > self.deadline:
                self._raise("deadline", self.deadline, elapsed, event)
        if self.max_samples is not None:
            drawn = event.detail.get("samples_drawn")
            if drawn is not None and drawn > self.max_samples:
                self._raise("samples", self.max_samples, drawn, event)
        if self.max_memory_bytes is not None:
            used = self._memory_probe()
            if used is not None and used > self.max_memory_bytes:
                self._raise("memory", self.max_memory_bytes, used, event)

    # A Budget *is* a progress hook.
    __call__ = check
