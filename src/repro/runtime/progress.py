"""The progress-hook protocol shared by all long-running computations.

A *progress hook* is any callable taking a single :class:`ProgressEvent`.
The sampling engine, the local peeling loop, both global searches, and
the Monte-Carlo oracle call their hook at natural batch boundaries; a
hook observes progress and may *abort* the computation by raising —
typically :class:`~repro.exceptions.BudgetExceededError` (from a
:class:`~repro.runtime.budget.Budget`) or
:class:`~repro.exceptions.ComputationInterrupted` (from an
:class:`~repro.runtime.interrupts.InterruptGuard` or an injected fault).

Emitted phases
--------------
==================  =====================================================
``sample-batch``    one batch of possible worlds drawn (``step`` = batch
                    index; ``detail["samples_drawn"]`` = cumulative N')
``local-peel``      a block of edges peeled by Algorithm 1 (``step`` =
                    edges assigned so far, ``total`` = edge count)
``global-level``    Algorithm 3 is starting level k (``step`` = k)
``global-level-done``  level k finished; ``detail["trusses"]`` holds the
                    maximal trusses found at k (``step`` = k)
``gtd-state``       Algorithm 4 explored another residual state
``gtd-frontier``    (executor runs only) Algorithm 4 merged one sharded
                    peel round (``step`` = round index); ``detail``
                    carries the complete mid-peel snapshot — level
                    ``k``, component index, next round, answers found,
                    outstanding frontier and visited states — which the
                    harness checkpoints so kill/resume lands on a round
                    boundary
``gbu-seed``        Algorithm 5 is processing seed ``step`` of ``total``
``oracle-eval``     the Monte-Carlo oracle classified another block of
                    candidate evaluations
``reliability-batch``  one batch of reliability samples classified
``reliability-rows``  (workers only) cumulative reliability sample rows
                    classified inside the pool, re-emitted by the pump
``parallel-heartbeat``  the worker pool is alive but no counter moved
                    during one pump interval (``step`` = heartbeat
                    count); lets deadline budgets fire while workers
                    grind on a long task
``worker-died``     supervision replaced a crashed or timed-out worker
                    (``detail``: task, reason, exitcode, payload_index)
``task-retried``    a payload whose worker died/timed out was requeued
                    (``step`` = that payload's attempt count so far)
``task-quarantined``  a payload exhausted ``max_task_retries`` and was
                    quarantined (``step`` = quarantine count this map;
                    ``detail``: task, payload_index, attempts, reason)
``local-init``      (workers only) Algorithm 1's initial support DPs
                    completed for another chunk of edges; counted in a
                    shared counter and re-emitted by the pump (``step``
                    = cumulative edges initialised)
``nucleus-peel``    a block of r-cliques peeled by the probabilistic
                    (r, s)-nucleus decomposition (``step`` = cliques
                    scored so far, ``total`` = r-clique count)
``nucleus-init``    (workers only) initial nucleus support DPs
                    completed for another chunk of r-cliques; counted
                    in a shared counter and re-emitted by the pump
                    (``step`` = cumulative cliques initialised)
``resource-pressure``  a resource probe crossed a pressure threshold or
                    a pressure response fired (``detail``: resource —
                    ``memory``/``disk``/``cpu`` —, action, observed
                    bytes/seconds); emitted by the
                    :class:`~repro.runtime.pressure.ResourceWatchdog`
                    and by the harness when the sample matrix spills
                    to disk
``checkpoint-degraded``  an atomic checkpoint write failed at the OS
                    level (ENOSPC, quota, ...); the run continues with
                    checkpointing disabled (``detail``:
                    checkpoint_error, path)
``service-request``  (``repro serve`` only) an admitted query began
                    processing (``detail``: endpoint, request id,
                    deadline)
``service-response``  a query's response was written (``detail``:
                    endpoint, status, elapsed, degraded)
``service-shed``    admission control refused a request — queue full,
                    in-flight limit not acquired before the deadline,
                    watchdog pressure, or an injected accept refusal
                    (``detail``: endpoint, reason, retry_after)
``service-degraded``  a degraded payload was served: a deadline-capped
                    partial, or the last-good cached index under an
                    open circuit breaker (``detail``: endpoint, reason)
``service-build``   a background index build changed state (``detail``:
                    key token, action — queued/started/finished/
                    failed/interrupted —, and for failures the reason)
``service-breaker``  an index's circuit breaker transitioned
                    (``detail``: key token, state — open/half-open/
                    closed —, failures, retry_after)
``service-drain``   graceful shutdown progress (``detail``: action —
                    begin/idle/done —, in-flight count, signal)
==================  =====================================================

Checkpoints are written *before* the hook runs at each boundary, so a
hook that raises never loses the batch it was notified about.

With ``workers=N`` the in-worker phases (``oracle-eval``, ``gtd-state``,
``local-init`` chunks) are counted in shared counters and re-emitted by
the parent's pump thread as *coalesced* events: ``step`` then carries
the counter delta since the previous pump rather than a per-call index.
Hooks that only rate-limit or abort (budgets, interrupt guards) are
unaffected; hooks that assume ``step`` is a dense sequence should treat
parallel runs as sampled.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

__all__ = ["KNOWN_PHASES", "ProgressEvent", "ProgressHook", "chain_hooks"]

#: The machine-readable progress-event vocabulary — the single source of
#: truth behind the docstring table above. ``reprolint``'s EVT rules
#: check every emitted phase literal against this set (and that every
#: entry here still has an emitter), and ``tests/test_reprolint.py``
#: asserts the table and this registry agree. Adding a phase means
#: adding it in both places.
KNOWN_PHASES = frozenset({
    "sample-batch",
    "local-peel",
    "local-init",
    "nucleus-peel",
    "nucleus-init",
    "global-level",
    "global-level-done",
    "gtd-state",
    "gtd-frontier",
    "gbu-seed",
    "oracle-eval",
    "reliability-batch",
    "reliability-rows",
    "parallel-heartbeat",
    "worker-died",
    "task-retried",
    "task-quarantined",
    "resource-pressure",
    "checkpoint-degraded",
    "service-request",
    "service-response",
    "service-shed",
    "service-degraded",
    "service-build",
    "service-breaker",
    "service-drain",
})

#: Debug-mode event validation, read once at import: with ``REPRO_DEBUG``
#: set (to anything non-empty) every constructed event must carry a
#: registered phase. Off by default — the hot loops construct events at
#: batch boundaries and production hooks must accept forward-compatible
#: phases from newer emitters.
_VALIDATE_PHASES = bool(os.environ.get("REPRO_DEBUG"))


@dataclass(frozen=True)
class ProgressEvent:
    """One batch-boundary notification from a long-running computation.

    Attributes
    ----------
    phase:
        Which loop emitted the event (see the module table).
    step:
        Monotone position within the phase (batch index, k level, ...).
    total:
        Known endpoint of ``step``, or None when open-ended.
    detail:
        Phase-specific payload (e.g. ``samples_drawn``, ``k``,
        ``trusses``).
    """

    phase: str
    step: int
    total: int | None = None
    detail: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        if _VALIDATE_PHASES and self.phase not in KNOWN_PHASES:
            from repro.exceptions import ParameterError

            raise ParameterError(
                f"unknown progress phase {self.phase!r}; registered "
                f"phases are {', '.join(sorted(KNOWN_PHASES))} "
                "(REPRO_DEBUG validation)"
            )


ProgressHook = Callable[[ProgressEvent], None]


def chain_hooks(*hooks: ProgressHook | None) -> ProgressHook | None:
    """Compose hooks left-to-right into one; None entries are skipped.

    Returns None when no hook remains, so callers can pass the result
    straight to a ``progress=`` parameter.
    """
    live = [h for h in hooks if h is not None]
    if not live:
        return None
    if len(live) == 1:
        return live[0]

    def chained(event: ProgressEvent) -> None:
        for hook in live:
            hook(event)

    # Introspectable composition: the harness walks this to find hooks
    # with side-band state (e.g. a FaultPlan carrying pool faults).
    chained.hooks = tuple(live)
    return chained
