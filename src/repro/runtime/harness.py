"""The resilient execution harness: budgeted, checkpointed, degradable.

This module wraps the paper's three expensive computations —
Monte-Carlo possible-world sampling, the global decompositions (GTD /
GBU), and network reliability estimation — with:

* **cooperative budgets** — a :class:`~repro.runtime.budget.Budget` is
  checked at every batch boundary via the progress-hook protocol;
* **deterministic checkpoint/resume** — sample batches, per-k truss
  levels, and RNG states are snapshotted through a
  :class:`~repro.runtime.checkpoint.CheckpointStore` *before* hooks can
  abort, so a killed run resumes bit-identically from the last boundary;
* **graceful degradation** — on budget breach the harness returns a
  :class:`~repro.runtime.result.PartialResult` instead of raising:
  truncated sampling widens epsilon per the Hoeffding rule, GTD falls
  back to GBU when its soft share of the deadline runs out, and an
  exhausted run reports every fully-completed truss level.

Only a cooperative *interrupt* (SIGINT, real or injected) escapes as an
exception — :class:`~repro.exceptions.ComputationInterrupted`, carrying
the checkpoint path — because an interrupted run has no result to hand
back, only a snapshot to resume from.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.core.global_decomp import (
    GlobalTrussResult,
    global_truss_decomposition,
)
from repro.core.local import LocalTrussResult, local_truss_decomposition
from repro.exceptions import (
    BudgetExceededError,
    CheckpointError,
    CheckpointWriteError,
    ComputationInterrupted,
    DecompositionError,
    ParameterError,
    TaskQuarantinedError,
)
from repro.graphs.probabilistic import ProbabilisticGraph
from repro.graphs.sampling import (
    SampleBatcher,
    hoeffding_epsilon,
    hoeffding_sample_size,
)
from repro.runtime.budget import Budget
from repro.runtime.checkpoint import CheckpointStore, decode_node, encode_node
from repro.runtime.progress import ProgressEvent, chain_hooks
from repro.runtime.result import PartialResult
from repro.runtime.spill import SpillDirectory

__all__ = ["run_global", "run_local", "run_nucleus", "run_reliability",
           "DEFAULT_BATCH_SIZE"]

#: Sampling batch rows between checkpoint/budget boundaries. 25 rows
#: keeps the overshoot of a cooperative deadline under a fraction of a
#: second on the bundled datasets while amortising the npz write cost.
DEFAULT_BATCH_SIZE = 25

#: Fraction of the remaining deadline the exact GTD search may spend
#: before the harness degrades to the GBU heuristic.
DEFAULT_GTD_FRACTION = 0.5


def _graph_fingerprint(graph: ProbabilisticGraph) -> dict:
    """A cheap, order-independent identity of a graph for checkpoints."""
    crc = 0
    for triple in sorted(
        (str(u), str(v), repr(float(p)))
        for u, v, p in graph.edges_with_probabilities()
    ):
        crc = zlib.crc32("|".join(triple).encode("utf-8"), crc)
    return {
        "nodes": graph.number_of_nodes(),
        "edges": graph.number_of_edges(),
        "crc": crc,
    }


def _require_plain_seed(seed, checkpointing: bool):
    if checkpointing and seed is not None and not isinstance(seed, int):
        raise CheckpointError(
            "checkpointed runs need a reproducible seed: pass an int (or "
            "None), not a Generator instance"
        )
    return seed


class _Degradations:
    """Accumulates degradation reasons applied during one run."""

    def __init__(self):
        self.reasons: list[str] = []
        self.fallback: str | None = None

    def note(self, reason: str) -> None:
        self.reasons.append(reason)

    @property
    def degraded(self) -> bool:
        return bool(self.reasons) or self.fallback is not None

    @property
    def reason(self) -> str | None:
        return "; ".join(self.reasons) if self.reasons else None


def _resume_or_clear(store: CheckpointStore, params: dict,
                     on_corrupt: str) -> dict | None:
    """Load a resumable manifest, honouring the corruption policy."""
    if not store.exists():
        return None
    try:
        return store.load_manifest(expect_params=params)
    except CheckpointError:
        if on_corrupt == "restart":
            store.clear()
            return None
        raise


def _attach_checkpoint(err: ComputationInterrupted,
                       store: CheckpointStore | None) -> None:
    if store is not None and err.checkpoint_path is None:
        err.checkpoint_path = str(store.path)


class _DegradableStore:
    """A checkpoint store whose *writes* degrade instead of failing.

    The first :class:`~repro.exceptions.CheckpointWriteError` (a full
    disk, a torn atomic write) disables checkpointing for the rest of
    the run: the error is recorded as a degradation reason, a
    ``checkpoint-degraded`` event is emitted through the user's progress
    hooks, and every later write becomes a no-op — the computation keeps
    going and still produces its result, it just loses resumability.
    Reads are never degraded: a corrupt *existing* checkpoint still
    raises, because silently ignoring one would resume the wrong run.
    """

    def __init__(self, store: CheckpointStore, note, progress):
        self._store = store
        self._note = note
        self._progress = progress
        self.degraded = False
        self.write_error: CheckpointWriteError | None = None

    def __getattr__(self, name):
        # Reads, paths, clears, GC: straight through to the real store.
        return getattr(self._store, name)

    def _disable(self, err: CheckpointWriteError) -> None:
        self.degraded = True
        self.write_error = err
        self._note(
            f"checkpoint write failed ({err}); checkpointing disabled "
            "for the rest of the run"
        )
        if self._progress is not None:
            self._progress(ProgressEvent(
                "checkpoint-degraded", step=0,
                detail={"checkpoint_error": str(err), "path": err.path},
            ))

    def _write(self, method, *args) -> None:
        if self.degraded:
            return
        try:
            getattr(self._store, method)(*args)
        except CheckpointWriteError as err:
            self._disable(err)

    def save_manifest(self, manifest: dict) -> None:
        self._write("save_manifest", manifest)

    def save_sample_batch(self, index: int, presence) -> None:
        self._write("save_sample_batch", index, presence)

    def save_level(self, k: int, trusses) -> None:
        self._write("save_level", k, trusses)

    def save_frontier(self, detail) -> None:
        self._write("save_frontier", detail)


def _wrap_store(store: CheckpointStore | None, note,
                progress) -> _DegradableStore | None:
    """Wrap a store (arming any injected disk faults) or pass None."""
    if store is None:
        return None
    plan = _disk_faults_of(progress)
    if plan is not None:
        store.write_fault = plan.take_disk_fault
    return _DegradableStore(store, note, progress)


def _disk_faults_of(progress):
    """Extract a FaultPlan with armed disk faults from a progress hook.

    Mirrors :func:`_pool_faults_of`: a FaultPlan carrying
    ``exhaust_disk`` faults is found anywhere in the (possibly chained)
    progress hook and handed to the checkpoint store as its
    ``write_fault`` supplier.
    """
    if progress is None:
        return None
    if getattr(progress, "_disk_faults", 0) > 0:
        return progress
    for sub in getattr(progress, "hooks", ()):  # chain_hooks composition
        found = _disk_faults_of(sub)
        if found is not None:
            return found
    return None


def _pool_faults_of(progress):
    """Extract a FaultPlan carrying pool faults from a progress hook.

    A :class:`~repro.runtime.faults.FaultPlan` doubles as a progress
    hook; when one with armed pool faults (``kill_worker`` etc.) is
    passed as ``progress``, the harness hands it to the executor so the
    faults reach the worker pool.
    """
    if progress is None:
        return None
    if (getattr(progress, "pool_faults", None) is not None
            or getattr(progress, "_corrupt_segment", False)):
        return progress
    for sub in getattr(progress, "hooks", ()):  # chain_hooks composition
        found = _pool_faults_of(sub)
        if found is not None:
            return found
    return None


def _quarantine_report(executor) -> tuple[list, int]:
    """The quarantine records and worst-case sample-row loss so far."""
    if executor is None:
        return [], 0
    return (
        list(getattr(executor, "quarantined", [])),
        int(getattr(executor, "sample_rows_lost", 0)),
    )


# ----------------------------------------------------------------------
# Global decomposition
# ----------------------------------------------------------------------
def run_global(
    graph: ProbabilisticGraph,
    gamma: float,
    *,
    epsilon: float = 0.1,
    delta: float = 0.1,
    method: str = "gbu",
    seed: int | None = None,
    n_samples: int | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    max_k: int | None = None,
    max_states: int | None = None,
    budget: Budget | None = None,
    checkpoint_dir=None,
    resume: bool = False,
    progress=None,
    gtd_fraction: float = DEFAULT_GTD_FRACTION,
    on_corrupt: str = "raise",
    workers: int | str | None = None,
    task_timeout: float | None = None,
    task_cpu_timeout: float | None = None,
    max_task_retries: int | None = None,
    on_memory_pressure: str = "spill",
    spill_dir=None,
) -> PartialResult:
    """Run a global (k, gamma)-truss decomposition under the harness.

    Parameters mirror
    :func:`~repro.core.global_decomp.global_truss_decomposition`, plus:

    budget:
        Cooperative limits; breaching them degrades the run instead of
        raising (see module docstring).
    workers:
        Parallel mode: one :class:`~repro.parallel.ParallelExecutor`
        (created after sampling, over the shared sample set) is threaded
        through the local pruning and the k loop. GBU always draws from
        per-seed RNG streams rooted at the int ``seed`` — serial and
        parallel alike — so results are byte-identical for every
        ``workers`` value, including None; a resumed run may change
        ``workers`` freely. Checkpointed parallel runs additionally
        require an int seed (a None seed's stream root cannot be
        re-derived on resume).
    task_timeout / max_task_retries:
        Supervision knobs forwarded to the executor: seconds one payload
        may hold a worker before it is killed and retried, and how many
        strikes (crashes or timeouts) a payload survives before being
        quarantined. Quarantines degrade honestly — the result notes
        every poison payload, oracle evaluations that lost sample rows
        widen the effective epsilon, and a quarantined GTD component
        falls back to GBU for that component only.
    checkpoint_dir / resume:
        Snapshot directory; with ``resume`` an existing compatible
        checkpoint is continued bit-identically.
    progress:
        Extra hook chained before the budget (fault plans and interrupt
        guards go here).
    gtd_fraction:
        Share of the remaining deadline GTD may spend before degrading
        to GBU.
    on_corrupt:
        ``"raise"`` (default) surfaces a corrupt checkpoint as
        :class:`CheckpointError`; ``"restart"`` clears it and starts
        fresh.
    on_memory_pressure / spill_dir:
        Policy for a *memory*-budget breach during sampling.
        ``"spill"`` (default) bit-packs the batches drawn so far, keeps
        sampling, and moves the finished packed matrix into a read-only
        ``np.memmap`` file under ``spill_dir`` (a private temp directory
        when None) — output stays byte-identical for every worker
        count, so this is reported as a ``resource-pressure`` event, not
        a degradation. ``"abort"`` restores the old behaviour: stop
        sampling early and degrade via the widened Hoeffding epsilon.
    task_cpu_timeout:
        CPU-stall supervision (see
        :class:`~repro.parallel.ParallelExecutor`): a worker whose CPU
        clock stands still this many wall seconds is presumed wedged
        and reclaimed; CPU progress extends its grace.

    Returns
    -------
    PartialResult
        With ``result`` a :class:`GlobalTrussResult` over every
        completed level (possibly empty), never an exception for budget
        breaches.
    """
    store = CheckpointStore(checkpoint_dir) if checkpoint_dir else None
    seed = _require_plain_seed(seed, store is not None)
    if workers is not None and store is not None and seed is None:
        raise CheckpointError(
            "checkpointed parallel runs need an int seed: the per-seed "
            "RNG streams are rooted at it, and a root derived from a "
            "None seed cannot be re-derived on resume"
        )
    n_requested = (
        n_samples if n_samples is not None
        else hoeffding_sample_size(epsilon, delta)
    )
    params = {
        "kind": "global",
        "gamma": gamma,
        "epsilon": epsilon,
        "delta": delta,
        "method": method,
        "seed": seed,
        "n_samples": n_requested,
        "batch_size": batch_size,
        "max_k": max_k,
        "max_states": max_states,
        "graph": _graph_fingerprint(graph),
        # One determinism family: serial GBU uses the same per-seed RNG
        # streams the parallel mode fans out, so results are
        # byte-identical for workers in {None, 1, 2, 4, ...}. The worker
        # *count* is deliberately absent — any count resumes any
        # compatible run. (Pre-unification "sequential" checkpoints are
        # a different family and correctly refuse to resume.)
        "rng_scheme": "per-seed",
    }
    if on_memory_pressure not in ("abort", "spill"):
        raise ParameterError(
            f"on_memory_pressure must be 'abort' or 'spill', "
            f"got {on_memory_pressure!r}"
        )
    degr = _Degradations()
    store = _wrap_store(store, degr.note, progress)
    if budget is not None:
        budget.start()
    hook = chain_hooks(progress, budget)

    rng = np.random.default_rng(seed)
    batcher = SampleBatcher(graph, n_requested, batch_size, seed=rng)

    completed: dict[int, list[ProbabilisticGraph]] = {}
    decomp_finished = False
    sampling_stopped_early: str | None = None
    manifest = None
    if store is not None and resume:
        manifest = _resume_or_clear(store, params, on_corrupt)
    if manifest is not None:
        sampling_state = manifest["sampling"]
        for index in range(sampling_state["batches_drawn"]):
            batcher.load_batch(store.load_sample_batch(index))
        sampling_stopped_early = sampling_state.get("stopped_early")
        if sampling_stopped_early:
            degr.note(sampling_stopped_early)
        rng.bit_generator.state = manifest["rng_state"]
        decomp_state = manifest.get("decomp") or {}
        for k in decomp_state.get("levels", []):
            completed[int(k)] = [
                graph.edge_subgraph(truss_edges)
                for truss_edges in store.load_level(int(k))
            ]
        decomp_finished = bool(decomp_state.get("finished"))
        if decomp_state.get("fallback"):
            degr.fallback = decomp_state["fallback"]

    # Mid-peel GTD snapshot (sharded frontier rounds): resume continues
    # the interrupted level from its last round boundary instead of
    # restarting it. Only meaningful while the run is still on the exact
    # search — a recorded GTD->GBU fallback supersedes it.
    frontier_state = None
    if manifest is not None and method == "gtd" and degr.fallback is None:
        try:
            frontier_state = store.load_frontier()
        except CheckpointError:
            if on_corrupt != "restart":
                raise
            store.clear_frontier()

    # Mutable decomposition state shared with the compute stages (which
    # run in a helper function): the manifest writer must observe method
    # fallbacks and completion as they happen.
    state = {
        "method": method if degr.fallback is None else "gbu",
        "finished": decomp_finished,
    }

    def write_manifest(status: str = "in-progress") -> None:
        if store is None:
            return
        store.save_manifest({
            "params": params,
            "rng_state": rng.bit_generator.state,
            "sampling": {
                "n_target": n_requested,
                "batch_size": batch_size,
                "batches_drawn": batcher.batches_drawn,
                "samples_drawn": batcher.samples_drawn,
                "stopped_early": sampling_stopped_early,
            },
            "decomp": {
                "levels": sorted(completed),
                "finished": state["finished"],
                "method": state["method"],
                "fallback": degr.fallback,
            },
            "status": status,
        })

    # Filled in once the executor exists (after sampling); `finish`
    # reads it to fold quarantine degradation into the result. The
    # spill block below records where the samples went, if anywhere.
    supervision = {"executor": None}
    spill_info: dict = {}

    def finish(result, complete: bool) -> PartialResult:
        quarantined, rows_lost = _quarantine_report(supervision["executor"])
        # The worst single oracle evaluation bounds the accuracy claim:
        # it classified only N - rows_lost samples, so epsilon widens to
        # that effective sample count, exactly like truncated sampling.
        eff_n = max(batcher.samples_drawn - rows_lost, 1)
        eff_eps = (
            epsilon if eff_n >= n_requested
            else hoeffding_epsilon(eff_n, delta)
        )
        reasons = list(degr.reasons)
        if quarantined:
            reasons.append(
                f"{len(quarantined)} parallel payload(s) quarantined: "
                + "; ".join(q.describe() for q in quarantined)
            )
        if rows_lost:
            reasons.append(
                f"worst oracle evaluation lost {rows_lost} sample rows "
                "to quarantined blocks; epsilon widened to the "
                f"{eff_n}-sample Hoeffding bound"
            )
        detail = {}
        if quarantined:
            detail["quarantined"] = [q.to_dict() for q in quarantined]
        if supervision["executor"] is not None:
            detail["supervision"] = (
                supervision["executor"].supervision_stats()
            )
        detail.update(spill_info)
        if complete and store is not None and not store.degraded:
            # The run is done: stale mid-peel snapshots, torn temp
            # files, and out-of-range sample batches are dead weight.
            store.collect_garbage(batches_drawn=batcher.batches_drawn)
        return PartialResult(
            kind="global",
            result=result,
            complete=complete,
            degraded=degr.degraded or bool(quarantined),
            reason="; ".join(reasons) if reasons else None,
            fallback=degr.fallback,
            requested_epsilon=epsilon,
            effective_epsilon=eff_eps,
            n_samples_requested=n_requested,
            n_samples_drawn=batcher.samples_drawn,
            completed_k=max(completed, default=None),
            checkpoint_path=str(store.path) if store else None,
            elapsed_seconds=budget.elapsed() if budget else None,
            detail=detail,
        )

    # -- stage 1: sampling --------------------------------------------
    spill_pending = False
    while (batcher.batches_drawn < batcher.n_batches
           and not sampling_stopped_early):
        index = batcher.batches_drawn
        try:
            presence = batcher.draw_next()
        except MemoryError:
            sampling_stopped_early = (
                f"out of memory drawing sample batch {index}"
            )
            degr.note(sampling_stopped_early)
            break
        if store is not None:
            store.save_sample_batch(index, presence)
            write_manifest()
        if hook is None:
            continue
        try:
            hook(ProgressEvent(
                "sample-batch", step=index, total=batcher.n_batches,
                detail={"samples_drawn": batcher.samples_drawn},
            ))
        except BudgetExceededError as err:
            if (err.resource == "memory" and on_memory_pressure == "spill"
                    and not spill_pending):
                # Memory pressure under the spill policy: bit-pack the
                # batches already drawn (8x smaller in place), lift the
                # memory limit — peak RSS is monotone, so the tripped
                # probe would re-fire forever — and finish sampling;
                # the packed matrix moves to a read-only memmap below.
                # Output is byte-identical, so this is *not* degraded.
                batcher.compact()
                if err.budget is not None:
                    err.budget.max_memory_bytes = None
                spill_pending = True
                continue
            sampling_stopped_early = str(err)
            degr.note(sampling_stopped_early)
            write_manifest()
            break
        except MemoryError as err:
            sampling_stopped_early = f"out of memory after batch {index}: {err}"
            degr.note(sampling_stopped_early)
            write_manifest()
            break
        except ComputationInterrupted as err:
            _attach_checkpoint(err, store)
            raise

    if batcher.samples_drawn == 0:
        write_manifest()
        return finish(None, complete=False)
    world_set = batcher.result(partial_ok=True)
    n_drawn = batcher.samples_drawn
    effective_epsilon = (
        epsilon if n_drawn >= n_requested
        else hoeffding_epsilon(n_drawn, delta)
    )

    # The executor (and its shared-memory sample segment) lives for the
    # compute stages only; the sampling stage above is sequential-RNG
    # and stays out of it by design. A spilled sample set's memmap file
    # (and its directory, when privately created) lives exactly as long.
    executor = None
    spill_store = None
    try:
        if spill_pending:
            spill_store = SpillDirectory(spill_dir)
            spilled_path = world_set.spill_to(
                spill_store.allocate("samples.bits")
            )
            if spilled_path is not None:
                spill_info["spilled_to"] = str(spilled_path)
            if spilled_path is not None and progress is not None:
                try:
                    progress(ProgressEvent(
                        "resource-pressure", step=0, detail={
                            "resource": "memory", "action": "spill",
                            "path": str(spilled_path),
                            "bytes": int(world_set.packed_bits.nbytes),
                            "free_bytes": spill_store.free_bytes(),
                        },
                    ))
                except ComputationInterrupted as err:
                    _attach_checkpoint(err, store)
                    raise
        if workers is not None:
            from repro.parallel import ParallelExecutor

            executor = ParallelExecutor(
                workers, graph=graph, samples=world_set,
                task_timeout=task_timeout,
                task_cpu_timeout=task_cpu_timeout,
                max_task_retries=max_task_retries,
                faults=_pool_faults_of(progress),
            ).start()
            supervision["executor"] = executor
        return _run_global_compute(
            graph, gamma, delta, seed, max_k, max_states, budget, store,
            progress, gtd_fraction, degr, hook, rng, completed, state,
            write_manifest, finish,
            effective_epsilon=effective_epsilon, n_drawn=n_drawn,
            world_set=world_set, executor=executor,
            frontier_state=frontier_state,
        )
    finally:
        if executor is not None:
            executor.close()
        if spill_store is not None:
            spill_store.cleanup()


def _run_global_compute(
    graph, gamma, delta, seed, max_k, max_states, budget, store,
    progress, gtd_fraction, degr, hook, rng, completed, state,
    write_manifest, finish, *,
    effective_epsilon, n_drawn, world_set, executor,
    frontier_state=None,
):
    """Stages 2-3 of :func:`run_global` (split out for executor scoping).

    ``state`` is the mutable ``{"method", "finished"}`` dict shared with
    the caller's manifest writer. ``frontier_state`` is an optional
    mid-peel GTD snapshot restored from the checkpoint; it is consumed
    by the first (and only the first) GTD stage.
    """
    # -- stage 2: local pruning (Eq. 11 candidate generation) ---------
    try:
        local_result = local_truss_decomposition(graph, gamma, progress=hook,
                                                 executor=executor)
    except BudgetExceededError as err:
        degr.note(f"budget exhausted during local pruning: {err}")
        write_manifest()
        return finish(None, complete=False)
    except MemoryError as err:
        degr.note(f"out of memory during local pruning: {err}")
        write_manifest()
        return finish(None, complete=False)
    except TaskQuarantinedError as err:
        # The PMF-init DPs are exact prerequisites with no sound
        # degradation: a poison chunk means no candidate set, so the run
        # ends with an honest incomplete result naming the payloads.
        degr.note(f"local pruning quarantined poison payloads: {err}")
        write_manifest()
        return finish(None, complete=False)
    except ComputationInterrupted as err:
        _attach_checkpoint(err, store)
        raise

    # -- stage 3: the k loop ------------------------------------------
    def level_checkpoint(event: ProgressEvent) -> None:
        if event.phase == "gtd-frontier":
            # Mid-peel round boundary: snapshot before any other hook
            # (fault plan, budget) can abort, so a kill here resumes
            # from this exact round.
            if store is not None:
                store.save_frontier(event.detail)
            return
        if event.phase != "global-level-done":
            return
        k = event.detail["k"]
        completed[k] = list(event.detail["trusses"])
        if store is not None:
            store.save_level(k, completed[k])
            # The finished level supersedes any mid-peel snapshot.
            store.clear_frontier()
            write_manifest()

    def build_result() -> GlobalTrussResult:
        return GlobalTrussResult(
            graph=graph, gamma=gamma, epsilon=effective_epsilon,
            delta=delta, n_samples=n_drawn, method=state["method"],
            trusses={k: list(v) for k, v in sorted(completed.items())},
        )

    if state["finished"]:
        return finish(build_result(), complete=True)

    def run_stage(stage_method: str, extra_hook=None) -> GlobalTrussResult:
        stage_hook = chain_hooks(level_checkpoint, progress, budget,
                                 extra_hook)
        return global_truss_decomposition(
            graph, gamma, epsilon=effective_epsilon, delta=delta,
            method=stage_method, seed=rng, n_samples=n_drawn,
            local_result=local_result, samples=world_set, max_k=max_k,
            max_states=max_states, progress=stage_hook,
            start_k=max(completed, default=1) + 1,
            initial_trusses={k: list(v) for k, v in completed.items()},
            executor=executor,
            # Per-seed streams root at the int seed, so a resumed run
            # (and a GTD->GBU fallback stage) derives the exact same
            # streams regardless of where the main generator's state
            # was when the run was killed or degraded. A None seed
            # falls back to drawing the root from ``rng``, which is
            # fine: checkpointed runs require an int seed.
            rng_root=seed,
            frontier_state=(frontier_state if stage_method == "gtd"
                            else None),
        )

    soft_budget = None
    if (state["method"] == "gtd" and budget is not None
            and budget.remaining() is not None):
        soft_budget = Budget(
            deadline=budget.remaining() * gtd_fraction,
            clock=budget._clock,
        ).start()

    try:
        try:
            result = run_stage(state["method"], extra_hook=soft_budget)
        except BudgetExceededError as err:
            if (soft_budget is not None and err.budget is soft_budget
                    and state["method"] == "gtd"):
                degr.fallback = "gtd->gbu"
                degr.note(
                    "exact top-down search exceeded its share of the "
                    f"deadline ({err}); degrading to the bottom-up heuristic"
                )
                state["method"] = "gbu"
                write_manifest()
                result = run_stage("gbu")
            else:
                raise
        except DecompositionError as err:
            if state["method"] == "gtd":
                degr.fallback = "gtd->gbu"
                degr.note(
                    f"exact top-down search gave up ({err}); degrading "
                    "to the bottom-up heuristic"
                )
                state["method"] = "gbu"
                write_manifest()
                result = run_stage("gbu")
            else:
                raise
    except BudgetExceededError as err:
        degr.note(f"budget exhausted during decomposition: {err}")
        write_manifest()
        return finish(build_result(), complete=False)
    except MemoryError as err:
        degr.note(f"out of memory during decomposition: {err}")
        write_manifest()
        return finish(build_result(), complete=False)
    except TaskQuarantinedError as err:
        # Degradable stages quarantine with the "skip" policy and never
        # raise; this is the backstop for a non-degradable map.
        degr.note(f"decomposition quarantined poison payloads: {err}")
        write_manifest()
        return finish(build_result(), complete=False)
    except ComputationInterrupted as err:
        _attach_checkpoint(err, store)
        write_manifest()
        raise

    state["finished"] = True
    write_manifest(status="complete")
    return finish(result, complete=True)


# ----------------------------------------------------------------------
# Local decomposition
# ----------------------------------------------------------------------
def run_local(
    graph: ProbabilisticGraph,
    gamma: float,
    *,
    method: str = "dp",
    budget: Budget | None = None,
    checkpoint_dir=None,
    resume: bool = False,
    progress=None,
    on_corrupt: str = "raise",
    workers: int | str | None = None,
    task_timeout: float | None = None,
    task_cpu_timeout: float | None = None,
    max_task_retries: int | None = None,
) -> PartialResult:
    """Run a local decomposition under the harness.

    Peeling is not internally resumable (removing an edge mutates every
    neighbouring support PMF), so the checkpoint stores the *finished*
    trussness map: ``resume`` returns it instantly, and a budget breach
    salvages the tau values assigned so far — which are final, since
    peeling emits trussness in nondecreasing order — as a degraded
    partial result.

    ``workers`` parallelises the initial support DPs (the peeling stays
    serial); its canonical triangle-factor ordering is tagged into the
    checkpoint parameters, so serial and parallel runs never resume each
    other's manifests, but any two worker counts do.
    """
    store = CheckpointStore(checkpoint_dir) if checkpoint_dir else None
    params = {
        "kind": "local",
        "gamma": gamma,
        "method": method,
        "graph": _graph_fingerprint(graph),
        "pmf_order": "canonical" if workers is not None else "adjacency",
    }
    degr = _Degradations()
    store = _wrap_store(store, degr.note, progress)
    if budget is not None:
        budget.start()
    hook = chain_hooks(progress, budget)

    def to_partial(trussness, complete, reason=None):
        result = LocalTrussResult(
            graph=graph, gamma=gamma, trussness=trussness, method=method,
        )
        reasons = [r for r in (reason, degr.reason) if r]
        reason = "; ".join(reasons) if reasons else None
        return PartialResult(
            kind="local", result=result, complete=complete,
            degraded=reason is not None, reason=reason,
            checkpoint_path=str(store.path) if store else None,
            elapsed_seconds=budget.elapsed() if budget else None,
            detail={"edges_assigned": len(trussness),
                    "edges_total": graph.number_of_edges()},
        )

    if store is not None and resume:
        manifest = _resume_or_clear(store, params, on_corrupt)
        if manifest is not None and manifest.get("status") == "complete":
            trussness = {
                (decode_node(u), decode_node(v)): int(tau)
                for u, v, tau in manifest["trussness"]
            }
            return to_partial(trussness, complete=True)

    executor = None
    if workers is not None:
        from repro.parallel import ParallelExecutor

        executor = ParallelExecutor(
            workers, graph=graph,
            task_timeout=task_timeout, task_cpu_timeout=task_cpu_timeout,
            max_task_retries=max_task_retries,
            faults=_pool_faults_of(progress),
        ).start()
    try:
        result = local_truss_decomposition(graph, gamma, method=method,
                                           progress=hook,
                                           executor=executor)
    except TaskQuarantinedError as err:
        # pmf-init chunks are exact prerequisites: no sound degradation,
        # so the run ends incomplete, naming the poison payloads.
        return to_partial(
            {}, complete=False,
            reason=f"parallel init quarantined poison payloads: {err}",
        )
    except BudgetExceededError as err:
        partial = err.partial or {}
        return to_partial(
            dict(partial), complete=False,
            reason=(
                f"{err}; {len(partial)} of {graph.number_of_edges()} "
                "edges assigned"
            ),
        )
    except MemoryError as err:
        partial = getattr(err, "partial", None) or {}
        return to_partial(
            dict(partial), complete=False,
            reason=f"out of memory during peeling: {err}",
        )
    except ComputationInterrupted as err:
        _attach_checkpoint(err, store)
        raise
    finally:
        if executor is not None:
            executor.close()

    if store is not None:
        store.save_manifest({
            "params": params,
            "status": "complete",
            "trussness": sorted(
                [encode_node(u), encode_node(v), tau]
                for (u, v), tau in result.trussness.items()
            ),
        })
        if not store.degraded:
            store.collect_garbage()
    return to_partial(result.trussness, complete=True)


def run_nucleus(
    graph: ProbabilisticGraph,
    r: int,
    s: int,
    gamma: float,
    *,
    method: str = "dp",
    budget: Budget | None = None,
    checkpoint_dir=None,
    resume: bool = False,
    progress=None,
    on_corrupt: str = "raise",
    workers: int | str | None = None,
    task_timeout: float | None = None,
    task_cpu_timeout: float | None = None,
    max_task_retries: int | None = None,
) -> PartialResult:
    """Run a probabilistic (r, s)-nucleus decomposition under the harness.

    Same contract as :func:`run_local` (the (2, 3) case *is*
    ``run_local`` semantically): peeling is not internally resumable, so
    the checkpoint stores the finished score map — ``resume`` returns it
    instantly — and a budget breach salvages the scores assigned so far,
    which are final because peeling emits them in nondecreasing order.

    ``workers`` parallelises the initial support DPs through the
    ``nucleus-cell`` task; all factor orderings are canonical, so every
    worker count (including None) is byte-identical and shares one
    manifest format.
    """
    from repro.core.nucleus import NucleusResult, nucleus_decomposition

    store = CheckpointStore(checkpoint_dir) if checkpoint_dir else None
    params = {
        "kind": "nucleus",
        "r": r,
        "s": s,
        "gamma": gamma,
        "method": method,
        "graph": _graph_fingerprint(graph),
        "pmf_order": "canonical",
    }
    degr = _Degradations()
    store = _wrap_store(store, degr.note, progress)
    if budget is not None:
        budget.start()
    hook = chain_hooks(progress, budget)

    def to_partial(scores, complete, reason=None):
        result = NucleusResult(
            graph=graph, r=r, s=s, gamma=gamma, scores=scores, method=method,
        )
        reasons = [x for x in (reason, degr.reason) if x]
        reason = "; ".join(reasons) if reasons else None
        return PartialResult(
            kind="nucleus", result=result, complete=complete,
            degraded=reason is not None, reason=reason,
            checkpoint_path=str(store.path) if store else None,
            elapsed_seconds=budget.elapsed() if budget else None,
            detail={"r": r, "s": s, "cliques_assigned": len(scores)},
        )

    if store is not None and resume:
        manifest = _resume_or_clear(store, params, on_corrupt)
        if manifest is not None and manifest.get("status") == "complete":
            scores = {
                tuple(decode_node(x) for x in row[:-1]): int(row[-1])
                for row in manifest["scores"]
            }
            return to_partial(scores, complete=True)

    executor = None
    if workers is not None:
        from repro.parallel import ParallelExecutor

        executor = ParallelExecutor(
            workers, graph=graph,
            task_timeout=task_timeout, task_cpu_timeout=task_cpu_timeout,
            max_task_retries=max_task_retries,
            faults=_pool_faults_of(progress),
        ).start()
    try:
        result = nucleus_decomposition(graph, r, s, gamma, method=method,
                                       progress=hook, executor=executor)
    except TaskQuarantinedError as err:
        # nucleus-cell chunks are exact prerequisites: no sound
        # degradation, so the run ends incomplete, naming the poison
        # payloads.
        return to_partial(
            {}, complete=False,
            reason=f"parallel init quarantined poison payloads: {err}",
        )
    except BudgetExceededError as err:
        partial = err.partial or {}
        return to_partial(
            dict(partial), complete=False,
            reason=f"{err}; {len(partial)} cliques scored",
        )
    except MemoryError as err:
        partial = getattr(err, "partial", None) or {}
        return to_partial(
            dict(partial), complete=False,
            reason=f"out of memory during peeling: {err}",
        )
    except ComputationInterrupted as err:
        _attach_checkpoint(err, store)
        raise
    finally:
        if executor is not None:
            executor.close()

    if store is not None:
        store.save_manifest({
            "params": params,
            "status": "complete",
            "scores": sorted(
                [encode_node(x) for x in cell] + [nu]
                for cell, nu in result.scores.items()
            ),
        })
        if not store.degraded:
            store.collect_garbage()
    return to_partial(result.scores, complete=True)


# ----------------------------------------------------------------------
# Network reliability
# ----------------------------------------------------------------------
def _count_connected(graph: ProbabilisticGraph, edges, presence) -> int:
    """Count rows of ``presence`` whose world connects all graph nodes.

    Thin wrapper over
    :func:`repro.core.reliability.count_connected_rows` — the *same*
    function the ``reliability-block`` worker task runs, which is what
    makes the parallel fan-out bit-identical to this serial path.
    """
    from repro.core.reliability import count_connected_rows

    return count_connected_rows(list(graph.nodes()), list(edges), presence)


def run_reliability(
    graph: ProbabilisticGraph,
    *,
    n_samples: int = 1000,
    delta: float = 0.05,
    seed: int | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE * 4,
    budget: Budget | None = None,
    checkpoint_dir=None,
    resume: bool = False,
    progress=None,
    on_corrupt: str = "raise",
    workers: int | str | None = None,
    task_timeout: float | None = None,
    task_cpu_timeout: float | None = None,
    max_task_retries: int | None = None,
) -> PartialResult:
    """Estimate network reliability under the harness.

    Fully resumable: only the running hit count, batch index, and RNG
    state need snapshotting, so checkpoints are tiny. A budget breach
    returns the estimate over the samples drawn so far with the
    honestly widened epsilon for the given ``delta``.

    ``workers`` fans the connectivity classification across the worker
    pool in windows of ``2 * workers`` batches while the RNG *draws*
    stay strictly sequential in the parent — the sample stream, and
    hence the estimate, is byte-identical for every worker count
    (including the serial ``workers=None`` path; checkpoints are
    interchangeable between all of them). Hit counts are additive over
    disjoint batches, so merge order cannot matter. The parent captures
    the RNG state before each draw, so a budget breach or interrupt
    mid-window still writes a per-batch-accurate checkpoint. A
    quarantined batch (supervision gave up on it) is dropped from both
    numerator and denominator — the estimate stays unbiased over the
    rows actually classified and epsilon widens accordingly.
    """
    store = CheckpointStore(checkpoint_dir) if checkpoint_dir else None
    seed = _require_plain_seed(seed, store is not None)
    params = {
        "kind": "reliability",
        "n_samples": n_samples,
        "batch_size": batch_size,
        "seed": seed,
        "delta": delta,
        "graph": _graph_fingerprint(graph),
    }
    degr = _Degradations()
    store = _wrap_store(store, degr.note, progress)
    if budget is not None:
        budget.start()
    hook = chain_hooks(progress, budget)

    rng = np.random.default_rng(seed)
    batcher = SampleBatcher(graph, n_samples, batch_size, seed=rng)
    edges = batcher.edges
    hits = 0
    batches_done = 0
    rows_skipped = 0
    supervision = {"executor": None}

    manifest = None
    if store is not None and resume:
        manifest = _resume_or_clear(store, params, on_corrupt)
    if manifest is not None:
        hits = int(manifest["hits"])
        batches_done = int(manifest["batches_done"])
        samples_done = int(manifest["samples_done"])
        rng.bit_generator.state = manifest["rng_state"]
    else:
        samples_done = 0

    def write_manifest(status: str = "in-progress") -> None:
        if store is None:
            return
        store.save_manifest({
            "params": params,
            "hits": hits,
            "batches_done": batches_done,
            "samples_done": samples_done,
            "rng_state": rng.bit_generator.state,
            "status": status,
        })

    def finish(complete: bool) -> PartialResult:
        estimate = hits / samples_done if samples_done else None
        quarantined, _ = _quarantine_report(supervision["executor"])
        detail = {"hits": hits}
        if quarantined:
            detail["quarantined"] = [q.to_dict() for q in quarantined]
            detail["rows_skipped"] = rows_skipped
        return PartialResult(
            kind="reliability", result=estimate, complete=complete,
            degraded=degr.degraded, reason=degr.reason,
            effective_epsilon=(
                hoeffding_epsilon(samples_done, delta) if samples_done else None
            ),
            requested_epsilon=hoeffding_epsilon(n_samples, delta),
            n_samples_requested=n_samples,
            n_samples_drawn=samples_done,
            checkpoint_path=str(store.path) if store else None,
            elapsed_seconds=budget.elapsed() if budget else None,
            detail=detail,
        )

    executor = None
    if workers is not None:
        from repro.parallel import ParallelExecutor

        executor = ParallelExecutor(
            workers, graph=graph,
            task_timeout=task_timeout, task_cpu_timeout=task_cpu_timeout,
            max_task_retries=max_task_retries,
            faults=_pool_faults_of(progress),
        ).start()
        supervision["executor"] = executor
    nodes = list(graph.nodes())
    try:
        while batches_done < batcher.n_batches:
            pooled = executor is not None and executor.pool_workers > 1
            window = max(1, 2 * executor.pool_workers) if pooled else 1
            first = batches_done
            limit = min(batcher.n_batches, first + window)
            # Draw the whole window sequentially in the parent — the RNG
            # stream is identical to the serial path for every worker
            # count — capturing the state before each batch so the
            # per-batch manifests below stay resume-accurate mid-window.
            states = []
            rows_list = []
            payloads = []
            for j in range(first, limit):
                states.append(batcher.rng_state())
                rows = batcher.batch_rows(j)
                rows_list.append(rows)
                payloads.append((nodes, edges, batcher.draw_presence(rows)))
            end_state = batcher.rng_state()
            try:
                if pooled:
                    counts = executor.map(
                        "reliability-block", payloads, progress=hook,
                        on_quarantine="skip",
                    )
                else:
                    counts = [
                        _count_connected(graph, edges, p[2])
                        for p in payloads
                    ]
            except MemoryError as err:
                # Nothing from this window was merged; rewind the RNG so
                # the manifest matches `batches_done` drawn batches.
                batcher.set_rng_state(states[0])
                degr.note(
                    f"out of memory classifying batch {first}: {err}"
                )
                write_manifest()
                return finish(complete=False)
            from repro.parallel.supervisor import QUARANTINED

            # Merge strictly in batch order: manifests and hook events
            # fire per batch, exactly as in the serial loop.
            for offset, count in enumerate(counts):
                j = first + offset
                rows = rows_list[offset]
                after = (states[offset + 1] if offset + 1 < len(states)
                         else end_state)
                if count is QUARANTINED:
                    rows_skipped += rows
                    degr.note(
                        f"reliability batch {j} quarantined after "
                        f"repeated worker failures; {rows} rows dropped "
                        "from the estimate"
                    )
                else:
                    hits += count
                    samples_done += rows
                batches_done += 1
                batcher.set_rng_state(after)
                write_manifest()
                if hook is None:
                    continue
                try:
                    hook(ProgressEvent(
                        "reliability-batch", step=j,
                        total=batcher.n_batches,
                        detail={"samples_drawn": samples_done},
                    ))
                except BudgetExceededError as err:
                    degr.note(str(err))
                    write_manifest()
                    return finish(complete=False)
                except MemoryError as err:
                    degr.note(f"out of memory after batch {j}: {err}")
                    write_manifest()
                    return finish(complete=False)
                except ComputationInterrupted as err:
                    _attach_checkpoint(err, store)
                    raise
    finally:
        if executor is not None:
            executor.close()

    write_manifest(status="complete")
    if store is not None and not store.degraded:
        store.collect_garbage()
    return finish(complete=True)
