"""Resilient execution runtime: budgets, checkpoints, degradation, faults.

The paper's algorithms are expensive — Monte-Carlo sampling over
possible worlds, an exponential exact search (GTD), hours-long
heuristic sweeps (GBU). This package makes long runs *survivable*:

* :mod:`~repro.runtime.progress` — the batch-boundary hook protocol
  every expensive loop emits events through;
* :mod:`~repro.runtime.budget` — cooperative wall-clock / sample /
  memory limits, checked at those boundaries;
* :mod:`~repro.runtime.checkpoint` — versioned, CRC-checked snapshots
  enabling bit-identical kill-and-resume;
* :mod:`~repro.runtime.interrupts` — SIGINT/SIGTERM turned into a
  cooperative, checkpoint-safe stop;
* :mod:`~repro.runtime.pressure` — the resource watchdog probing peak
  RSS, free disk, and worker CPU time at batch boundaries;
* :mod:`~repro.runtime.spill` — managed scratch directories for sample
  sets that spill to disk under memory pressure;
* :mod:`~repro.runtime.faults` — deterministic fault injection for
  testing all of the above;
* :mod:`~repro.runtime.result` — the structured
  :class:`~repro.runtime.result.PartialResult` degraded runs return;
* :mod:`~repro.runtime.harness` — ``run_local`` / ``run_global`` /
  ``run_nucleus`` / ``run_reliability``, tying it all together.

See ``docs/robustness.md`` for the full semantics.
"""

from repro.runtime.progress import ProgressEvent, chain_hooks
from repro.runtime.budget import Budget, default_memory_probe
from repro.runtime.interrupts import InterruptGuard
from repro.runtime.pressure import ResourceWatchdog
from repro.runtime.spill import SpillDirectory
from repro.runtime.faults import FaultPlan, corrupt_checkpoint
from repro.runtime.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CheckpointStore,
    decode_node,
    encode_node,
)
from repro.runtime.result import (
    PartialResult,
    serialize_global_result,
    serialize_local_result,
    serialize_nucleus_result,
)
from repro.runtime.harness import (
    DEFAULT_BATCH_SIZE,
    run_global,
    run_local,
    run_nucleus,
    run_reliability,
)

__all__ = [
    "ProgressEvent",
    "chain_hooks",
    "Budget",
    "default_memory_probe",
    "InterruptGuard",
    "ResourceWatchdog",
    "SpillDirectory",
    "FaultPlan",
    "corrupt_checkpoint",
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CheckpointStore",
    "encode_node",
    "decode_node",
    "PartialResult",
    "serialize_global_result",
    "serialize_local_result",
    "serialize_nucleus_result",
    "DEFAULT_BATCH_SIZE",
    "run_global",
    "run_local",
    "run_nucleus",
    "run_reliability",
]
