"""Deterministic fault injection for exercising every recovery path.

A :class:`FaultPlan` is a progress hook that raises a scheduled
exception the first time a given ``(phase, step)`` boundary is reached —
simulated SIGINT (:class:`~repro.exceptions.ComputationInterrupted`),
simulated OOM (:class:`MemoryError`), or any caller-supplied exception.
Because faults key on the same batch boundaries the checkpoints use,
tests can kill a run at *every* boundary and assert that resuming
reproduces the uninterrupted output byte for byte.

:func:`corrupt_checkpoint` damages an on-disk checkpoint in controlled
ways so the :class:`~repro.exceptions.CheckpointError` paths are
testable too.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.exceptions import CheckpointError, ComputationInterrupted
from repro.runtime.progress import ProgressEvent

__all__ = ["FaultPlan", "corrupt_checkpoint"]


class FaultPlan:
    """A schedule of deterministic faults keyed by ``(phase, step)``.

    Each fault fires at most once; ``fired`` records what actually
    triggered so tests can assert the plan was exercised.
    """

    def __init__(self):
        self._faults: dict[tuple[str, int], Exception | type] = {}
        self.fired: list[tuple[str, int]] = []

    def raise_at(self, phase: str, step: int,
                 exc: Exception | type) -> "FaultPlan":
        """Schedule ``exc`` (instance or class) at ``(phase, step)``."""
        self._faults[(phase, step)] = exc
        return self

    def sigint_at(self, phase: str, step: int) -> "FaultPlan":
        """Simulate a SIGINT delivered at ``(phase, step)``."""
        return self.raise_at(
            phase, step,
            ComputationInterrupted(
                f"simulated SIGINT at {phase} step {step}"
            ),
        )

    def oom_at(self, phase: str, step: int) -> "FaultPlan":
        """Simulate an out-of-memory condition at ``(phase, step)``."""
        return self.raise_at(
            phase, step,
            MemoryError(f"simulated OOM at {phase} step {step}"),
        )

    def check(self, event: ProgressEvent) -> None:
        """Fire (once) the fault scheduled for this boundary, if any."""
        key = (event.phase, event.step)
        exc = self._faults.pop(key, None)
        if exc is None:
            return
        self.fired.append(key)
        if isinstance(exc, type):
            raise exc(f"injected fault at {key[0]} step {key[1]}")
        raise exc

    __call__ = check


def corrupt_checkpoint(directory, target: str = "manifest",
                       mode: str = "garbage") -> Path:
    """Deterministically damage a checkpoint; returns the damaged file.

    ``target`` is ``"manifest"`` or a file-name prefix (e.g.
    ``"samples"`` picks the first sample batch); ``mode`` is
    ``"garbage"`` (overwrite with non-JSON/non-npz bytes) or
    ``"truncate"`` (cut the file in half, as a crash mid-write would).
    """
    directory = Path(directory)
    if target == "manifest":
        victim = directory / "manifest.json"
    else:
        matches = sorted(directory.glob(f"{target}*"))
        if not matches:
            raise CheckpointError(
                f"no checkpoint file matching {target!r} in {directory}"
            )
        victim = matches[0]
    if not victim.exists():
        raise CheckpointError(f"checkpoint file {victim} does not exist")
    if mode == "garbage":
        victim.write_bytes(b"\x00corrupt\xff" * 4)
    elif mode == "truncate":
        size = victim.stat().st_size
        with open(victim, "rb+") as handle:
            handle.truncate(size // 2)
        os.utime(victim)
    else:
        raise CheckpointError(f"unknown corruption mode {mode!r}")
    return victim
