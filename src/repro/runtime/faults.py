"""Deterministic fault injection for exercising every recovery path.

A :class:`FaultPlan` is a progress hook that raises a scheduled
exception the first time a given ``(phase, step)`` boundary is reached —
simulated SIGINT (:class:`~repro.exceptions.ComputationInterrupted`),
simulated OOM (:class:`MemoryError`), or any caller-supplied exception.
Because faults key on the same batch boundaries the checkpoints use,
tests can kill a run at *every* boundary and assert that resuming
reproduces the uninterrupted output byte for byte. The ``*_on_phase``
variants fire on the first event of a phase regardless of step — handy
for supervision phases (``worker-died``, ``task-quarantined``) whose
step numbering depends on recovery order.

A plan can also carry *pool faults*, which do not raise in the parent
but sabotage the worker pool itself: :meth:`kill_worker` makes one
worker SIGKILL itself mid-run (a real, uncatchable death),
:meth:`hang_task` makes a matching task sleep forever (so only the
supervision timeout can reclaim it), and :meth:`corrupt_shared_segment`
scribbles over the shared sample pages so crash recovery must detect
the CRC mismatch and re-publish. The executor consumes these at pool
start; fork inheritance carries the shared fire-once tokens into every
worker.

:func:`corrupt_checkpoint` damages an on-disk checkpoint in controlled
ways so the :class:`~repro.exceptions.CheckpointError` paths are
testable too.
"""

from __future__ import annotations

import errno
import os
from pathlib import Path

from repro.exceptions import (
    BudgetExceededError,
    CheckpointError,
    ComputationInterrupted,
)
from repro.runtime.progress import ProgressEvent

__all__ = ["FaultPlan", "corrupt_checkpoint"]


class FaultPlan:
    """A schedule of deterministic faults keyed by ``(phase, step)``.

    Each fault fires at most once; ``fired`` records what actually
    triggered so tests can assert the plan was exercised.
    """

    def __init__(self):
        self._faults: dict[tuple[str, int], Exception | type] = {}
        self._phase_faults: dict[str, Exception | type] = {}
        self.fired: list[tuple[str, int]] = []
        #: Pool-fault spec consumed by the executor at pool start
        #: (keyword arguments of ``PoolFaultState``), or None.
        self.pool_faults: dict | None = None
        self._corrupt_segment = False
        self._disk_faults = 0
        #: Service-side fault tokens consumed by the ``repro serve``
        #: HTTP layer: kind -> remaining fire count (plus
        #: ``slow_client_seconds`` for the stall duration).
        self.service_faults: dict = {}

    def raise_at(self, phase: str, step: int,
                 exc: Exception | type) -> "FaultPlan":
        """Schedule ``exc`` (instance or class) at ``(phase, step)``."""
        self._faults[(phase, step)] = exc
        return self

    def sigint_at(self, phase: str, step: int) -> "FaultPlan":
        """Simulate a SIGINT delivered at ``(phase, step)``."""
        return self.raise_at(
            phase, step,
            ComputationInterrupted(
                f"simulated SIGINT at {phase} step {step}"
            ),
        )

    def oom_at(self, phase: str, step: int) -> "FaultPlan":
        """Simulate an out-of-memory condition at ``(phase, step)``."""
        return self.raise_at(
            phase, step,
            MemoryError(f"simulated OOM at {phase} step {step}"),
        )

    def memory_pressure(self, phase: str, step: int) -> "FaultPlan":
        """Simulate a memory-budget breach at ``(phase, step)``.

        Raises the same :class:`BudgetExceededError` (``resource ==
        "memory"``) a real :class:`~repro.runtime.Budget` produces when
        peak RSS crosses its limit, so the harness's memory-pressure
        policy (abort vs spill-to-disk) is exercised without actually
        allocating gigabytes.
        """
        err = BudgetExceededError(
            "memory", 0, 1,
            message=f"injected memory pressure at {phase} step {step}",
        )
        return self.raise_at(phase, step, err)

    def raise_on_phase(self, phase: str,
                       exc: Exception | type) -> "FaultPlan":
        """Schedule ``exc`` for the first event of ``phase``, any step."""
        self._phase_faults[phase] = exc
        return self

    def sigint_on_phase(self, phase: str) -> "FaultPlan":
        """Simulate a SIGINT at the first event of ``phase``, any step."""
        return self.raise_on_phase(
            phase,
            ComputationInterrupted(f"simulated SIGINT at {phase}"),
        )

    # -- pool faults (consumed by the executor, fire inside workers) ----
    def kill_worker(self, after_tasks: int = 0) -> "FaultPlan":
        """Make one worker SIGKILL itself once it has completed
        ``after_tasks`` tasks and receives the next one.

        Exactly one worker fires (a shared token coordinates the pool),
        so the run loses one in-flight payload — which supervision must
        replay byte-identically.
        """
        self.pool_faults = dict(self.pool_faults or {},
                                kill_after=int(after_tasks))
        return self

    def hang_task(self, matching: str, payload_index: int | None = None,
                  times: int = 1) -> "FaultPlan":
        """Make task ``matching`` (optionally only payload
        ``payload_index``) sleep forever, ``times`` times.

        Only a supervision ``task_timeout`` can reclaim the worker;
        with ``times`` greater than ``max_task_retries`` the payload
        ends up quarantined.
        """
        self.pool_faults = dict(
            self.pool_faults or {},
            hang_name=str(matching),
            hang_index=None if payload_index is None else int(payload_index),
            hang_limit=None if times is None else int(times),
        )
        return self

    def stall_task_cpu(self, matching: str, payload_index: int | None = None,
                       times: int = 1) -> "FaultPlan":
        """Make task ``matching`` wedge with *zero* CPU progress.

        A wedged task is exactly a hang: wall clock advances, CPU does
        not — the signature the supervisor's ``task_cpu_timeout``
        distinguishes from a merely descheduled-but-busy worker (see
        :meth:`spin_task` for that opposite case).
        """
        return self.hang_task(matching, payload_index, times)

    def spin_task(self, matching: str, seconds: float,
                  payload_index: int | None = None,
                  times: int = 1) -> "FaultPlan":
        """Make task ``matching`` burn CPU for ``seconds`` before running.

        Wall clock *and* CPU advance, so a ``task_cpu_timeout`` must
        keep extending the worker's grace instead of killing it — the
        oversubscribed-machine case a pure wall-clock timeout
        misclassifies.
        """
        self.pool_faults = dict(
            self.pool_faults or {},
            spin_name=str(matching),
            spin_index=None if payload_index is None else int(payload_index),
            spin_seconds=float(seconds),
            spin_limit=None if times is None else int(times),
        )
        return self

    def exhaust_disk(self, times: int = 1) -> "FaultPlan":
        """Make the next ``times`` checkpoint writes fail with ENOSPC.

        The harness arms :attr:`CheckpointStore.write_fault` with
        :meth:`take_disk_fault`, so the injected failure travels the
        exact path a real full disk does: torn temp file unlinked,
        :class:`~repro.exceptions.CheckpointWriteError` raised,
        computation continuing with checkpointing disabled.
        """
        self._disk_faults = int(times)
        return self

    def take_disk_fault(self) -> OSError | None:
        """Store-side: consume one scheduled disk fault, or None.

        Returns a *constructed* ``ENOSPC`` :class:`OSError` (the write
        path raises it mid-write, inside its own ``except OSError``
        conversion) rather than raising here.
        """
        if self._disk_faults <= 0:
            return None
        self._disk_faults -= 1
        self.fired.append(("exhaust-disk", self._disk_faults))
        return OSError(
            errno.ENOSPC, "injected disk exhaustion (fault plan)"
        )

    # -- service faults (consumed by the ``repro serve`` HTTP layer) ----
    def drop_connection(self, times: int = 1) -> "FaultPlan":
        """Abruptly close the next ``times`` client connections just
        before the response bytes would be written.

        The client observes a reset/empty reply — exactly what a
        crashed proxy or a yanked network cable produces — and the
        chaos battery asserts the server itself stays healthy: the
        admission slot is released, the trace records the request, and
        the next request on a fresh connection succeeds.
        """
        self.service_faults["drop_connection"] = (
            self.service_faults.get("drop_connection", 0) + int(times)
        )
        return self

    def slow_client(self, seconds: float, times: int = 1) -> "FaultPlan":
        """Stall the response write of the next ``times`` requests for
        ``seconds``, simulating a client that stops draining its socket.

        The stalled request holds its admission slot the whole time, so
        this is also how tests fill the in-flight limit
        deterministically and prove load shedding (typed 503 +
        ``Retry-After``) for the requests behind it.
        """
        self.service_faults["slow_client"] = (
            self.service_faults.get("slow_client", 0) + int(times)
        )
        self.service_faults["slow_client_seconds"] = float(seconds)
        return self

    def refuse_accept(self, times: int = 1) -> "FaultPlan":
        """Refuse the next ``times`` incoming connections at accept
        time (the server closes them without reading the request).

        Models accept-queue exhaustion; the server emits a
        ``service-shed`` event per refusal and keeps serving later
        connections normally.
        """
        self.service_faults["refuse_accept"] = (
            self.service_faults.get("refuse_accept", 0) + int(times)
        )
        return self

    def take_service_fault(self, kind: str) -> float | None:
        """Server-side: consume one scheduled service fault of ``kind``.

        Returns None when no fault of that kind is pending; otherwise
        records the firing and returns the stall duration for
        ``slow_client`` (0.0 for the other kinds).
        """
        remaining = self.service_faults.get(kind, 0)
        if remaining <= 0:
            return None
        self.service_faults[kind] = remaining - 1
        self.fired.append((kind, remaining - 1))
        if kind == "slow_client":
            return float(self.service_faults.get("slow_client_seconds", 0.0))
        return 0.0

    def corrupt_shared_segment(self) -> "FaultPlan":
        """Scribble over the shared sample segment at the next pool map.

        Harmless on its own until a recovery event (pair it with
        :meth:`kill_worker`): the supervisor's CRC check then detects
        the damage, re-publishes from the parent's pristine copy, and
        replays the map.
        """
        self._corrupt_segment = True
        return self

    def take_segment_corruption(self) -> bool:
        """Executor-side: consume the one-shot corruption fault."""
        if not self._corrupt_segment:
            return False
        self._corrupt_segment = False
        self.fired.append(("corrupt-shared-segment", 0))
        return True

    def check(self, event: ProgressEvent) -> None:
        """Fire (once) the fault scheduled for this boundary, if any."""
        exc = self._phase_faults.pop(event.phase, None)
        key = (event.phase, event.step)
        if exc is None:
            exc = self._faults.pop(key, None)
        if exc is None:
            return
        self.fired.append(key)
        if isinstance(exc, type):
            raise exc(f"injected fault at {key[0]} step {key[1]}")
        raise exc

    __call__ = check


def corrupt_checkpoint(directory, target: str = "manifest",
                       mode: str = "garbage") -> Path:
    """Deterministically damage a checkpoint; returns the damaged file.

    ``target`` is ``"manifest"`` or a file-name prefix (e.g.
    ``"samples"`` picks the first sample batch); ``mode`` is
    ``"garbage"`` (overwrite with non-JSON/non-npz bytes) or
    ``"truncate"`` (cut the file in half, as a crash mid-write would).
    """
    directory = Path(directory)
    if target == "manifest":
        victim = directory / "manifest.json"
    else:
        matches = sorted(directory.glob(f"{target}*"))
        if not matches:
            raise CheckpointError(
                f"no checkpoint file matching {target!r} in {directory}"
            )
        victim = matches[0]
    if not victim.exists():
        raise CheckpointError(f"checkpoint file {victim} does not exist")
    if mode == "garbage":
        victim.write_bytes(b"\x00corrupt\xff" * 4)
    elif mode == "truncate":
        size = victim.stat().st_size
        with open(victim, "rb+") as handle:
            handle.truncate(size // 2)
        os.utime(victim)
    else:
        raise CheckpointError(f"unknown corruption mode {mode!r}")
    return victim
