"""Cooperative SIGINT handling for long-running computations.

An :class:`InterruptGuard` converts the first SIGINT into a flag that is
checked — like a budget — at the next batch boundary, where it raises
:class:`~repro.exceptions.ComputationInterrupted`. Checkpoints are
written before hooks run, so the raise never loses committed work. A
second SIGINT while the guard is armed falls through to an immediate
:class:`KeyboardInterrupt` for users who really mean it.
"""

from __future__ import annotations

import signal
import threading

from repro.exceptions import ComputationInterrupted
from repro.runtime.progress import ProgressEvent

__all__ = ["InterruptGuard"]


class InterruptGuard:
    """Context manager translating SIGINT into a cooperative abort.

    Use as a progress hook (the guard is callable)::

        with InterruptGuard() as guard:
            run_global(graph, gamma, progress=guard, ...)

    Outside the main thread — or when ``install=False`` — no signal
    handler is installed and the guard only reacts to :meth:`trigger`,
    which is how the fault harness simulates SIGINT deterministically.
    """

    def __init__(self, install: bool = True):
        self._install = install
        self._previous = None
        self._triggered = False

    @property
    def triggered(self) -> bool:
        """True once a SIGINT (or a simulated one) was received."""
        return self._triggered

    def trigger(self) -> None:
        """Arm the guard as if a SIGINT had been received."""
        self._triggered = True

    def _handler(self, signum, frame):  # pragma: no cover - signal path
        if self._triggered:
            raise KeyboardInterrupt
        self._triggered = True

    def __enter__(self) -> "InterruptGuard":
        if self._install and threading.current_thread() is threading.main_thread():
            self._previous = signal.signal(signal.SIGINT, self._handler)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._previous is not None:
            signal.signal(signal.SIGINT, self._previous)
            self._previous = None

    def check(self, event: ProgressEvent) -> None:
        """Raise :class:`ComputationInterrupted` if the guard was armed."""
        if self._triggered:
            raise ComputationInterrupted(
                f"interrupted at {event.phase} step {event.step}"
            )

    __call__ = check
