"""Cooperative SIGINT/SIGTERM handling for long-running computations.

An :class:`InterruptGuard` converts the first SIGINT *or* SIGTERM into a
flag that is checked — like a budget — at the next batch boundary, where
it raises :class:`~repro.exceptions.ComputationInterrupted`. Checkpoints
are written before hooks run, so the raise never loses committed work.
A second SIGINT while the guard is armed falls through to an immediate
:class:`KeyboardInterrupt` for users who really mean it.

The two signals are handled identically but reported distinctly: the
raised exception carries ``exit_code`` 130 (128+SIGINT) for a Ctrl-C and
143 (128+SIGTERM) for an orchestrator shutdown, so a supervised process
(systemd, Kubernetes, a batch scheduler) that terminates a run observes
the conventional exit status while still getting a resumable checkpoint.
"""

from __future__ import annotations

import signal
import threading

from repro.exceptions import ComputationInterrupted
from repro.runtime.progress import ProgressEvent

__all__ = ["InterruptGuard"]


class InterruptGuard:
    """Context manager translating SIGINT/SIGTERM into a cooperative abort.

    Use as a progress hook (the guard is callable)::

        with InterruptGuard() as guard:
            run_global(graph, gamma, progress=guard, ...)

    Outside the main thread — or when ``install=False`` — no signal
    handler is installed and the guard only reacts to :meth:`trigger`,
    which is how the fault harness simulates signals deterministically.
    ``handle_sigterm=False`` restores the SIGINT-only behaviour.
    """

    def __init__(self, install: bool = True, handle_sigterm: bool = True):
        self._install = install
        self._handle_sigterm = handle_sigterm
        self._previous = None
        self._previous_term = None
        self._triggered = False
        self._signum: int | None = None

    @property
    def triggered(self) -> bool:
        """True once a SIGINT/SIGTERM (or a simulated one) was received."""
        return self._triggered

    @property
    def signum(self) -> int | None:
        """The signal number received, or None before any arrived."""
        return self._signum

    def trigger(self, signum: int = signal.SIGINT) -> None:
        """Arm the guard as if ``signum`` had been received."""
        self._triggered = True
        if self._signum is None:
            self._signum = int(signum)

    def _handler(self, signum, frame):  # pragma: no cover - signal path
        if self._triggered and signum == signal.SIGINT:
            # Only a *repeated Ctrl-C* escalates: an orchestrator often
            # sends SIGTERM more than once while waiting out its grace
            # period, and escalating those would forfeit the checkpoint
            # the grace period exists to protect.
            raise KeyboardInterrupt
        self.trigger(signum)

    def __enter__(self) -> "InterruptGuard":
        if self._install and threading.current_thread() is threading.main_thread():
            self._previous = signal.signal(signal.SIGINT, self._handler)
            if self._handle_sigterm:
                self._previous_term = signal.signal(
                    signal.SIGTERM, self._handler
                )
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._previous is not None:
            signal.signal(signal.SIGINT, self._previous)
            self._previous = None
        if self._previous_term is not None:
            signal.signal(signal.SIGTERM, self._previous_term)
            self._previous_term = None

    def check(self, event: ProgressEvent) -> None:
        """Raise :class:`ComputationInterrupted` if the guard was armed."""
        if self._triggered:
            signum = self._signum
            name = ("SIGTERM" if signum == signal.SIGTERM else "SIGINT")
            raise ComputationInterrupted(
                f"interrupted by {name} at {event.phase} step {event.step}",
                exit_code=(143 if signum == signal.SIGTERM else 130),
            )

    __call__ = check
