"""Deterministic k-truss and k-core substrate.

These are the classical (probability-free) algorithms the paper builds
on: support counting and triangle enumeration (:mod:`repro.truss.support`),
the peeling truss decomposition of Cohen / Wang–Cheng
(:mod:`repro.truss.decomposition`), extraction of maximal k-trusses
(:mod:`repro.truss.maximal`) and the Batagelj–Zaversnik core
decomposition (:mod:`repro.truss.kcore`) used by the (k, eta)-core
comparator. They operate on :class:`~repro.graphs.ProbabilisticGraph`
instances *structurally*, ignoring probabilities — exactly how the paper
treats possible worlds and candidate graphs.
"""

from repro.truss.support import edge_supports, support_of_edge, triangle_count
from repro.truss.decomposition import (
    truss_decomposition,
    is_k_truss,
    k_truss_subgraph,
    max_trussness,
)
from repro.truss.maximal import maximal_k_trusses, truss_hierarchy
from repro.truss.kcore import core_decomposition, k_core_subgraph, max_core_number
from repro.truss.hindex import h_index, truss_decomposition_hindex
from repro.truss.dynamic import DynamicTruss, DynamicLocalTruss
from repro.truss.nucleus import (
    max_nucleus_number,
    structural_nucleus_decomposition,
)

__all__ = [
    "edge_supports",
    "support_of_edge",
    "triangle_count",
    "truss_decomposition",
    "is_k_truss",
    "k_truss_subgraph",
    "max_trussness",
    "maximal_k_trusses",
    "truss_hierarchy",
    "core_decomposition",
    "k_core_subgraph",
    "max_core_number",
    "h_index",
    "truss_decomposition_hindex",
    "DynamicTruss",
    "DynamicLocalTruss",
    "structural_nucleus_decomposition",
    "max_nucleus_number",
]
