"""Extraction of maximal k-trusses from a trussness assignment.

A maximal k-truss is a connected subgraph in which every edge has
support >= k - 2 and which is not properly contained in another such
subgraph. Given the per-edge trussness from
:func:`repro.truss.decomposition.truss_decomposition`, the maximal
k-trusses for any k are the edge-connected clusters of
``{e : tau(e) >= k}`` — the same "piece together" post-processing step
Theorem 2 uses for local probabilistic trusses.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.exceptions import ParameterError
from repro.graphs.components import edge_connected_components
from repro.graphs.probabilistic import ProbabilisticGraph
from repro.truss.decomposition import truss_decomposition

__all__ = ["maximal_k_trusses", "truss_hierarchy"]

Node = Hashable
Edge = tuple[Node, Node]


def maximal_k_trusses(
    graph: ProbabilisticGraph,
    k: int,
    trussness: dict[Edge, int] | None = None,
) -> list[ProbabilisticGraph]:
    """Return all maximal (connected) k-trusses of ``graph``.

    Parameters
    ----------
    graph:
        The host graph (probabilities are carried over, not used).
    k:
        Truss order, at least 2.
    trussness:
        Optional precomputed trussness map to avoid re-decomposing.
    """
    if k < 2:
        raise ParameterError(f"k must be at least 2, got {k}")
    if trussness is None:
        trussness = truss_decomposition(graph)
    surviving = [e for e, tau in trussness.items() if tau >= k]
    clusters = edge_connected_components(graph, surviving)
    return [graph.edge_subgraph(cluster) for cluster in clusters]


def truss_hierarchy(
    graph: ProbabilisticGraph,
) -> dict[int, list[ProbabilisticGraph]]:
    """Return ``{k: maximal k-trusses}`` for every k from 2 to k_max.

    The full truss decomposition of the graph: each level k maps to the
    list of maximal connected k-trusses. Empty graphs yield an empty
    hierarchy.
    """
    trussness = truss_decomposition(graph)
    if not trussness:
        return {}
    k_max = max(trussness.values())
    return {
        k: maximal_k_trusses(graph, k, trussness=trussness)
        for k in range(2, k_max + 1)
    }
