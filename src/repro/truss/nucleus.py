"""Deterministic (r, s)-nucleus decomposition by iterative peeling.

The (r, s)-nucleus framework of Sariyüce et al. generalises truss
decomposition: the objects being peeled are *r-cliques* and the support
of an r-clique ``R`` is the number of *s-cliques* containing it whose
other r-subcliques are all still alive. For ``(r, s) = (2, 3)`` the
objects are edges supported by triangles and the peeling below is
*exactly* :func:`~repro.truss.decomposition.truss_decomposition` — the
differential oracle the probabilistic generalisation
(:mod:`repro.core.nucleus`) is tested against. ``(3, 4)`` peels
triangles supported by 4-cliques.

Only ``s = r + 1`` is supported: each s-clique through ``R`` is then
determined by a single *apex* vertex adjacent to all of ``R``, which is
what lets the probabilistic version treat supports as independent
Bernoulli factors (the apex's edge sets into ``R`` are disjoint across
apexes).

Numbering convention: we keep the truss-style offset ``k = support + 2``
for every ``(r, s)`` — so ``(2, 3)``-nucleus numbers coincide literally
with trussness (Sariyüce's kappa is ``k - 2``).
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from repro.exceptions import ParameterError
from repro.graphs.probabilistic import ProbabilisticGraph

__all__ = [
    "clique_key",
    "enumerate_r_cliques",
    "apex_candidates",
    "structural_nucleus_decomposition",
    "max_nucleus_number",
]

Node = Hashable
Clique = tuple

#: The (r, s) pairs the peeling supports; both have s = r + 1 (see
#: module docstring for why that restriction is load-bearing).
SUPPORTED_RS = ((2, 3), (3, 4))


def validate_rs(r: int, s: int) -> None:
    """Reject (r, s) pairs outside the supported ``s = r + 1`` family."""
    if (r, s) not in SUPPORTED_RS:
        supported = ", ".join(str(p) for p in SUPPORTED_RS)
        raise ParameterError(
            f"(r, s) must be one of {supported}, got ({r}, {s}); only "
            "s = r + 1 nuclei have the single-apex structure this "
            "implementation (and its probabilistic lift) relies on"
        )


def clique_key(nodes: Sequence[Node]) -> Clique:
    """Canonical (order-independent) tuple key for a clique.

    For two nodes this coincides with
    :func:`~repro.graphs.probabilistic.edge_key`, including the
    ``(type name, repr)`` fallback for incomparable node types — the
    property that makes (2, 3)-nucleus keys literally equal truss keys.
    """
    try:
        return tuple(sorted(nodes))
    except TypeError:
        return tuple(sorted(nodes, key=lambda w: (type(w).__name__, repr(w))))


def apex_candidates(graph: ProbabilisticGraph, nodes: Sequence[Node]) -> set:
    """Vertices adjacent to *every* node of ``nodes`` (the s-clique apexes)."""
    it = iter(nodes)
    common = set(graph.neighbors(next(it)))
    for v in it:
        common.intersection_update(graph.neighbors(v))
    common.difference_update(nodes)
    return common


def enumerate_r_cliques(graph: ProbabilisticGraph, r: int) -> list[Clique]:
    """All r-cliques of ``graph`` as canonical tuples, each exactly once.

    ``r = 2`` yields the edges (as :func:`edge_key` tuples); ``r = 3``
    yields the triangles.
    """
    if r == 2:
        return [clique_key(e) for e in graph.edges()]
    if r == 3:
        return [clique_key(t) for t in graph.triangles()]
    raise ParameterError(f"r must be 2 or 3, got {r}")


def _sibling_cliques(R: Clique, x: Node) -> list[Clique]:
    """The other r-cliques of the s-clique ``R + {x}``: drop one vertex
    of ``R``, add the apex."""
    return [clique_key(R[:i] + R[i + 1:] + (x,)) for i in range(len(R))]


def structural_nucleus_decomposition(
    graph: ProbabilisticGraph, r: int = 2, s: int = 3
) -> dict[Clique, int]:
    """Return the nucleus number of every r-clique (probabilities ignored).

    The nucleus number of ``R`` is the largest ``k`` such that ``R``
    belongs to a sub-collection of r-cliques in which every member is
    contained in at least ``k - 2`` s-cliques whose r-subcliques all
    belong to the collection. For ``(2, 3)`` this dict equals
    :func:`~repro.truss.decomposition.truss_decomposition` exactly —
    same keys, same integers.
    """
    validate_rs(r, s)
    cliques = enumerate_r_cliques(graph, r)
    apexes = {R: apex_candidates(graph, R) for R in cliques}
    supports = {R: len(apexes[R]) for R in cliques}

    # The same monotone bucket-queue organisation as the truss peel:
    # levels only ever decrease, so a list-of-sets with a moving cursor
    # gives O(1) amortised operations.
    top = max(supports.values(), default=0)
    buckets: list[set[Clique]] = [set() for _ in range(top + 1)]
    for R, sup in supports.items():
        buckets[sup].add(R)
    alive = dict(supports)

    nucleus: dict[Clique, int] = {}
    cursor = 0
    k = 2
    while alive:
        while not buckets[cursor]:
            cursor += 1
        R = buckets[cursor].pop()
        sup = alive.pop(R)
        k = max(k, sup + 2)
        nucleus[R] = k
        floor = k - 2
        for x in apexes[R]:
            siblings = _sibling_cliques(R, x)
            # The s-clique R + {x} supported each sibling only while all
            # of its r-subcliques were alive; R's death retires it.
            if all(o in alive for o in siblings):
                for o in siblings:
                    lvl = alive[o]
                    if lvl <= floor:
                        continue
                    buckets[lvl].discard(o)
                    alive[o] = lvl - 1
                    buckets[lvl - 1].add(o)
                    if lvl - 1 < cursor:
                        cursor = lvl - 1
    return nucleus


def max_nucleus_number(graph: ProbabilisticGraph, r: int = 2,
                       s: int = 3) -> int:
    """The largest nucleus number of any r-clique (0 when none exist)."""
    return max(structural_nucleus_decomposition(graph, r, s).values(),
               default=0)
