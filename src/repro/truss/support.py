"""Deterministic edge support (triangle) counting.

The *support* of an edge ``(u, v)`` in a graph ``H`` is the number of
triangles of ``H`` containing it, ``|N(u) ∩ N(v)|`` (Section 3). All
functions here ignore edge probabilities — they implement the
deterministic notion the probabilistic semantics are layered on.

:func:`edge_supports` counts every edge's triangles in one vectorized
pass over packed adjacency bitsets: node neighbourhoods become rows of
a bit matrix, and ``|N(u) ∩ N(v)|`` is the popcount of the AND of two
rows — the same bit-parallel technique the PKT shared-memory truss
decomposition uses. :func:`edge_supports_reference` keeps the
per-edge set-intersection loop as the differential-test reference.
"""

from __future__ import annotations

from collections.abc import Hashable

import numpy as np

from repro.core.kernels import popcount
from repro.graphs.probabilistic import ProbabilisticGraph, edge_key

__all__ = [
    "edge_supports",
    "edge_supports_reference",
    "support_of_edge",
    "triangle_count",
]

Node = Hashable
Edge = tuple[Node, Node]


def support_of_edge(graph: ProbabilisticGraph, u: Node, v: Node) -> int:
    """Return the number of triangles of ``graph`` containing edge (u, v)."""
    return graph.support(u, v)


def edge_supports_reference(graph: ProbabilisticGraph) -> dict[Edge, int]:
    """Per-edge supports by per-edge neighbour-set intersection.

    Runs in O(sum over edges of min-degree endpoint scans) — the standard
    arboricity-bounded triangle-counting cost. Kept as the pure-Python
    differential-test reference for :func:`edge_supports`.
    """
    supports: dict[Edge, int] = {}
    for u, v in graph.edges():
        supports[edge_key(u, v)] = len(graph.common_neighbors(u, v))
    return supports


def edge_supports(graph: ProbabilisticGraph) -> dict[Edge, int]:
    """Return ``{edge: support}`` for every edge of ``graph``.

    Bit-parallel: each node's neighbourhood is one row of a packed
    ``(n, ceil(n/8))`` adjacency bit matrix; the support of ``(u, v)``
    is the popcount of ``row(u) AND row(v)``, computed for all edges in
    one vectorized gather. Exactly equal to
    :func:`edge_supports_reference`.
    """
    edges = [edge_key(u, v) for u, v in graph.edges()]
    if not edges:
        return {}
    index = {u: i for i, u in enumerate(graph.nodes())}
    n = len(index)
    us = np.fromiter((index[u] for u, _ in edges), dtype=np.int64,
                     count=len(edges))
    vs = np.fromiter((index[v] for _, v in edges), dtype=np.int64,
                     count=len(edges))
    adj = np.zeros((n, -(-n // 8)), dtype=np.uint8)
    u_bit = (np.uint8(1) << (7 - (us & 7)).astype(np.uint8))
    v_bit = (np.uint8(1) << (7 - (vs & 7)).astype(np.uint8))
    np.bitwise_or.at(adj, (us, vs >> 3), v_bit)
    np.bitwise_or.at(adj, (vs, us >> 3), u_bit)
    common = popcount(adj[us] & adj[vs]).sum(axis=1, dtype=np.int64)
    return {e: int(c) for e, c in zip(edges, common)}


def triangle_count(graph: ProbabilisticGraph) -> int:
    """Return the total number of triangles in ``graph``.

    Each triangle contributes 1 to the support of each of its three
    edges, so the triangle count is one third of the total support.
    """
    return sum(edge_supports(graph).values()) // 3
