"""Deterministic edge support (triangle) counting.

The *support* of an edge ``(u, v)`` in a graph ``H`` is the number of
triangles of ``H`` containing it, ``|N(u) ∩ N(v)|`` (Section 3). All
functions here ignore edge probabilities — they implement the
deterministic notion the probabilistic semantics are layered on.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.graphs.probabilistic import ProbabilisticGraph, edge_key

__all__ = ["edge_supports", "support_of_edge", "triangle_count"]

Node = Hashable
Edge = tuple[Node, Node]


def support_of_edge(graph: ProbabilisticGraph, u: Node, v: Node) -> int:
    """Return the number of triangles of ``graph`` containing edge (u, v)."""
    return graph.support(u, v)


def edge_supports(graph: ProbabilisticGraph) -> dict[Edge, int]:
    """Return ``{edge: support}`` for every edge of ``graph``.

    Runs in O(sum over edges of min-degree endpoint scans) — the standard
    arboricity-bounded triangle-counting cost.
    """
    supports: dict[Edge, int] = {}
    for u, v in graph.edges():
        supports[edge_key(u, v)] = len(graph.common_neighbors(u, v))
    return supports


def triangle_count(graph: ProbabilisticGraph) -> int:
    """Return the total number of triangles in ``graph``.

    Each triangle contributes 1 to the support of each of its three
    edges, so the triangle count is one third of the total support.
    """
    return sum(edge_supports(graph).values()) // 3
