"""Truss decomposition by h-index iteration (local-update algorithm).

An alternative to peeling: the trussness of an edge satisfies a local
fixpoint equation. Let ``h(e)`` be an upper bound on ``tau(e) - 2``,
initialised to the edge's support. Repeatedly update

    h(e)  <-  H-index over triangles t of e of  min(h(e1_t), h(e2_t))

where ``e1_t, e2_t`` are the other two edges of triangle ``t`` and the
H-index of a multiset is the largest ``x`` such that at least ``x``
values are >= ``x``. The bounds decrease monotonically and converge to
exactly ``tau(e) - 2`` — the truss analogue of Lü et al.'s h-index
formulation of core decomposition.

This is useful where global peeling is awkward (streaming updates,
bounded-memory or parallel settings: every update touches only one
edge's triangles) and doubles as an independent cross-check of the
peeling implementation.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable

from repro.exceptions import ParameterError
from repro.graphs.probabilistic import ProbabilisticGraph, edge_key

__all__ = ["h_index", "truss_decomposition_hindex"]

Node = Hashable
Edge = tuple[Node, Node]


def h_index(values) -> int:
    """Return the H-index of an iterable of non-negative integers.

    The largest ``x`` such that at least ``x`` of the values are >= x.
    """
    ordered = sorted(values, reverse=True)
    if any(v < 0 for v in ordered):
        raise ParameterError("h-index needs non-negative values")
    h = 0
    for i, v in enumerate(ordered, start=1):
        if v >= i:
            h = i
        else:
            break
    return h


def truss_decomposition_hindex(
    graph: ProbabilisticGraph, max_rounds: int | None = None
) -> dict[Edge, int]:
    """Compute trussness by h-index fixpoint iteration.

    Produces exactly the same map as
    :func:`repro.truss.decomposition.truss_decomposition`. ``max_rounds``
    caps the sweeps (None = run to convergence; convergence is
    guaranteed since bounds are non-negative integers that only
    decrease).
    """
    h: dict[Edge, int] = {}
    for u, v in graph.edges():
        h[edge_key(u, v)] = len(graph.common_neighbors(u, v))

    # Work-list iteration: recompute an edge when a neighbour dropped.
    pending = deque(h)
    in_queue = set(h)
    rounds = 0
    budget = None if max_rounds is None else max_rounds * max(len(h), 1)
    while pending:
        if budget is not None:
            if rounds >= budget:
                break
            rounds += 1
        e = pending.popleft()
        in_queue.discard(e)
        u, v = e
        tri_mins = [
            min(h[edge_key(u, w)], h[edge_key(v, w)])
            for w in graph.common_neighbors(u, v)
        ]
        new_h = h_index(tri_mins)
        if new_h < h[e]:
            h[e] = new_h
            for w in graph.common_neighbors(u, v):
                for other in (edge_key(u, w), edge_key(v, w)):
                    if other not in in_queue:
                        pending.append(other)
                        in_queue.add(other)
    return {e: value + 2 for e, value in h.items()}
