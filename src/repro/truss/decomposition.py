"""Deterministic k-truss decomposition by iterative peeling.

Implements the classical algorithm of Cohen (2008) with the bucket-queue
organisation of Wang & Cheng (PVLDB 2012): repeatedly remove the edge of
minimum support, assign its trussness, and decrement the support of the
two co-triangle edges of every destroyed triangle. Trussness of an edge
``e`` is the largest ``k`` such that ``e`` lies in a k-truss subgraph;
every edge of a non-empty graph has trussness at least 2.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.exceptions import ParameterError
from repro.graphs.probabilistic import ProbabilisticGraph, edge_key
from repro.truss.support import edge_supports

__all__ = ["truss_decomposition", "is_k_truss", "k_truss_subgraph", "max_trussness"]

Node = Hashable
Edge = tuple[Node, Node]


class _BucketQueue:
    """Monotone bucket queue over (edge, level) pairs.

    Levels only decrease by 1 per triangle removal, so a plain
    list-of-sets with a moving cursor gives O(1) amortised operations —
    the bin-sort structure of [Wang & Cheng 2012].
    """

    def __init__(self, levels: dict[Edge, int]):
        self._level = dict(levels)
        max_level = max(levels.values(), default=0)
        self._buckets: list[set[Edge]] = [set() for _ in range(max_level + 1)]
        for e, lvl in levels.items():
            self._buckets[lvl].add(e)
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._level)

    def pop_min(self) -> tuple[Edge, int]:
        """Remove and return an (edge, level) pair of minimum level."""
        while not self._buckets[self._cursor]:
            self._cursor += 1
        e = self._buckets[self._cursor].pop()
        del self._level[e]
        return e, self._cursor

    def decrement(self, e: Edge, floor: int) -> None:
        """Decrease the level of ``e`` by one, but never below ``floor``."""
        lvl = self._level.get(e)
        if lvl is None or lvl <= floor:
            return
        self._buckets[lvl].discard(e)
        lvl -= 1
        self._level[e] = lvl
        self._buckets[lvl].add(e)
        if lvl < self._cursor:
            self._cursor = lvl


def truss_decomposition(graph: ProbabilisticGraph) -> dict[Edge, int]:
    """Return the trussness ``tau(e)`` of every edge (probabilities ignored).

    ``tau(e)`` is the maximum ``k`` for which ``e`` belongs to a k-truss
    subgraph of ``graph``. The peeling runs in O(m^1.5)-style time: each
    removal touches only the triangles through the removed edge.
    """
    work = graph.copy()
    supports = edge_supports(work)
    queue = _BucketQueue(supports)
    trussness: dict[Edge, int] = {}
    k = 2
    while queue:
        e, sup = queue.pop_min()
        # Support sup means e survives in a (sup + 2)-truss at best *now*;
        # trussness is monotone over the peel, hence the running max.
        k = max(k, sup + 2)
        trussness[e] = k
        u, v = e
        for w in list(work.common_neighbors(u, v)):
            # Triangle (u, v, w) disappears with e; its other two edges
            # lose one unit of support, but never below the current peel
            # level (their trussness is already >= k).
            queue.decrement(edge_key(u, w), floor=k - 2)
            queue.decrement(edge_key(v, w), floor=k - 2)
        work.remove_edge(u, v)
    return trussness


def is_k_truss(graph: ProbabilisticGraph, k: int) -> bool:
    """Return True iff every edge of ``graph`` has support >= k - 2.

    Note this is the bare Definition 1 check — connectivity and
    maximality are separate concerns. An edgeless graph is vacuously a
    k-truss for every k.
    """
    if k < 2:
        raise ParameterError(f"k must be at least 2, got {k}")
    return all(
        len(graph.common_neighbors(u, v)) >= k - 2 for u, v in graph.edges()
    )


def k_truss_subgraph(graph: ProbabilisticGraph, k: int) -> ProbabilisticGraph:
    """Return the maximal subgraph in which every edge has support >= k - 2.

    This is the union of all maximal k-trusses (possibly disconnected);
    isolated nodes are dropped. Computed by iterated removal of
    under-supported edges.
    """
    if k < 2:
        raise ParameterError(f"k must be at least 2, got {k}")
    work = graph.copy()
    changed = True
    while changed:
        changed = False
        doomed = [
            (u, v)
            for u, v in work.edges()
            if len(work.common_neighbors(u, v)) < k - 2
        ]
        for u, v in doomed:
            work.remove_edge(u, v)
            changed = True
    work.remove_isolated_nodes()
    return work


def max_trussness(graph: ProbabilisticGraph) -> int:
    """Return ``k_max`` — the largest trussness of any edge (2 if edgeless... 0 if empty).

    For a graph with no edges the decomposition is empty and 0 is
    returned, signalling "no truss at all".
    """
    trussness = truss_decomposition(graph)
    return max(trussness.values(), default=0)
