"""Deterministic k-core decomposition (Batagelj–Zaversnik peeling).

The k-core of a graph is its maximal subgraph in which every node has
degree at least k. The *core number* of a node is the largest k for
which it belongs to the k-core. This substrate backs the probabilistic
(k, eta)-core comparator of Bonchi et al. (KDD 2014) used in Section 6.4
of the paper.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.exceptions import ParameterError
from repro.graphs.probabilistic import ProbabilisticGraph

__all__ = ["core_decomposition", "k_core_subgraph", "max_core_number"]

Node = Hashable


def core_decomposition(graph: ProbabilisticGraph) -> dict[Node, int]:
    """Return the core number of every node, in O(m) bucket-peeling time."""
    degree = {u: graph.degree(u) for u in graph.nodes()}
    if not degree:
        return {}
    max_degree = max(degree.values())
    buckets: list[set[Node]] = [set() for _ in range(max_degree + 1)]
    for u, d in degree.items():
        buckets[d].add(u)

    core: dict[Node, int] = {}
    removed: set[Node] = set()
    cursor = 0
    k = 0
    for _ in range(len(degree)):
        while not buckets[cursor]:
            cursor += 1
        u = buckets[cursor].pop()
        k = max(k, cursor)
        core[u] = k
        removed.add(u)
        for v in graph.neighbors(u):
            if v in removed:
                continue
            d = degree[v]
            if d > cursor:
                buckets[d].discard(v)
                degree[v] = d - 1
                buckets[d - 1].add(v)
                if d - 1 < cursor:
                    cursor = d - 1
    return core


def k_core_subgraph(graph: ProbabilisticGraph, k: int) -> ProbabilisticGraph:
    """Return the (possibly disconnected) k-core of ``graph``."""
    if k < 0:
        raise ParameterError(f"k must be non-negative, got {k}")
    core = core_decomposition(graph)
    return graph.subgraph([u for u, c in core.items() if c >= k])


def max_core_number(graph: ProbabilisticGraph) -> int:
    """Return the degeneracy of ``graph`` (0 for an empty graph)."""
    core = core_decomposition(graph)
    return max(core.values(), default=0)
