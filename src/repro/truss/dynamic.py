"""Dynamic maintenance of k-truss subgraphs under edge updates.

Truss decomposition has been studied on dynamic graphs (the paper cites
Huang et al., SIGMOD 2014); this module maintains, for a *fixed* k, the
maximal k-truss subgraph of an evolving deterministic graph:

* **Deletions** are handled fully incrementally: removing an edge
  destroys its triangles, and support losses cascade exactly as in the
  static peeling — touching only the affected region.
* **Insertions** may pull previously-evicted edges back in; the truss
  is repaired by re-running the reduction on the affected connected
  region only (sound and simple; exact incremental insertion is far
  more intricate and not needed at this library's scale).

:class:`DynamicTruss` tracks the deterministic k-truss;
:class:`DynamicLocalTruss` (see below) is the probabilistic analogue for
a fixed (k, gamma), maintaining the union of maximal local
(k, gamma)-trusses with the same Eq. (8) PMF machinery used by
Algorithm 1.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable

from repro.exceptions import EdgeNotFoundError, ParameterError
from repro.graphs.probabilistic import ProbabilisticGraph, edge_key
from repro.core.support_prob import SupportProbability

__all__ = ["DynamicTruss", "DynamicLocalTruss"]

Node = Hashable
Edge = tuple[Node, Node]


class DynamicTruss:
    """Maintains the maximal k-truss subgraph of an evolving graph.

    The *truss edge set* is the union of all maximal k-trusses — the
    maximal subgraph in which every edge has support >= k - 2.

    >>> g = ProbabilisticGraph([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])
    >>> dt = DynamicTruss(g, k=3)
    >>> sorted(dt.truss_edges())
    [(0, 1), (0, 2), (1, 2)]
    >>> dt.remove_edge(0, 1)
    >>> dt.truss_edges()
    set()
    """

    def __init__(self, graph: ProbabilisticGraph, k: int):
        if k < 2:
            raise ParameterError(f"k must be at least 2, got {k}")
        self._graph = graph.copy()
        self._k = k
        self._truss: set[Edge] = set()
        self._rebuild_from(set(self._graph.edges()))

    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """The (fixed) truss order being maintained."""
        return self._k

    @property
    def graph(self) -> ProbabilisticGraph:
        """A copy of the current underlying graph."""
        return self._graph.copy()

    def truss_edges(self) -> set[Edge]:
        """Current edges of the maximal k-truss subgraph (copy)."""
        return set(self._truss)

    def in_truss(self, u: Node, v: Node) -> bool:
        """Return True iff edge (u, v) currently belongs to the k-truss."""
        return edge_key(u, v) in self._truss

    def maximal_trusses(self) -> list[ProbabilisticGraph]:
        """Current maximal (connected) k-trusses, as subgraphs."""
        from repro.graphs.components import edge_connected_components

        clusters = edge_connected_components(self._graph, self._truss)
        return [self._graph.edge_subgraph(c) for c in clusters]

    # ------------------------------------------------------------------
    def _support_within(self, e: Edge, edges: set[Edge]) -> int:
        u, v = e
        return sum(
            1
            for w in self._graph.common_neighbors(u, v)
            if edge_key(u, w) in edges and edge_key(v, w) in edges
        )

    def _reduce(self, candidates: set[Edge]) -> set[Edge]:
        """Iteratively drop under-supported edges from ``candidates``."""
        need = self._k - 2
        alive = set(candidates)
        queue = deque(alive)
        while queue:
            e = queue.popleft()
            if e not in alive:
                continue
            if self._support_within(e, alive) < need:
                alive.discard(e)
                u, v = e
                for w in self._graph.common_neighbors(u, v):
                    for other in (edge_key(u, w), edge_key(v, w)):
                        if other in alive:
                            queue.append(other)
        return alive

    def _rebuild_from(self, candidates: set[Edge]) -> None:
        self._truss = self._reduce(candidates)

    def _affected_region(self, u: Node, v: Node) -> set[Edge]:
        """All current graph edges connected (via shared nodes) to {u, v}."""
        region: set[Edge] = set()
        seen_nodes: set[Node] = set()
        stack = [x for x in (u, v) if self._graph.has_node(x)]
        while stack:
            x = stack.pop()
            if x in seen_nodes:
                continue
            seen_nodes.add(x)
            for y in self._graph.neighbors(x):
                region.add(edge_key(x, y))
                if y not in seen_nodes:
                    stack.append(y)
        return region

    # ------------------------------------------------------------------
    def insert_edge(self, u: Node, v: Node, probability: float = 1.0) -> None:
        """Insert edge (u, v) and repair the maintained k-truss.

        Repair recomputes the reduction on the affected connected region
        (everything reachable from the endpoints), leaving other
        components untouched. Self-loops and duplicate edges raise
        :class:`ParameterError` — a deterministic truss has no
        per-edge weight to refresh, so a duplicate insert is always a
        caller bug (contrast :meth:`DynamicLocalTruss.insert_edge`,
        which re-weights).
        """
        if u == v:
            raise ParameterError(
                f"self-loop ({u!r}, {v!r}) is never a valid edge")
        if self._graph.has_edge(u, v):
            raise ParameterError(
                f"edge ({u!r}, {v!r}) already present; duplicate insert")
        self._graph.add_edge(u, v, probability)
        region = self._affected_region(u, v)
        self._truss -= region
        self._truss |= self._reduce(region)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove edge (u, v); evictions cascade incrementally."""
        e = edge_key(u, v)
        if not self._graph.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        was_in_truss = e in self._truss
        apexes = list(self._graph.common_neighbors(u, v))
        self._graph.remove_edge(u, v)
        self._truss.discard(e)
        if not was_in_truss:
            return
        need = self._k - 2
        queue = deque()
        for w in apexes:
            for other in (edge_key(u, w), edge_key(v, w)):
                if other in self._truss:
                    queue.append(other)
        while queue:
            other = queue.popleft()
            if other not in self._truss:
                continue
            if self._support_within(other, self._truss) < need:
                self._truss.discard(other)
                a, b = other
                for w in self._graph.common_neighbors(a, b):
                    for nxt in (edge_key(a, w), edge_key(b, w)):
                        if nxt in self._truss:
                            queue.append(nxt)


class DynamicLocalTruss:
    """Maintains the union of maximal local (k, gamma)-trusses dynamically.

    The probabilistic analogue of :class:`DynamicTruss`: an edge stays
    in the maintained set while ``Pr[sup >= k-2] * p(e) >= gamma`` holds
    with supports counted *within the maintained set*. Support PMFs are
    updated with the Eq. (8) add/remove machinery:

    * deletion: deconvolve the lost triangles out of the neighbours'
      PMFs and cascade evictions (fully incremental);
    * insertion: convolve new triangles in and repair by re-reducing the
      affected connected region.
    """

    def __init__(self, graph: ProbabilisticGraph, k: int, gamma: float):
        if k < 2:
            raise ParameterError(f"k must be at least 2, got {k}")
        if not 0.0 <= gamma <= 1.0:
            raise ParameterError(f"gamma must be in [0, 1], got {gamma}")
        self._graph = graph.copy()
        self._k = k
        self._gamma = gamma
        self._truss: set[Edge] = set()
        self._pmfs: dict[Edge, SupportProbability] = {}
        self._rebuild_all()

    @property
    def k(self) -> int:
        """The truss order."""
        return self._k

    @property
    def gamma(self) -> float:
        """The probability threshold."""
        return self._gamma

    def truss_edges(self) -> set[Edge]:
        """Current union of maximal local (k, gamma)-truss edges (copy)."""
        return set(self._truss)

    def in_truss(self, u: Node, v: Node) -> bool:
        """Return True iff edge (u, v) is currently in a local truss."""
        return edge_key(u, v) in self._truss

    def maximal_trusses(self) -> list[ProbabilisticGraph]:
        """Current maximal local (k, gamma)-trusses, as subgraphs."""
        from repro.graphs.components import edge_connected_components

        clusters = edge_connected_components(self._graph, self._truss)
        return [self._graph.edge_subgraph(c) for c in clusters]

    # ------------------------------------------------------------------
    def _passes(self, e: Edge) -> bool:
        u, v = e
        return (
            self._pmfs[e].tail(self._k - 2) * self._graph.probability(u, v)
            >= self._gamma * (1.0 - 1e-9)
        )

    def _reduce_region(self, region: set[Edge]) -> None:
        """Re-reduce ``region`` from scratch (PMFs rebuilt within truss)."""
        # Start optimistic: everything in the region is in.
        self._truss |= region
        for e in region:
            self._pmfs[e] = self._pmf_within(e)
        queue = deque(region)
        while queue:
            e = queue.popleft()
            if e not in self._truss:
                continue
            if not self._passes(e):
                self._evict(e, queue)

    def _pmf_within(self, e: Edge) -> SupportProbability:
        """PMF of ``e`` counting only triangles inside the current truss set."""
        u, v = e
        qs = []
        for w in self._graph.common_neighbors(u, v):
            if (
                edge_key(u, w) in self._truss
                and edge_key(v, w) in self._truss
            ):
                qs.append(
                    self._graph.probability(w, u) * self._graph.probability(w, v)
                )
        return SupportProbability(qs)

    def _evict(self, e: Edge, queue: deque) -> None:
        self._truss.discard(e)
        self._pmfs.pop(e, None)
        u, v = e
        for w in self._graph.common_neighbors(u, v):
            e_uw, e_vw = edge_key(u, w), edge_key(v, w)
            if e_uw in self._truss and e_vw in self._truss:
                q_uw = self._graph.probability(v, u) * self._graph.probability(v, w)
                q_vw = self._graph.probability(u, v) * self._graph.probability(u, w)
                self._pmfs[e_uw].remove_triangle(q_uw)
                self._pmfs[e_vw].remove_triangle(q_vw)
                queue.append(e_uw)
                queue.append(e_vw)

    def _rebuild_all(self) -> None:
        self._truss = set()
        self._pmfs = {}
        self._reduce_region({edge_key(u, v) for u, v in self._graph.edges()})

    def _affected_region(self, u: Node, v: Node) -> set[Edge]:
        region: set[Edge] = set()
        seen: set[Node] = set()
        stack = [x for x in (u, v) if self._graph.has_node(x)]
        while stack:
            x = stack.pop()
            if x in seen:
                continue
            seen.add(x)
            for y in self._graph.neighbors(x):
                region.add(edge_key(x, y))
                if y not in seen:
                    stack.append(y)
        return region

    # ------------------------------------------------------------------
    def insert_edge(self, u: Node, v: Node, probability: float) -> None:
        """Insert (or re-weight) edge (u, v) and repair the truss set.

        Unlike :meth:`DynamicTruss.insert_edge`, inserting an existing
        edge is allowed: it refreshes the edge's probability, which is a
        meaningful update here. Self-loops raise
        :class:`ParameterError`.
        """
        if u == v:
            raise ParameterError(
                f"self-loop ({u!r}, {v!r}) is never a valid edge")
        self._graph.add_edge(u, v, probability)
        region = self._affected_region(u, v)
        for e in region & self._truss:
            self._pmfs.pop(e, None)
        self._truss -= region
        self._reduce_region(region)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove edge (u, v); evictions cascade incrementally."""
        e = edge_key(u, v)
        if not self._graph.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        in_truss = e in self._truss
        if in_truss:
            queue: deque = deque()
            self._evict(e, queue)
            self._graph.remove_edge(u, v)
            while queue:
                nxt = queue.popleft()
                if nxt in self._truss and not self._passes(nxt):
                    self._evict(nxt, queue)
        else:
            self._graph.remove_edge(u, v)
