"""repro — truss decomposition of probabilistic graphs.

A from-scratch reproduction of *"Truss Decomposition of Probabilistic
Graphs: Semantics and Algorithms"* (Huang, Lu, Lakshmanan — SIGMOD 2016).

Quickstart
----------
>>> from repro import ProbabilisticGraph, local_truss_decomposition
>>> g = ProbabilisticGraph()
>>> for u, v in [(0, 1), (1, 2), (0, 2), (2, 3)]:
...     g.add_edge(u, v, 0.9)
>>> result = local_truss_decomposition(g, gamma=0.5)
>>> result.trussness_of(0, 1)
3

See README.md for the full tour and DESIGN.md for the paper mapping.
"""

from repro.exceptions import (
    BudgetExceededError,
    CheckpointError,
    ComputationInterrupted,
    DatasetError,
    DecompositionError,
    EdgeNotFoundError,
    GraphError,
    GraphParseError,
    InvalidProbabilityError,
    NodeNotFoundError,
    ParameterError,
    ReproError,
)
from repro.graphs import (
    ProbabilisticGraph,
    WorldSampleSet,
    connected_components,
    edge_key,
    generators,
    hoeffding_sample_size,
    is_connected,
    largest_connected_component,
    read_edge_list,
    read_json_graph,
    sample_possible_world,
    sample_possible_worlds,
    write_edge_list,
    write_json_graph,
)
from repro.truss import (
    core_decomposition,
    edge_supports,
    structural_nucleus_decomposition,
    is_k_truss,
    k_core_subgraph,
    k_truss_subgraph,
    max_core_number,
    max_trussness,
    maximal_k_trusses,
    truss_decomposition,
    truss_hierarchy,
)
from repro.core import (
    EtaDegree,
    GammaTrussResult,
    GlobalTrussOracle,
    GlobalTrussResult,
    LocalTrussResult,
    NucleusResult,
    SupportProbability,
    alpha_exact,
    bottom_up_search,
    clustering_coefficient,
    eta_core_decomposition,
    eta_core_subgraph,
    gamma_truss_decomposition,
    global_truss_decomposition,
    is_global_truss_exact,
    local_truss_decomposition,
    max_eta_core_number,
    maximal_local_trusses,
    nucleus_decomposition,
    probabilistic_clustering_coefficient,
    probabilistic_density,
    support_pmf,
    support_pmf_bruteforce,
    support_tail,
    top_down_search,
    triangle_probabilities,
)
from repro.datasets import DATASET_NAMES, dataset_statistics, load_dataset
from repro.runtime import (
    Budget,
    InterruptGuard,
    PartialResult,
    run_global,
    run_local,
    run_nucleus,
    run_reliability,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError", "GraphError", "NodeNotFoundError", "EdgeNotFoundError",
    "InvalidProbabilityError", "ParameterError", "DatasetError",
    "GraphParseError", "DecompositionError", "BudgetExceededError",
    "CheckpointError", "ComputationInterrupted",
    # graphs
    "ProbabilisticGraph", "edge_key", "connected_components", "is_connected",
    "largest_connected_component", "WorldSampleSet", "hoeffding_sample_size",
    "sample_possible_world", "sample_possible_worlds", "read_edge_list",
    "write_edge_list", "read_json_graph", "write_json_graph", "generators",
    # deterministic substrate
    "edge_supports", "truss_decomposition", "is_k_truss", "k_truss_subgraph",
    "max_trussness", "maximal_k_trusses", "truss_hierarchy",
    "core_decomposition", "k_core_subgraph", "max_core_number",
    "structural_nucleus_decomposition",
    # paper core
    "SupportProbability", "support_pmf", "support_pmf_bruteforce",
    "support_tail", "triangle_probabilities", "LocalTrussResult",
    "local_truss_decomposition", "maximal_local_trusses",
    "NucleusResult", "nucleus_decomposition",
    "GlobalTrussOracle", "alpha_exact", "is_global_truss_exact",
    "GlobalTrussResult", "global_truss_decomposition", "top_down_search",
    "GammaTrussResult", "gamma_truss_decomposition",
    "bottom_up_search", "EtaDegree", "eta_core_decomposition",
    "eta_core_subgraph", "max_eta_core_number", "probabilistic_density",
    "probabilistic_clustering_coefficient", "clustering_coefficient",
    # datasets
    "DATASET_NAMES", "load_dataset", "dataset_statistics",
    # runtime (budgets, checkpoint/resume, graceful degradation)
    "Budget", "InterruptGuard", "PartialResult",
    "run_global", "run_local", "run_nucleus", "run_reliability",
]
