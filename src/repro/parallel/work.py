"""Worker-process state and task functions for the parallel executor.

Each worker process is initialised once (:func:`build_worker_state`,
called from the supervised pool's worker loop): it rebuilds the host
graph from edge triples, attaches the shared-memory world sample view,
and constructs its own :class:`GlobalTrussOracle` over that view. Tasks
then arrive as ``(name, payload)`` pairs and run against this
per-process state — no per-task graph or sample shipping.

Determinism contract
--------------------
Every task is a pure function of its payload plus the (identical)
per-process state, so results do not depend on which worker runs a task
or in which order tasks complete:

* ``gbu-seed`` derives its RNG from an explicit
  :class:`numpy.random.SeedSequence` entropy tuple carried in the
  payload — never from shared stream state;
* graphs rebuilt inside workers insert edges in the exact order the
  parent used (``edge_subgraph`` canonicalises construction order);
* anything order-sensitive (apex choice, qs factors) is sorted by a
  canonical node key before use.

The same task functions run *inline* in the parent process when
``workers=1`` — that is the reference the equivalence tests compare
worker counts against.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.probabilistic import ProbabilisticGraph, edge_key
from repro.core.global_truss import GlobalTrussOracle
from repro.core.kernels import classify_worlds_packed
from repro.core.nucleus import nucleus_cell
from repro.core.reliability import count_connected_rows
from repro.core.support_prob import (
    SupportProbability,
    support_pmf,
    triangle_probabilities,
)
from repro.parallel.shared import SharedSamplesHandle, attach_samples

__all__ = [
    "CANCELLED",
    "WorkerState",
    "TASKS",
    "build_worker_state",
    "node_sort_key",
]

#: Returned by :func:`run_task` in place of a result when the shared
#: cancel flag was observed mid-task. The parent only sees these on the
#: abort path, where results are discarded anyway.
CANCELLED = "__repro-parallel-cancelled__"

#: Shared counters the parent's progress pump reads; one slot per
#: worker-emitted phase.
COUNTER_PHASES = ("oracle-eval", "gtd-state", "local-init",
                  "nucleus-init", "reliability-rows")

#: Edges between cancel-flag polls in the PMF-init loop.
_CANCEL_POLL = 32


class _WorkerCancelled(Exception):
    """Internal: the parent set the cancel flag; abandon the task."""


def node_sort_key(w):
    """Canonical node ordering usable across mixed node types."""
    return (type(w).__name__, str(w))


def _edge_sort_key(e):
    return (str(e[0]), str(e[1]))


class WorkerState:
    """Per-process execution state shared by all tasks of one worker.

    The same class backs the parent-side *inline* mode (``workers=1``):
    there ``counters``/``cancel`` stay None (ticks become no-ops), the
    oracle is the parent's own (warm cache), and ``progress`` is set by
    the executor to the currently active parent hook before each map.
    """

    def __init__(self, graph: ProbabilisticGraph, samples=None, *,
                 oracle=None, cancel=None, counters=None):
        self.graph = graph
        self.samples = samples
        self.cancel = cancel
        self.counters = counters
        self.progress = None
        if oracle is not None:
            self.oracle = oracle
        elif samples is not None:
            self.oracle = GlobalTrussOracle(samples, progress=self.hook)
        else:
            self.oracle = None
        self._components: dict[tuple, ProbabilisticGraph] = {}
        self._shm = None  # keeps the shared mapping alive in workers

    # -- progress plumbing ---------------------------------------------
    def hook(self, event) -> None:
        """Progress hook handed to oracle/search code inside a worker.

        Counts events into the shared counters (the parent's pump turns
        them back into :class:`ProgressEvent` s) and polls the cancel
        flag — the cooperative cancellation point inside a level.
        """
        if self.counters is not None:
            counter = self.counters.get(event.phase)
            if counter is not None:
                with counter.get_lock():
                    counter.value += 1
        if self.progress is not None:
            self.progress(event)
        self.check_cancel()

    def bump(self, phase: str, amount: int = 1) -> None:
        """Add ``amount`` to the shared counter for ``phase`` (if any)."""
        if self.counters is not None:
            counter = self.counters.get(phase)
            if counter is not None:
                with counter.get_lock():
                    counter.value += amount

    def check_cancel(self) -> None:
        if self.cancel is not None and self.cancel.is_set():
            raise _WorkerCancelled()

    # -- component cache -----------------------------------------------
    def component(self, edges: tuple) -> ProbabilisticGraph:
        """Materialise (and cache) the subgraph over ``edges``.

        ``edges`` must be the exact ordered edge tuple the parent's
        component carries — ``edge_subgraph`` canonicalises construction
        order, so the result is structurally identical to the parent's.
        """
        cached = self._components.get(edges)
        if cached is None:
            cached = self.graph.edge_subgraph(list(edges))
            if len(self._components) >= 8:
                # Levels revisit one component for many seeds; a handful
                # of slots is plenty and bounds worker memory.
                self._components.pop(next(iter(self._components)))
            self._components[edges] = cached
        return cached

    def seed_component(self, edges: tuple, graph: ProbabilisticGraph) -> None:
        """Pre-populate the cache (inline mode reuses the parent's piece)."""
        if len(self._components) >= 8:
            self._components.pop(next(iter(self._components)))
        self._components[edges] = graph


# ----------------------------------------------------------------------
# Task functions. Each takes (state, payload) and returns plain
# picklable data; the parent re-materialises graphs on its side.


def _gbu_seed(state: WorkerState, payload):
    """Evaluate one GBU seed: grow, test, extend; return sorted edges.

    Payload: ``(component_edges, seed_edge, k, gamma, entropy)`` where
    ``entropy`` is the SeedSequence tuple ``(root, k, comp_idx,
    seed_idx)`` — the per-seed RNG stream that makes the evaluation
    independent of scheduling.
    """
    from repro.core.global_decomp import _extend_to_maximal, _grow_candidate

    comp_edges, seed_edge, k, gamma, entropy = payload
    component = state.component(tuple(map(tuple, comp_edges)))
    rng = np.random.default_rng(np.random.SeedSequence(list(entropy)))
    grown = _grow_candidate(component, tuple(seed_edge), k, rng)
    if grown is None:
        return None
    if not state.oracle.satisfies(grown, k, gamma):
        return None
    extended = _extend_to_maximal(state.oracle, component, grown, k, gamma)
    return sorted(
        (edge_key(u, v) for u, v in extended.edges()), key=_edge_sort_key
    )


def _gtd_component(state: WorkerState, payload):
    """Run the exact top-down search over one connected component.

    Payload: ``(component_edges, k, gamma, max_states)``. Returns one
    sorted edge list per answer, in the search's (deterministic)
    discovery order. :class:`DecompositionError` propagates to the
    parent, which treats it exactly like the serial search would.
    """
    from repro.core.global_decomp import top_down_search

    comp_edges, k, gamma, max_states = payload
    component = state.component(tuple(map(tuple, comp_edges)))
    trusses = top_down_search(
        state.oracle, k, component, gamma,
        max_states=max_states, progress=state.hook,
    )
    return [
        sorted((edge_key(u, v) for u, v in t.edges()), key=_edge_sort_key)
        for t in trusses
    ]


def _gtd_frontier(state: WorkerState, payload):
    """Evaluate one shard of a GTD peel round's frontier (Algorithm 4).

    Payload: ``(component_edges, shard, k, gamma)`` where ``shard`` is a
    list of candidate edge lists, each canonically sorted. For every
    candidate the (k, gamma)-truss test runs against the shared sample
    set; a satisfying candidate yields ``("sat", edges)`` and a failing
    one ``("exp", successors)`` — its single-edge-deletion expansions
    after structural k-truss pruning and connected-component splitting,
    each a canonically sorted edge list in deterministic generation
    order. The result is a pure function of the payload: the parent's
    merge (shard-index order, then within-shard candidate order) is
    therefore identical for every shard boundary and worker count.
    """
    from repro.core.global_decomp import (
        _edge_subgraphs_of_components,
        _prune_to_structural_ktruss,
    )
    from repro.runtime.progress import ProgressEvent

    comp_edges, shard, k, gamma = payload
    component = state.component(tuple(map(tuple, comp_edges)))
    out = []
    for index, cand_edges in enumerate(shard):
        candidate = component.edge_subgraph([tuple(e) for e in cand_edges])
        state.hook(ProgressEvent("gtd-state", step=index, detail={"k": k}))
        if state.oracle.satisfies(candidate, k, gamma):
            out.append(("sat", [tuple(e) for e in cand_edges]))
            continue
        key = {edge_key(u, v) for u, v in candidate.edges()}
        successors = []
        for e in list(candidate.edges()):
            remaining = set(key)
            remaining.discard(edge_key(*e))
            pruned = _prune_to_structural_ktruss(candidate, remaining, k)
            if not pruned:
                continue
            for piece in _edge_subgraphs_of_components(candidate, pruned):
                successors.append(sorted(
                    (edge_key(u, v) for u, v in piece.edges()),
                    key=_edge_sort_key,
                ))
        out.append(("exp", successors))
    return out


def _oracle_block(state: WorkerState, payload):
    """Classify one block of sample rows for a single oracle evaluation.

    Payload: ``(edges, nodes, k, packed, rows)`` where ``packed`` is the
    byte-aligned slice of the parent's *packed* column projection
    covering this block and ``rows`` the block's sample indices relative
    to the slice start. The parent projects once and ships each worker
    only its own bytes — the old payload made every worker re-project
    the full boolean ``presence_matrix`` (8x unpacked) for its block.
    Returns integer counts in ``edges`` order; the parent sums the
    blocks (counts are additive over disjoint row sets).
    """
    state.check_cancel()
    edges, nodes, k, packed, rows = payload
    edges = [tuple(e) for e in edges]
    counts = classify_worlds_packed(
        edges, nodes, k, np.asarray(packed, dtype=np.uint8),
        np.asarray(rows, dtype=np.int64),
    )
    return [counts[e] for e in edges]


def _calibrate(state: WorkerState, payload):
    """No-op round-trip probe for the dispatch-cost calibration.

    The executor times a pool-wide map of these at startup to measure
    what one payload's serialize/queue/wake/return actually costs on
    this machine, replacing the fixed ``_PARALLEL_MIN_CELLS`` guess.
    """
    state.check_cancel()
    return None


def _pmf_init(state: WorkerState, payload):
    """Run the O(k_e^2) initial support DPs for a chunk of edges.

    Payload: ``(gamma, pairs)``. The triangle factors are ordered by the
    canonical node key so every process — parent inline or any worker —
    folds them into the DP in the same order (set iteration order would
    differ across processes).
    """
    gamma, pairs = payload
    out = []
    for i, (u, v) in enumerate(pairs):
        if i % _CANCEL_POLL == 0:
            state.check_cancel()
        p = state.graph.probability(u, v)
        tri = triangle_probabilities(state.graph, u, v)
        qs = [tri[w] for w in sorted(tri, key=node_sort_key)]
        pmf = support_pmf(qs)
        level = SupportProbability.from_factors(qs, pmf).level(gamma, p)
        out.append((u, v, qs, pmf, level))
    state.bump("local-init", len(pairs))
    return out


def _nucleus_cell(state: WorkerState, payload):
    """Run the initial support DPs for a chunk of r-cliques.

    Payload: ``(r, gamma, cells)`` with each cell a canonical clique
    tuple. The float path is :func:`repro.core.nucleus.nucleus_cell` —
    the same function the serial loop calls — with apex factors in
    canonical node order, so every worker count (including the inline
    parent) produces byte-identical ``(qs, pmf, level)`` triples.
    """
    _r, gamma, cells = payload
    out = []
    for i, cell in enumerate(cells):
        if i % _CANCEL_POLL == 0:
            state.check_cancel()
        cell = tuple(cell)
        qs, pmf, level = nucleus_cell(state.graph, gamma, cell)
        out.append((cell, qs, pmf, level))
    state.bump("nucleus-init", len(cells))
    return out


def _reliability_block(state: WorkerState, payload):
    """Count connected worlds in one batch of reliability samples.

    Payload: ``(nodes, edges, presence)`` where ``presence`` is the
    boolean batch matrix and ``nodes`` is the *parent's* node list —
    the worker's rebuilt graph lacks isolated nodes, which matter for
    connectivity. Hit counts are additive over disjoint batches, so the
    parent's sum is identical for every worker count.
    """
    state.check_cancel()
    nodes, edges, presence = payload
    presence = np.asarray(presence, dtype=bool)
    hits = count_connected_rows(list(nodes), [tuple(e) for e in edges],
                                presence)
    state.bump("reliability-rows", presence.shape[0])
    return hits


TASKS = {
    "calibrate": _calibrate,
    "gbu-seed": _gbu_seed,
    "gtd-component": _gtd_component,
    "gtd-frontier": _gtd_frontier,
    "nucleus-cell": _nucleus_cell,
    "oracle-block": _oracle_block,
    "pmf-init": _pmf_init,
    "reliability-block": _reliability_block,
}


def build_worker_state(edge_triples, handle: SharedSamplesHandle | None,
                       cancel, counters) -> WorkerState:
    """Build the per-process execution state (worker side, once).

    Called from the supervised pool's worker loop right after fork; the
    returned state keeps the shared-memory mapping alive for as long as
    the worker runs tasks against it.
    """
    graph = ProbabilisticGraph()
    for u, v, p in edge_triples:
        graph.add_edge(u, v, p)
    samples = shm = None
    if handle is not None:
        samples, shm = attach_samples(handle)
    state = WorkerState(graph, samples, cancel=cancel, counters=counters)
    state._shm = shm
    return state
