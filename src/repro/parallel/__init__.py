"""Multi-core execution layer (``--workers N``).

Fans the compute-bound stages — GBU seed evaluation, GTD component
search, oversized oracle evaluations, reliability sample batches, and
the initial support-PMF DPs — across worker processes while keeping
results bit-identical to the ``workers=1`` inline path. The world
sample set is published once into :mod:`multiprocessing.shared_memory`;
workers project candidates against the same physical pages with zero
copying.

Execution is *supervised* (:mod:`repro.parallel.supervisor`): a worker
that crashes or hangs is killed and replaced, only its in-flight payload
is replayed (tasks are pure, so replay is byte-identical), and a payload
that keeps killing workers is quarantined with an explicit
:class:`QuarantinedTask` record instead of hanging or failing the run.

Entry points: :class:`ParallelExecutor` (the pool front end),
:class:`SupervisedPool`/:data:`QUARANTINED` (the supervision layer),
:class:`SharedWorldSamples`/:func:`attach_samples` (the shared segment),
and :func:`resolve_workers` (CLI value normalisation). The decomposition
APIs accept ``workers=``/``executor=`` and wire these together; see
``docs/performance.md`` for the determinism contract and
``docs/robustness.md`` for the supervision model.
"""

from repro.parallel.executor import ParallelExecutor, resolve_workers
from repro.parallel.shared import (
    SharedSamplesHandle,
    SharedWorldSamples,
    attach_samples,
)
from repro.parallel.supervisor import (
    QUARANTINED,
    QuarantinedTask,
    SupervisedPool,
)

__all__ = [
    "ParallelExecutor",
    "resolve_workers",
    "QUARANTINED",
    "QuarantinedTask",
    "SupervisedPool",
    "SharedSamplesHandle",
    "SharedWorldSamples",
    "attach_samples",
]
