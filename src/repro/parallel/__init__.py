"""Multi-core execution layer (``--workers N``).

Fans the compute-bound stages — GBU seed evaluation, GTD component
search, oversized oracle evaluations, and the initial support-PMF DPs —
across worker processes while keeping results bit-identical to the
``workers=1`` inline path. The world sample set is published once into
:mod:`multiprocessing.shared_memory`; workers project candidates
against the same physical pages with zero copying.

Entry points: :class:`ParallelExecutor` (the pool front end),
:class:`SharedWorldSamples`/:func:`attach_samples` (the shared segment),
and :func:`resolve_workers` (CLI value normalisation). The decomposition
APIs accept ``workers=``/``executor=`` and wire these together; see
``docs/performance.md`` for the determinism contract.
"""

from repro.parallel.executor import ParallelExecutor, resolve_workers
from repro.parallel.shared import (
    SharedSamplesHandle,
    SharedWorldSamples,
    attach_samples,
)

__all__ = [
    "ParallelExecutor",
    "resolve_workers",
    "SharedSamplesHandle",
    "SharedWorldSamples",
    "attach_samples",
]
