"""The process-pool front end: dispatch, progress pumping, cancellation.

:class:`ParallelExecutor` owns everything the parallel mode needs for
one run: the forked worker pool, the shared-memory sample segment, the
shared cancel flag, and the counter block workers tick progress into.
``workers=1`` (or an environment without ``fork``) degrades to *inline*
mode — the same task functions run synchronously in the parent process,
which is both the zero-overhead special case and the reference the
equivalence tests compare worker counts against.

Progress and budgets
--------------------
Pool workers cannot call the parent's progress hook, so they tick
shared counters instead (see :mod:`repro.parallel.work`). While a
``map`` is in flight the parent pumps: every ``_PUMP_INTERVAL`` seconds
it folds counter deltas into ordinary :class:`ProgressEvent` s — plus a
``parallel-heartbeat`` when nothing moved — and feeds them to the active
hook. A hook that raises (budget breach, injected fault, Ctrl-C guard)
sets the cancel flag, which workers poll at evaluation boundaries, and
the exception propagates exactly as it would from the serial loop.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait

from repro.exceptions import ParameterError
from repro.parallel.shared import SharedWorldSamples
from repro.parallel.work import (
    COUNTER_PHASES,
    TASKS,
    WorkerState,
    _init_worker,
    run_task,
)

__all__ = ["ParallelExecutor", "resolve_workers"]

#: Seconds between progress pumps while a parallel map is in flight.
_PUMP_INTERVAL = 0.05

#: Seconds to wait for in-flight tasks to notice the cancel flag.
_ABORT_GRACE = 30.0


def resolve_workers(workers) -> int:
    """Normalise a ``--workers`` value to a positive worker count.

    ``0`` and ``"auto"`` mean one worker per available core; anything
    else must be a positive integer.
    """
    if not isinstance(workers, bool) and workers in (0, "auto"):
        return max(1, os.cpu_count() or 1)
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ParameterError(
            f"workers must be a positive integer, 0 or 'auto', got {workers!r}"
        )
    if workers < 1:
        raise ParameterError(f"workers must be at least 1, got {workers}")
    return workers


class ParallelExecutor:
    """Runs named tasks over payload lists, in-process or across a pool.

    Parameters
    ----------
    workers:
        Requested worker count (see :func:`resolve_workers`).
    graph:
        The host graph; workers rebuild it once at pool start.
    samples:
        Optional :class:`~repro.graphs.sampling.WorldSampleSet` to
        publish into shared memory for the workers.
    oracle:
        Optional parent-side oracle for inline mode (warm cache). Can
        be attached later with :meth:`attach_oracle` when the oracle is
        created after the executor (the harness does this).

    Use as a context manager, or call :meth:`start`/:meth:`close`.
    ``pool_workers`` is 1 until a pool is actually live — callers gate
    "is parallelism real?" decisions on it, not on ``workers``.
    """

    def __init__(self, workers, *, graph, samples=None, oracle=None):
        self.workers = resolve_workers(workers)
        self.pool_workers = 1
        self._graph = graph
        self._samples = samples
        self._oracle = oracle
        self._pool = None
        self._shared = None
        self._cancel = None
        self._counters = None
        self._inline_state = None
        self._started = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ParallelExecutor":
        if self._started:
            return self
        self._started = True
        if self.workers > 1:
            try:
                ctx = mp.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                ctx = None
            if ctx is not None:
                if self._samples is not None:
                    self._shared = SharedWorldSamples.publish(self._samples)
                handle = self._shared.handle if self._shared else None
                self._cancel = ctx.Event()
                self._counters = {
                    phase: ctx.Value("q", 0) for phase in COUNTER_PHASES
                }
                triples = list(self._graph.edges_with_probabilities())
                # Fork context: the initargs (including the Event and
                # Values) reach workers by inheritance, not pickling.
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=ctx,
                    initializer=_init_worker,
                    initargs=(triples, handle, self._cancel, self._counters),
                )
                self.pool_workers = self.workers
        self._inline_state = WorkerState(
            self._graph, self._samples, oracle=self._oracle
        )
        return self

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._shared is not None:
            self._shared.close()
            self._shared = None
        self.pool_workers = 1

    def __enter__(self) -> "ParallelExecutor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- wiring ---------------------------------------------------------
    def attach_oracle(self, oracle) -> None:
        """Hand the parent-side oracle to inline mode, and vice versa.

        The oracle gains ``executor = self`` so oversized single
        evaluations can split across the pool; inline tasks gain the
        oracle's warm cache.
        """
        self._oracle = oracle
        if self._inline_state is not None:
            self._inline_state.oracle = oracle
        oracle.executor = self

    def cache_component(self, edges, graph) -> None:
        """Let inline mode reuse an already-materialised component."""
        if self._inline_state is not None:
            self._inline_state.seed_component(
                tuple(map(tuple, edges)), graph
            )

    # -- dispatch -------------------------------------------------------
    def map(self, name: str, payloads, progress=None) -> list:
        """Run task ``name`` over ``payloads``; results in payload order.

        Inline mode runs synchronously (hooks fire from inside the
        tasks, exactly as in the serial code). Pool mode dispatches all
        payloads and pumps progress until every future resolves; the
        first worker exception aborts the rest and re-raises here.
        """
        payloads = list(payloads)
        if not payloads:
            return []
        if self._pool is None:
            state = self._inline_state
            state.progress = progress
            try:
                return [TASKS[name](state, p) for p in payloads]
            finally:
                state.progress = None
        futures = [self._pool.submit(run_task, name, p) for p in payloads]
        try:
            self._pump(futures, progress)
        except BaseException:
            self._abort(futures)
            raise
        return [f.result() for f in futures]

    def _pump(self, futures, progress) -> None:
        from repro.runtime.progress import ProgressEvent

        pending = set(futures)
        last: dict[str, int] = {}
        heartbeat = 0
        while pending:
            done, pending = wait(
                pending, timeout=_PUMP_INTERVAL, return_when=FIRST_EXCEPTION
            )
            for future in done:
                exc = future.exception()
                if exc is not None:
                    raise exc
            if progress is None:
                continue
            moved = False
            for phase, counter in self._counters.items():
                value = counter.value
                if value != last.get(phase, 0):
                    last[phase] = value
                    moved = True
                    progress(ProgressEvent(phase, step=value))
            if not moved:
                heartbeat += 1
                progress(ProgressEvent("parallel-heartbeat", step=heartbeat))

    def _abort(self, futures) -> None:
        """Cancel queued work, flag running work, and drain the pool.

        The cancel flag is cleared afterwards so the pool stays usable —
        the harness reuses one executor across stages (and across the
        GTD-to-GBU fallback) after catching the raised exception.
        """
        if self._cancel is not None:
            self._cancel.set()
        for future in futures:
            future.cancel()
        wait(futures, timeout=_ABORT_GRACE)
        if self._cancel is not None:
            self._cancel.clear()
