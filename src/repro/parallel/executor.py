"""The pool front end: dispatch, supervision policy, cancellation.

:class:`ParallelExecutor` owns everything the parallel mode needs for
one run: the supervised worker pool (:mod:`repro.parallel.supervisor`),
the shared-memory sample segment, the shared cancel flag, and the
counter block workers tick progress into. ``workers=1`` (or an
environment without ``fork``) degrades to *inline* mode — the same task
functions run synchronously in the parent process, which is both the
zero-overhead special case and the reference the equivalence tests
compare worker counts against.

Supervision policy lives here: the executor decides what a quarantined
payload means for each call site through ``map``'s ``on_quarantine``
argument. ``"raise"`` (the default) surfaces a
:class:`~repro.exceptions.TaskQuarantinedError`; ``"skip"`` returns the
:data:`~repro.parallel.supervisor.QUARANTINED` sentinel in that
payload's slot so degradable stages (oracle blocks, GBU seeds, GTD
components) can widen their error bounds or fall back per-component
instead of failing the run.

Tunables
--------
``pump_interval`` (progress-pump cadence) and ``abort_grace`` (how long
an abort waits for workers to notice the cancel flag) accept keyword
overrides, then the ``REPRO_PUMP_INTERVAL`` / ``REPRO_ABORT_GRACE``
environment variables, then the defaults — all validated through
:class:`~repro.exceptions.ParameterError`. ``task_timeout`` and
``max_task_retries`` follow the same precedence with
``REPRO_TASK_TIMEOUT`` / ``REPRO_MAX_TASK_RETRIES``.
"""

from __future__ import annotations

import multiprocessing as mp
import os

from repro.exceptions import ParameterError, TaskQuarantinedError
from repro.parallel.shared import SharedWorldSamples
from repro.parallel.supervisor import (
    QUARANTINED,
    PoolFaultState,
    SupervisedPool,
)
from repro.parallel.work import COUNTER_PHASES, TASKS, WorkerState

__all__ = ["ParallelExecutor", "resolve_workers"]

#: Default seconds between progress pumps while a map is in flight.
_PUMP_INTERVAL = 0.05

#: Default seconds to wait for tasks to notice the cancel flag.
_ABORT_GRACE = 30.0

#: Default strike limit before a payload is quarantined.
_MAX_TASK_RETRIES = 2

#: Clamp bounds for the calibrated oracle dispatch threshold (candidate
#: cells = rows x edges). The floor keeps a freakishly fast round-trip
#: measurement from fanning out trivial evaluations; the ceiling keeps a
#: cold-start hiccup from disabling parallelism outright.
_MIN_CELLS_FLOOR = 1 << 14
_MIN_CELLS_CEIL = 1 << 22

#: Synthetic classification size used to measure serial throughput.
_CALIBRATION_ROWS = 4096
_CALIBRATION_EDGES = 32


def resolve_workers(workers) -> int:
    """Normalise a ``--workers`` value to a positive worker count.

    ``0`` and ``"auto"`` mean one worker per available core; anything
    else must be a positive integer.
    """
    if not isinstance(workers, bool) and workers in (0, "auto"):
        return max(1, os.cpu_count() or 1)
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ParameterError(
            f"workers must be a positive integer, 0 or 'auto', got {workers!r}"
        )
    if workers < 1:
        raise ParameterError(f"workers must be at least 1, got {workers}")
    return workers


def _float_knob(value, env_name, default, *, name, allow_none=False,
                minimum=0.0, inclusive=False):
    """Resolve kwarg > environment > default for a float tunable."""
    source = f"{name} keyword"
    if value is None and not allow_none:
        raw = os.environ.get(env_name)
        if raw is None:
            return default
        source = f"environment variable {env_name}"
        value = raw
    elif value is None:
        raw = os.environ.get(env_name)
        if raw is None:
            return None
        source = f"environment variable {env_name}"
        value = raw
    if isinstance(value, str) and value.strip().lower() in ("none", ""):
        if allow_none:
            return None
        raise ParameterError(f"{source} must be a number, got {value!r}")
    try:
        result = float(value)
    except (TypeError, ValueError):
        raise ParameterError(
            f"{source} must be a number, got {value!r}"
        ) from None
    ok = result >= minimum if inclusive else result > minimum
    if not ok or result != result:  # also rejects NaN
        op = ">=" if inclusive else ">"
        raise ParameterError(
            f"{source} must be {op} {minimum:g}, got {result!r}"
        )
    return result


def _int_knob(value, env_name, default, *, name):
    """Resolve kwarg > environment > default for a non-negative int."""
    source = f"{name} keyword"
    if value is None:
        raw = os.environ.get(env_name)
        if raw is None:
            return default
        source = f"environment variable {env_name}"
        value = raw
    if isinstance(value, bool):
        raise ParameterError(f"{source} must be an integer, got {value!r}")
    try:
        result = int(value)
    except (TypeError, ValueError):
        raise ParameterError(
            f"{source} must be an integer, got {value!r}"
        ) from None
    if result < 0:
        raise ParameterError(f"{source} must be >= 0, got {result}")
    return result


class ParallelExecutor:
    """Runs named tasks over payload lists, in-process or across a pool.

    Parameters
    ----------
    workers:
        Requested worker count (see :func:`resolve_workers`).
    graph:
        The host graph; workers rebuild it once at pool start.
    samples:
        Optional :class:`~repro.graphs.sampling.WorldSampleSet` to
        publish into shared memory for the workers. The executor keeps
        the parent copy pristine — it is the recovery source when a
        crashing worker corrupts the shared segment.
    oracle:
        Optional parent-side oracle for inline mode (warm cache). Can
        be attached later with :meth:`attach_oracle` when the oracle is
        created after the executor (the harness does this).
    task_timeout:
        Seconds one payload may run on a worker before that worker is
        killed and the payload charged a strike; ``None`` disables.
    task_cpu_timeout:
        Seconds a worker's self-reported CPU clock may stand still
        (while wall time advances) before the worker is presumed wedged
        and reclaimed; CPU progress extends the grace window, so a
        merely descheduled-but-busy worker survives. ``None`` disables.
        Environment fallback: ``REPRO_TASK_CPU_TIMEOUT``.
    max_task_retries:
        Strikes (crashes or timeouts) a payload survives before it is
        quarantined; default 2, i.e. three attempts total.
    pump_interval / abort_grace:
        Progress-pump cadence and abort patience (see module docstring
        for the kwarg/env/default precedence).
    faults:
        Optional :class:`~repro.runtime.faults.FaultPlan`; its pool
        faults (``kill_worker``, ``hang_task``,
        ``corrupt_shared_segment``) are armed at pool start.

    Use as a context manager, or call :meth:`start`/:meth:`close`.
    ``pool_workers`` is 1 until a pool is actually live — callers gate
    "is parallelism real?" decisions on it, not on ``workers``.

    After any map, :attr:`quarantined` accumulates the
    :class:`~repro.parallel.supervisor.QuarantinedTask` records of every
    poison payload seen so far and :attr:`sample_rows_lost` the largest
    number of sample rows any single oracle evaluation had to drop —
    the harness widens the reported epsilon accordingly.
    """

    def __init__(self, workers, *, graph, samples=None, oracle=None,
                 task_timeout=None, task_cpu_timeout=None,
                 max_task_retries=None, pump_interval=None,
                 abort_grace=None, faults=None, parallel_min_cells=None):
        self.workers = resolve_workers(workers)
        self.pool_workers = 1
        #: Oracle dispatch threshold (candidate cells) measured at pool
        #: start; None until then (or forever, in inline mode) — the
        #: oracle falls back to its fixed constant. Keyword >
        #: ``REPRO_PARALLEL_MIN_CELLS`` > startup calibration.
        self.parallel_min_cells = None
        self._min_cells_override = _int_knob(
            parallel_min_cells, "REPRO_PARALLEL_MIN_CELLS", None,
            name="parallel_min_cells",
        )
        self.task_timeout = _float_knob(
            task_timeout, "REPRO_TASK_TIMEOUT", None,
            name="task_timeout", allow_none=True,
        )
        self.task_cpu_timeout = _float_knob(
            task_cpu_timeout, "REPRO_TASK_CPU_TIMEOUT", None,
            name="task_cpu_timeout", allow_none=True,
        )
        self.max_task_retries = _int_knob(
            max_task_retries, "REPRO_MAX_TASK_RETRIES", _MAX_TASK_RETRIES,
            name="max_task_retries",
        )
        self.pump_interval = _float_knob(
            pump_interval, "REPRO_PUMP_INTERVAL", _PUMP_INTERVAL,
            name="pump_interval",
        )
        self.abort_grace = _float_knob(
            abort_grace, "REPRO_ABORT_GRACE", _ABORT_GRACE,
            name="abort_grace", inclusive=True,
        )
        self._graph = graph
        self._samples = samples
        self._oracle = oracle
        self._faults = faults
        self._pool = None
        self._shared = None
        self._cancel = None
        self._counters = None
        self._fault_state = None
        self._triples = None
        self._inline_state = None
        self._started = False
        self.quarantined = []
        self.sample_rows_lost = 0

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ParallelExecutor":
        if self._started:
            return self
        self._started = True
        if self.workers > 1:
            try:
                ctx = mp.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                ctx = None
            if ctx is not None:
                try:
                    if self._samples is not None:
                        self._shared = SharedWorldSamples.publish(
                            self._samples
                        )
                    self._cancel = ctx.Event()
                    self._counters = {
                        phase: ctx.Value("q", 0) for phase in COUNTER_PHASES
                    }
                    self._triples = list(
                        self._graph.edges_with_probabilities()
                    )
                    spec = None
                    if self._faults is not None:
                        spec = getattr(self._faults, "pool_faults", None)
                    if spec:
                        self._fault_state = PoolFaultState(ctx, **spec)
                    verify = rebuild = None
                    if self._shared is not None:
                        verify = self._verify_segment
                        rebuild = self._republish_segment
                    self._pool = SupervisedPool(
                        ctx, self.workers, self._worker_args,
                        cancel=self._cancel, counters=self._counters,
                        task_timeout=self.task_timeout,
                        task_cpu_timeout=self.task_cpu_timeout,
                        max_task_retries=self.max_task_retries,
                        pump_interval=self.pump_interval,
                        abort_grace=self.abort_grace,
                        verify_segment=verify, rebuild_segment=rebuild,
                    ).start()
                    self.pool_workers = self.workers
                except BaseException:
                    # Partial start must not leak the shared segment (or
                    # half a pool): tear down whatever got built.
                    self.close()
                    raise
        self._inline_state = WorkerState(
            self._graph, self._samples, oracle=self._oracle
        )
        if self.pool_workers > 1:
            if self._min_cells_override is not None:
                self.parallel_min_cells = self._min_cells_override
            elif self._fault_state is None:
                # Skip under fault injection: the probe tasks would
                # advance the workers' task counters and fire
                # count-scoped faults one real task early.
                self.parallel_min_cells = self._calibrate_dispatch()
        return self

    def _calibrate_dispatch(self) -> int:
        """Measure the oracle dispatch threshold on this machine.

        Splitting one oracle evaluation across the pool pays one map
        round-trip (serialize, queue, wake, return — measured with a
        pool-wide no-op ``calibrate`` map) to save roughly
        ``(1 - 1/W)`` of the serial classification time (throughput
        measured on a synthetic packed classification). The break-even
        candidate-cell count replaces the fixed ``_PARALLEL_MIN_CELLS``
        guess, clamped to sane bounds. Timing lives here — not in the
        oracle — because the threshold only gates *whether* a split
        happens; serial and split classification return identical
        counts, so a machine-dependent threshold cannot change results.
        """
        import time

        import numpy as np

        from repro.core import kernels

        # Dispatch cost: median of a few pool-wide no-op round-trips
        # (the first also absorbs any cold-start noise into the sort).
        costs = []
        for _ in range(5):
            t0 = time.perf_counter()
            self.map("calibrate", [None] * self.pool_workers,
                     on_quarantine="skip")
            costs.append(time.perf_counter() - t0)
        dispatch_s = sorted(costs)[len(costs) // 2]

        # Serial throughput: classify a synthetic packed block once.
        rng = np.random.default_rng(np.random.SeedSequence(0))
        rows, m = _CALIBRATION_ROWS, _CALIBRATION_EDGES
        packed = rng.integers(0, 256, size=(rows // 8, m), dtype=np.uint8)
        edges = [(i, i + 1) for i in range(m)]
        nodes = list(range(m + 1))
        t0 = time.perf_counter()
        kernels.classify_worlds_packed(
            edges, nodes, 2, packed,
            np.arange(rows, dtype=np.int64),
        )
        classify_s = max(time.perf_counter() - t0, 1e-9)
        cells_per_s = (rows * m) / classify_s

        saved_fraction = 1.0 - 1.0 / self.pool_workers
        break_even = dispatch_s * cells_per_s / max(saved_fraction, 1e-9)
        return int(min(max(break_even, _MIN_CELLS_FLOOR), _MIN_CELLS_CEIL))

    def close(self) -> None:
        if self._pool is not None:
            self._last_pool_stats = dict(self._pool.stats)
            self._pool.close()
            self._pool = None
        if self._shared is not None:
            self._shared.close()
            self._shared = None
        self.pool_workers = 1

    def __enter__(self) -> "ParallelExecutor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- wiring ---------------------------------------------------------
    def _worker_args(self):
        """Current worker-init tuple; re-read at every (re)spawn so a
        re-published segment's new handle reaches replacement workers."""
        handle = self._shared.handle if self._shared is not None else None
        return (self._triples, handle, self._cancel, self._counters,
                self._fault_state)

    def _verify_segment(self) -> bool:
        return self._shared is None or self._shared.verify()

    def _republish_segment(self) -> None:
        if self._shared is not None and self._shared._shm is None:
            # A spilled publication is a read-only file mapping: workers
            # physically cannot scribble over it, and there is no
            # pristine RAM copy to republish from. A CRC mismatch here
            # means the spill file itself was damaged on disk.
            from repro.exceptions import WorkerPoolError

            raise WorkerPoolError(
                "spilled sample file failed its integrity check and "
                "cannot be re-published from memory"
            )
        old = self._shared
        self._shared = SharedWorldSamples.publish(self._samples)
        old.close()

    def supervision_stats(self) -> dict:
        """Lifetime supervision counters of this executor's pool.

        A copy of :attr:`SupervisedPool.stats <repro.parallel.supervisor
        .SupervisedPool.stats>` (``maps``, ``workers_respawned``,
        ``tasks_retried``, ``tasks_quarantined``) plus ``quarantined``,
        the number of poison payloads accumulated across maps. All
        zeros in inline mode. The last live pool's counters survive
        :meth:`close`, so the harness can fold them into its
        :class:`~repro.runtime.result.PartialResult` after teardown.
        """
        if self._pool is not None:
            stats = dict(self._pool.stats)
        else:
            stats = dict(getattr(self, "_last_pool_stats", None) or {
                "maps": 0, "workers_respawned": 0,
                "tasks_retried": 0, "tasks_quarantined": 0,
            })
        stats["quarantined"] = len(self.quarantined)
        return stats

    def worker_cpu_seconds(self) -> float:
        """Aggregate worker CPU time (0.0 inline or before first report).

        Fed to :class:`~repro.runtime.pressure.ResourceWatchdog` as its
        ``cpu_probe`` so resource-pressure samples can record how much
        CPU the pool is actually consuming.
        """
        return 0.0 if self._pool is None else self._pool.worker_cpu_seconds()

    @property
    def pool_pids(self) -> list[int]:
        """Live worker PIDs (empty in inline mode); tests kill these."""
        return [] if self._pool is None else self._pool.pids

    def note_sample_loss(self, rows_lost: int) -> None:
        """Record that one oracle evaluation dropped ``rows_lost`` rows.

        The worst single evaluation bounds the accuracy statement: the
        harness recomputes epsilon from ``N - sample_rows_lost``
        effective samples, mirroring truncated sampling.
        """
        self.sample_rows_lost = max(self.sample_rows_lost, int(rows_lost))

    def attach_oracle(self, oracle) -> None:
        """Hand the parent-side oracle to inline mode, and vice versa.

        The oracle gains ``executor = self`` so oversized single
        evaluations can split across the pool; inline tasks gain the
        oracle's warm cache.
        """
        self._oracle = oracle
        if self._inline_state is not None:
            self._inline_state.oracle = oracle
        oracle.executor = self

    def cache_component(self, edges, graph) -> None:
        """Let inline mode reuse an already-materialised component."""
        if self._inline_state is not None:
            self._inline_state.seed_component(
                tuple(map(tuple, edges)), graph
            )

    # -- dispatch -------------------------------------------------------
    def map(self, name: str, payloads, progress=None, *,
            on_quarantine: str = "raise") -> list:
        """Run task ``name`` over ``payloads``; results in payload order.

        Inline mode runs synchronously (hooks fire from inside the
        tasks, exactly as in the serial code). Pool mode dispatches
        through the supervised pool: worker crashes and timeouts are
        replayed transparently, and a payload that exhausts its retries
        is quarantined. With ``on_quarantine="raise"`` that surfaces a
        :class:`TaskQuarantinedError`; with ``"skip"`` the payload's
        result slot holds the :data:`QUARANTINED` sentinel and the
        caller degrades around it. Application exceptions (a task that
        *raised* rather than died) abort the rest and re-raise here,
        exactly like the serial loop.
        """
        if on_quarantine not in ("raise", "skip"):
            raise ParameterError(
                f"on_quarantine must be 'raise' or 'skip', "
                f"got {on_quarantine!r}"
            )
        payloads = list(payloads)
        if not payloads:
            return []
        if self._pool is None:
            state = self._inline_state
            state.progress = progress
            try:
                return [TASKS[name](state, p) for p in payloads]
            finally:
                state.progress = None
        self._maybe_corrupt_segment()
        results, quarantined = self._pool.map(name, payloads, progress)
        if quarantined:
            self.quarantined.extend(quarantined)
            if on_quarantine == "raise":
                raise TaskQuarantinedError(quarantined)
        return results

    def _maybe_corrupt_segment(self) -> None:
        """Arm the ``corrupt_shared_segment`` fault: scribble over the
        shared pages so the next recovery event's CRC check trips."""
        if self._faults is None or self._shared is None:
            return
        take = getattr(self._faults, "take_segment_corruption", None)
        if take is None or not take():
            return
        rows, cols = self._shared.handle.packed_shape
        if rows * cols == 0 or self._shared._shm is None:
            return  # spilled sets are mapped read-only: nothing to scribble
        buf = self._shared._shm.buf
        buf[0] = buf[0] ^ 0xFF
