"""Zero-copy publication of a :class:`WorldSampleSet` to worker processes.

The Monte-Carlo oracle's dominant data structure is the bit-packed
``(ceil(N/8), m)`` presence matrix of the sampled possible worlds. It is
written once and then only *read* — by every candidate evaluation of
every search at every level — which makes it the textbook case for
:mod:`multiprocessing.shared_memory`: the parent publishes the packed
bits into one shared segment, and each worker maps the same physical
pages and wraps them in a :class:`WorldSampleSet` view via
:meth:`~repro.graphs.sampling.WorldSampleSet.from_packed`. No worker
ever copies the samples; candidate projections stay bit-packed
(:meth:`~repro.graphs.sampling.WorldSampleSet.packed_columns` feeding
the :mod:`repro.core.kernels` popcount kernels), so a worker
materialises at most the packed column slice a candidate needs —
never an unpacked boolean matrix.

The handle that travels to workers (:class:`SharedSamplesHandle`)
carries just the segment name, the matrix geometry, and the column
order — a few KB of metadata for an arbitrarily large sample set.
"""

from __future__ import annotations

import weakref
import zlib
from multiprocessing import shared_memory

import numpy as np

from repro.exceptions import ParameterError
from repro.graphs.sampling import WorldSampleSet

__all__ = ["SharedSamplesHandle", "SharedWorldSamples", "attach_samples"]


class SharedSamplesHandle:
    """Picklable descriptor of a published sample set.

    Attributes
    ----------
    name:
        The shared-memory segment name (None for a spilled set).
    n_samples:
        Number of sampled worlds ``N``.
    packed_shape:
        Shape ``(ceil(N/8), m)`` of the packed bit matrix.
    edges:
        Column order (canonical edge keys) of the matrix.
    spill_path:
        For a sample set that spilled to disk: the memmap file workers
        map read-only instead of a shared-memory segment. None for the
        RAM-backed path.
    """

    __slots__ = ("name", "n_samples", "packed_shape", "edges", "spill_path")

    def __init__(self, name, n_samples, packed_shape, edges,
                 spill_path=None):
        self.name = name
        self.n_samples = int(n_samples)
        self.packed_shape = tuple(int(x) for x in packed_shape)
        self.edges = list(edges)
        self.spill_path = None if spill_path is None else str(spill_path)

    def __getstate__(self):
        return (self.name, self.n_samples, self.packed_shape, self.edges,
                self.spill_path)

    def __setstate__(self, state):
        (self.name, self.n_samples, self.packed_shape, self.edges,
         self.spill_path) = state


def _release_segment(shm: shared_memory.SharedMemory) -> None:
    """Best-effort unmap + unlink, tolerant of either already done."""
    try:
        shm.close()
    except OSError:  # pragma: no cover - already unmapped
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


class SharedWorldSamples:
    """A :class:`WorldSampleSet` published into shared memory.

    Create with :meth:`publish`; pass :attr:`handle` to workers; call
    :meth:`close` (or use as a context manager) in the owning process
    when every worker is done — the segment is unlinked exactly once,
    by the owner. A finalizer backstops the owner: if the publishing
    process exits (normally or via an unhandled exception) without
    :meth:`close` having run, the segment is unlinked at garbage
    collection / interpreter shutdown instead of leaking in ``/dev/shm``
    until reboot.

    :attr:`crc` is the CRC-32 of the packed bits at publish time; the
    supervision layer calls :meth:`verify` during crash recovery to
    detect a worker that scribbled over the shared pages before dying,
    and re-publishes from the pristine parent copy when it did.
    """

    def __init__(self, shm: shared_memory.SharedMemory | None,
                 handle: SharedSamplesHandle, crc: int = 0):
        self._shm = shm
        self.handle = handle
        self.crc = crc
        # A spilled set has no segment to guard (shm is None): the
        # memmap file is owned by the harness's SpillDirectory.
        self._finalizer = (
            None if shm is None
            else weakref.finalize(self, _release_segment, shm)
        )

    @classmethod
    def publish(cls, samples: WorldSampleSet) -> "SharedWorldSamples":
        """Publish ``samples`` for worker processes, zero-copy either way.

        A RAM-backed set is copied once into a fresh shared-memory
        segment. A *spilled* set (see
        :meth:`~repro.graphs.sampling.WorldSampleSet.spill_to`) needs no
        segment at all: the handle carries the memmap file's path and
        every worker maps the same file read-only — the page cache plays
        the role ``/dev/shm`` plays for the RAM path.
        """
        packed = samples.packed_bits
        if getattr(samples, "is_spilled", False):
            handle = SharedSamplesHandle(
                None, samples.n_samples, packed.shape,
                list(samples.edge_index),
                spill_path=samples.spill_path,
            )
            return cls(None, handle, zlib.crc32(packed.tobytes()))
        if packed.size == 0:
            # Zero-byte segments are rejected by the OS; keep one page so
            # edgeless graphs follow the same code path as real ones.
            shm = shared_memory.SharedMemory(create=True, size=1)
            crc = 0
        else:
            shm = shared_memory.SharedMemory(create=True, size=packed.nbytes)
            view = np.ndarray(packed.shape, dtype=np.uint8, buffer=shm.buf)
            view[:] = packed  # the one and only copy
            crc = zlib.crc32(view.tobytes())
        handle = SharedSamplesHandle(
            shm.name, samples.n_samples, packed.shape,
            list(samples.edge_index),
        )
        return cls(shm, handle, crc)

    def view(self) -> WorldSampleSet:
        """A :class:`WorldSampleSet` over the shared bits (owner-side)."""
        if self._shm is None:
            return _wrap_spilled(self.handle)
        return _wrap(self._shm, self.handle)

    def verify(self) -> bool:
        """True iff the shared bits still match their publish-time CRC."""
        rows, cols = self.handle.packed_shape
        if rows * cols == 0:
            return True
        if self._shm is None:
            mapped = np.memmap(self.handle.spill_path, dtype=np.uint8,
                               mode="r", shape=(rows, cols))
            return zlib.crc32(mapped.tobytes()) == self.crc
        view = np.ndarray((rows, cols), dtype=np.uint8, buffer=self._shm.buf)
        return zlib.crc32(view.tobytes()) == self.crc

    def close(self, unlink: bool = True) -> None:
        """Unmap the segment; with ``unlink`` also remove it (owner only).

        A spilled publication owns nothing — the memmap file belongs to
        the harness's spill directory — so there is nothing to release.
        """
        if self._shm is None:
            return
        self._finalizer.detach()
        self._shm.close()
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedWorldSamples":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _wrap(shm: shared_memory.SharedMemory,
          handle: SharedSamplesHandle) -> WorldSampleSet:
    rows, cols = handle.packed_shape
    if rows * cols == 0:
        packed = np.zeros((rows, cols), dtype=np.uint8)
    else:
        packed = np.ndarray((rows, cols), dtype=np.uint8, buffer=shm.buf)
    return WorldSampleSet.from_packed(packed, handle.n_samples, handle.edges)


def _wrap_spilled(handle: SharedSamplesHandle) -> WorldSampleSet:
    """Map the spilled packed bits read-only and wrap them, zero-copy."""
    rows, cols = handle.packed_shape
    if rows * cols == 0:
        packed = np.zeros((rows, cols), dtype=np.uint8)
    else:
        try:
            packed = np.memmap(handle.spill_path, dtype=np.uint8,
                               mode="r", shape=(rows, cols))
        except (FileNotFoundError, ValueError) as err:
            raise ParameterError(
                f"spilled sample file {handle.spill_path!r} cannot be "
                f"mapped: {err}"
            ) from err
    return WorldSampleSet.from_packed(packed, handle.n_samples, handle.edges)


def attach_samples(
    handle: SharedSamplesHandle,
) -> tuple[WorldSampleSet, object]:
    """Attach to a published sample set from a worker process.

    Returns the zero-copy :class:`WorldSampleSet` view plus the object
    keeping the mapping alive — the :class:`SharedMemory` segment for
    the RAM path, the read-only ``np.memmap`` itself for a spilled set —
    the caller must hold a reference to the latter for as long as the
    view is used. The read-only mapping means a misbehaving worker
    physically cannot scribble over a spilled sample set.

    Note on resource tracking: attaching registers the segment with the
    process's resource tracker (CPython registers unconditionally on
    POSIX — bpo-38119). The executor only ever attaches from *forked*
    workers, which share the parent's tracker process, so the duplicate
    registration is a set no-op and the owner's :meth:`unlink` retires
    the one tracked entry cleanly. Attaching from a *spawned* process
    would hand ownership to that process's private tracker — don't.
    """
    if handle.spill_path is not None:
        samples = _wrap_spilled(handle)
        return samples, samples.packed_bits
    try:
        shm = shared_memory.SharedMemory(name=handle.name)
    except FileNotFoundError:
        raise ParameterError(
            f"shared sample segment {handle.name!r} no longer exists "
            "(the publishing process closed it?)"
        ) from None
    return _wrap(shm, handle), shm
