"""The supervised worker pool: crash recovery, timeouts, quarantine.

PR 2's executor dispatched through :class:`concurrent.futures.
ProcessPoolExecutor`, which treats any worker death — OOM kill, segfault
in a native extension, an operator's ``kill -9`` — as fatal: every
in-flight future fails with ``BrokenProcessPool`` and the whole run dies
with them. This module replaces that pool with one built for the
opposite assumption: workers *will* die, and the map must survive them.

Design
------
Each worker is an ``mp.Process`` (fork start method) with its own duplex
pipe; the parent therefore always knows exactly which payload a worker
is running and since when. That explicit assignment is what makes the
three supervision behaviours possible:

* **Crash recovery.** A dead worker (EOF on its pipe, or a failed
  liveness check) is reaped and replaced; only the single payload it was
  running is re-dispatched. Tasks are pure functions of
  ``(name, payload)`` with :class:`numpy.random.SeedSequence`-derived
  RNG, so the replay is byte-identical by construction. A buffered
  result found in the dead worker's pipe is salvaged first — a worker
  that died *after* answering costs nothing.
* **Per-task timeouts.** With ``task_timeout`` set, a worker that holds
  one payload longer than the limit is SIGKILLed and replaced, and the
  payload is charged a strike. (``concurrent.futures`` cannot do this:
  it neither knows which worker runs a task nor can it kill one without
  breaking the pool.)
* **Poison-task quarantine.** A payload that crashes its worker or
  times out more than ``max_task_retries`` times is quarantined instead
  of re-dispatched: its slot in the result list becomes the
  :data:`QUARANTINED` sentinel and a :class:`QuarantinedTask` record
  names it. The pool stays healthy and keeps serving later maps — never
  a hang, never a silent gap.

Shared-segment integrity: a crashing worker may scribble over the
shared-memory sample pages before dying, so every recovery event
re-verifies the segment's publish-time CRC (through a callback the
executor provides). On mismatch the segment is re-published from the
parent's pristine copy, every worker is restarted against the new
segment, and the current map is replayed from scratch — replay of pure
tasks is free of observable effects, so the output is still
byte-identical.

Supervision is reported through the ordinary progress-hook protocol as
``worker-died``, ``task-retried``, and ``task-quarantined`` events, so
budgets, interrupt guards, and fault plans observe recovery exactly like
any other batch boundary.
"""

from __future__ import annotations

import os
import pickle
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection

from repro.exceptions import WorkerPoolError
from repro.parallel.work import CANCELLED, TASKS, build_worker_state

__all__ = ["QUARANTINED", "QuarantinedTask", "SupervisedPool"]

#: Minimum CPU-seconds advance that counts as progress between stall
#: checks — the reporter thread itself burns a few microseconds per
#: report, which must not keep a wedged worker alive forever.
_CPU_EPSILON = 0.02


class _Quarantined:
    """Singleton placeholder for a quarantined payload's result slot."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<QUARANTINED>"


#: Result-slot sentinel returned by ``map(..., on_quarantine="skip")``
#: for payloads that were quarantined. Parent-side only (never pickled).
QUARANTINED = _Quarantined()


def _describe_payload(payload) -> str:
    """A short, log-safe summary of a task payload."""
    text = repr(payload)
    if len(text) > 120:
        text = text[:117] + "..."
    return text


@dataclass
class QuarantinedTask:
    """One poison payload: what it was and why it was quarantined.

    ``fallback`` is filled in by callers that degrade around the gap
    (e.g. ``"gbu"`` when a quarantined GTD component was re-searched
    with the bottom-up heuristic).
    """

    name: str
    index: int
    attempts: int
    reasons: list = field(default_factory=list)
    payload_summary: str = ""
    fallback: str | None = None

    def to_dict(self) -> dict:
        return {
            "task": self.name,
            "payload_index": self.index,
            "attempts": self.attempts,
            "reasons": list(self.reasons),
            "payload": self.payload_summary,
            "fallback": self.fallback,
        }

    def describe(self) -> str:
        tail = f"; fallback={self.fallback}" if self.fallback else ""
        return (
            f"{self.name}[{self.index}] after {self.attempts} attempts "
            f"({'; '.join(self.reasons)}){tail}"
        )


class PoolFaultState:
    """Deterministic fault switches inherited by every worker (fork).

    Built by the executor from a :class:`repro.runtime.faults.FaultPlan`
    carrying pool faults. The ``Value`` tokens coordinate "fire at most
    N times" across worker processes.
    """

    __slots__ = ("kill_after", "kill_token", "hang_name", "hang_index",
                 "hang_limit", "hang_count", "spin_name", "spin_index",
                 "spin_seconds", "spin_limit", "spin_count")

    def __init__(self, ctx, *, kill_after=None, hang_name=None,
                 hang_index=None, hang_limit=None, spin_name=None,
                 spin_index=None, spin_seconds=None, spin_limit=None):
        self.kill_after = kill_after
        self.kill_token = ctx.Value("i", 0) if kill_after is not None else None
        self.hang_name = hang_name
        self.hang_index = hang_index
        self.hang_limit = hang_limit
        self.hang_count = ctx.Value("i", 0) if hang_name is not None else None
        self.spin_name = spin_name
        self.spin_index = spin_index
        self.spin_seconds = spin_seconds
        self.spin_limit = spin_limit
        self.spin_count = ctx.Value("i", 0) if spin_name is not None else None


def _maybe_inject_fault(fault: PoolFaultState | None, tasks_done: int,
                        name: str, index: int) -> None:
    """Worker-side: die or hang per the injected fault plan."""
    if fault is None:
        return
    if fault.kill_after is not None and tasks_done >= fault.kill_after:
        fire = False
        with fault.kill_token.get_lock():
            if fault.kill_token.value == 0:
                fault.kill_token.value = 1
                fire = True
        if fire:
            # A real, uncatchable death — exactly what an OOM kill or a
            # segfaulting native extension looks like from the parent.
            os.kill(os.getpid(), signal.SIGKILL)
    if fault.hang_name == name and (
            fault.hang_index is None or fault.hang_index == index):
        fire = False
        with fault.hang_count.get_lock():
            if (fault.hang_limit is None
                    or fault.hang_count.value < fault.hang_limit):
                fault.hang_count.value += 1
                fire = True
        if fire:
            while True:  # until the supervisor's timeout SIGKILLs us
                time.sleep(3600)
    if fault.spin_name == name and (
            fault.spin_index is None or fault.spin_index == index):
        fire = False
        with fault.spin_count.get_lock():
            if (fault.spin_limit is None
                    or fault.spin_count.value < fault.spin_limit):
                fault.spin_count.value += 1
                fire = True
        if fire:
            # Busy-burn CPU before running the task: wall clock and CPU
            # both advance, so a CPU-aware timeout must extend grace.
            deadline = time.monotonic() + fault.spin_seconds
            while time.monotonic() < deadline:
                sum(range(1000))


def _is_cpu_report(msg) -> bool:
    """True for a reporter-thread ``("cpu", seconds)`` side-channel tuple."""
    return isinstance(msg, tuple) and len(msg) == 2 and msg[0] == "cpu"


def _sendable_exception(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives a pickle round trip, else a stand-in.

    Exceptions with non-trivial constructors can pickle but fail to
    *unpickle*; surfacing those as a worker "crash" would misclassify an
    application error as a pool failure and replay it forever.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    # repro: allow[EXC003] __reduce__ of arbitrary exceptions raises anything
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _worker_cpu_seconds() -> float:
    """This worker's cumulative CPU time (self + reaped children)."""
    import resource

    own = resource.getrusage(resource.RUSAGE_SELF)
    kids = resource.getrusage(resource.RUSAGE_CHILDREN)
    return own.ru_utime + own.ru_stime + kids.ru_utime + kids.ru_stime


# repro: owned-by[cpu-reporter]
def _cpu_report_loop(conn, send_lock, interval: float) -> None:
    """Body of the reporter thread: periodic CPU sends until the pipe dies."""
    while True:
        time.sleep(interval)
        try:
            with send_lock:
                conn.send(("cpu", _worker_cpu_seconds()))
        except (BrokenPipeError, OSError, ValueError):
            return  # pipe gone: the worker is shutting down


def _start_cpu_reporter(conn, send_lock, interval: float):
    """Side-channel CPU self-reports over the worker's existing pipe.

    A daemon thread sends ``("cpu", seconds)`` every ``interval``
    seconds. It keeps running even while the main thread is wedged in a
    hung task (``time.sleep`` and long numpy kernels release the GIL),
    which is the whole point: the parent sees wall clock advancing with
    CPU standing still — a stall — versus CPU advancing — a busy worker
    on an oversubscribed machine that deserves more grace.
    """
    import threading

    thread = threading.Thread(
        target=_cpu_report_loop, args=(conn, send_lock, interval),
        daemon=True, name="repro-cpu-report",
    )
    thread.start()
    return thread


# repro: owned-by[pool-worker]
def _worker_main(worker_id: int, conn, edge_triples, handle, cancel,
                 counters, fault: PoolFaultState | None,
                 cpu_interval: float | None = None) -> None:
    """The worker process loop: build state once, then serve tasks.

    SIGINT and SIGTERM are ignored — the parent handles Ctrl-C and
    orchestrator shutdowns, writes its checkpoint, and winds the pool
    down; a worker dying mid-task to the same signal would turn a clean
    resumable exit into a replay.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    import threading

    send_lock = threading.Lock()  # results and CPU reports share the pipe
    if cpu_interval is not None:
        _start_cpu_reporter(conn, send_lock, cpu_interval)
    state = build_worker_state(edge_triples, handle, cancel, counters)
    tasks_done = 0
    from repro.parallel.work import _WorkerCancelled

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        epoch, index, name, payload = msg
        _maybe_inject_fault(fault, tasks_done, name, index)
        try:
            ok, value = True, TASKS[name](state, payload)
        except _WorkerCancelled:
            ok, value = True, CANCELLED
        # repro: allow[EXC003] the task boundary: any failure must cross
        except BaseException as exc:
            ok, value = False, _sendable_exception(exc)
        try:
            with send_lock:
                conn.send((epoch, index, ok, value))
        except (BrokenPipeError, OSError):
            break
        # repro: allow[EXC003] pickling a task result can raise anything
        except Exception as exc:  # result failed to pickle
            try:
                with send_lock:
                    conn.send((epoch, index, False, RuntimeError(
                        f"task {name!r} produced an unpicklable "
                        f"result/exception: {exc}"
                    )))
            # repro: allow[EXC003] pipe unusable; parent reaps us via EOF
            except Exception:
                break
        tasks_done += 1
    conn.close()


class _Worker:
    """Parent-side record of one worker process."""

    __slots__ = ("id", "proc", "conn", "current", "started_at", "served",
                 "cpu_seen", "cpu_mark", "stall_since")

    def __init__(self, wid, proc, conn):
        self.id = wid
        self.proc = proc
        self.conn = conn
        self.current: int | None = None  # payload index in flight
        self.started_at: float | None = None
        self.served = 0
        self.cpu_seen: float | None = None  # latest CPU self-report
        self.cpu_mark: float | None = None  # CPU at last observed progress
        self.stall_since: float | None = None  # wall time CPU stopped moving


class SupervisedPool:
    """A crash-tolerant process pool with explicit task assignment.

    Parameters
    ----------
    ctx:
        A ``fork`` multiprocessing context.
    workers:
        Number of worker processes to keep alive.
    make_worker_args:
        Callable returning the current ``(edge_triples, handle, cancel,
        counters, fault_state)`` tuple for a fresh worker — consulted at
        every (re)spawn so a re-published segment reaches replacements.
    cancel / counters:
        The shared cancel flag and progress counters (also passed to
        workers through ``make_worker_args``).
    task_timeout / max_task_retries:
        Supervision knobs; ``task_timeout=None`` disables timeouts.
    task_cpu_timeout:
        CPU-time stall limit: a worker whose self-reported CPU clock
        stands still for this many wall seconds while it holds a task is
        presumed wedged and reclaimed (kill, strike, respawn) — while a
        worker whose CPU keeps advancing gets its grace extended, so a
        busy task on an oversubscribed machine is not misclassified as
        hung. ``None`` disables CPU supervision (and its reporter
        thread).
    pump_interval / abort_grace:
        Progress-pump cadence and how long an abort waits for workers to
        notice the cancel flag before SIGKILLing them.
    verify_segment / rebuild_segment:
        Optional shared-segment CRC check and re-publisher, called on
        every recovery event (see module docstring).
    """

    def __init__(self, ctx, workers: int, make_worker_args, *, cancel,
                 counters, task_timeout=None, task_cpu_timeout=None,
                 max_task_retries=2, pump_interval=0.05, abort_grace=30.0,
                 verify_segment=None, rebuild_segment=None):
        self._ctx = ctx
        self._n_workers = workers
        self._make_worker_args = make_worker_args
        self._cancel = cancel
        self._counters = counters or {}
        self._task_timeout = task_timeout
        self._task_cpu_timeout = task_cpu_timeout
        self._max_task_retries = max_task_retries
        self._pump_interval = pump_interval
        self._abort_grace = abort_grace
        self._verify_segment = verify_segment
        self._rebuild_segment = rebuild_segment
        self._workers: dict[int, _Worker] = {}
        self._next_id = 0
        self._epoch = 0
        self._consecutive_deaths = 0
        self._closed = False
        #: Lifetime supervision counters, monotone across maps — the
        #: query service reports these per build and aggregates them in
        #: its health endpoint. Keys: ``maps``, ``workers_respawned``
        #: (crash, timeout, and CPU-stall recoveries alike),
        #: ``tasks_retried``, ``tasks_quarantined``.
        self.stats: dict[str, int] = {
            "maps": 0,
            "workers_respawned": 0,
            "tasks_retried": 0,
            "tasks_quarantined": 0,
        }

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "SupervisedPool":
        for _ in range(self._n_workers):
            self._spawn()
        return self

    @property
    def pids(self) -> list[int]:
        """PIDs of the live worker processes (tests kill these)."""
        return [w.proc.pid for w in self._workers.values()]

    def _spawn(self) -> _Worker:
        wid = self._next_id
        self._next_id += 1
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        args = self._make_worker_args()
        cpu_interval = (self._pump_interval
                        if self._task_cpu_timeout is not None else None)
        proc = self._ctx.Process(
            target=_worker_main, args=(wid, child_conn, *args, cpu_interval),
            daemon=True, name=f"repro-worker-{wid}",
        )
        proc.start()
        child_conn.close()
        worker = _Worker(wid, proc, parent_conn)
        self._workers[wid] = worker
        return worker

    def _kill(self, worker: _Worker) -> None:
        """SIGKILL a worker and reap it; its pipe is discarded."""
        try:
            if worker.proc.pid is not None and worker.proc.is_alive():
                os.kill(worker.proc.pid, signal.SIGKILL)
        except (ProcessLookupError, OSError):  # pragma: no cover - raced
            pass
        worker.proc.join(timeout=5.0)
        self._discard(worker)

    def _discard(self, worker: _Worker) -> None:
        self._workers.pop(worker.id, None)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if not worker.proc.is_alive():
            worker.proc.join(timeout=1.0)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in self._workers.values():
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 5.0
        for worker in list(self._workers.values()):
            worker.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.proc.is_alive():
                self._kill(worker)
            else:
                self._discard(worker)
        self._workers.clear()

    # -- the supervised map --------------------------------------------
    def map(self, name: str, payloads: list, progress=None):
        """Run ``name`` over ``payloads``; returns ``(results, quarantined)``.

        ``results`` is in payload order with :data:`QUARANTINED`
        sentinels in the slots of quarantined payloads; ``quarantined``
        lists their :class:`QuarantinedTask` records in index order.
        The first *application* exception (a task that raised, rather
        than a worker that died) aborts the rest and re-raises here,
        exactly like the serial loop.
        """
        self._epoch += 1
        self.stats["maps"] += 1
        epoch = self._epoch
        n = len(payloads)
        results: dict[int, object] = {}
        attempts: dict[int, int] = {}
        reasons: dict[int, list] = {}
        quarantined: dict[int, QuarantinedTask] = {}
        pending = deque(range(n))
        last_counts: dict[str, int] = {}
        last_pump = time.monotonic()
        heartbeat = 0

        def emit(phase: str, step: int, detail: dict) -> None:
            if progress is None:
                return
            from repro.runtime.progress import ProgressEvent

            progress(ProgressEvent(phase, step=step, detail=detail))

        def strike(index: int, reason: str) -> None:
            attempts[index] = attempts.get(index, 0) + 1
            reasons.setdefault(index, []).append(reason)
            if attempts[index] > self._max_task_retries:
                record = QuarantinedTask(
                    name=name, index=index, attempts=attempts[index],
                    reasons=list(reasons[index]),
                    payload_summary=_describe_payload(payloads[index]),
                )
                quarantined[index] = record
                self.stats["tasks_quarantined"] += 1
                emit("task-quarantined", len(quarantined), {
                    "task": name, "payload_index": index,
                    "attempts": attempts[index], "reason": reason,
                })
            else:
                pending.appendleft(index)
                self.stats["tasks_retried"] += 1
                emit("task-retried", attempts[index], {
                    "task": name, "payload_index": index,
                    "reason": reason,
                })

        def salvage(worker: _Worker) -> None:
            """Drain a complete buffered answer out of a dying worker."""
            try:
                while worker.conn.poll():
                    self._on_message(worker, worker.conn.recv(), epoch,
                                     results, quarantined)
            # repro: allow[EXC003] salvage is best-effort over a dying pipe
            except Exception:
                pass  # partial write / EOF: nothing to salvage

        def replay_whole_map() -> None:
            """Segment was re-published: every completed result of this
            map may derive from corrupt bits — recompute all of them."""
            for other in list(self._workers.values()):
                self._kill(other)
            results.clear()
            pending.clear()
            pending.extend(i for i in range(n) if i not in quarantined)
            while len(self._workers) < self._n_workers:
                self._spawn()

        def recover(worker: _Worker, reason: str, *,
                    salvageable: bool = True) -> None:
            """Shared crash/timeout path: reap, verify, strike, respawn."""
            if salvageable:
                salvage(worker)
            index = worker.current
            exitcode = worker.proc.exitcode
            self._discard(worker)
            self._consecutive_deaths += 1
            if self._consecutive_deaths > max(8, 3 * self._n_workers):
                raise WorkerPoolError(
                    f"worker pool is not making progress: "
                    f"{self._consecutive_deaths} consecutive worker "
                    f"deaths without a completed task (last: {reason})"
                )
            self.stats["workers_respawned"] += 1
            emit("worker-died", self._consecutive_deaths, {
                "task": name, "reason": reason, "exitcode": exitcode,
                "payload_index": index,
            })
            segment_ok = (self._verify_segment is None
                          or self._verify_segment())
            if index is not None and index not in results:
                if segment_ok:
                    strike(index, reason)
                elif index not in quarantined:
                    # Casualty of the rebuild below, not a poison task.
                    pending.append(index)
            if not segment_ok:
                self._rebuild_segment()
                replay_whole_map()
            else:
                self._spawn()

        def dispatch() -> None:
            for worker in list(self._workers.values()):
                if not pending:
                    return
                if worker.current is not None:
                    continue
                index = pending.popleft()
                try:
                    worker.conn.send((epoch, index, name, payloads[index]))
                except (BrokenPipeError, OSError):
                    pending.appendleft(index)
                    recover(worker, "worker died before dispatch")
                    continue
                worker.current = index
                worker.started_at = time.monotonic()
                worker.cpu_mark = worker.cpu_seen
                worker.stall_since = None

        def collect() -> None:
            conns = {w.conn: w for w in self._workers.values()}
            ready = connection.wait(list(conns), timeout=self._pump_interval)
            for conn in ready:
                worker = conns[conn]
                if worker.id not in self._workers:
                    continue  # discarded by an earlier recovery this round
                try:
                    while worker.conn.poll():
                        self._on_message(worker, worker.conn.recv(), epoch,
                                         results, quarantined, pending)
                except (EOFError, OSError, pickle.UnpicklingError) as err:
                    recover(
                        worker,
                        f"worker crashed "
                        f"(exit {worker.proc.exitcode}, {type(err).__name__})",
                        salvageable=False,
                    )

        def reap() -> None:
            for worker in list(self._workers.values()):
                if not worker.proc.is_alive():
                    recover(worker,
                            f"worker died (exit {worker.proc.exitcode})")

        def check_timeouts() -> None:
            if self._task_timeout is None and self._task_cpu_timeout is None:
                return
            now = time.monotonic()
            for worker in list(self._workers.values()):
                if worker.current is None or worker.started_at is None:
                    continue
                verdict = None
                if (self._task_timeout is not None
                        and now - worker.started_at > self._task_timeout):
                    verdict = f"timed out after {self._task_timeout:.3g}s"
                elif self._task_cpu_timeout is not None:
                    seen = worker.cpu_seen
                    if seen is not None and (
                            seen > (worker.cpu_mark or 0.0) + _CPU_EPSILON):
                        # CPU advanced since we last looked: the task is
                        # busy (perhaps descheduled, not wedged) — extend
                        # its grace window instead of killing it.
                        worker.cpu_mark = seen
                        worker.stall_since = now
                    elif (now - (worker.stall_since or worker.started_at)
                            > self._task_cpu_timeout):
                        verdict = (
                            f"CPU stalled: no CPU progress in "
                            f"{self._task_cpu_timeout:.3g}s of wall time"
                        )
                if verdict is None:
                    continue
                index = worker.current
                self._kill(worker)
                self._consecutive_deaths = 0  # intentional, not a crash
                self.stats["workers_respawned"] += 1
                emit("worker-died", 0, {
                    "task": name, "reason": "task timeout",
                    "payload_index": index,
                })
                if index not in results:
                    strike(index, verdict)
                segment_ok = (self._verify_segment is None
                              or self._verify_segment())
                if not segment_ok:
                    self._rebuild_segment()
                    replay_whole_map()
                else:
                    self._spawn()

        def pump() -> None:
            nonlocal last_pump, heartbeat
            now = time.monotonic()
            if progress is None or now - last_pump < self._pump_interval:
                return
            last_pump = now
            from repro.runtime.progress import ProgressEvent

            moved = False
            for phase, counter in self._counters.items():
                value = counter.value
                if value != last_counts.get(phase, 0):
                    last_counts[phase] = value
                    moved = True
                    progress(ProgressEvent(phase, step=value))
            if not moved:
                heartbeat += 1
                progress(ProgressEvent("parallel-heartbeat", step=heartbeat))

        try:
            while len(results) + len(quarantined) < n:
                dispatch()
                collect()
                reap()
                check_timeouts()
                pump()
        except BaseException:
            self.abort()
            raise
        return (
            [results.get(i, QUARANTINED) for i in range(n)],
            [quarantined[i] for i in sorted(quarantined)],
        )

    def _on_message(self, worker: _Worker, msg, epoch: int,
                    results: dict, quarantined: dict,
                    pending: deque | None = None) -> None:
        if _is_cpu_report(msg):
            worker.cpu_seen = float(msg[1])
            return
        m_epoch, index, ok, value = msg
        if m_epoch != epoch:
            return  # stale answer from an aborted map
        if worker.current == index:
            worker.current = None
            worker.started_at = None
        worker.served += 1
        self._consecutive_deaths = 0
        if not ok:
            raise value
        if value is CANCELLED:
            # A cancel leaked through (flag cleared while the task was
            # finishing); the payload was never evaluated — requeue it
            # without a strike.
            if (pending is not None and index not in results
                    and index not in quarantined):
                pending.append(index)
            return
        if index not in results and index not in quarantined:
            results[index] = value

    def worker_cpu_seconds(self) -> float:
        """Total CPU-seconds self-reported by the live workers.

        Zero until the first reports arrive (or with CPU supervision
        off); a freshly respawned worker restarts its own clock, so the
        total is a floor, not an exact account across recoveries.
        """
        return sum(w.cpu_seen or 0.0 for w in self._workers.values())

    # -- abort ----------------------------------------------------------
    def abort(self) -> None:
        """Flag running work, wait out the grace period, kill stragglers.

        The cancel flag is cleared afterwards so the pool stays usable —
        the harness reuses one executor across stages (and across the
        GTD-to-GBU fallback) after catching the raised exception.
        """
        if self._cancel is not None:
            self._cancel.set()
        deadline = time.monotonic() + self._abort_grace
        while (any(w.current is not None for w in self._workers.values())
               and time.monotonic() < deadline):
            conns = {w.conn: w for w in self._workers.values()
                     if w.current is not None}
            ready = connection.wait(list(conns), timeout=0.05)
            for conn in ready:
                worker = conns[conn]
                try:
                    while worker.conn.poll():
                        if _is_cpu_report(worker.conn.recv()):
                            continue  # side-channel, not the task's answer
                        worker.current = None
                        worker.started_at = None
                except (EOFError, OSError, pickle.UnpicklingError):
                    self._discard(worker)
                    self._spawn()
            for worker in list(self._workers.values()):
                if not worker.proc.is_alive():
                    self._discard(worker)
                    self._spawn()
        for worker in list(self._workers.values()):
            if worker.current is not None:
                self._kill(worker)
                self._spawn()
        if self._cancel is not None:
            self._cancel.clear()
