"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError`, so callers can
catch a single base class. Programming errors (bad arguments) raise the
standard :class:`ValueError`/:class:`KeyError` subclasses below so they
also behave idiomatically for users who do not know the hierarchy.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "EdgeNotFoundError",
    "InvalidProbabilityError",
    "ParameterError",
    "DatasetError",
    "DecompositionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A structural problem with a (probabilistic) graph."""


class NodeNotFoundError(GraphError, KeyError):
    """A referenced node does not exist in the graph."""

    def __init__(self, node):
        super().__init__(node)
        self.node = node

    def __str__(self) -> str:  # KeyError quotes its repr; keep it readable
        return f"node {self.node!r} is not in the graph"


class EdgeNotFoundError(GraphError, KeyError):
    """A referenced edge does not exist in the graph."""

    def __init__(self, u, v):
        super().__init__((u, v))
        self.u = u
        self.v = v

    def __str__(self) -> str:
        return f"edge ({self.u!r}, {self.v!r}) is not in the graph"


class InvalidProbabilityError(GraphError, ValueError):
    """An edge probability is outside the closed interval [0, 1]."""


class ParameterError(ReproError, ValueError):
    """An algorithm parameter (k, gamma, epsilon, delta, ...) is invalid."""


class DatasetError(ReproError):
    """A named dataset is unknown or could not be generated/loaded."""


class DecompositionError(ReproError):
    """A decomposition could not be carried out on the given input."""
