"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError`, so callers can
catch a single base class. Programming errors (bad arguments) raise the
standard :class:`ValueError`/:class:`KeyError` subclasses below so they
also behave idiomatically for users who do not know the hierarchy.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "EdgeNotFoundError",
    "InvalidProbabilityError",
    "ParameterError",
    "DatasetError",
    "GraphParseError",
    "DecompositionError",
    "BudgetExceededError",
    "CheckpointError",
    "CheckpointWriteError",
    "ComputationInterrupted",
    "TaskQuarantinedError",
    "WorkerPoolError",
    "ServiceError",
    "OverloadedError",
    "IndexUnavailableError",
    "HTTP_STATUS_BY_ERROR",
    "http_status_of",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A structural problem with a (probabilistic) graph."""


class NodeNotFoundError(GraphError, KeyError):
    """A referenced node does not exist in the graph."""

    def __init__(self, node):
        super().__init__(node)
        self.node = node

    def __str__(self) -> str:  # KeyError quotes its repr; keep it readable
        return f"node {self.node!r} is not in the graph"


class EdgeNotFoundError(GraphError, KeyError):
    """A referenced edge does not exist in the graph."""

    def __init__(self, u, v):
        super().__init__((u, v))
        self.u = u
        self.v = v

    def __str__(self) -> str:
        return f"edge ({self.u!r}, {self.v!r}) is not in the graph"


class InvalidProbabilityError(GraphError, ValueError):
    """An edge probability is outside the closed interval [0, 1]."""


class ParameterError(ReproError, ValueError):
    """An algorithm parameter (k, gamma, epsilon, delta, ...) is invalid."""


class DatasetError(ReproError):
    """A named dataset is unknown or could not be generated/loaded."""


class GraphParseError(DatasetError, GraphError):
    """A graph file is truncated, corrupt, or otherwise malformed.

    Carries the offending location so parse failures in large edge lists
    are actionable: ``source`` is the file name (None for anonymous
    streams), ``lineno`` the 1-based line number, and ``token`` the text
    that could not be interpreted.
    """

    def __init__(self, message, *, source=None, lineno=None, token=None):
        where = []
        if source is not None:
            where.append(str(source))
        if lineno is not None:
            where.append(f"line {lineno}")
        prefix = f"{': '.join(where)}: " if where else ""
        super().__init__(f"{prefix}{message}")
        self.source = source
        self.lineno = lineno
        self.token = token


class DecompositionError(ReproError):
    """A decomposition could not be carried out on the given input."""


class BudgetExceededError(ReproError):
    """A cooperative execution budget was exhausted.

    Raised at a batch boundary by a budget-checking progress hook (see
    :class:`repro.runtime.Budget`). ``resource`` names the limit that
    tripped (``"deadline"``, ``"samples"``, or ``"memory"``), ``limit``
    and ``observed`` quantify it, and ``partial`` optionally carries
    whatever partial state the interrupted computation could salvage.
    """

    def __init__(self, resource, limit, observed, message=None, partial=None):
        if message is None:
            message = (
                f"{resource} budget exceeded: observed {observed!r} "
                f"against limit {limit!r}"
            )
        super().__init__(message)
        self.resource = resource
        self.limit = limit
        self.observed = observed
        self.partial = partial
        #: The :class:`repro.runtime.Budget` that raised, set by its
        #: ``check``; lets callers distinguish soft from hard budgets.
        self.budget = None


class CheckpointError(ReproError):
    """A checkpoint could not be written, read, or validated.

    Covers missing or corrupt manifests, checksum mismatches on sample
    batches, unsupported checkpoint format versions, and resuming with
    parameters different from those the checkpoint was created with.
    """


class CheckpointWriteError(CheckpointError):
    """An atomic checkpoint write failed at the OS level.

    Raised by :class:`repro.runtime.CheckpointStore` when the temp-file
    write, fsync, or rename fails (``ENOSPC``, read-only filesystem,
    quota, ...). The partial temp file is unlinked first, so the
    directory never holds a torn write. The harness catches this once,
    emits a ``checkpoint-degraded`` event, and finishes the computation
    with checkpointing disabled rather than dying mid-peel.
    """

    def __init__(self, message, *, path=None):
        super().__init__(message)
        self.path = None if path is None else str(path)


class TaskQuarantinedError(ReproError):
    """A parallel task was quarantined and the caller cannot degrade.

    Raised by :meth:`repro.parallel.ParallelExecutor.map` (policy
    ``on_quarantine="raise"``) when a payload crashed its worker or
    timed out more than ``max_task_retries`` times. ``quarantined``
    holds one :class:`repro.parallel.QuarantinedTask` record per poison
    payload, naming the task, the payload, the attempt count, and the
    reason for every strike. Stages that *can* degrade (oracle blocks,
    GBU seeds, GTD components) use the ``"skip"`` policy instead and
    never see this exception.
    """

    def __init__(self, quarantined, message=None):
        quarantined = list(quarantined)
        if message is None:
            names = ", ".join(sorted({q.name for q in quarantined}))
            message = (
                f"{len(quarantined)} parallel task(s) quarantined "
                f"after repeated failures ({names}); see .quarantined "
                "for the poison payloads"
            )
        super().__init__(message)
        self.quarantined = quarantined


class WorkerPoolError(ReproError, RuntimeError):
    """The supervised worker pool cannot make progress.

    Raised by :class:`repro.parallel.supervisor.SupervisedPool` when
    workers die faster than they complete tasks (e.g. the machine is
    OOM-killing every replacement) — retrying further would loop
    forever. Also a :class:`RuntimeError` so pre-taxonomy callers that
    caught that keep working.
    """


class ServiceError(ReproError):
    """The query service cannot serve a request.

    Base of the serving failure contract (``repro serve``, see
    ``docs/serving.md``): every subclass maps to exactly one HTTP
    status code via :data:`HTTP_STATUS_BY_ERROR`, so a client can
    dispatch on the status line alone and the body's ``error`` field
    names the taxonomy class for programmatic callers.
    """


class OverloadedError(ServiceError):
    """Admission control shed the request (load shedding).

    Raised when the bounded request queue is full, the in-flight limit
    cannot be acquired before the request's deadline, or the resource
    watchdog reports pressure. ``retry_after`` is the server's estimate
    (seconds) of when capacity returns; it is surfaced as the HTTP
    ``Retry-After`` header.
    """

    def __init__(self, message="service overloaded; request shed",
                 retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class IndexUnavailableError(ServiceError):
    """No usable decomposition index exists for the requested key.

    Raised when an index build has not completed (and the request did
    not ask to wait), when a circuit breaker is open with no last-good
    cached result to degrade to, or when the build failed terminally.
    ``retry_after`` estimates when a rebuild may have produced one;
    ``building`` distinguishes "in progress, come back" from "broken".
    """

    def __init__(self, message="decomposition index unavailable",
                 retry_after: float | None = None, building: bool = False):
        super().__init__(message)
        self.retry_after = None if retry_after is None else float(retry_after)
        self.building = bool(building)


class ComputationInterrupted(ReproError):
    """A long-running computation was cooperatively interrupted.

    Raised at the next batch boundary after a SIGINT or SIGTERM (real,
    via :class:`repro.runtime.InterruptGuard`, or injected by the fault
    harness) so that checkpoints stay consistent. ``partial`` optionally
    carries salvaged partial state and ``checkpoint_path`` the directory
    holding the last consistent snapshot, if any. ``exit_code`` is the
    conventional shell exit status for the signal that triggered the
    abort (130 for SIGINT, 143 for SIGTERM); the CLI propagates it.
    """

    def __init__(self, message="computation interrupted", partial=None,
                 checkpoint_path=None, exit_code=130):
        super().__init__(message)
        self.partial = partial
        self.checkpoint_path = checkpoint_path
        self.exit_code = exit_code


#: The single place the taxonomy maps to HTTP status codes — the query
#: service (``repro serve``) resolves every raised exception through
#: :func:`http_status_of`, which walks the exception's MRO and returns
#: the first match here, so subclasses inherit their parent's status
#: unless listed explicitly. Documented in ``docs/serving.md``; the
#: serving tests assert the table and the docs table agree.
HTTP_STATUS_BY_ERROR: dict[type, int] = {
    # Bad request: the caller's parameters can never succeed as given.
    ParameterError: 400,
    InvalidProbabilityError: 400,
    GraphParseError: 400,
    # Not found: the named graph/node/edge does not exist server-side.
    DatasetError: 404,
    NodeNotFoundError: 404,
    EdgeNotFoundError: 404,
    # Service unavailable (retryable): shed load or an index that is
    # not (yet, or currently) usable; carries Retry-After when known.
    OverloadedError: 503,
    IndexUnavailableError: 503,
    # Internal: everything else the taxonomy distinguishes is a
    # server-side failure the client cannot fix by changing the call.
    ServiceError: 500,
    CheckpointError: 500,
    WorkerPoolError: 500,
    TaskQuarantinedError: 500,
    BudgetExceededError: 500,
    ReproError: 500,
}


def http_status_of(exc: BaseException) -> int:
    """The HTTP status for ``exc`` per :data:`HTTP_STATUS_BY_ERROR`.

    Walks the MRO so subclasses inherit the nearest registered
    ancestor's status; unregistered exception types (including
    non-taxonomy ones) map to 500.
    """
    for klass in type(exc).__mro__:
        status = HTTP_STATUS_BY_ERROR.get(klass)
        if status is not None:
            return status
    return 500
